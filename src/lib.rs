//! Umbrella crate for the `hpcbench` workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! cross-crate integration tests (`tests/`). The actual library surface lives
//! in the member crates, re-exported here for convenience:
//!
//! * [`mp`] — the thread-based message-passing runtime (mini-MPI).
//! * [`simnet`] — the deterministic interconnect simulator.
//! * [`machines`] — models of the five supercomputers evaluated in the paper.
//! * [`hpcc`] — the HPC Challenge benchmark suite.
//! * [`imb`] — the Intel MPI Benchmarks subset used in the paper.
//! * [`hpcbench`] — suite orchestration, ratio analysis, figure regeneration.

pub use hpcbench;
pub use hpcc;
pub use imb;
pub use machines;
pub use mp;
pub use simnet;
