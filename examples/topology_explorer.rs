//! Explores the interconnect topologies of the paper (and its announced
//! follow-up systems): routing distances, bisection capacity and what
//! they do to a 1 MB all-to-all — the structural story behind Fig. 12.
//!
//! ```text
//! cargo run --example topology_explorer --release -- [nodes]
//! ```

use simnet::{Clos, Crossbar, FabricParams, FatTree, Hypercube, Time, Topology, Torus3D};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);

    let topologies: Vec<(&str, Box<dyn Topology>)> = vec![
        (
            "fat-tree (ideal, arity 4)",
            Box::new(FatTree::new(nodes, 4)),
        ),
        (
            "fat-tree (3:1 blocked)",
            Box::new(FatTree::with_blocking(nodes, 4, 3.0)),
        ),
        ("hypercube", Box::new(Hypercube::new(nodes))),
        ("crossbar (IXS)", Box::new(Crossbar::new(nodes))),
        ("clos radix 16 (Myrinet)", Box::new(Clos::new(nodes, 16))),
        (
            "clos radix 16, spine 2",
            Box::new(Clos::with_spine(nodes, 16, 2)),
        ),
        ("3-D torus (BG/P, XT4)", Box::new(Torus3D::new(nodes))),
    ];

    println!("{nodes} nodes:\n");
    println!(
        "{:<28} {:>9} {:>10} {:>11} {:>16}",
        "topology", "diameter", "avg hops", "bisection", "alltoall 1MB"
    );
    for (name, topo) in topologies {
        let diameter = topo.diameter();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for a in 0..nodes {
            for b in 0..nodes {
                if a != b {
                    total += topo.hops(a, b);
                    pairs += 1;
                }
            }
        }
        let avg = total as f64 / pairs as f64;
        let bisection = topo.bisection_links();

        // Price a node-level 1 MB all-to-all on this topology with unit
        // links (1 GB/s, 5 us): the fabric's shape is the only variable.
        let mut fabric = simnet::Fabric::new(
            topo,
            FabricParams {
                link_bw: 1e9,
                nic_bw: 1e9,
                nic_duplex: true,
                base_latency: Time::from_us(5.0),
                per_hop_latency: Time::from_us(0.1),
            },
        );
        let mut worst = Time::ZERO;
        for step in 1..nodes {
            for src in 0..nodes {
                let dst = (src + step) % nodes;
                let t = fabric.transfer(src, dst, 1 << 20, Time::ZERO);
                worst = worst.max(t);
            }
        }
        let hot = fabric.hot_spots(1);
        let hot_desc = hot
            .first()
            .map(|h| format!("{:?}[{}] {:.1} ms busy", h.kind, h.index, h.busy * 1e3))
            .unwrap_or_default();
        println!(
            "{name:<28} {diameter:>9} {avg:>10.2} {bisection:>11.1} {:>13.1} ms   hot: {hot_desc}",
            worst.as_secs() * 1e3
        );
    }

    println!(
        "\nNon-blocking interiors (crossbar, ideal fat-tree) finish the \
         all-to-all at the NIC bound; oversubscribed cores (blocked \
         fat-tree, thin-spine Clos) and low-bisection meshes stretch it — \
         the paper's Fig. 12 ordering in structural form."
    );
}
