//! Virtual execution: runs the *actual* IMB benchmark code on simulated
//! 2006-era supercomputers, and compares all three of the workspace's
//! execution modes side by side:
//!
//! 1. native — real run on this host, wall-clock time;
//! 2. virtual — the same program executed on a machine model, timed by
//!    virtual clocks;
//! 3. scheduled — the benchmark's communication schedule replayed on the
//!    same model.
//!
//! ```text
//! cargo run --example virtual_machine --release -- [benchmark] [procs]
//! ```

use imb::Benchmark;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .map(|n| {
            Benchmark::ALL
                .into_iter()
                .find(|b| b.to_string().eq_ignore_ascii_case(&n))
                .unwrap_or_else(|| panic!("unknown benchmark {n}"))
        })
        .unwrap_or(Benchmark::Allreduce);
    let procs: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
    let bytes = 1u64 << 20;

    println!("{bench}, {procs} processes, 1 MiB:\n");
    let native = imb::run_native(bench, procs, bytes, 5);
    println!(
        "{:<30} {:>12.1} us/call   (this host, wall clock)",
        "native",
        native.t_max_us()
    );

    println!();
    for m in machines::systems::paper_systems() {
        if procs > m.max_cpus {
            continue;
        }
        let virt = imb::run_virtual(&m, bench, procs, bytes, 3);
        let sched = imb::sim::simulate(&m, bench, procs, bytes);
        println!(
            "{:<30} {:>12.1} us/call (virtual exec)  {:>12.1} us/call (schedule replay)",
            m.name,
            virt.t_max_us(),
            sched.t_max_us()
        );
    }

    println!(
        "\nThe virtual column runs the same Rust benchmark code as the \
         native row — data movement and results included — but every \
         message is priced by the machine model. The schedule column \
         prices the algorithm's generated communication pattern directly; \
         the two agree because traced executions are asserted identical \
         to the generated schedules."
    );
}
