//! Builds a *custom* machine model — a hypothetical commodity cluster
//! with a faster network — and evaluates it against the paper's systems
//! using the same HPCC balance analysis, demonstrating the public
//! modelling API end to end.
//!
//! ```text
//! cargo run --example custom_machine --release
//! ```

use hpcbench::ratios;
use machines::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};

/// A fictional 2006-era cluster: Opteron-class nodes on a full-bisection
/// fat-tree with modern-for-the-time 10 GbE-like NICs.
fn my_cluster() -> Machine {
    Machine {
        name: "Custom Opteron + fast fabric",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 4,
            clock_ghz: 2.4,
            peak_gflops: 4.8,
            stream_bw: 3.0e9,
            mem_bw_node: 12.8e9,
            dgemm_eff: 0.9,
            hpl_eff: 0.78,
            mem_latency_us: 0.09,
            random_concurrency: 6.0,
        },
        net: NetworkModel {
            topology: TopologyKind::FatTree {
                arity: 8,
                blocking: 1.0,
                blocking_from: 1,
            },
            link_bw: 2.4e9,
            nic_duplex: true,
            mpi_latency_us: 3.5,
            per_hop_us: 0.2,
            overhead_us: 0.6,
            intra_latency_us: 0.9,
            intra_bw: 2.2e9,
            per_msg_bw: 2.4e9,
            plain_link_bw: 2.4e9,
        },
        max_cpus: 1024,
    }
}

fn main() {
    let custom = my_cluster();
    custom.validate().expect("model must be self-consistent");

    let p = 64;
    println!("HPCC balance at {p} CPUs (simulated):\n");
    println!(
        "{:<30} {:>10} {:>12} {:>12} {:>10}",
        "machine", "HPL GF/s", "ring GB/s", "B/kFlop", "B/F"
    );
    let mut all = machines::systems::paper_systems();
    all.push(custom);
    for m in &all {
        if p > m.max_cpus {
            continue;
        }
        let s = hpcc::sim::summary(m, p);
        let b = ratios::balance_point(&s);
        println!(
            "{:<30} {:>10.1} {:>12.2} {:>12.1} {:>10.2}",
            m.name, b.hpl_gflops, b.accum_ring_bw, b.b_per_kflop, b.stream_b_per_flop
        );
    }

    // Where does the custom design land on the paper's headline test?
    let mine = imb::sim::simulate(&all[5], imb::Benchmark::Alltoall, p, 1 << 20);
    let opteron = imb::sim::simulate(
        &machines::systems::cray_opteron(),
        imb::Benchmark::Alltoall,
        p,
        1 << 20,
    );
    println!(
        "\n1 MB Alltoall at {p} CPUs: custom {:.0} us vs Cray Opteron {:.0} us \
         ({:.1}x faster)",
        mine.t_max_us(),
        opteron.t_max_us(),
        opteron.t_max_us() / mine.t_max_us()
    );
    assert!(mine.t_max_us() < opteron.t_max_us());
}
