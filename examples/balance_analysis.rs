//! The paper's Section 4.1 ratio analysis, end to end: sweeps every
//! machine model, prints the Fig. 2-style B/kFlop table, the Fig. 5
//! normalised comparison and Table 3 — then checks the paper's headline
//! qualitative findings hold in the reproduction.
//!
//! ```text
//! cargo run --example balance_analysis --release
//! ```

use hpcbench::figures::{self, FigureConfig};
use hpcbench::ratios;

fn main() {
    let cfg = FigureConfig {
        max_procs: 256,
        imb_bytes: 1 << 20,
        ..FigureConfig::default()
    };

    println!("Communication/computation balance (Fig. 2): B/kFlop by CPUs\n");
    let sweeps = figures::hpcc_sweeps(&cfg);
    for sw in &sweeps {
        print!("{:<30}", sw.machine.name);
        for s in &sw.rows {
            let b = ratios::balance_point(s);
            print!(" {:>8.1}@{}", b.b_per_kflop, b.cpus);
        }
        println!();
    }

    println!("\n{}", figures::fig05(&cfg).to_markdown());
    println!("{}", figures::table3(&cfg).to_markdown());

    // Headline findings of Section 5.1.
    let by_name = |name: &str| {
        sweeps
            .iter()
            .find(|sw| sw.machine.name.contains(name))
            .expect("machine present")
    };
    let sx8 = by_name("NEC");
    let opteron = by_name("Opteron");

    let sx8_last = ratios::balance_point(sx8.rows.last().unwrap());
    let sx8_first = ratios::balance_point(&sx8.rows[0]);
    let opt_last = ratios::balance_point(opteron.rows.last().unwrap());
    let opt_first = ratios::balance_point(&opteron.rows[0]);

    // "NEC SX-8 system scales well which can be noted by a relatively
    // flat curve" vs "a strong decrease ... in the case of Cray Opteron".
    let sx8_drop = sx8_first.b_per_kflop / sx8_last.b_per_kflop;
    let opt_drop = opt_first.b_per_kflop / opt_last.b_per_kflop;
    println!("B/kFlop decline, first->last point: SX-8 {sx8_drop:.1}x, Opteron {opt_drop:.1}x");
    assert!(
        opt_drop > sx8_drop,
        "the Opteron cluster must lose balance faster than the SX-8"
    );

    // "The Byte/Flop for NEC SX-8 is consistently above 2.67".
    for row in &sx8.rows {
        let b = ratios::balance_point(row);
        assert!(
            b.stream_b_per_flop > 2.67,
            "SX-8 B/F fell below the paper's floor"
        );
    }
    println!("all headline balance findings reproduced");
}
