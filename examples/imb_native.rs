//! Runs the IMB benchmark subset natively on this machine, printing the
//! classic IMB-style table per benchmark (message size, repetitions,
//! t_min/t_avg/t_max, bandwidth where applicable).
//!
//! ```text
//! cargo run --example imb_native --release -- [ranks] [max_log2_bytes]
//! ```

use imb::{default_repetitions, Benchmark, MetricKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(4);
    let max_log2: u32 = args.next().and_then(|v| v.parse().ok()).unwrap_or(16);

    let sizes: Vec<u64> = imb::standard_sizes()
        .into_iter()
        .filter(|&s| s <= 1 << max_log2)
        .collect();

    for bench in Benchmark::ALL {
        let p = ranks.max(bench.min_procs());
        println!("\n#--------------------------------------------------");
        println!("# Benchmarking {bench}  ({p} processes)");
        println!("#--------------------------------------------------");
        match bench.metric() {
            MetricKind::BandwidthMBs => println!(
                "{:>10} {:>8} {:>12} {:>12}",
                "#bytes", "#reps", "t_max[us]", "MB/s"
            ),
            _ => println!(
                "{:>10} {:>8} {:>12} {:>12} {:>12}",
                "#bytes", "#reps", "t_min[us]", "t_avg[us]", "t_max[us]"
            ),
        }
        let bench_sizes: &[u64] = if bench.sized() { &sizes } else { &[0] };
        for &bytes in bench_sizes {
            // Scale the IMB repetition rule down for in-process runs.
            let reps = (default_repetitions(bytes) / 20).max(3);
            let m = imb::run_native(bench, p, bytes, reps);
            match bench.metric() {
                MetricKind::BandwidthMBs => println!(
                    "{:>10} {:>8} {:>12.2} {:>12.2}",
                    bytes,
                    reps,
                    m.t_max_us(),
                    m.bandwidth_mbs().unwrap_or(0.0)
                ),
                _ => println!(
                    "{:>10} {:>8} {:>12.2} {:>12.2} {:>12.2}",
                    bytes,
                    reps,
                    m.t_min_us(),
                    m.t_avg_us(),
                    m.t_max_us()
                ),
            }
        }
    }
}
