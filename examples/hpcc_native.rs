//! Runs the complete HPCC suite natively on this machine — the same
//! benchmarks the paper ran on the five supercomputers, executed on host
//! threads through the `mp` runtime, with every kernel's built-in
//! verification active.
//!
//! ```text
//! cargo run --example hpcc_native --release -- [ranks]
//! ```

use hpcc::suite::{run_native, SuiteConfig};

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // Sizes chosen so a laptop-class host finishes in seconds while the
    // arrays still exceed typical caches.
    let cfg = SuiteConfig {
        hpl_n: 768,
        hpl_nb: 64,
        ptrans_n: 64 * ranks,
        ra_log2_size: 20,
        stream_len: 4_000_000,
        fft_log2_n: 18,
        dgemm_n: 384,
        ring_bytes: 2_000_000,
        // The 2-D process-grid HPL when the rank count tiles a grid.
        hpl_2d: ranks > 1,
    };

    println!("HPCC suite, {ranks} ranks (native, this host)");
    println!("---------------------------------------------");
    let s = run_native(ranks, &cfg);
    println!("G-HPL             {:>12.3} Gflop/s", s.ghpl);
    println!("G-PTRANS          {:>12.3} GB/s", s.ptrans);
    println!("G-RandomAccess    {:>12.6} GUP/s", s.gups);
    println!("EP-STREAM copy    {:>12.3} GB/s per rank", s.stream_copy);
    println!("EP-STREAM triad   {:>12.3} GB/s per rank", s.stream_triad);
    println!("G-FFT             {:>12.3} Gflop/s", s.gfft);
    println!("EP-DGEMM          {:>12.3} Gflop/s per rank", s.ep_dgemm);
    println!("RandomRing BW     {:>12.3} GB/s per rank", s.ring_bw);
    println!("RandomRing lat    {:>12.3} us", s.ring_latency_us);
    println!(
        "verification      {:>12}",
        if s.all_passed { "PASSED" } else { "FAILED" }
    );
    if s.gups == 0.0 || s.gfft == 0.0 {
        println!("(RandomAccess/FFT need a power-of-two rank count)");
    }
    assert!(s.all_passed, "a benchmark failed verification");
}
