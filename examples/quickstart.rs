//! Quickstart: the three layers of the workspace in one minute.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use hpcbench::figures::FigureConfig;

fn main() {
    // 1. The message-passing runtime: an SPMD program on 4 rank threads.
    let sums = mp::run(4, |comm| {
        let mut x = [comm.rank() as f64 + 1.0];
        comm.allreduce(&mut x, mp::Op::Sum);
        x[0]
    });
    println!("allreduce over 4 ranks: {:?}", sums);

    // 2. A native benchmark: IMB Allreduce, 1 MiB, on this machine.
    let meas = imb::run_native(imb::Benchmark::Allreduce, 4, 1 << 20, 10);
    println!(
        "native IMB Allreduce, 4 ranks, 1 MiB: {:.1} us/call",
        meas.t_max_us()
    );

    // 3. The same benchmark on the paper's machines, simulated.
    println!("simulated IMB Allreduce, 16 CPUs, 1 MiB:");
    for m in machines::systems::paper_systems() {
        let s = imb::sim::simulate(&m, imb::Benchmark::Allreduce, 16, 1 << 20);
        println!("  {:<28} {:>10.1} us/call", m.name, s.t_max_us());
    }

    // 4. One figure of the paper, regenerated at reduced scale.
    let fig = hpcbench::figures::fig12(&FigureConfig::quick());
    println!("\n{}", fig.to_markdown());
}
