//! Compares the five supercomputers of the paper on a chosen IMB
//! benchmark across processor counts — a textual rendition of the
//! paper's Figs. 6-15.
//!
//! ```text
//! cargo run --example five_machines --release -- [benchmark] [bytes]
//! cargo run --example five_machines --release -- Alltoall 1048576
//! ```

use imb::{Benchmark, MetricKind};

fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.to_string().eq_ignore_ascii_case(name))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .map(|n| parse_benchmark(&n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
        .unwrap_or(Benchmark::Alltoall);
    let bytes: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(1 << 20);
    let bytes = if bench.sized() { bytes } else { 0 };

    let machines = machines::systems::all_variants();
    let grid = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];

    println!("{bench} at {bytes} bytes (simulated on the paper's machines)");
    let unit = match bench.metric() {
        MetricKind::BandwidthMBs => "MB/s",
        _ => "us/call",
    };
    print!("{:>6}", "procs");
    for m in &machines {
        print!(" {:>26}", m.name);
    }
    println!("   [{unit}]");

    for &p in &grid {
        print!("{p:>6}");
        for m in &machines {
            if p <= m.max_cpus && p >= bench.min_procs() {
                let s = imb::sim::simulate(m, bench, p, bytes);
                let v = match bench.metric() {
                    MetricKind::BandwidthMBs => s.bandwidth_mbs().unwrap_or(0.0),
                    _ => s.t_max_us(),
                };
                print!(" {v:>26.1}");
            } else {
                print!(" {:>26}", "-");
            }
        }
        println!();
    }

    println!(
        "\nPaper's Fig. 12 ordering at 1 MB: NEC SX-8 > Cray X1 > Altix BX2 \
         > Dell Xeon > Cray Opteron (faster to slower)."
    );
}
