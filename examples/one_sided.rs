//! One-sided communication (the paper's announced follow-up study):
//! runs the IMB-EXT benchmarks natively under all three MPI-2
//! synchronisation schemes, then compares the schemes on the paper's
//! machine models.
//!
//! ```text
//! cargo run --example one_sided --release
//! ```

use imb::ext::{run_native, simulate};
use imb::{ExtBenchmark, SyncScheme};

fn main() {
    println!("IMB-EXT natively on this host (2 ranks):\n");
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>14}",
        "benchmark", "bytes", "fence us", "pscw us", "lock us"
    );
    for bench in ExtBenchmark::ALL {
        for bytes in [1024u64, 1 << 20] {
            let t: Vec<f64> = SyncScheme::ALL
                .iter()
                .map(|&s| run_native(bench, s, bytes, 10).t_us)
                .collect();
            println!(
                "{:<12} {:>10} {:>14.2} {:>14.2} {:>14.2}",
                bench.to_string(),
                bytes,
                t[0],
                t[1],
                t[2]
            );
        }
    }

    println!("\nSimulated Unidir_Put at 1 MiB across the paper's machines:\n");
    println!(
        "{:<30} {:>12} {:>12} {:>12}   [MB/s]",
        "machine", "fence", "pscw", "lock"
    );
    for m in machines::systems::paper_systems() {
        let v: Vec<f64> = SyncScheme::ALL
            .iter()
            .map(|&s| simulate(&m, ExtBenchmark::UnidirPut, s, 1 << 20).mbs)
            .collect();
        println!(
            "{:<30} {:>12.0} {:>12.0} {:>12.0}",
            m.name, v[0], v[1], v[2]
        );
    }

    // The put/get asymmetry the paper's Section 2.4 RDMA discussion
    // predicts: a get is a request/response round trip.
    let m = machines::systems::dell_xeon();
    let put = simulate(&m, ExtBenchmark::UnidirPut, SyncScheme::Lock, 1 << 20);
    let get = simulate(&m, ExtBenchmark::UnidirGet, SyncScheme::Lock, 1 << 20);
    println!(
        "\nDell Xeon, 1 MiB passive-target: put {:.0} MB/s vs get {:.0} MB/s",
        put.mbs, get.mbs
    );
    assert!(put.mbs > get.mbs);
}
