//! Regeneration of every figure and table in the paper's evaluation.
//!
//! | id | paper content | data source |
//! |----|----|----|
//! | table1, table2 | architecture tables | `machines::tables` |
//! | fig01-fig04 | random-ring / STREAM balance vs HPL | `hpcc::sim` sweeps |
//! | fig05, table3 | HPL-normalised benchmark comparison | `ratios::kiviat_row` |
//! | fig06-fig15 | IMB collectives / transfers at 1 MB | `imb::sim` sweeps |
//!
//! Every sweep routes through the unified workload registry
//! ([`crate::registry`]) and the harness campaign driver
//! ([`harness::RunPlan`]); the figures are projections of the resulting
//! [`harness::Record`] streams.

use harness::{MetricKind, Mode, ProcGrid, RunPlan, Runner};
use machines::{systems, Machine};
use simnet::units::MIB;

use crate::ratios;
use crate::report::{figure_from_records, fmt_num, Figure, Series, Table};

/// Sweep scale configuration. The default regenerates the paper's full
/// processor ranges; tests use a smaller cap.
#[derive(Clone, Copy, Debug)]
pub struct FigureConfig {
    /// Upper bound on simulated CPUs (per machine, also capped by the
    /// installation size).
    pub max_procs: usize,
    /// IMB message size (the paper reports 1 MB = 2^20 bytes).
    pub imb_bytes: u64,
    /// Ceiling of the high-rank scaling figures (powers of two; the
    /// grid runs over the top three octaves below it). These sweeps run
    /// on the exascale extension model, far past any paper-era
    /// installation — the axis the cooperative rank scheduler opened.
    pub highrank_procs: usize,
}

impl Default for FigureConfig {
    fn default() -> FigureConfig {
        FigureConfig {
            max_procs: 2048,
            imb_bytes: MIB,
            highrank_procs: 65_536,
        }
    }
}

impl FigureConfig {
    /// A scaled-down configuration for fast tests.
    pub fn quick() -> FigureConfig {
        FigureConfig {
            max_procs: 16,
            imb_bytes: 64 * 1024,
            highrank_procs: 1024,
        }
    }
}

/// Processor grid for the HPCC balance sweeps (Figs. 1-4): powers of two
/// from 4, plus the odd installation endpoints the paper reports (576 on
/// the SX-8, 2024-like multi-box sizes on the Altix).
fn hpcc_grid(m: &Machine, cap: usize) -> Vec<usize> {
    let limit = m.max_cpus.min(cap);
    let mut grid = Vec::new();
    let mut p = 4;
    while p <= limit {
        grid.push(p);
        p *= 2;
    }
    if m.max_cpus == 576 && limit >= 576 {
        grid.push(576);
    }
    if grid.is_empty() {
        grid.push(m.node.cpus.max(2).min(limit.max(2)));
    }
    grid
}

/// Processor grid for the IMB figures (Figs. 6-15): powers of two from 2.
fn imb_grid(m: &Machine, cap: usize) -> Vec<usize> {
    let limit = m.max_cpus.min(cap).min(512);
    let mut grid = Vec::new();
    let mut p = 2;
    while p <= limit {
        grid.push(p);
        p *= 2;
    }
    if m.max_cpus == 576 && cap >= 576 {
        grid.push(576);
    }
    grid
}

/// One machine's HPCC sweep.
#[derive(Clone, Debug)]
pub struct HpccSweep {
    /// The machine.
    pub machine: Machine,
    /// Summaries at each grid point.
    pub rows: Vec<hpcc::HpccSummary>,
}

/// Runs the HPCC model sweep for every machine variant of Figs. 1-4
/// (including the Altix NUMALINK3 configuration).
pub fn hpcc_sweeps(cfg: &FigureConfig) -> Vec<HpccSweep> {
    let reg = crate::registry::registry();
    systems::all_variants()
        .into_iter()
        .map(|machine| {
            let grid = hpcc_grid(&machine, cfg.max_procs);
            let plan = RunPlan {
                backend: harness::Backend::Local,
                modes: vec![Mode::Simulated],
                machines: vec![machine.clone()],
                procs: ProcGrid::List(grid.clone()),
                bytes: vec![],
                workloads: Some(crate::registry::hpcc_names()),
                runner: Runner::standard(),
            };
            let records = plan.execute(&reg);
            let rows = grid
                .iter()
                .map(|&p| {
                    let at_p: Vec<_> = records.iter().filter(|r| r.procs == p).copied().collect();
                    hpcc::HpccSummary::from_records(&at_p)
                })
                .collect();
            HpccSweep { machine, rows }
        })
        .collect()
}

fn balance_figure(
    id: &'static str,
    title: &str,
    ylabel: &str,
    sweeps: &[HpccSweep],
    f: impl Fn(&ratios::BalancePoint) -> f64,
) -> Figure {
    Figure {
        id,
        title: title.to_string(),
        xlabel: "HPL Gflop/s".into(),
        ylabel: ylabel.into(),
        series: sweeps
            .iter()
            .map(|sw| Series {
                name: sw.machine.name.to_string(),
                points: sw
                    .rows
                    .iter()
                    .map(|s| {
                        let b = ratios::balance_point(s);
                        (b.hpl_gflops, f(&b))
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Fig. 1: accumulated random-ring bandwidth versus HPL performance.
pub fn fig01_from(sweeps: &[HpccSweep]) -> Figure {
    balance_figure(
        "fig01",
        "Accumulated random ring bandwidth versus HPL performance",
        "Accumulated random ring bandwidth (GB/s)",
        sweeps,
        |b| b.accum_ring_bw,
    )
}

/// Fig. 2: accumulated random-ring bandwidth ratio versus HPL.
pub fn fig02_from(sweeps: &[HpccSweep]) -> Figure {
    balance_figure(
        "fig02",
        "Accumulated random ring bandwidth ratio versus HPL performance",
        "Random ring bandwidth / HPL (B/kFlop)",
        sweeps,
        |b| b.b_per_kflop,
    )
}

/// Fig. 3: accumulated EP-STREAM copy versus HPL performance.
pub fn fig03_from(sweeps: &[HpccSweep]) -> Figure {
    balance_figure(
        "fig03",
        "Accumulated EP stream copy versus HPL performance",
        "Accumulated EP STREAM copy (GB/s)",
        sweeps,
        |b| b.accum_stream,
    )
}

/// Fig. 4: accumulated EP-STREAM copy ratio versus HPL performance.
pub fn fig04_from(sweeps: &[HpccSweep]) -> Figure {
    balance_figure(
        "fig04",
        "Accumulated EP stream copy ratio versus HPL performance",
        "STREAM copy / HPL (B/F)",
        sweeps,
        |b| b.stream_b_per_flop,
    )
}

/// The Kiviat rows behind Fig. 5 / Table 3: each of the five paper
/// systems at its largest configuration.
///
/// As in the paper, "the global ratios of systems with over 1 TFlop/s
/// HPL performance are plotted" — the globally-measured columns (G-FFTE,
/// G-Ptrans, G-RandomAccess) are blanked for smaller systems, whose
/// easier scaling would otherwise give them "an undue advantage".
pub fn kiviat_rows(cfg: &FigureConfig) -> Vec<ratios::KiviatRow> {
    systems::paper_systems()
        .iter()
        .map(|m| {
            let p = *hpcc_grid(m, cfg.max_procs).last().unwrap();
            let mut row = ratios::kiviat_row(m, &hpcc::sim::summary(m, p));
            if row.values[0] < 1.0 {
                // values[0] is G-HPL in TF/s; columns 2/3/7 are the
                // global-measurement ratios.
                for i in [2, 3, 7] {
                    row.values[i] = 0.0;
                }
            }
            row
        })
        .collect()
}

/// Fig. 5: all benchmarks normalised with the HPL value, column maxima
/// scaled to 1.
pub fn fig05(cfg: &FigureConfig) -> Table {
    let (rows, _) = ratios::normalise(&kiviat_rows(cfg));
    Table {
        id: "fig05",
        title: "Comparison of all the benchmarks normalized with HPL value".into(),
        columns: std::iter::once("Machine".to_string())
            .chain(ratios::KIVIAT_COLUMNS.iter().map(|c| c.to_string()))
            .collect(),
        rows: rows
            .iter()
            .map(|r| {
                std::iter::once(r.machine.clone())
                    .chain(r.values.iter().map(|v| fmt_num(*v)))
                    .collect()
            })
            .collect(),
    }
}

/// Table 3: the per-column maxima behind Fig. 5.
pub fn table3(cfg: &FigureConfig) -> Table {
    let (_, maxima) = ratios::normalise(&kiviat_rows(cfg));
    Table {
        id: "table3",
        title: "Ratio values corresponding to 1 in Fig. 5".into(),
        columns: vec!["Ratio".into(), "Maximum value".into()],
        rows: ratios::KIVIAT_COLUMNS
            .iter()
            .zip(maxima.iter())
            .map(|(c, v)| vec![c.to_string(), fmt_num(*v)])
            .collect(),
    }
}

/// Table 1: architecture parameters of the SGI Altix BX2.
pub fn table1() -> Table {
    Table {
        id: "table1",
        title: "Architecture parameters of SGI Altix BX2".into(),
        columns: vec!["Characteristics".into(), "SGI Altix BX2".into()],
        rows: machines::tables::TABLE1
            .iter()
            .map(|r| vec![r.characteristic.to_string(), r.value.to_string()])
            .collect(),
    }
}

/// Table 2: system characteristics of the five computing platforms.
pub fn table2() -> Table {
    Table {
        id: "table2",
        title: "System characteristics of the five computing platforms".into(),
        columns: [
            "Platform",
            "Type",
            "CPUs/node",
            "Clock (GHz)",
            "Peak/node (Gflop/s)",
            "Network",
            "Network topology",
            "Operating system",
            "Location",
            "Processor vendor",
            "System vendor",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: machines::tables::table2()
            .iter()
            .map(|r| {
                vec![
                    r.platform.to_string(),
                    format!("{:?}", r.class),
                    r.cpus_per_node.to_string(),
                    fmt_num(r.clock_ghz),
                    fmt_num(r.peak_per_node),
                    r.network.to_string(),
                    r.network_topology.to_string(),
                    r.operating_system.to_string(),
                    r.location.to_string(),
                    r.processor_vendor.to_string(),
                    r.system_vendor.to_string(),
                ]
            })
            .collect(),
    }
}

/// The machine variants plotted in the IMB figures (the five systems,
/// with the Cray X1 in both MSP and SSP modes, as in the paper's plots).
fn imb_machines() -> Vec<Machine> {
    vec![
        systems::altix_bx2(),
        systems::cray_x1_msp(),
        systems::cray_x1_ssp(),
        systems::cray_opteron(),
        systems::dell_xeon(),
        systems::nec_sx8(),
    ]
}

fn imb_figure(
    id: &'static str,
    benchmark: imb::Benchmark,
    title: &str,
    cfg: &FigureConfig,
) -> Figure {
    let reg = crate::registry::registry();
    let cap = cfg.max_procs;
    let plan = RunPlan {
        backend: harness::Backend::Local,
        modes: vec![Mode::Simulated],
        machines: imb_machines(),
        procs: ProcGrid::per_workload(move |m, _| {
            imb_grid(m.expect("simulated sweeps resolve per machine"), cap)
        }),
        bytes: vec![cfg.imb_bytes],
        workloads: Some(vec![benchmark.name()]),
        runner: Runner::standard(),
    };
    let records = plan.execute(&reg);
    let ylabel = match benchmark.metric() {
        MetricKind::BandwidthMBs => "bandwidth (MB/s)",
        _ => "time per call (us)",
    };
    // For TimeUs records `value` is t_max; for bandwidth records it is the
    // MB/s figure itself — so the projection is uniform.
    figure_from_records(id, title, "processes", ylabel, &records, |r| r.value)
}

/// Fig. 6: execution time of the Barrier benchmark.
pub fn fig06(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig06",
        imb::Benchmark::Barrier,
        "Execution time of Barrier Benchmark (us/call)",
        cfg,
    )
}

/// Fig. 7: Allreduce, 1 MB.
pub fn fig07(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig07",
        imb::Benchmark::Allreduce,
        "Execution time of Allreduce Benchmark for 1 MB message (us/call)",
        cfg,
    )
}

/// Fig. 8: Reduce, 1 MB.
pub fn fig08(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig08",
        imb::Benchmark::Reduce,
        "Execution time of Reduction Benchmark, 1 MB message (us/call)",
        cfg,
    )
}

/// Fig. 9: Reduce_scatter, 1 MB.
pub fn fig09(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig09",
        imb::Benchmark::ReduceScatter,
        "Execution time of Reduce_scatter Benchmark, 1 MB message (us/call)",
        cfg,
    )
}

/// Fig. 10: Allgather, 1 MB.
pub fn fig10(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig10",
        imb::Benchmark::Allgather,
        "Execution time of Allgather Benchmark, 1 MB message (us/call)",
        cfg,
    )
}

/// Fig. 11: Allgatherv, 1 MB.
pub fn fig11(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig11",
        imb::Benchmark::Allgatherv,
        "Execution time of Allgatherv Benchmark, 1 MB message (us/call)",
        cfg,
    )
}

/// Fig. 12: AlltoAll, 1 MB.
pub fn fig12(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig12",
        imb::Benchmark::Alltoall,
        "Execution time of AlltoAll Benchmark, 1 MB message (us/call)",
        cfg,
    )
}

/// Fig. 13: Sendrecv bandwidth, 1 MB.
pub fn fig13(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig13",
        imb::Benchmark::Sendrecv,
        "Bandwidth of Sendrecv Benchmark, 1 MB message (MB/s)",
        cfg,
    )
}

/// Fig. 14: Exchange bandwidth, 1 MB.
pub fn fig14(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig14",
        imb::Benchmark::Exchange,
        "Bandwidth of Exchange Benchmark, 1 MB message (MB/s)",
        cfg,
    )
}

/// Fig. 15: Broadcast, 1 MB.
pub fn fig15(cfg: &FigureConfig) -> Figure {
    imb_figure(
        "fig15",
        imb::Benchmark::Bcast,
        "Execution time of Broadcast Benchmark, 1 MB message (us/call)",
        cfg,
    )
}

/// The high-rank scaling grid: the top three octaves below the
/// configured ceiling (e.g. 16384, 32768, 65536 for the default).
fn highrank_grid(cfg: &FigureConfig) -> Vec<usize> {
    let cap = cfg.highrank_procs.next_power_of_two().max(8);
    vec![cap / 4, cap / 2, cap]
}

/// High-rank figure: IMB collectives *virtually executed* at 16k-64k
/// cooperative ranks on the exascale extension model. Every point is
/// the real benchmark code running as resumable rank tasks with the
/// communication priced by virtual clocks — worlds this size are
/// impossible with one OS thread per rank. One series per collective.
pub fn fig_highrank_collectives(cfg: &FigureConfig) -> Figure {
    let reg = crate::registry::registry();
    let machine = systems::exascale_cluster();
    let grid = highrank_grid(cfg);
    let benches = ["Barrier", "Bcast", "Allreduce"];
    let series = benches
        .iter()
        .map(|&name| {
            let plan = RunPlan {
                backend: harness::Backend::Local,
                modes: vec![Mode::Virtual],
                machines: vec![machine.clone()],
                procs: ProcGrid::List(grid.clone()),
                // Small payloads keep the footprint O(ranks), not
                // O(ranks x message): the figure is about scaling the
                // world, not the buffers.
                bytes: vec![1024],
                workloads: Some(vec![name]),
                runner: Runner::fixed(2),
            };
            let records = plan.execute(&reg);
            Series {
                name: name.to_string(),
                points: records.iter().map(|r| (r.procs as f64, r.value)).collect(),
            }
        })
        .collect();
    Figure {
        id: "fig_highrank_collectives",
        title: format!(
            "IMB collectives virtually executed at up to {} cooperative ranks ({}, 1 KB)",
            cfg.highrank_procs, machine.name
        ),
        xlabel: "processes".into(),
        ylabel: "time per call (us)".into(),
        series,
    }
}

/// High-rank figure: G-FFT and G-PTRANS scaling on the exascale model
/// at the same 16k-64k rank axis. The dense kernels hold O(n^2 / p) or
/// n >= p^2 state per world, so these curves come from the calibrated
/// closed-form models (`Mode::Simulated`) rather than virtual
/// execution; the virtual G-FFT point at 4096 ranks lives in the hpcc
/// release-scale tests.
pub fn fig_highrank_hpcc(cfg: &FigureConfig) -> Figure {
    let reg = crate::registry::registry();
    let machine = systems::exascale_cluster();
    let grid = highrank_grid(cfg);
    let plan = RunPlan {
        backend: harness::Backend::Local,
        modes: vec![Mode::Simulated],
        machines: vec![machine.clone()],
        procs: ProcGrid::List(grid),
        bytes: vec![],
        workloads: Some(vec!["G-FFT", "G-PTRANS"]),
        runner: Runner::standard(),
    };
    let records = plan.execute(&reg);
    let series = ["G-FFT", "G-PTRANS"]
        .iter()
        .map(|&name| Series {
            name: name.to_string(),
            points: records
                .iter()
                .filter(|r| r.benchmark == name)
                .map(|r| (r.procs as f64, r.value))
                .collect(),
        })
        .collect();
    Figure {
        id: "fig_highrank_hpcc",
        title: format!(
            "G-FFT and G-PTRANS modelled at up to {} ranks ({})",
            cfg.highrank_procs, machine.name
        ),
        xlabel: "processes".into(),
        ylabel: "Gflop/s / GB/s (model)".into(),
        series,
    }
}

/// The high-rank scaling figures (cooperative-scheduler extension
/// study) — not part of the paper's own figure list.
pub fn highrank_figures(cfg: &FigureConfig) -> Vec<Figure> {
    vec![fig_highrank_collectives(cfg), fig_highrank_hpcc(cfg)]
}

/// Every figure of the paper, in order.
pub fn all_figures(cfg: &FigureConfig) -> Vec<Figure> {
    let sweeps = hpcc_sweeps(cfg);
    vec![
        fig01_from(&sweeps),
        fig02_from(&sweeps),
        fig03_from(&sweeps),
        fig04_from(&sweeps),
        fig06(cfg),
        fig07(cfg),
        fig08(cfg),
        fig09(cfg),
        fig10(cfg),
        fig11(cfg),
        fig12(cfg),
        fig13(cfg),
        fig14(cfg),
        fig15(cfg),
    ]
}

/// Every table of the paper (Fig. 5 is tabular here), in order.
pub fn all_tables(cfg: &FigureConfig) -> Vec<Table> {
    vec![table1(), table2(), fig05(cfg), table3(cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_paper_ranges() {
        let sx8 = systems::nec_sx8();
        let cfg = FigureConfig::default();
        assert_eq!(*imb_grid(&sx8, cfg.max_procs).last().unwrap(), 576);
        let x1 = systems::cray_x1_msp();
        assert_eq!(*imb_grid(&x1, cfg.max_procs).last().unwrap(), 16);
        let altix = systems::altix_bx2();
        assert!(hpcc_grid(&altix, cfg.max_procs).contains(&2048));
    }

    #[test]
    fn quick_figures_have_all_series() {
        let cfg = FigureConfig::quick();
        let f = fig12(&cfg);
        assert_eq!(f.series.len(), 6);
        for s in &f.series {
            assert!(!s.points.is_empty(), "{} has no points", s.name);
            for (_, y) in &s.points {
                assert!(*y > 0.0);
            }
        }
    }

    #[test]
    fn quick_balance_figures_are_consistent() {
        let cfg = FigureConfig::quick();
        let sweeps = hpcc_sweeps(&cfg);
        let f1 = fig01_from(&sweeps);
        let f2 = fig02_from(&sweeps);
        assert_eq!(f1.series.len(), 7, "five systems + X1 SSP + Altix NL3");
        // fig2 = fig1 / HPL * 1000 pointwise.
        for (s1, s2) in f1.series.iter().zip(&f2.series) {
            for ((x1, y1), (x2, y2)) in s1.points.iter().zip(&s2.points) {
                assert_eq!(x1, x2);
                let expect = y1 / x1 * 1000.0;
                assert!((y2 - expect).abs() < 1e-6 * expect, "{} vs {expect}", y2);
            }
        }
    }

    #[test]
    fn highrank_figures_sweep_the_extension_model() {
        let cfg = FigureConfig::quick();
        let grid = highrank_grid(&cfg);
        assert_eq!(grid, vec![256, 512, 1024]);

        let coll = fig_highrank_collectives(&cfg);
        assert_eq!(coll.series.len(), 3, "Barrier, Bcast, Allreduce");
        for s in &coll.series {
            let xs: Vec<f64> = s.points.iter().map(|&(x, _)| x).collect();
            assert_eq!(xs, vec![256.0, 512.0, 1024.0], "{}", s.name);
            // Bigger worlds can't make a collective cheaper.
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: {:?}", s.name, s.points);
            }
        }

        let hpcc = fig_highrank_hpcc(&cfg);
        assert_eq!(hpcc.series.len(), 2, "G-FFT and G-PTRANS");
        for s in &hpcc.series {
            assert_eq!(s.points.len(), 3, "{}", s.name);
            for (_, y) in &s.points {
                assert!(*y > 0.0, "{}", s.name);
            }
        }
    }

    #[test]
    fn registry_routed_figures_match_direct_simulation() {
        let cfg = FigureConfig::quick();
        for (fig, bench) in [
            (fig12(&cfg), imb::Benchmark::Alltoall),
            (fig13(&cfg), imb::Benchmark::Sendrecv),
            (fig06(&cfg), imb::Benchmark::Barrier),
        ] {
            for s in &fig.series {
                let m = imb_machines()
                    .into_iter()
                    .find(|m| m.name == s.name)
                    .unwrap();
                for (x, y) in &s.points {
                    let bytes = if bench.sized() { cfg.imb_bytes } else { 0 };
                    let direct = imb::sim::simulate(&m, bench, *x as usize, bytes);
                    assert_eq!(*y, direct.value, "{} {} p={}", fig.id, s.name, x);
                }
            }
        }
    }

    #[test]
    fn plan_driven_sweeps_match_direct_models() {
        let cfg = FigureConfig::quick();
        for sw in &hpcc_sweeps(&cfg) {
            for row in &sw.rows {
                let direct = hpcc::sim::summary(&sw.machine, row.cpus);
                assert_eq!(row.ghpl, direct.ghpl, "{} p={}", sw.machine.name, row.cpus);
                assert_eq!(row.stream_copy, direct.stream_copy);
                assert_eq!(row.ring_bw, direct.ring_bw);
            }
        }
    }

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert_eq!(t1.rows.len(), 9);
        let t2 = table2();
        assert_eq!(t2.rows.len(), 5);
        let cfg = FigureConfig::quick();
        let f5 = fig05(&cfg);
        assert_eq!(f5.rows.len(), 5);
        assert_eq!(f5.columns.len(), 9);
        let t3 = table3(&cfg);
        assert_eq!(t3.rows.len(), 8);
    }
}
