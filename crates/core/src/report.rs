//! Figure/table data structures and report writers (CSV + markdown).

use std::fmt::Write as _;

use harness::Record;

/// One plotted series: a named list of (x, y) points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (usually a machine name).
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure: the data behind one plot of the paper.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier ("fig06", "table3", ...).
    pub id: &'static str,
    /// Title, matching the paper's caption.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders the figure as CSV: `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", csv_escape(&s.name));
            }
        }
        out
    }

    /// Renders the figure as a markdown table (x down, series across).
    pub fn to_markdown(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();

        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        let _ = writeln!(
            out,
            "| {} | {} |",
            self.xlabel,
            self.series
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(out, "|{}", "---|".repeat(self.series.len() + 1));
        for x in xs {
            let mut row = format!("| {} |", fmt_num(x));
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| p.0 == x)
                    .map(|p| fmt_num(p.1))
                    .unwrap_or_default();
                let _ = write!(row, " {cell} |");
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out, "\n*y: {}*", self.ylabel);
        out
    }
}

/// Builds a figure from a unified record stream: one series per machine
/// (in first-appearance order), x = processor count, y extracted per
/// record. This is how the paper's IMB figures consume the campaign
/// driver's output.
pub fn figure_from_records(
    id: &'static str,
    title: impl Into<String>,
    xlabel: impl Into<String>,
    ylabel: impl Into<String>,
    records: &[Record],
    y: impl Fn(&Record) -> f64,
) -> Figure {
    let mut series: Vec<Series> = Vec::new();
    for r in records {
        let point = (r.procs as f64, y(r));
        match series.iter_mut().find(|s| s.name == r.machine) {
            Some(s) => s.points.push(point),
            None => series.push(Series {
                name: r.machine.to_string(),
                points: vec![point],
            }),
        }
    }
    Figure {
        id,
        title: title.into(),
        xlabel: xlabel.into(),
        ylabel: ylabel.into(),
        series,
    }
}

/// Human-friendly number formatting for tables.
pub fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 && v.abs() < 1e6 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A plain named-rows table (for Tables 1-3).
#[derive(Clone, Debug)]
pub struct Table {
    /// Identifier.
    pub id: &'static str,
    /// Caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        out
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(out, "|{}", "---|".repeat(self.columns.len()));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "figX",
            title: "test".into(),
            xlabel: "procs".into(),
            ylabel: "us".into(),
            series: vec![
                Series {
                    name: "A".into(),
                    points: vec![(2.0, 10.0), (4.0, 20.0)],
                },
                Series {
                    name: "B,quoted".into(),
                    points: vec![(2.0, 5.0)],
                },
            ],
        }
    }

    #[test]
    fn csv_round_numbers_and_escaping() {
        let csv = fig().to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("A,2,10"));
        assert!(csv.contains("\"B,quoted\",2,5"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn markdown_grid_includes_all_x() {
        let md = fig().to_markdown();
        assert!(md.contains("| procs | A | B,quoted |"));
        assert!(md.contains("| 2 |"));
        assert!(md.contains("| 4 |"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(2.0), "2");
        assert_eq!(fmt_num(47.4321), "47.432");
        assert_eq!(fmt_num(203.12), "203.1");
        assert_eq!(fmt_num(1.5e9), "1.500e9");
        assert_eq!(fmt_num(2.5e-5), "2.500e-5");
    }

    #[test]
    fn table_rendering() {
        let t = Table {
            id: "table1",
            title: "params".into(),
            columns: vec!["k".into(), "v".into()],
            rows: vec![vec!["CPUs".into(), "512".into()]],
        };
        assert!(t.to_csv().contains("CPUs,512"));
        assert!(t.to_markdown().contains("| CPUs | 512 |"));
    }
}
