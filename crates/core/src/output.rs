//! Output stage shared by the `figures` and `campaign` binaries: writes
//! every regenerated table and figure (CSV + SVG + combined markdown
//! report) into a directory. The logic used to live in the `figures`
//! binary; hoisting it here lets the campaign driver regenerate the
//! paper's artefacts from one invocation.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::extensions;
use crate::figures::{self, FigureConfig};

/// What [`write_all`] should produce.
#[derive(Clone, Debug)]
pub struct OutputConfig {
    /// Destination directory (created if missing).
    pub out_dir: PathBuf,
    /// Sweep scale.
    pub figures: FigureConfig,
    /// Also write the extension studies (message-size sweeps, one-sided
    /// schemes, future systems).
    pub with_extensions: bool,
    /// Print a one-line progress note per artefact.
    pub verbose: bool,
}

impl OutputConfig {
    /// Full paper-scale output into `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> OutputConfig {
        OutputConfig {
            out_dir: dir.into(),
            figures: FigureConfig::default(),
            with_extensions: true,
            verbose: true,
        }
    }
}

/// Writes all tables, figures, extensions and the combined `report.md`.
/// Returns the path of the written report.
pub fn write_all(cfg: &OutputConfig) -> io::Result<PathBuf> {
    fs::create_dir_all(&cfg.out_dir)?;
    let mut report = String::from(
        "# Regenerated tables and figures\n\nSaini et al., *Performance evaluation of \
         supercomputers using HPCC and IMB Benchmarks* — simulated reproduction.\n\n",
    );

    if cfg.verbose {
        println!("writing tables ...");
    }
    for table in figures::all_tables(&cfg.figures) {
        fs::write(
            cfg.out_dir.join(format!("{}.csv", table.id)),
            table.to_csv(),
        )?;
        report.push_str(&table.to_markdown());
        report.push('\n');
        if cfg.verbose {
            println!("  {} ({} rows)", table.id, table.rows.len());
        }
    }

    if cfg.verbose {
        println!(
            "writing figures (max_procs = {}) ...",
            cfg.figures.max_procs
        );
    }
    for fig in figures::all_figures(&cfg.figures) {
        write_figure(&cfg.out_dir, &fig)?;
        report.push_str(&fig.to_markdown());
        report.push('\n');
        if cfg.verbose {
            let points: usize = fig.series.iter().map(|s| s.points.len()).sum();
            println!(
                "  {} ({} series, {points} points)",
                fig.id,
                fig.series.len()
            );
        }
    }

    if cfg.with_extensions {
        if cfg.verbose {
            println!("writing extension studies (the paper's announced future work) ...");
        }
        let mut ext_figs = extensions::all_msgsize_figures(&cfg.figures);
        ext_figs.extend(extensions::all_onesided_figures());
        ext_figs.push(extensions::future_systems_figure(&cfg.figures));
        ext_figs.extend(figures::highrank_figures(&cfg.figures));
        for fig in ext_figs {
            write_figure(&cfg.out_dir, &fig)?;
            report.push_str(&fig.to_markdown());
            report.push('\n');
            if cfg.verbose {
                println!("  {}", fig.id);
            }
        }
    }

    let report_path = cfg.out_dir.join("report.md");
    fs::write(&report_path, &report)?;
    Ok(report_path)
}

fn write_figure(dir: &Path, fig: &crate::Figure) -> io::Result<()> {
    fs::write(dir.join(format!("{}.csv", fig.id)), fig.to_csv())?;
    fs::write(dir.join(format!("{}.svg", fig.id)), crate::svg::render(fig))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_output_writes_report_and_core_artefacts() {
        let dir = std::env::temp_dir().join(format!("hpcbench-out-{}", std::process::id()));
        let cfg = OutputConfig {
            out_dir: dir.clone(),
            figures: FigureConfig::quick(),
            with_extensions: false,
            verbose: false,
        };
        let report = write_all(&cfg).unwrap();
        assert!(report.ends_with("report.md"));
        let text = fs::read_to_string(&report).unwrap();
        assert!(text.contains("fig12"));
        for id in ["table1", "table2", "fig05", "table3", "fig06", "fig15"] {
            assert!(dir.join(format!("{id}.csv")).exists(), "{id}.csv missing");
        }
        assert!(dir.join("fig12.svg").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
