//! The workspace's workload registry: one [`Workload`] entry per HPCC
//! component and per IMB benchmark, wiring each to its native, simulated
//! and virtual execution paths. This is the single dispatch table behind
//! the campaign driver, the figure regeneration and the bench binaries —
//! the per-crate dispatch it replaces lived in `hpcc::suite`,
//! `hpcc::sim`, `imb::native`, `imb::sim` and `imb::virtual_run`.

use harness::{Registry, Suite, Workload, WorkloadMeta};
use hpcc::suite::{Component, SuiteConfig};

/// Builds the full registry: 7 HPCC components + 12 IMB benchmarks,
/// every entry supporting all three execution modes.
///
/// Native and virtual HPCC components run at the in-process scale of
/// [`SuiteConfig::small`]; simulated components use the paper-scale
/// closed-form models. IMB entries thread the runner's repetition policy
/// through every mode that times a loop.
pub fn registry() -> Registry {
    let mut reg = Registry::new();

    for c in Component::ALL {
        reg.register(
            Workload::new(WorkloadMeta {
                name: c.name(),
                suite: Suite::Hpcc,
                metric: c.metric(),
                min_procs: 1,
                pow2_procs: c.pow2_procs(),
                sized: false,
            })
            .native(move |_runner, p, _| {
                hpcc::suite::run_component_native(p, c, &SuiteConfig::small(p))
            })
            .simulated(move |m, p, _| hpcc::sim::component_records(m, p, c))
            .virtual_mode(move |_runner, m, p, _| {
                hpcc::virtual_run::run_virtual_components(m, p, &SuiteConfig::small(p), &[c])
            }),
        );
    }

    for b in imb::Benchmark::ALL {
        reg.register(
            Workload::new(WorkloadMeta {
                name: b.name(),
                suite: Suite::Imb,
                metric: b.metric(),
                min_procs: b.min_procs(),
                pow2_procs: false,
                sized: b.sized(),
            })
            .native(move |runner, p, bytes| {
                vec![imb::native::run_native_with(
                    b,
                    p,
                    bytes.unwrap_or(0),
                    runner,
                )]
            })
            .simulated(move |m, p, bytes| vec![imb::sim::simulate(m, b, p, bytes.unwrap_or(0))])
            .virtual_mode(move |runner, m, p, bytes| {
                vec![imb::run_virtual_with(m, b, p, bytes.unwrap_or(0), runner)]
            }),
        );
    }

    reg
}

/// The registry's HPCC workload names, in presentation order.
pub fn hpcc_names() -> Vec<&'static str> {
    Component::ALL.iter().map(|c| c.name()).collect()
}

/// The registry's IMB workload names, in presentation order.
pub fn imb_names() -> Vec<&'static str> {
    imb::Benchmark::ALL.iter().map(|b| b.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::{Mode, ProcGrid, RunPlan, Runner};

    #[test]
    fn registry_has_every_workload() {
        let reg = registry();
        assert_eq!(reg.len(), 19, "7 HPCC + 12 IMB");
        assert_eq!(reg.suite(Suite::Hpcc).count(), 7);
        assert_eq!(reg.suite(Suite::Imb).count(), 12);
    }

    #[test]
    fn simulated_imb_entry_matches_direct_simulation() {
        let reg = registry();
        let m = machines::systems::dell_xeon();
        let w = reg.get("Alltoall").unwrap();
        let recs = w
            .run(
                Mode::Simulated,
                &Runner::standard(),
                Some(&m),
                8,
                Some(1 << 20),
            )
            .unwrap();
        let direct = imb::sim::simulate(&m, imb::Benchmark::Alltoall, 8, 1 << 20);
        assert_eq!(recs[0].value, direct.value);
        assert_eq!(recs[0].identity(), direct.identity());
    }

    /// Satellite of the cooperative-scheduler work: for every registry
    /// workload, a cooperative virtual run must be *byte-identical* to
    /// the thread-backed reference engine — same records (all fields,
    /// full f64 precision via the round-trippable Debug form) and the
    /// same per-rank final virtual clock vectors. Both engines drain
    /// the identical FIFO run queue, so any divergence is a scheduler
    /// bug, not noise.
    #[test]
    fn cooperative_virtual_runs_match_threaded_engine_exactly() {
        let m = machines::systems::dell_xeon();

        for c in Component::ALL {
            let p = 4;
            let cfg = SuiteConfig::small(p);
            let (coop_recs, coop_clocks) =
                hpcc::virtual_run::run_virtual_components_clocked(&m, p, &cfg, &[c], true);
            let (thr_recs, thr_clocks) =
                hpcc::virtual_run::run_virtual_components_clocked(&m, p, &cfg, &[c], false);
            assert_eq!(
                format!("{coop_recs:?}"),
                format!("{thr_recs:?}"),
                "{}: records diverge between engines",
                c.name()
            );
            assert_eq!(
                coop_clocks,
                thr_clocks,
                "{}: per-rank virtual clocks diverge between engines",
                c.name()
            );
        }

        for b in imb::Benchmark::ALL {
            let p = b.min_procs().max(4);
            let runner = Runner::fixed(2);
            let (coop_rec, coop_clocks) =
                imb::virtual_run::run_virtual_clocked(&m, b, p, 4096, &runner, true);
            let (thr_rec, thr_clocks) =
                imb::virtual_run::run_virtual_clocked(&m, b, p, 4096, &runner, false);
            assert_eq!(
                format!("{coop_rec:?}"),
                format!("{thr_rec:?}"),
                "{b}: records diverge between engines"
            );
            assert_eq!(
                coop_clocks, thr_clocks,
                "{b}: per-rank virtual clocks diverge between engines"
            );
        }
    }

    #[test]
    fn simulated_hpcc_plan_reproduces_the_summary() {
        let reg = registry();
        let m = machines::systems::nec_sx8();
        let plan = RunPlan {
            backend: harness::Backend::Local,
            modes: vec![Mode::Simulated],
            machines: vec![m.clone()],
            procs: ProcGrid::List(vec![64]),
            bytes: vec![],
            workloads: Some(hpcc_names()),
            runner: Runner::standard(),
        };
        let records = plan.execute(&reg);
        let from_plan = hpcc::HpccSummary::from_records(&records);
        let direct = hpcc::sim::summary(&m, 64);
        assert_eq!(from_plan.ghpl, direct.ghpl);
        assert_eq!(from_plan.ptrans, direct.ptrans);
        assert_eq!(from_plan.gups, direct.gups);
        assert_eq!(from_plan.gfft, direct.gfft);
        assert_eq!(from_plan.ring_bw, direct.ring_bw);
        assert_eq!(from_plan.ring_latency_us, direct.ring_latency_us);
        assert_eq!(from_plan.cpus, 64);
    }
}
