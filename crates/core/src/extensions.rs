//! Extension studies beyond the paper's published figures — the two
//! follow-ups its conclusion announces:
//!
//! * "study the performance as a function of varying message sizes
//!   starting from 1 byte to 2 MB for all 11 benchmarks"
//!   ([`msgsize_figure`], [`all_msgsize_figures`]);
//! * "one-sided (GET/PUT) MPI communication functions with three
//!   synchronization schemes" ([`onesided_figure`],
//!   [`all_onesided_figures`]).
//!
//! Output ids are prefixed `ext_` to keep them distinct from the paper's
//! own figures.

use harness::MetricKind;
use machines::systems;

use crate::figures::FigureConfig;
use crate::report::{Figure, Series};

/// The message-size grid of the planned study: 1 byte to 2 MB.
pub fn size_grid() -> Vec<u64> {
    let mut v = vec![1u64];
    let mut s = 4u64;
    while s <= 2 * 1024 * 1024 {
        v.push(s);
        s *= 4;
    }
    v.push(2 * 1024 * 1024);
    v.dedup();
    v
}

/// Message-size sweep for one IMB benchmark at a fixed processor count:
/// series per machine, x = bytes, y = time (us) or bandwidth (MB/s).
pub fn msgsize_figure(benchmark: imb::Benchmark, cfg: &FigureConfig) -> Figure {
    let grid = size_grid();
    let series = systems::all_variants()
        .iter()
        .map(|m| {
            let p = m
                .max_cpus
                .min(cfg.max_procs)
                .min(64)
                .max(benchmark.min_procs());
            Series {
                name: format!("{} (p={p})", m.name),
                points: grid
                    .iter()
                    .map(|&bytes| {
                        let meas = imb::sim::simulate(m, benchmark, p, bytes);
                        let y = match benchmark.metric() {
                            MetricKind::BandwidthMBs => meas.bandwidth_mbs().unwrap_or(0.0),
                            _ => meas.t_max_us(),
                        };
                        (bytes as f64, y)
                    })
                    .collect(),
            }
        })
        .collect();
    Figure {
        id: msgsize_id(benchmark),
        title: format!("[extension] {benchmark} versus message size (1 B .. 2 MB)"),
        xlabel: "message bytes".into(),
        ylabel: match benchmark.metric() {
            MetricKind::BandwidthMBs => "bandwidth (MB/s)".into(),
            _ => "time per call (us)".into(),
        },
        series,
    }
}

fn msgsize_id(benchmark: imb::Benchmark) -> &'static str {
    use imb::Benchmark as B;
    match benchmark {
        B::PingPong => "ext_size_pingpong",
        B::PingPing => "ext_size_pingping",
        B::Sendrecv => "ext_size_sendrecv",
        B::Exchange => "ext_size_exchange",
        B::Barrier => "ext_size_barrier",
        B::Bcast => "ext_size_bcast",
        B::Allgather => "ext_size_allgather",
        B::Allgatherv => "ext_size_allgatherv",
        B::Alltoall => "ext_size_alltoall",
        B::Reduce => "ext_size_reduce",
        B::Allreduce => "ext_size_allreduce",
        B::ReduceScatter => "ext_size_reduce_scatter",
    }
}

/// Size sweeps for every sized IMB benchmark (the "all 11 benchmarks"
/// study).
pub fn all_msgsize_figures(cfg: &FigureConfig) -> Vec<Figure> {
    imb::Benchmark::ALL
        .into_iter()
        .filter(|b| b.sized())
        .map(|b| msgsize_figure(b, cfg))
        .collect()
}

/// One-sided bandwidth versus message size for one synchronisation
/// scheme (Unidir_Put): series per machine.
pub fn onesided_figure(scheme: imb::SyncScheme) -> Figure {
    let grid = size_grid();
    let series = systems::all_variants()
        .iter()
        .map(|m| Series {
            name: m.name.to_string(),
            points: grid
                .iter()
                .map(|&bytes| {
                    let e = imb::ext::simulate(m, imb::ExtBenchmark::UnidirPut, scheme, bytes);
                    (bytes as f64, e.mbs)
                })
                .collect(),
        })
        .collect();
    Figure {
        id: match scheme {
            imb::SyncScheme::Fence => "ext_onesided_fence",
            imb::SyncScheme::Pscw => "ext_onesided_pscw",
            imb::SyncScheme::Lock => "ext_onesided_lock",
        },
        title: format!("[extension] one-sided Unidir_Put bandwidth, {scheme} synchronisation"),
        xlabel: "message bytes".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series,
    }
}

/// The one-sided study across all three synchronisation schemes.
pub fn all_onesided_figures() -> Vec<Figure> {
    imb::SyncScheme::ALL
        .into_iter()
        .map(onesided_figure)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_grid_spans_1b_to_2mb() {
        let g = size_grid();
        assert_eq!(g[0], 1);
        assert_eq!(*g.last().unwrap(), 2 * 1024 * 1024);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn msgsize_sweep_is_monotone_in_time() {
        let cfg = FigureConfig::quick();
        let fig = msgsize_figure(imb::Benchmark::Allreduce, &cfg);
        for s in &fig.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last > first, "{}: {last} !> {first}", s.name);
        }
    }

    #[test]
    fn bandwidth_sweeps_saturate_upward() {
        let cfg = FigureConfig::quick();
        let fig = msgsize_figure(imb::Benchmark::Sendrecv, &cfg);
        for s in &fig.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last > first, "{}: bandwidth should grow with size", s.name);
        }
    }

    #[test]
    fn onesided_figures_cover_all_schemes() {
        let figs = all_onesided_figures();
        assert_eq!(figs.len(), 3);
        for f in &figs {
            assert_eq!(f.series.len(), 7);
            for s in &f.series {
                assert!(s.points.iter().all(|p| p.1 > 0.0));
            }
        }
    }

    #[test]
    fn eleven_sized_benchmarks_swept() {
        let cfg = FigureConfig::quick();
        let figs = all_msgsize_figures(&cfg);
        assert_eq!(figs.len(), 11, "all 11 sized benchmarks");
    }
}

/// Simulated 1 MB Alltoall across the conclusion's five announced
/// follow-up systems, with the NEC SX-8 as the reference winner of the
/// original study.
pub fn future_systems_figure(cfg: &FigureConfig) -> Figure {
    let mut machines = systems::future_systems();
    machines.push(systems::nec_sx8());
    let series = machines
        .iter()
        .map(|m| {
            let mut points = Vec::new();
            let mut p = 2;
            while p <= m.max_cpus.min(cfg.max_procs).min(512) {
                let meas = imb::sim::simulate(m, imb::Benchmark::Alltoall, p, cfg.imb_bytes);
                points.push((p as f64, meas.t_max_us()));
                p *= 2;
            }
            Series {
                name: m.name.to_string(),
                points,
            }
        })
        .collect();
    Figure {
        id: "ext_future_alltoall",
        title: "[extension] 1 MB Alltoall on the announced follow-up systems".into(),
        xlabel: "processes".into(),
        ylabel: "time per call (us)".into(),
        series,
    }
}

#[cfg(test)]
mod future_tests {
    use super::*;

    #[test]
    fn future_figure_has_six_series() {
        let cfg = FigureConfig::quick();
        let fig = future_systems_figure(&cfg);
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            assert!(!s.points.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn gige_cluster_is_slowest_followup() {
        let cfg = FigureConfig::quick();
        let fig = future_systems_figure(&cfg);
        let at16 = |name: &str| {
            fig.series
                .iter()
                .find(|s| s.name.contains(name))
                .and_then(|s| s.points.iter().find(|p| p.0 == 16.0))
                .map(|p| p.1)
        };
        let gige = at16("GigE").expect("gige point");
        for other in ["Blue Gene", "XT4", "POWER5"] {
            if let Some(t) = at16(other) {
                assert!(gige > t, "GigE {gige} vs {other} {t}");
            }
        }
    }
}
