//! The paper's ratio-based analysis (Section 4.1): communication/
//! computation balance and the HPL-normalised cross-benchmark comparison
//! of Fig. 5 / Table 3.

use hpcc::HpccSummary;
use machines::Machine;

/// One point of the balance sweeps behind Figs. 1-4.
#[derive(Clone, Copy, Debug)]
pub struct BalancePoint {
    /// CPUs.
    pub cpus: usize,
    /// G-HPL in Gflop/s.
    pub hpl_gflops: f64,
    /// Accumulated random-ring bandwidth (p x per-CPU), GB/s.
    pub accum_ring_bw: f64,
    /// Random-ring bandwidth / HPL, in Bytes per kiloflop (Fig. 2's unit).
    pub b_per_kflop: f64,
    /// Accumulated EP-STREAM copy (p x per-CPU), GB/s.
    pub accum_stream: f64,
    /// STREAM copy / HPL, Bytes per flop (Fig. 4's unit).
    pub stream_b_per_flop: f64,
}

/// Computes the balance point from a suite summary.
pub fn balance_point(s: &HpccSummary) -> BalancePoint {
    let p = s.cpus as f64;
    let hpl_flops = s.ghpl * 1e9;
    let ring_bytes = s.ring_bw * 1e9 * p;
    let stream_bytes = s.stream_copy * 1e9 * p;
    BalancePoint {
        cpus: s.cpus,
        hpl_gflops: s.ghpl,
        accum_ring_bw: ring_bytes / 1e9,
        b_per_kflop: ring_bytes / (hpl_flops / 1e3),
        accum_stream: stream_bytes / 1e9,
        stream_b_per_flop: stream_bytes / hpl_flops,
    }
}

/// The eight HPL-normalised columns of Fig. 5, in the paper's order.
pub const KIVIAT_COLUMNS: [&str; 8] = [
    "G-HPL",
    "G-EP DGEMM/G-HPL",
    "G-FFTE/G-HPL",
    "G-Ptrans/G-HPL",
    "G-StreamCopy/G-HPL",
    "RandRingBW/PP-HPL",
    "1/RandRingLatency",
    "G-RandomAccess/G-HPL",
];

/// Fig. 5's raw (pre-normalisation) ratio values for one machine at one
/// configuration. Units match Table 3: TF/s, dimensionless, B/F, 1/us,
/// Update/F.
#[derive(Clone, Debug)]
pub struct KiviatRow {
    /// Machine name.
    pub machine: String,
    /// Raw column values.
    pub values: [f64; 8],
}

/// Builds a Kiviat row from a suite summary.
pub fn kiviat_row(machine: &Machine, s: &HpccSummary) -> KiviatRow {
    let p = s.cpus as f64;
    let hpl_flops = s.ghpl * 1e9;
    KiviatRow {
        machine: machine.name.to_string(),
        values: [
            s.ghpl / 1e3,                        // TF/s
            s.ep_dgemm * p / s.ghpl,             // dimensionless
            s.gfft / s.ghpl,                     // dimensionless
            s.ptrans * 1e9 / hpl_flops,          // B/F
            s.stream_copy * 1e9 * p / hpl_flops, // B/F
            s.ring_bw * 1e9 / (hpl_flops / p),   // B/F (per process)
            1.0 / s.ring_latency_us,             // 1/us
            s.gups * 1e9 / hpl_flops,            // Update/F
        ],
    }
}

/// Normalises each column by its maximum, as Fig. 5 does ("each of the
/// columns is normalized with respect to the largest value of the
/// column, i.e., the best value is always 1"). Returns the normalised
/// rows plus the per-column maxima (= Table 3).
pub fn normalise(rows: &[KiviatRow]) -> (Vec<KiviatRow>, [f64; 8]) {
    let mut maxima = [0.0f64; 8];
    for row in rows {
        for (m, v) in maxima.iter_mut().zip(row.values.iter()) {
            *m = m.max(*v);
        }
    }
    let normalised = rows
        .iter()
        .map(|r| KiviatRow {
            machine: r.machine.clone(),
            values: std::array::from_fn(|i| {
                if maxima[i] > 0.0 {
                    r.values[i] / maxima[i]
                } else {
                    0.0
                }
            }),
        })
        .collect();
    (normalised, maxima)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(cpus: usize) -> HpccSummary {
        HpccSummary {
            cpus,
            ghpl: 100.0,
            ptrans: 4.0,
            gups: 0.005,
            stream_copy: 2.0,
            stream_triad: 2.1,
            gfft: 2.0,
            ep_dgemm: 6.0,
            ring_bw: 0.1,
            ring_latency_us: 5.0,
            all_passed: true,
        }
    }

    #[test]
    fn balance_point_units() {
        let b = balance_point(&summary(16));
        assert_eq!(b.cpus, 16);
        assert!((b.accum_ring_bw - 1.6).abs() < 1e-12);
        // 1.6 GB/s over 100 Gflop/s = 16 B/kF.
        assert!((b.b_per_kflop - 16.0).abs() < 1e-9);
        assert!((b.accum_stream - 32.0).abs() < 1e-12);
        assert!((b.stream_b_per_flop - 0.32).abs() < 1e-12);
    }

    #[test]
    fn kiviat_row_values() {
        let m = machines::systems::dell_xeon();
        let r = kiviat_row(&m, &summary(16));
        assert!((r.values[0] - 0.1).abs() < 1e-12, "TF/s");
        assert!((r.values[1] - 0.96).abs() < 1e-12, "DGEMM ratio");
        assert!((r.values[6] - 0.2).abs() < 1e-12, "1/latency");
    }

    #[test]
    fn normalisation_makes_best_value_one() {
        let m = machines::systems::dell_xeon();
        let mut r1 = kiviat_row(&m, &summary(16));
        let mut r2 = kiviat_row(&m, &summary(16));
        r1.values[3] = 2.0;
        r2.values[3] = 4.0;
        let (norm, maxima) = normalise(&[r1, r2]);
        assert_eq!(maxima[3], 4.0);
        assert_eq!(norm[0].values[3], 0.5);
        assert_eq!(norm[1].values[3], 1.0);
        // Every column's max is 1 after normalisation.
        for i in 0..8 {
            let best = norm.iter().map(|r| r.values[i]).fold(0.0, f64::max);
            assert!((best - 1.0).abs() < 1e-12);
        }
    }
}
