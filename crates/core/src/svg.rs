//! Dependency-free SVG line-chart rendering for regenerated figures.
//!
//! The paper's figures are log-scale line charts (time or bandwidth
//! versus processor count or message size); this module renders a
//! [`Figure`] into a self-contained SVG with log-log axes, per-series
//! colours and markers, a legend, and tick labels — so `out/` contains
//! viewable plots next to the CSVs.

use std::fmt::Write as _;

use crate::report::Figure;

/// Canvas layout constants (pixels).
const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 520.0;
const MARGIN_L: f64 = 80.0;
const MARGIN_R: f64 = 250.0; // room for the legend
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 60.0;

/// A qualitative palette (colour-blind-safe Okabe-Ito).
const COLORS: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// Axis scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (requires positive data).
    Log,
}

/// Renders `figure` as an SVG document. Axis scales are chosen
/// automatically: logarithmic when the data spans more than 1.5 decades
/// and is strictly positive (the shape of every figure in the paper).
pub fn render(figure: &Figure) -> String {
    let (xs, ys): (Vec<f64>, Vec<f64>) = figure
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .unzip();
    let x_scale = auto_scale(&xs);
    let y_scale = auto_scale(&ys);
    render_scaled(figure, x_scale, y_scale)
}

fn auto_scale(v: &[f64]) -> Scale {
    let (min, max) = bounds(v);
    if min > 0.0 && max / min > 30.0 {
        Scale::Log
    } else {
        Scale::Linear
    }
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in v {
        min = min.min(x);
        max = max.max(x);
    }
    if !min.is_finite() || !max.is_finite() {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

/// Renders with explicit axis scales.
pub fn render_scaled(figure: &Figure, x_scale: Scale, y_scale: Scale) -> String {
    let (xs, ys): (Vec<f64>, Vec<f64>) = figure
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .unzip();
    let (x0, x1) = pad_domain(bounds(&xs), x_scale);
    let (y0, y1) = pad_domain(bounds(&ys), y_scale);

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + frac(x, x0, x1, x_scale) * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - frac(y, y0, y1, y_scale)) * plot_h;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = writeln!(
        out,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );

    // Title and axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="28" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        escape(&figure.title)
    );
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 14.0,
        escape(&figure.xlabel)
    );
    let _ = writeln!(
        out,
        r#"<text x="18" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(&figure.ylabel)
    );

    // Frame + grid + ticks.
    let _ = writeln!(
        out,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>"##
    );
    for t in ticks(x0, x1, x_scale) {
        let x = px(t);
        let _ = writeln!(
            out,
            r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 16.0,
            tick_label(t)
        );
    }
    for t in ticks(y0, y1, y_scale) {
        let y = py(t);
        let _ = writeln!(
            out,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{}</text>"#,
            MARGIN_L - 6.0,
            y + 3.5,
            tick_label(t)
        );
    }

    // Series.
    for (i, s) in figure.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        if s.points.is_empty() {
            continue;
        }
        let path: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(k, &(x, y))| {
                format!(
                    "{}{:.1},{:.1}",
                    if k == 0 { "M" } else { "L" },
                    px(x),
                    py(y)
                )
            })
            .collect();
        let _ = writeln!(
            out,
            r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            path.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = writeln!(
                out,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.6" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 + i as f64 * 18.0;
        let lx = WIDTH - MARGIN_R + 16.0;
        let _ = writeln!(
            out,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2.5"/>"#,
            lx + 22.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 28.0,
            ly + 3.5,
            escape(&s.name)
        );
    }

    out.push_str("</svg>\n");
    out
}

/// Fraction of the way along the axis domain.
fn frac(v: f64, lo: f64, hi: f64, scale: Scale) -> f64 {
    let f = match scale {
        Scale::Linear => {
            if hi > lo {
                (v - lo) / (hi - lo)
            } else {
                0.5
            }
        }
        Scale::Log => {
            if hi > lo && lo > 0.0 && v > 0.0 {
                (v.log10() - lo.log10()) / (hi.log10() - lo.log10())
            } else {
                0.5
            }
        }
    };
    f.clamp(0.0, 1.0)
}

/// Pads the data bounds so points don't sit on the frame.
fn pad_domain((lo, hi): (f64, f64), scale: Scale) -> (f64, f64) {
    match scale {
        Scale::Linear => {
            let span = (hi - lo).max(1e-12);
            ((lo - 0.05 * span).min(0.0_f64.max(lo)), hi + 0.05 * span)
        }
        Scale::Log => (lo / 1.5, hi * 1.5),
    }
}

/// Tick positions: decades for log axes, ~6 round steps for linear.
fn ticks(lo: f64, hi: f64, scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Log => {
            let mut t = Vec::new();
            let mut d = lo.max(1e-30).log10().floor();
            while 10f64.powf(d) <= hi * 1.0001 {
                let v = 10f64.powf(d);
                if v >= lo * 0.9999 {
                    t.push(v);
                }
                d += 1.0;
            }
            if t.len() < 2 {
                t = vec![lo, hi];
            }
            t
        }
        Scale::Linear => {
            let span = (hi - lo).max(1e-12);
            let step = 10f64.powf((span / 5.0).log10().floor());
            let step = if span / step > 10.0 {
                step * 5.0
            } else if span / step > 5.0 {
                step * 2.0
            } else {
                step
            };
            let mut t = Vec::new();
            let mut v = (lo / step).floor() * step;
            while v <= hi + step * 0.5 {
                if v >= lo - step * 0.5 {
                    t.push(v);
                }
                v += step;
            }
            t
        }
    }
}

fn tick_label(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e5 || v.abs() < 1e-2 {
        format!("1e{}", v.abs().log10().round() as i64)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    fn fig() -> Figure {
        Figure {
            id: "t",
            title: "Test <figure> & more".into(),
            xlabel: "procs".into(),
            ylabel: "us".into(),
            series: vec![
                Series {
                    name: "A".into(),
                    points: vec![(2.0, 10.0), (4.0, 100.0), (8.0, 1000.0)],
                },
                Series {
                    name: "B".into(),
                    points: vec![(2.0, 5.0), (8.0, 50000.0)],
                },
            ],
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render(&fig());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2, "one path per series");
        assert_eq!(svg.matches("<circle").count(), 5, "one marker per point");
        assert!(svg.contains("Test &lt;figure&gt; &amp; more"));
    }

    #[test]
    fn auto_scale_picks_log_for_wide_ranges() {
        assert_eq!(auto_scale(&[1.0, 10.0, 10000.0]), Scale::Log);
        assert_eq!(auto_scale(&[5.0, 6.0, 9.0]), Scale::Linear);
        assert_eq!(
            auto_scale(&[-1.0, 1000.0]),
            Scale::Linear,
            "negatives stay linear"
        );
    }

    #[test]
    fn fractions_are_clamped_and_monotone() {
        let f1 = frac(1.0, 1.0, 100.0, Scale::Log);
        let f2 = frac(10.0, 1.0, 100.0, Scale::Log);
        let f3 = frac(100.0, 1.0, 100.0, Scale::Log);
        assert_eq!(f1, 0.0);
        assert!((f2 - 0.5).abs() < 1e-12);
        assert_eq!(f3, 1.0);
        assert_eq!(frac(1000.0, 1.0, 100.0, Scale::Log), 1.0, "clamped");
    }

    #[test]
    fn log_ticks_are_decades() {
        let t = ticks(2.0, 3000.0, Scale::Log);
        assert_eq!(t, vec![10.0, 100.0, 1000.0]);
    }

    #[test]
    fn linear_ticks_are_round() {
        let t = ticks(0.0, 10.0, Scale::Linear);
        assert!(t.contains(&0.0) && t.contains(&10.0));
        assert!(t.len() >= 4 && t.len() <= 12);
    }

    #[test]
    fn empty_series_do_not_break_rendering() {
        let mut f = fig();
        f.series.push(Series {
            name: "empty".into(),
            points: vec![],
        });
        let svg = render(&f);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn real_figure_renders() {
        let cfg = crate::figures::FigureConfig::quick();
        let fig = crate::figures::fig06(&cfg);
        let svg = render(&fig);
        assert!(svg.len() > 2000);
        assert_eq!(svg.matches("<path").count(), fig.series.len());
    }
}
