//! `hpcbench` — the evaluation harness reproducing Saini et al.,
//! *"Performance evaluation of supercomputers using HPCC and IMB
//! Benchmarks"* (J. Computer and System Sciences 74, 2008).
//!
//! Layers:
//!
//! * [`registry`] declares the unified workload table — one entry per
//!   HPCC component and per IMB benchmark — wiring each to its native,
//!   simulated and virtual execution paths through the `harness` crate.
//! * [`figures`] regenerates every table and figure of the paper by
//!   executing [`harness::RunPlan`] campaigns against the registry and
//!   projecting the resulting [`harness::Record`] streams.
//! * [`ratios`] implements the paper's ratio-based analysis (Section
//!   4.1): communication/computation balance and the HPL-normalised
//!   Kiviat comparison.
//! * [`report`] renders figures and tables to CSV and markdown;
//!   [`output`] writes the full artefact set to a directory.
//!
//! Native benchmark execution (real runs on this host) lives in the
//! `hpcc` and `imb` crates; this crate consumes their record streams.
//!
//! ```
//! use hpcbench::figures::{fig06, FigureConfig};
//!
//! let fig = fig06(&FigureConfig::quick());
//! assert!(fig.to_csv().lines().count() > 5);
//! ```

pub mod extensions;
pub mod figures;
pub mod output;
pub mod ratios;
pub mod registry;
pub mod report;
pub mod svg;

pub use registry::registry;
pub use report::{Figure, Series, Table};
