//! `hpcbench` — the evaluation harness reproducing Saini et al.,
//! *"Performance evaluation of supercomputers using HPCC and IMB
//! Benchmarks"* (J. Computer and System Sciences 74, 2008).
//!
//! Three layers:
//!
//! * [`figures`] regenerates every table and figure of the paper from the
//!   machine models (`machines`) and the benchmark simulations
//!   (`hpcc::sim`, `imb::sim`).
//! * [`ratios`] implements the paper's ratio-based analysis (Section
//!   4.1): communication/computation balance and the HPL-normalised
//!   Kiviat comparison.
//! * [`report`] renders figures and tables to CSV and markdown.
//!
//! Native benchmark execution (real runs on this host) lives in the
//! `hpcc` and `imb` crates; this crate consumes their summaries.
//!
//! ```
//! use hpcbench::figures::{fig06, FigureConfig};
//!
//! let fig = fig06(&FigureConfig::quick());
//! assert!(fig.to_csv().lines().count() > 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extensions;
pub mod figures;
pub mod ratios;
pub mod report;
pub mod svg;

pub use report::{Figure, Series, Table};
