//! A minimal, API-compatible subset of the `proptest` crate, so the
//! workspace's property tests build and run without network access to
//! crates.io.
//!
//! Supported surface (exactly what the repo's tests use):
//! `proptest!` with an optional `#![proptest_config(..)]` header,
//! `prop_assert!` / `prop_assert_eq!`, integer and float range
//! strategies, tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY` and `Strategy::prop_map`.
//!
//! Sampling is deterministic: every case derives its RNG seed from the
//! test's module path, name and case index, so failures reproduce
//! across runs without a persistence file. There is no shrinking — a
//! failing case panics with the sampled inputs left in the assert
//! message.

// Vendored stand-in: item docs live with the real crate's API.
#![allow(missing_docs)]
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`ProptestConfig::with_cases` subset).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xorshift64* RNG used for sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*; state is never zero (seeded via splitmix64 + 1).
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        // Modulo bias is irrelevant at test-range magnitudes.
        self.next_u64() % bound
    }
}

/// Builds the deterministic RNG for one test case. Public for the
/// `proptest!` macro expansion; not part of the mimicked API.
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index via splitmix64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    TestRng {
        state: (z ^ (z >> 31)) | 1,
    }
}

/// A source of random values of one type (`proptest::strategy::Strategy`
/// subset: no value trees, no shrinking).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Strategy sub-modules mirroring `proptest::prelude::prop`.
pub mod prop {
    /// `prop::collection` subset.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a length
        /// drawn uniformly from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `prop::collection::vec(element, length_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// `prop::bool` subset.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniform boolean strategy.
        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assertion macros: without shrinking these are plain asserts.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// The `proptest!` block macro: expands each contained function into a
/// `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..5.0).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = (1usize..=8).sample(&mut rng);
            assert!((1..=8).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let strat = prop::collection::vec((0u64..100, 0usize..10), 1..20);
        let a = strat.sample(&mut crate::test_rng("t", 3));
        let b = strat.sample(&mut crate::test_rng("t", 3));
        let c = strat.sample(&mut crate::test_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different cases should differ (overwhelmingly)");
    }

    #[test]
    fn bool_any_hits_both_values() {
        let mut rng = crate::test_rng("bools", 0);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[prop::bool::ANY.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn prop_map_transforms() {
        let doubled = (1u32..10).prop_map(|v| v * 2);
        let mut rng = crate::test_rng("map", 0);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases((a, b) in (0u64..50, 1u64..50), v in prop::collection::vec(0i32..5, 0..4)) {
            prop_assert!(a < 50 && b >= 1);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
