//! `ClusterSim`: prices communication schedules and compute phases
//! against a machine model.
//!
//! Ranks map onto SMP nodes in blocks (`rank / cpus_per_node`), exactly as
//! `mpirun` fills nodes. Intra-node messages take the shared-memory fast
//! path (per-pair pipe bandwidth plus a per-node aggregate memory engine);
//! inter-node messages go through the [`simnet::Fabric`] with NIC and link
//! contention. Reduction arithmetic is priced at a memory-bandwidth-derived
//! rate — which is why the vector machines of the paper sit an order of
//! magnitude above the scalar clusters on the 1 MB Reduce/Allreduce
//! figures.

use std::cell::RefCell;

use simnet::schedule::{execute, P2pCost};
use simnet::{Fabric, Resource, Schedule, Time};

use crate::model::Machine;

struct Resources {
    fabric: Fabric,
    /// Per-node aggregate shared-memory copy engine.
    shm: Vec<Resource>,
}

/// A simulated cluster: one machine model instantiated at a rank count.
pub struct ClusterSim {
    machine: Machine,
    nranks: usize,
    res: RefCell<Resources>,
    clocks: RefCell<Vec<Time>>,
}

impl ClusterSim {
    /// Builds a simulation of `machine` running `nranks` MPI ranks on
    /// the optimised MPI path (what the IMB runs of the paper used).
    ///
    /// Panics if `nranks` exceeds the modelled installation's size.
    pub fn new(machine: &Machine, nranks: usize) -> ClusterSim {
        ClusterSim::build(machine, nranks, false)
    }

    /// Like [`new`](Self::new), but NICs run at the plain-buffer MPI rate
    /// (`plain_link_bw`) — the path HPCC's communication benchmarks
    /// exercise.
    pub fn new_plain(machine: &Machine, nranks: usize) -> ClusterSim {
        ClusterSim::build(machine, nranks, true)
    }

    fn build(machine: &Machine, nranks: usize, plain: bool) -> ClusterSim {
        assert!(nranks > 0, "need at least one rank");
        assert!(
            nranks <= machine.max_cpus,
            "{} supports at most {} CPUs, asked for {nranks}",
            machine.name,
            machine.max_cpus
        );
        let nodes = machine.nodes_for(nranks);
        // Copy traffic is read + write: half the node bandwidth is the
        // effective aggregate copy rate.
        let shm_bw = machine.node.mem_bw_node / 2.0;
        let fabric = if plain {
            machine.plain_fabric(nranks)
        } else {
            machine.fabric(nranks)
        };
        let mut m = machine.clone();
        if plain {
            // Sender-side pacing in `p2p` follows the NIC rate.
            m.net.link_bw = m.net.plain_link_bw;
        }
        ClusterSim {
            machine: m,
            nranks,
            res: RefCell::new(Resources {
                fabric,
                shm: (0..nodes).map(|_| Resource::new(shm_bw)).collect(),
            }),
            clocks: RefCell::new(vec![Time::ZERO; nranks]),
        }
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// SMP node hosting `rank` (block mapping).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.machine.node.cpus
    }

    /// Current virtual time (the maximum rank clock).
    pub fn time(&self) -> Time {
        self.clocks
            .borrow()
            .iter()
            .copied()
            .fold(Time::ZERO, Time::max)
    }

    /// Resets all clocks and resource timelines.
    pub fn reset(&self) {
        self.res.borrow_mut().fabric.reset();
        for r in &mut self.res.borrow_mut().shm {
            r.reset();
        }
        for c in self.clocks.borrow_mut().iter_mut() {
            *c = Time::ZERO;
        }
    }

    /// Prices one point-to-point message.
    fn p2p(&self, res: &mut Resources, src: usize, dst: usize, bytes: u64, ready: Time) -> P2pCost {
        let (sn, dn) = (self.node_of(src), self.node_of(dst));
        let net = &self.machine.net;
        if sn == dn {
            // Shared-memory path: per-pair pipe rate, per-node aggregate
            // engine, small latency.
            let (s, e) = res.shm[sn].reserve(ready, bytes);
            let pipe = Time::from_secs(bytes as f64 / net.intra_bw);
            let lat = Time::from_us(net.intra_latency_us);
            P2pCost {
                sender_done: s + pipe,
                arrival: e.max(s + pipe) + lat,
            }
        } else {
            let inj_ready = ready + Time::from_us(net.overhead_us);
            let arrival = res.fabric.transfer(sn, dn, bytes, inj_ready);
            // A single message cannot exceed the per-stream wire rate,
            // even on an idle fabric.
            let pipe = inj_ready
                + Time::from_secs(bytes as f64 / net.per_msg_bw)
                + res.fabric.latency(sn, dn);
            P2pCost {
                sender_done: inj_ready + Time::from_secs(bytes as f64 / net.link_bw),
                arrival: arrival.max(pipe),
            }
        }
    }

    /// Prices one point-to-point message without touching the rank
    /// clocks — the entry point for virtual execution, where the `mp`
    /// runtime owns the clocks.
    pub fn price_p2p(&self, src: usize, dst: usize, bytes: u64, ready: Time) -> P2pCost {
        self.p2p(&mut self.res.borrow_mut(), src, dst, bytes, ready)
    }

    /// Rate at which one CPU streams reduction arithmetic, bytes/s.
    /// A fold reads operand + accumulator and writes the accumulator:
    /// 3 bytes of traffic per operand byte against a 2-bytes-per-byte
    /// copy rate, hence 2/3 of the STREAM-copy figure.
    pub fn reduce_bw(&self) -> f64 {
        self.machine.node.stream_bw * 2.0 / 3.0
    }

    /// Replays `schedule` from the current clocks; returns the completion
    /// time (maximum clock after the schedule).
    pub fn run(&self, schedule: &Schedule) -> Time {
        assert_eq!(schedule.nranks, self.nranks, "schedule rank count mismatch");
        let mut clocks = self.clocks.borrow_mut();
        let reduce_bw = self.reduce_bw();
        execute(
            schedule,
            &mut clocks,
            |src, dst, bytes, ready| self.p2p(&mut self.res.borrow_mut(), src, dst, bytes, ready),
            |_rank, bytes, start| start + Time::from_secs(bytes as f64 / reduce_bw),
        )
    }

    /// Replays `schedule` on a fresh cluster state and returns its
    /// duration.
    pub fn run_fresh(&self, schedule: &Schedule) -> Time {
        self.reset();
        self.run(schedule)
    }

    /// Advances `rank`'s clock by a compute phase of `flops` floating
    /// point operations at `eff` fraction of peak.
    pub fn compute_flops(&self, rank: usize, flops: f64, eff: f64) {
        let rate = self.machine.node.peak_gflops * 1e9 * eff;
        self.advance(rank, Time::from_secs(flops / rate));
    }

    /// Advances `rank`'s clock by a memory-streaming phase of `bytes`.
    pub fn compute_stream(&self, rank: usize, bytes: f64) {
        self.advance(rank, Time::from_secs(bytes / self.machine.node.stream_bw));
    }

    /// Advances `rank`'s clock by `dt`.
    pub fn advance(&self, rank: usize, dt: Time) {
        let mut clocks = self.clocks.borrow_mut();
        clocks[rank] += dt;
    }

    /// Synchronises all clocks to the current maximum (an idealised,
    /// free barrier used between modelled benchmark phases).
    pub fn sync(&self) -> Time {
        let t = self.time();
        for c in self.clocks.borrow_mut().iter_mut() {
            *c = t;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{cray_opteron, dell_xeon, nec_sx8};
    use simnet::{Round, Transfer};

    fn one_transfer(n: usize, src: usize, dst: usize, bytes: u64) -> Schedule {
        let mut s = Schedule::new(n);
        s.push(Round::of(vec![Transfer { src, dst, bytes }]));
        s
    }

    #[test]
    fn intra_node_is_faster_than_inter_node() {
        let m = nec_sx8();
        let sim = ClusterSim::new(&m, 16);
        let intra = sim.run_fresh(&one_transfer(16, 0, 1, 1 << 20));
        let inter = sim.run_fresh(&one_transfer(16, 0, 8, 1 << 20));
        assert!(intra < inter, "{intra} !< {inter}");
    }

    #[test]
    fn sx8_two_cpu_sendrecv_anchor() {
        // Paper Fig. 13: 47.4 GB/s reported for the 2-processor Sendrecv
        // (IMB counts 2 x message bytes). Check within 15%.
        let m = nec_sx8();
        let sim = ClusterSim::new(&m, 2);
        let bytes = 1u64 << 20;
        let mut s = Schedule::new(2);
        s.push(Round::of(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes,
            },
            Transfer {
                src: 1,
                dst: 0,
                bytes,
            },
        ]));
        let t = sim.run_fresh(&s);
        let reported = 2.0 * bytes as f64 / t.as_secs();
        assert!(
            (reported - 47.4e9).abs() / 47.4e9 < 0.15,
            "sendrecv bandwidth {:.1} GB/s vs paper 47.4",
            reported / 1e9
        );
    }

    #[test]
    fn vector_machine_reduces_an_order_of_magnitude_faster() {
        let fast = ClusterSim::new(&nec_sx8(), 2).reduce_bw();
        let slow = ClusterSim::new(&dell_xeon(), 2).reduce_bw();
        assert!(fast > 10.0 * slow);
    }

    #[test]
    fn half_duplex_myrinet_hurts_bidirectional_traffic() {
        let m = cray_opteron();
        let sim = ClusterSim::new(&m, 4);
        let bytes = 1u64 << 20;
        // Node 0 <-> node 1 simultaneous exchange (ranks 0,1 on node 0).
        let mut s = Schedule::new(4);
        s.push(Round::of(vec![
            Transfer {
                src: 0,
                dst: 2,
                bytes,
            },
            Transfer {
                src: 2,
                dst: 0,
                bytes,
            },
        ]));
        let t_both = sim.run_fresh(&s);
        let t_one = sim.run_fresh(&one_transfer(4, 0, 2, bytes));
        // Half duplex: the two directions serialise almost fully.
        assert!(t_both.as_secs() > 1.7 * t_one.as_secs());
    }

    #[test]
    fn clocks_accumulate_across_runs_until_reset() {
        let m = dell_xeon();
        let sim = ClusterSim::new(&m, 2);
        let s = one_transfer(2, 0, 1, 1000);
        let t1 = sim.run(&s);
        let t2 = sim.run(&s);
        assert!(t2 > t1);
        sim.reset();
        assert_eq!(sim.time(), Time::ZERO);
    }

    #[test]
    fn compute_charging() {
        let m = dell_xeon();
        let sim = ClusterSim::new(&m, 2);
        sim.compute_flops(0, 7.2e9, 1.0); // exactly one second at peak
        assert!((sim.time().as_secs() - 1.0).abs() < 1e-9);
        sim.reset();
        sim.compute_stream(1, m.node.stream_bw);
        assert!((sim.time().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sync_aligns_clocks() {
        let m = dell_xeon();
        let sim = ClusterSim::new(&m, 4);
        sim.advance(2, Time::from_secs(0.5));
        let t = sim.sync();
        assert_eq!(t, Time::from_secs(0.5));
        sim.advance(0, Time::from_secs(0.1));
        assert!((sim.time().as_secs() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "supports at most")]
    fn rank_count_capped_at_installation_size() {
        ClusterSim::new(&cray_opteron(), 1024);
    }
}
