//! Bridge between the machine models and `mp`'s virtual execution: a
//! thread-safe [`VirtualNet`](mp::VirtualNet) wrapping a [`ClusterSim`],
//! so any real `mp` program can run *on* a modelled machine.

use parking_lot::Mutex;
use simnet::schedule::P2pCost;
use simnet::Time;

use crate::cluster::ClusterSim;
use crate::model::Machine;

/// A `VirtualNet` over one machine model at a fixed rank count.
pub struct SharedClusterNet {
    machine: Machine,
    sim: Mutex<ClusterSim>,
}

impl SharedClusterNet {
    /// Builds the net for `machine` at `nranks` (optimised MPI path).
    pub fn new(machine: &Machine, nranks: usize) -> SharedClusterNet {
        SharedClusterNet {
            machine: machine.clone(),
            sim: Mutex::new(ClusterSim::new(machine, nranks)),
        }
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl mp::VirtualNet for SharedClusterNet {
    fn p2p(&self, src: usize, dst: usize, bytes: u64, ready: Time) -> P2pCost {
        self.sim.lock().price_p2p(src, dst, bytes, ready)
    }

    fn compute(&self, flops: f64, eff: f64) -> Time {
        Time::from_secs(flops / (self.machine.node.peak_gflops * 1e9 * eff))
    }

    fn stream(&self, bytes: f64) -> Time {
        Time::from_secs(bytes / self.machine.node.stream_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{dell_xeon, nec_sx8};

    #[test]
    fn real_program_runs_on_a_modelled_machine() {
        let net = SharedClusterNet::new(&dell_xeon(), 4);
        let (results, clocks) = mp::run_virtual(4, Box::new(net), |comm| {
            let mut x = vec![comm.rank() as f64 + 1.0];
            comm.allreduce(&mut x, mp::Op::Sum);
            x[0]
        });
        assert!(
            results.iter().all(|&v| v == 10.0),
            "data correctness preserved"
        );
        assert!(clocks.iter().all(|c| c.as_us() > 0.0), "time was charged");
    }

    #[test]
    fn faster_machine_finishes_sooner() {
        let time_on = |m: &Machine| {
            let net = SharedClusterNet::new(m, 8);
            let (_, clocks) = mp::run_virtual(8, Box::new(net), |comm| {
                let mut x = vec![1.0f64; 131072]; // 1 MiB
                comm.allreduce(&mut x, mp::Op::Sum);
                comm.v_sync().as_us()
            });
            clocks.iter().map(|c| c.as_us()).fold(0.0, f64::max)
        };
        let sx8 = time_on(&nec_sx8());
        let xeon = time_on(&dell_xeon());
        assert!(sx8 < xeon, "SX-8 {sx8} us !< Xeon {xeon} us");
    }

    #[test]
    fn compute_pricing_uses_the_node_model() {
        let m = dell_xeon();
        let net = SharedClusterNet::new(&m, 2);
        let (_, clocks) = mp::run_virtual(2, Box::new(net), |comm| {
            if comm.rank() == 0 {
                comm.v_compute(7.2e9, 1.0); // exactly 1 s at peak
            }
        });
        assert!((clocks[0].as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(clocks[1].as_secs(), 0.0);
    }
}
