//! Machine model types: everything the simulator needs to know about one
//! of the paper's systems.

use simnet::{Clos, Crossbar, Fabric, FabricParams, FatTree, Hypercube, Time, Topology, Torus3D};

/// Scalar (cache-based) or vector system — the paper's primary taxonomy
/// ("two clear-cut performance clusterings by architectures").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemClass {
    /// Cache-based superscalar processors (Altix, Opteron, Xeon).
    Scalar,
    /// Vector processors (Cray X1, NEC SX-8).
    Vector,
}

/// Interconnect family, mirroring Table 2's "Network topology" column.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologyKind {
    /// Fat-tree with the given switch arity, oversubscription factor and
    /// the first tree level it applies from (SGI NUMALINK, InfiniBand).
    FatTree {
        /// Switch arity.
        arity: usize,
        /// Oversubscription factor at and above `blocking_from`.
        blocking: f64,
        /// First edge level the blocking applies to.
        blocking_from: usize,
    },
    /// Binary hypercube (Cray X1's "modified torus, called 4D-hypercube").
    Hypercube,
    /// Single-stage full crossbar (NEC IXS).
    Crossbar,
    /// 3-D torus (IBM Blue Gene/P, Cray XT4 SeaStar — the follow-up
    /// systems of the paper's conclusion).
    Torus3D,
    /// Three-stage Clos of full-crossbar switches (Myrinet).
    Clos {
        /// Port count of each constituent crossbar switch.
        radix: usize,
        /// Number of spine switches (`radix/2` is non-blocking; fewer
        /// oversubscribes the core, as measured Myrinet installations
        /// were).
        spine: usize,
    },
}

impl TopologyKind {
    /// Builds the topology instance for `nodes` attached nodes.
    pub fn build(&self, nodes: usize) -> Box<dyn Topology> {
        match *self {
            TopologyKind::FatTree {
                arity,
                blocking,
                blocking_from,
            } => Box::new(FatTree::with_blocking_from(
                nodes,
                arity,
                blocking,
                blocking_from,
            )),
            TopologyKind::Hypercube => Box::new(Hypercube::new(nodes)),
            TopologyKind::Torus3D => Box::new(Torus3D::new(nodes)),
            TopologyKind::Crossbar => Box::new(Crossbar::new(nodes)),
            TopologyKind::Clos { radix, spine } => Box::new(Clos::with_spine(nodes, radix, spine)),
        }
    }
}

/// Node (processor + memory subsystem) model.
#[derive(Clone, Copy, Debug)]
pub struct NodeModel {
    /// CPUs per SMP node (Table 2 "CPUs/node").
    pub cpus: usize,
    /// Core clock in GHz (Table 2 "Clock").
    pub clock_ghz: f64,
    /// Peak double-precision Gflop/s per CPU.
    pub peak_gflops: f64,
    /// Sustainable STREAM-copy bandwidth per CPU with all CPUs active,
    /// bytes/s (counted IMB-style: payload bytes, read+write included in
    /// the rate).
    pub stream_bw: f64,
    /// Aggregate node memory bandwidth, bytes/s.
    pub mem_bw_node: f64,
    /// Fraction of peak the DGEMM kernel sustains (EP-DGEMM).
    pub dgemm_eff: f64,
    /// Single-node HPL efficiency (fraction of peak); network effects on
    /// top of this come from the fabric simulation.
    pub hpl_eff: f64,
    /// Effective memory latency for dependent random accesses, in
    /// microseconds (drives the RandomAccess model).
    pub mem_latency_us: f64,
    /// Random-access update concurrency the memory system sustains
    /// (vector gather/scatter pipes >> scalar cache systems).
    pub random_concurrency: f64,
}

/// Interconnect model.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Topology family.
    pub topology: TopologyKind,
    /// NIC injection/ejection bandwidth per node per direction, bytes/s.
    pub link_bw: f64,
    /// Whether injection and ejection are independent (full duplex).
    pub nic_duplex: bool,
    /// Inter-node zero-byte MPI latency, microseconds.
    pub mpi_latency_us: f64,
    /// Extra latency per switch hop, microseconds.
    pub per_hop_us: f64,
    /// Sender-side software overhead per message, microseconds.
    pub overhead_us: f64,
    /// Intra-node (shared-memory) MPI latency, microseconds.
    pub intra_latency_us: f64,
    /// Intra-node per-pair MPI bandwidth, bytes/s per direction.
    pub intra_bw: f64,
    /// Ceiling on a *single message's* wire rate, bytes/s — on some
    /// systems (Cray X1) one MPI stream cannot saturate the node's
    /// aggregate injection bandwidth. Set equal to `link_bw` when a
    /// single pair can.
    pub per_msg_bw: f64,
    /// Per-node bandwidth of the *plain-buffer* MPI path, bytes/s per
    /// direction. Equal to `link_bw` on most systems; lower on the NEC
    /// SX-8, where the paper notes IMB was run from `MPI_Alloc_mem`
    /// global memory ("the MPI library on the NEC SX-8 is optimized for
    /// global memory") while the HPCC ring used ordinary buffers.
    pub plain_link_bw: f64,
}

/// A complete machine model: one of the five systems of the paper
/// (plus variants such as Altix with NUMALINK3).
#[derive(Clone, Debug)]
pub struct Machine {
    /// Display name ("NEC SX-8", ...).
    pub name: &'static str,
    /// Scalar or vector.
    pub class: SystemClass,
    /// Node model.
    pub node: NodeModel,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Largest CPU count the real installation supported (caps sweeps).
    pub max_cpus: usize,
}

impl Machine {
    /// Number of SMP nodes needed for `cpus` ranks (block mapping).
    pub fn nodes_for(&self, cpus: usize) -> usize {
        cpus.div_ceil(self.node.cpus)
    }

    /// Peak Gflop/s of a `cpus`-rank configuration.
    pub fn peak_gflops(&self, cpus: usize) -> f64 {
        self.node.peak_gflops * cpus as f64
    }

    /// Builds a fabric for `cpus` ranks (optimised MPI path).
    pub fn fabric(&self, cpus: usize) -> Fabric {
        self.fabric_with_nic(cpus, self.net.link_bw)
    }

    /// Builds a fabric whose NICs run at the plain-buffer MPI rate.
    pub fn plain_fabric(&self, cpus: usize) -> Fabric {
        self.fabric_with_nic(cpus, self.net.plain_link_bw)
    }

    fn fabric_with_nic(&self, cpus: usize, nic_bw: f64) -> Fabric {
        let nodes = self.nodes_for(cpus).max(1);
        Fabric::new(
            self.net.topology.build(nodes),
            FabricParams {
                link_bw: self.net.link_bw,
                nic_bw,
                nic_duplex: self.net.nic_duplex,
                base_latency: Time::from_us(self.net.mpi_latency_us),
                per_hop_latency: Time::from_us(self.net.per_hop_us),
            },
        )
    }

    /// Sanity-checks the model's parameters; returns the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let n = &self.node;
        let w = &self.net;
        if n.cpus == 0 {
            return Err(format!("{}: zero CPUs per node", self.name));
        }
        for (label, v) in [
            ("clock", n.clock_ghz),
            ("peak", n.peak_gflops),
            ("stream", n.stream_bw),
            ("node mem bw", n.mem_bw_node),
            ("link bw", w.link_bw),
            ("per message bw", w.per_msg_bw),
            ("plain link bw", w.plain_link_bw),
            ("intra bw", w.intra_bw),
            ("random concurrency", n.random_concurrency),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{}: non-positive {label}", self.name));
            }
        }
        for (label, v) in [
            ("dgemm efficiency", n.dgemm_eff),
            ("hpl efficiency", n.hpl_eff),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("{}: {label} outside (0, 1]", self.name));
            }
        }
        if n.stream_bw * n.cpus as f64 > n.mem_bw_node * 1.001 {
            return Err(format!(
                "{}: per-CPU stream bandwidth exceeds the node aggregate",
                self.name
            ));
        }
        if self.max_cpus < n.cpus {
            return Err(format!("{}: max_cpus below one node", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Machine {
        Machine {
            name: "toy",
            class: SystemClass::Scalar,
            node: NodeModel {
                cpus: 2,
                clock_ghz: 1.0,
                peak_gflops: 2.0,
                stream_bw: 1e9,
                mem_bw_node: 2e9,
                dgemm_eff: 0.9,
                hpl_eff: 0.8,
                mem_latency_us: 0.1,
                random_concurrency: 4.0,
            },
            net: NetworkModel {
                topology: TopologyKind::Crossbar,
                link_bw: 1e9,
                nic_duplex: true,
                mpi_latency_us: 5.0,
                per_hop_us: 0.1,
                overhead_us: 0.5,
                intra_latency_us: 1.0,
                intra_bw: 2e9,
                per_msg_bw: 1e9,
                plain_link_bw: 1e9,
            },
            max_cpus: 64,
        }
    }

    #[test]
    fn node_mapping() {
        let m = toy();
        assert_eq!(m.nodes_for(1), 1);
        assert_eq!(m.nodes_for(2), 1);
        assert_eq!(m.nodes_for(3), 2);
        assert_eq!(m.nodes_for(64), 32);
        assert_eq!(m.peak_gflops(4), 8.0);
    }

    #[test]
    fn fabric_construction() {
        let m = toy();
        let f = m.fabric(8);
        assert_eq!(f.num_nodes(), 4);
    }

    #[test]
    fn validation_accepts_sane_models() {
        assert!(toy().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_efficiency() {
        let mut m = toy();
        m.node.hpl_eff = 1.5;
        assert!(m.validate().unwrap_err().contains("hpl efficiency"));
    }

    #[test]
    fn validation_catches_inconsistent_bandwidth() {
        let mut m = toy();
        m.node.stream_bw = 3e9; // 2 CPUs x 3 GB/s > 2 GB/s node
        assert!(m.validate().unwrap_err().contains("exceeds"));
    }

    #[test]
    fn topology_kinds_build() {
        for kind in [
            TopologyKind::FatTree {
                arity: 4,
                blocking: 1.0,
                blocking_from: 1,
            },
            TopologyKind::Hypercube,
            TopologyKind::Crossbar,
            TopologyKind::Torus3D,
            TopologyKind::Clos {
                radix: 16,
                spine: 8,
            },
        ] {
            let t = kind.build(16);
            assert_eq!(t.num_nodes(), 16);
        }
    }
}
