//! The paper's architecture tables as data: Table 1 (SGI Altix BX2
//! parameters) and Table 2 (system characteristics of the five platforms).
//! The figure harness prints these verbatim so the reproduction covers
//! every table in the paper.

use crate::model::{Machine, SystemClass};

/// One row of Table 1: "Architecture parameters of SGI Altix BX2".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Parameter name as printed in the paper.
    pub characteristic: &'static str,
    /// Value for the SGI Altix BX2 installation.
    pub value: &'static str,
}

/// Table 1 of the paper.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        characteristic: "Clock (GHz)",
        value: "1.6",
    },
    Table1Row {
        characteristic: "C-Bricks",
        value: "64",
    },
    Table1Row {
        characteristic: "IX-Bricks",
        value: "4",
    },
    Table1Row {
        characteristic: "Routers",
        value: "128",
    },
    Table1Row {
        characteristic: "Meta Routers",
        value: "48",
    },
    Table1Row {
        characteristic: "CPUs",
        value: "512",
    },
    Table1Row {
        characteristic: "L3-cache (MB)",
        value: "9",
    },
    Table1Row {
        characteristic: "Memory (Tb)",
        value: "1",
    },
    Table1Row {
        characteristic: "R-bricks",
        value: "48",
    },
];

/// One row of Table 2: "System characteristics of the five computing
/// platforms".
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Platform name.
    pub platform: &'static str,
    /// Scalar or vector.
    pub class: SystemClass,
    /// CPUs per node.
    pub cpus_per_node: usize,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Peak Gflop/s per node.
    pub peak_per_node: f64,
    /// Network name.
    pub network: &'static str,
    /// Network topology as named in the paper.
    pub network_topology: &'static str,
    /// Operating system.
    pub operating_system: &'static str,
    /// Installation site.
    pub location: &'static str,
    /// Processor vendor.
    pub processor_vendor: &'static str,
    /// System vendor.
    pub system_vendor: &'static str,
}

/// Table 2 of the paper.
pub fn table2() -> Vec<Table2Row> {
    vec![
        Table2Row {
            platform: "SGI Altix BX2",
            class: SystemClass::Scalar,
            cpus_per_node: 2,
            clock_ghz: 1.6,
            peak_per_node: 12.8,
            network: "NUMALINK4",
            network_topology: "Fat-tree",
            operating_system: "Linux (Suse)",
            location: "NASA (USA)",
            processor_vendor: "Intel",
            system_vendor: "SGI",
        },
        Table2Row {
            platform: "Cray X1",
            class: SystemClass::Vector,
            cpus_per_node: 4,
            clock_ghz: 0.8,
            peak_per_node: 12.8,
            network: "Proprietary",
            network_topology: "4D-hypercube",
            operating_system: "UNICOS",
            location: "NASA (USA)",
            processor_vendor: "Cray",
            system_vendor: "Cray",
        },
        Table2Row {
            platform: "Cray Opteron Cluster",
            class: SystemClass::Scalar,
            cpus_per_node: 2,
            clock_ghz: 2.0,
            peak_per_node: 8.0,
            network: "Myrinet",
            network_topology: "Flat-tree",
            operating_system: "Linux (Redhat)",
            location: "NASA (USA)",
            processor_vendor: "AMD",
            system_vendor: "Cray",
        },
        Table2Row {
            platform: "Dell Xeon Cluster",
            class: SystemClass::Scalar,
            cpus_per_node: 2,
            clock_ghz: 3.6,
            peak_per_node: 14.4,
            network: "InfiniBand",
            network_topology: "Flat-tree",
            operating_system: "Linux (Redhat)",
            location: "NCSA (USA)",
            processor_vendor: "Intel",
            system_vendor: "Dell",
        },
        Table2Row {
            platform: "NEC SX-8",
            class: SystemClass::Vector,
            cpus_per_node: 8,
            clock_ghz: 2.0,
            peak_per_node: 128.0,
            network: "IXS",
            network_topology: "Multi-stage Crossbar",
            operating_system: "Super-UX",
            location: "HLRS (Germany)",
            processor_vendor: "NEC",
            system_vendor: "NEC",
        },
    ]
}

/// Cross-checks a machine model against its Table 2 row; returns the
/// matching row.
pub fn table2_row_for(machine: &Machine) -> Option<Table2Row> {
    table2()
        .into_iter()
        .find(|r| machine.name.starts_with(r.platform))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::paper_systems;

    #[test]
    fn table1_has_nine_rows() {
        assert_eq!(TABLE1.len(), 9);
        assert_eq!(TABLE1[5].characteristic, "CPUs");
        assert_eq!(TABLE1[5].value, "512");
    }

    #[test]
    fn table2_matches_machine_models() {
        for m in paper_systems() {
            let row = table2_row_for(&m).unwrap_or_else(|| panic!("no Table 2 row for {}", m.name));
            assert_eq!(m.node.cpus, row.cpus_per_node, "{}", m.name);
            assert_eq!(m.node.clock_ghz, row.clock_ghz, "{}", m.name);
            // Table 2 prints the Cray X1's *per-MSP* peak (12.8 Gflop/s)
            // in its "Peak/node" column; every other row is a true node
            // aggregate.
            let table_peak = if row.platform == "Cray X1" {
                m.node.peak_gflops
            } else {
                m.node.peak_gflops * m.node.cpus as f64
            };
            assert!(
                (table_peak - row.peak_per_node).abs() < 1e-9,
                "{}: peak/node mismatch",
                m.name
            );
            assert_eq!(m.class, row.class, "{}", m.name);
        }
    }

    #[test]
    fn table2_has_five_platforms() {
        assert_eq!(table2().len(), 5);
    }
}
