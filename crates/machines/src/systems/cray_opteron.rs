//! Cray Opteron Cluster (NASA Ames): 64 nodes x 2 AMD Opteron 2.0 GHz,
//! Myrinet (PCI-X Lanai cards).
//!
//! Paper, Section 2.3: "a processor can perform two floating-point
//! operations each clock with a peak performance of 4 Gflop/s"; 63
//! compute nodes with 2 GB each; Myrinet with cut-through routing and
//! RDMA; "the 8 and 16 port switches are full crossbars". Section 2.4
//! quotes the MPI-level Myrinet numbers used here: 771 MB/s peak
//! bandwidth (PCI-X) and 6.7 us minimum latency.
//!
//! Calibration anchors:
//! * Fig. 2: B/kFlop 24.41 at 64 CPUs, with "a strong decrease ...
//!   especially between 32 CPUs and 64 CPUs".
//! * Fig. 4: EP-STREAM-copy / HPL between 0.84 and 1.07 B/F; "HPL
//!   efficiency decreases down around 20% between 4 CPU and 64 CPU runs".
//! * Figures 7-15: consistently the slowest collective performer
//!   ("worst performance is that of Cray Opteron Cluster (uses Myrinet
//!   network)").

use crate::model::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};

/// The Cray Opteron Cluster model.
pub fn cray_opteron() -> Machine {
    Machine {
        name: "Cray Opteron Cluster",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 2,
            clock_ghz: 2.0,
            peak_gflops: 4.0,
            stream_bw: 3.2e9,
            mem_bw_node: 6.4e9,
            dgemm_eff: 0.90,
            hpl_eff: 0.80,
            // Integrated memory controller: the best scalar latency here.
            mem_latency_us: 0.09,
            random_concurrency: 5.0,
        },
        net: NetworkModel {
            // A thin spine: the measured random-ring bandwidth collapse
            // between 32 and 64 CPUs (Fig. 2: down to 24.41 B/kFlop)
            // implies heavy core oversubscription once traffic leaves a
            // single 16-port crossbar.
            topology: TopologyKind::Clos {
                radix: 16,
                spine: 2,
            },
            link_bw: 0.771e9,
            // PCI-X is a shared half-duplex bus: send and receive
            // contend for the same NIC bandwidth.
            nic_duplex: false,
            mpi_latency_us: 6.7,
            per_hop_us: 0.4,
            overhead_us: 1.0,
            intra_latency_us: 1.1,
            intra_bw: 1.4e9,
            per_msg_bw: 0.771e9,
            plain_link_bw: 0.771e9,
        },
        max_cpus: 128,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_matches_section_2_3() {
        let m = super::cray_opteron();
        m.validate().unwrap();
        assert_eq!(m.node.peak_gflops, 4.0);
        assert_eq!(m.node.cpus, 2);
        assert!(!m.net.nic_duplex, "PCI-X Myrinet is half-duplex");
        // STREAM B/F against peak*hpl_eff lands in the paper's 0.84-1.07.
        let bf = m.node.stream_bw / (m.node.peak_gflops * 1e9 * m.node.hpl_eff);
        assert!((0.8..1.1).contains(&bf), "B/F = {bf}");
    }
}
