//! NEC SX-8 (HLRS Stuttgart): 72 nodes x 8 vector CPUs, IXS crossbar.
//!
//! Paper, Section 2.5: 16 Gflop/s vector peak per CPU at 2 GHz; 64 GB/s
//! memory bandwidth per processor (512 GB/s per node); IXS is a 128x128
//! crossbar with 16 GB/s bidirectional per node link shared by the 8
//! CPUs; "MPI latency is around five microseconds for small messages".
//!
//! Calibration anchors from the measurements:
//! * Fig. 13: 2-processor Sendrecv bandwidth 47.4 GB/s -> intra-node
//!   per-direction MPI bandwidth ~23.7 GB/s.
//! * Fig. 4 / Table 3: EP-STREAM-copy / HPL consistently >= 2.67 B/F
//!   (max column 2.893) -> ~41 GB/s sustained copy per CPU against an
//!   HPL efficiency around 0.88.
//! * Section 4.1.2: "relatively high Random Ring latency compared to the
//!   other systems".

use crate::model::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};

/// The NEC SX-8 model.
pub fn nec_sx8() -> Machine {
    Machine {
        name: "NEC SX-8",
        class: SystemClass::Vector,
        node: NodeModel {
            cpus: 8,
            clock_ghz: 2.0,
            peak_gflops: 16.0,
            stream_bw: 41.0e9,
            mem_bw_node: 512.0e9,
            dgemm_eff: 0.96,
            hpl_eff: 0.88,
            // Vector gather/scatter pipes hide latency behind deep
            // memory concurrency.
            mem_latency_us: 0.4,
            random_concurrency: 128.0,
        },
        net: NetworkModel {
            topology: TopologyKind::Crossbar,
            // IXS: "a peak bi-directional bandwidth of 16 GB/s" per node
            // link, i.e. 8 GB/s each direction, shared by the node's 8
            // CPUs.
            link_bw: 8.0e9,
            nic_duplex: true,
            mpi_latency_us: 5.0,
            per_hop_us: 0.3,
            overhead_us: 1.2,
            intra_latency_us: 1.6,
            intra_bw: 23.7e9,
            // Plain-buffer MPI (the path HPCC's random ring exercises)
            // reaches well under half the IXS rate; calibrated to the
            // paper's accumulated ring bandwidth (Fig. 1: ~0.78 GB/s per
            // CPU at 576 CPUs).
            per_msg_bw: 8.0e9,
            plain_link_bw: 3.2e9,
        },
        max_cpus: 576,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_is_valid_and_matches_table_2() {
        let m = super::nec_sx8();
        m.validate().unwrap();
        assert_eq!(m.node.cpus, 8);
        assert_eq!(m.node.clock_ghz, 2.0);
        // Table 2: peak/node 128 Gflop/s.
        assert_eq!(m.node.peak_gflops * m.node.cpus as f64, 128.0);
        assert_eq!(m.max_cpus, 576);
    }
}
