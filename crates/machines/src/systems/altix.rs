//! SGI Altix BX2 (NASA Ames): 512 Itanium 2 CPUs per box, NUMALINK4
//! fat-tree, single-system-image shared memory.
//!
//! Paper, Section 2.1 and Table 1: 1.6 GHz Itanium 2, two MADDs per clock
//! -> 6.4 Gflop/s peak; "each pair of processors shares a peak bandwidth
//! of 3.2 GB/s"; inter-node peak bandwidth 1.6 GB/s on the BX2 (2x the
//! BX); NUMALINK4 is "a fat-tree topology [whose] bisection bandwidth
//! scales linearly".
//!
//! Calibration anchors:
//! * Section 4.1.2 / 5.1: "the interconnect latency of SGI Altix BX2 is
//!   the best among all the platforms tested" -> 1.1 us MPI latency.
//! * Fig. 2: B/kFlop 203.12 at 506 CPUs (one box) collapsing to 23.18 at
//!   2024 CPUs (four boxes) -> cross-box oversubscription modelled as a
//!   ~9x blocked level above 256 NUMALINK nodes (512 CPUs).
//! * Fig. 2: NUMALINK3 within one box reaches only 93.81 B/kFlop at 440
//!   CPUs, and "Random Ring performance improves by a factor of 4" from
//!   NL3 to NL4 -> the NL3 variant carries a quarter of the NL4 link
//!   bandwidth.
//! * Fig. 4: EP-STREAM-copy / HPL >= 0.36 B/F.

use crate::model::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};

/// A NUMALINK node hosts one processor pair: arity-4 router tree; a
/// 512-CPU box is 256 leaves = 4 levels, so cross-box blocking starts at
/// edge level 4.
const NL_ARITY: usize = 4;
const BOX_LEVEL: usize = 4;

fn altix_node() -> NodeModel {
    NodeModel {
        cpus: 2,
        clock_ghz: 1.6,
        peak_gflops: 6.4,
        stream_bw: 2.0e9,
        mem_bw_node: 7.0e9,
        dgemm_eff: 0.92,
        hpl_eff: 0.85,
        mem_latency_us: 0.14,
        random_concurrency: 4.0,
    }
}

/// SGI Altix BX2 with NUMALINK4.
pub fn altix_bx2() -> Machine {
    Machine {
        name: "SGI Altix BX2 (NUMALINK4)",
        class: SystemClass::Scalar,
        node: altix_node(),
        net: NetworkModel {
            topology: TopologyKind::FatTree {
                arity: NL_ARITY,
                blocking: 9.0,
                blocking_from: BOX_LEVEL,
            },
            link_bw: 1.6e9,
            nic_duplex: true,
            mpi_latency_us: 1.1,
            // Random-ring routes cross ~8 router hops in a full box; the
            // per-hop cost dominates the far-pair latency (the paper's
            // random-ring latency is several times the nearest-pair MPI
            // latency).
            per_hop_us: 0.3,
            overhead_us: 0.3,
            intra_latency_us: 0.7,
            intra_bw: 3.0e9,
            per_msg_bw: 1.6e9,
            plain_link_bw: 1.6e9,
        },
        max_cpus: 2048,
    }
}

/// SGI Altix 3700 with NUMALINK3 (the paper's comparison variant,
/// single box only).
pub fn altix_nl3() -> Machine {
    let mut m = altix_bx2();
    m.name = "SGI Altix (NUMALINK3)";
    m.net.topology = TopologyKind::FatTree {
        arity: NL_ARITY,
        blocking: 1.0,
        blocking_from: 1,
    };
    m.net.link_bw = 0.4e9;
    m.net.mpi_latency_us = 1.4;
    m.max_cpus = 512;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bx2_is_valid_and_matches_table_2() {
        let m = altix_bx2();
        m.validate().unwrap();
        assert_eq!(m.node.cpus, 2);
        // Table 2: peak/node 12.8 Gflop/s at 1.6 GHz.
        assert_eq!(m.node.peak_gflops * m.node.cpus as f64, 12.8);
        assert_eq!(m.node.clock_ghz, 1.6);
    }

    #[test]
    fn nl3_variant_is_slower_but_valid() {
        let m = altix_nl3();
        m.validate().unwrap();
        assert!(m.net.link_bw < altix_bx2().net.link_bw / 2.0);
    }

    #[test]
    fn one_box_has_full_bisection_multi_box_does_not() {
        let m = altix_bx2();
        let one_box = m.fabric(512); // 256 NUMALINK nodes
        let four_box = m.fabric(2048); // 1024 nodes, above BOX_LEVEL
        let full = one_box.topology().bisection_links();
        let blocked = four_box.topology().bisection_links();
        assert_eq!(full, 128.0, "one box: ideal fat-tree bisection");
        assert!(
            blocked < 1024.0 / 2.0 / 2.0,
            "multi-box bisection is heavily oversubscribed: {blocked}"
        );
    }
}
