//! The machine models of the paper's five systems (Table 2), plus the
//! NUMALINK3 Altix variant and the Cray X1 SSP mode the figures include.

mod altix;
mod cray_opteron;
mod cray_x1;
mod dell_xeon;
pub mod future;
mod nec_sx8;

pub use altix::{altix_bx2, altix_nl3};
pub use cray_opteron::cray_opteron;
pub use cray_x1::{cray_x1_msp, cray_x1_ssp};
pub use dell_xeon::dell_xeon;
pub use future::{exascale_cluster, future_systems};
pub use nec_sx8::nec_sx8;

use crate::model::Machine;

/// The five systems of Table 2 (Cray X1 in MSP mode).
pub fn paper_systems() -> Vec<Machine> {
    vec![
        altix_bx2(),
        cray_x1_msp(),
        cray_opteron(),
        dell_xeon(),
        nec_sx8(),
    ]
}

/// Every model variant the figures use: the five systems plus the Cray X1
/// SSP mode and the Altix NUMALINK3 configuration.
pub fn all_variants() -> Vec<Machine> {
    vec![
        altix_bx2(),
        altix_nl3(),
        cray_x1_msp(),
        cray_x1_ssp(),
        cray_opteron(),
        dell_xeon(),
        nec_sx8(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemClass;

    #[test]
    fn all_models_validate() {
        for m in all_variants() {
            m.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn paper_has_five_systems_two_vector() {
        let systems = paper_systems();
        assert_eq!(systems.len(), 5);
        let vectors = systems
            .iter()
            .filter(|m| m.class == SystemClass::Vector)
            .count();
        assert_eq!(vectors, 2, "Cray X1 and NEC SX-8 are the vector systems");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_variants().iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all_variants().len());
    }

    #[test]
    fn vector_systems_have_order_of_magnitude_memory_advantage() {
        // The premise behind Figs. 7-9's vector/scalar clustering.
        let sx8 = nec_sx8();
        let xeon = dell_xeon();
        assert!(sx8.node.stream_bw > 10.0 * xeon.node.stream_bw);
    }
}
