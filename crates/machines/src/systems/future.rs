//! The follow-up systems the paper's conclusion announces:
//! "we also plan to include five more architectures — Linux clusters
//! with different networks, IBM Blue Gene/P, Cray XT4, Cray X1E and a
//! cluster of IBM POWER5+."
//!
//! These are **extension models**: unlike the five calibrated systems,
//! nothing in the paper anchors them, so the parameters below come from
//! the vendors' public specifications of the era, documented per field.
//! They exist to exercise the modelling API (the Blue Gene/P and XT4
//! bring the 3-D torus topology) and to let the announced study be run
//! ahead of time.

use crate::model::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};

/// IBM Blue Gene/P: 4x PowerPC 450 at 850 MHz per node (13.6 Gflop/s
/// node), 13.6 GB/s node memory bandwidth, 3-D torus of 6 x 425 MB/s
/// links (aggregate ~5.1 GB/s per node), ~3 us MPI latency.
pub fn ibm_bluegene_p() -> Machine {
    Machine {
        name: "IBM Blue Gene/P",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 4,
            clock_ghz: 0.85,
            peak_gflops: 3.4,
            stream_bw: 2.6e9,
            mem_bw_node: 13.6e9,
            dgemm_eff: 0.92,
            hpl_eff: 0.80,
            mem_latency_us: 0.10,
            random_concurrency: 3.0,
        },
        net: NetworkModel {
            topology: TopologyKind::Torus3D,
            // Per-node injection across the six torus directions.
            link_bw: 2.4e9,
            nic_duplex: true,
            mpi_latency_us: 3.0,
            per_hop_us: 0.1,
            overhead_us: 0.8,
            intra_latency_us: 1.2,
            intra_bw: 2.0e9,
            per_msg_bw: 0.425e9, // one torus link per stream
            plain_link_bw: 2.4e9,
        },
        max_cpus: 4096,
    }
}

/// Cray XT4: dual-core 2.6 GHz Opteron nodes (10.4 Gflop/s), SeaStar2
/// 3-D torus with ~7.6 GB/s per-direction links and ~6 GB/s sustained
/// injection, ~6 us MPI latency.
pub fn cray_xt4() -> Machine {
    Machine {
        name: "Cray XT4",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 2,
            clock_ghz: 2.6,
            peak_gflops: 5.2,
            stream_bw: 4.0e9,
            mem_bw_node: 10.6e9,
            dgemm_eff: 0.90,
            hpl_eff: 0.80,
            mem_latency_us: 0.09,
            random_concurrency: 6.0,
        },
        net: NetworkModel {
            topology: TopologyKind::Torus3D,
            link_bw: 6.0e9,
            nic_duplex: true,
            mpi_latency_us: 6.0,
            per_hop_us: 0.05,
            overhead_us: 1.0,
            intra_latency_us: 0.9,
            intra_bw: 2.0e9,
            per_msg_bw: 2.1e9, // measured-era Portals single-stream rate
            plain_link_bw: 6.0e9,
        },
        max_cpus: 8192,
    }
}

/// Cray X1E: the X1's processor upgrade — 18 Gflop/s MSPs, same
/// interconnect family; modelled as the calibrated X1 with scaled
/// processors and proportionally higher memory bandwidth.
pub fn cray_x1e() -> Machine {
    let mut m = super::cray_x1_msp();
    m.name = "Cray X1E";
    m.node.clock_ghz = 1.13;
    m.node.peak_gflops = 18.0;
    m.node.cpus = 8; // X1E doubles MSP density per node
    m.node.stream_bw = 17.0e9; // per-MSP bandwidth roughly flat vs X1
    m.node.mem_bw_node = 140.0e9;
    m.max_cpus = 64;
    m
}

/// A cluster of IBM POWER5+ SMPs: 16-way 1.9 GHz nodes (7.6 Gflop/s per
/// CPU), very high node memory bandwidth, HPS (Federation) interconnect
/// at ~2 GB/s per link pair and ~5 us latency.
pub fn ibm_power5p() -> Machine {
    Machine {
        name: "IBM POWER5+ cluster",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 16,
            clock_ghz: 1.9,
            peak_gflops: 7.6,
            stream_bw: 5.0e9,
            mem_bw_node: 100.0e9,
            dgemm_eff: 0.93,
            hpl_eff: 0.78,
            mem_latency_us: 0.10,
            random_concurrency: 8.0,
        },
        net: NetworkModel {
            topology: TopologyKind::FatTree {
                arity: 8,
                blocking: 1.0,
                blocking_from: 1,
            },
            link_bw: 4.0e9, // two Federation link pairs per node
            nic_duplex: true,
            mpi_latency_us: 5.0,
            per_hop_us: 0.3,
            overhead_us: 1.0,
            intra_latency_us: 0.8,
            intra_bw: 3.5e9,
            per_msg_bw: 2.0e9,
            plain_link_bw: 4.0e9,
        },
        max_cpus: 2048,
    }
}

/// A commodity Linux cluster on gigabit Ethernet — the cheapest point of
/// the "Linux clusters with different networks" axis.
pub fn linux_gige_cluster() -> Machine {
    Machine {
        name: "Linux cluster (GigE)",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 2,
            clock_ghz: 2.4,
            peak_gflops: 4.8,
            stream_bw: 2.5e9,
            mem_bw_node: 5.2e9,
            dgemm_eff: 0.88,
            hpl_eff: 0.70,
            mem_latency_us: 0.11,
            random_concurrency: 4.0,
        },
        net: NetworkModel {
            topology: TopologyKind::FatTree {
                arity: 24,
                blocking: 4.0,
                blocking_from: 1,
            },
            link_bw: 0.112e9, // ~112 MB/s of TCP goodput over GigE
            nic_duplex: true,
            mpi_latency_us: 45.0,
            per_hop_us: 2.0,
            overhead_us: 8.0,
            intra_latency_us: 1.0,
            intra_bw: 1.5e9,
            per_msg_bw: 0.112e9,
            plain_link_bw: 0.112e9,
        },
        max_cpus: 512,
    }
}

/// An exascale-era capacity model: fat many-core nodes on a low-latency
/// two-level fat tree, sized so virtual worlds can sweep the proc axis
/// two to three orders of magnitude past the paper-era ceilings (the
/// largest announced system above stops at 8192 CPUs). The parameters
/// are representative of a 2020s leadership system — ~50 Gflop/s per
/// core, HBM-class node memory, 200 Gb/s-class injection, ~1.5 us MPI
/// latency — not calibrated to any one installation.
///
/// Deliberately **not** part of [`future_systems`]: the paper's
/// conclusion lists exactly five follow-up architectures, and this one
/// exists for the cooperative scheduler's high-rank sweeps rather than
/// for the announced study.
pub fn exascale_cluster() -> Machine {
    Machine {
        name: "Exascale cluster",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 64,
            clock_ghz: 2.4,
            peak_gflops: 50.0, // wide-SIMD core: 2 FMA pipes x 8 lanes
            stream_bw: 16.0e9,
            mem_bw_node: 1.6e12, // HBM-class node aggregate
            dgemm_eff: 0.90,
            hpl_eff: 0.75,
            mem_latency_us: 0.08,
            random_concurrency: 16.0,
        },
        net: NetworkModel {
            topology: TopologyKind::FatTree {
                arity: 64,
                blocking: 2.0, // 2:1 taper above the leaf switches
                blocking_from: 1,
            },
            link_bw: 25.0e9, // 200 Gb/s-class NIC
            nic_duplex: true,
            mpi_latency_us: 1.5,
            per_hop_us: 0.05,
            overhead_us: 0.3,
            intra_latency_us: 0.3,
            intra_bw: 12.0e9,
            per_msg_bw: 12.0e9,
            plain_link_bw: 25.0e9,
        },
        max_cpus: 262_144,
    }
}

/// All five announced follow-up systems.
pub fn future_systems() -> Vec<Machine> {
    vec![
        linux_gige_cluster(),
        ibm_bluegene_p(),
        cray_xt4(),
        cray_x1e(),
        ibm_power5p(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_future_models_validate() {
        for m in future_systems() {
            m.validate().unwrap_or_else(|e| panic!("{e}"));
        }
        assert_eq!(future_systems().len(), 5, "the conclusion lists five");
    }

    #[test]
    fn exascale_cluster_validates_and_scales_past_the_paper_era() {
        let m = exascale_cluster();
        m.validate().unwrap_or_else(|e| panic!("{e}"));
        assert!(
            m.max_cpus >= 131_072,
            "needs headroom for 100k-rank virtual worlds"
        );
        for f in future_systems() {
            assert!(m.max_cpus > f.max_cpus, "vs {}", f.name);
        }
        // A 65536-rank fabric must build (the high-rank sweeps use it).
        let f = m.fabric(65_536);
        assert_eq!(f.topology().name(), "fat-tree");
    }

    #[test]
    fn torus_machines_build_torus_fabrics() {
        for m in [ibm_bluegene_p(), cray_xt4()] {
            let f = m.fabric(256);
            assert_eq!(f.topology().name(), "torus3d", "{}", m.name);
        }
    }

    #[test]
    fn x1e_is_a_faster_x1() {
        let x1 = crate::systems::cray_x1_msp();
        let x1e = cray_x1e();
        assert!(x1e.node.peak_gflops > x1.node.peak_gflops);
        assert_eq!(
            format!("{:?}", x1e.net.topology),
            format!("{:?}", x1.net.topology),
            "same interconnect family"
        );
    }

    #[test]
    fn gige_cluster_is_the_slow_network_point() {
        let gige = linux_gige_cluster();
        for m in crate::systems::paper_systems() {
            assert!(gige.net.link_bw < m.net.link_bw, "vs {}", m.name);
            assert!(
                gige.net.mpi_latency_us > m.net.mpi_latency_us,
                "vs {}",
                m.name
            );
        }
    }
}
