//! Dell Xeon Cluster "Tungsten" (NCSA): 1280 nodes x 2 Intel Xeon
//! (Nocona EM64T) 3.6 GHz, InfiniBand.
//!
//! Paper, Section 2.4: 3.6 GHz Xeon with an 800 MHz system bus, 1 MB L2;
//! "peak performance of 7.2 Gflop/s" per processor; PCI-X InfiniBand HCA
//! per node; "the IB is configured in groups of 18 nodes 1:1 with 3:1
//! blocking through the core IB switches"; MPI-level InfiniBand peak
//! bandwidth 841 MB/s and 6.8 us minimum latency.
//!
//! Calibration anchors:
//! * Fig. 14: "the second best system is the Xeon Cluster and its
//!   performance is almost constant from 2 to 512 processors" — the
//!   full-duplex HCA keeps Exchange flat.
//! * Figures 8, 10, 12: tracks the Altix BX2 closely among the scalar
//!   systems, ahead of the Myrinet Opteron cluster.

use crate::model::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};

/// The Dell Xeon Cluster model.
pub fn dell_xeon() -> Machine {
    Machine {
        name: "Dell Xeon Cluster",
        class: SystemClass::Scalar,
        node: NodeModel {
            cpus: 2,
            clock_ghz: 3.6,
            peak_gflops: 7.2,
            stream_bw: 2.2e9,
            mem_bw_node: 4.6e9,
            dgemm_eff: 0.82,
            // NetBurst sustains a comparatively low fraction of peak.
            hpl_eff: 0.62,
            mem_latency_us: 0.12,
            random_concurrency: 4.0,
        },
        net: NetworkModel {
            topology: TopologyKind::FatTree {
                arity: 18,
                blocking: 3.0,
                blocking_from: 1,
            },
            link_bw: 0.841e9,
            nic_duplex: true,
            mpi_latency_us: 6.8,
            per_hop_us: 0.3,
            overhead_us: 0.9,
            intra_latency_us: 1.0,
            intra_bw: 1.6e9,
            per_msg_bw: 0.841e9,
            plain_link_bw: 0.841e9,
        },
        // Topspin MPI "scales only up to 1020 processes".
        max_cpus: 1024,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_matches_section_2_4() {
        let m = super::dell_xeon();
        m.validate().unwrap();
        assert_eq!(m.node.peak_gflops, 7.2);
        assert_eq!(m.node.clock_ghz, 3.6);
        assert!((m.net.link_bw - 841e6).abs() < 1.0);
        assert!((m.net.mpi_latency_us - 6.8).abs() < 1e-9);
    }

    #[test]
    fn core_is_oversubscribed_3_to_1() {
        let m = super::dell_xeon();
        let f = m.fabric(512); // 256 nodes
        let ideal = 256.0 / 2.0;
        assert!((f.topology().bisection_links() - ideal / 3.0).abs() < 1.0);
    }
}
