//! Cray X1 (NASA Ames): 4 nodes x 4 MSPs (16 SSPs), proprietary network.
//!
//! Paper, Section 2.2: each Multi-Streaming Processor (MSP) peaks at
//! 12.8 Gflop/s (Table 2 gives 12.8 Gflop/s per node-quarter at 800 MHz);
//! each node has 4 MSPs sharing 16 GB of flat memory behind 16 M-chips;
//! each MSP is 4 Single-Stream Processors (SSPs) of 3.2 Gflop/s vector
//! peak; larger systems use a "modified torus, called 4D-hypercube".
//! The NASA machine is 4 nodes (64 SSPs), one reserved for the system.
//!
//! Calibration anchors:
//! * Fig. 13: 2-SSP Sendrecv bandwidth 7.6 GB/s -> ~3.8 GB/s per
//!   direction through node memory.
//! * Figures 7-12: X1 sits between the NEC SX-8 and the scalar systems —
//!   an order of magnitude above the scalar cluster on Reduce (memory
//!   bandwidth bound) but well below the SX-8.

use crate::model::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};

fn x1_net() -> NetworkModel {
    NetworkModel {
        topology: TopologyKind::Hypercube,
        // The X1's MPI-level inter-node bandwidth sat well below the raw
        // link hardware (cf. Worley et al.'s X1 interconnect study the
        // paper cites as [15]); 5 GB/s per node is the software-visible
        // rate.
        link_bw: 5.0e9,
        nic_duplex: true,
        mpi_latency_us: 7.3,
        per_hop_us: 0.5,
        overhead_us: 1.5,
        intra_latency_us: 2.6,
        intra_bw: 3.8e9,
        // A single MPI stream on the X1 peaks near 2.9 GB/s
        // (Worley et al., the paper's [15]), well under the node
        // aggregate.
        per_msg_bw: 2.9e9,
        plain_link_bw: 5.0e9,
    }
}

/// Cray X1 in MSP mode (4 CPUs of 12.8 Gflop/s per node).
pub fn cray_x1_msp() -> Machine {
    Machine {
        name: "Cray X1 (MSP)",
        class: SystemClass::Vector,
        node: NodeModel {
            cpus: 4,
            clock_ghz: 0.8,
            peak_gflops: 12.8,
            stream_bw: 18.0e9,
            mem_bw_node: 76.0e9,
            dgemm_eff: 0.90,
            hpl_eff: 0.78,
            mem_latency_us: 0.6,
            random_concurrency: 48.0,
        },
        net: x1_net(),
        max_cpus: 16,
    }
}

/// Cray X1 in SSP mode (16 CPUs of 3.2 Gflop/s per node).
pub fn cray_x1_ssp() -> Machine {
    Machine {
        name: "Cray X1 (SSP)",
        class: SystemClass::Vector,
        node: NodeModel {
            cpus: 16,
            clock_ghz: 0.8,
            peak_gflops: 3.2,
            stream_bw: 4.5e9,
            mem_bw_node: 76.0e9,
            dgemm_eff: 0.88,
            hpl_eff: 0.74,
            mem_latency_us: 0.6,
            random_concurrency: 24.0,
        },
        net: x1_net(),
        max_cpus: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msp_model_matches_section_2_2() {
        let m = cray_x1_msp();
        m.validate().unwrap();
        // 12.8 Gflop/s per MSP = 3.2 Gflop/s vector unit x 2 pipes x 2 MADD.
        assert_eq!(m.node.peak_gflops, 12.8);
        assert_eq!(m.node.cpus, 4);
    }

    #[test]
    fn ssp_mode_is_consistent_with_msp_mode() {
        let msp = cray_x1_msp();
        let ssp = cray_x1_ssp();
        ssp.validate().unwrap();
        // 4 SSPs make up one MSP: same node peak either way.
        assert_eq!(
            msp.node.peak_gflops * msp.node.cpus as f64,
            ssp.node.peak_gflops * ssp.node.cpus as f64
        );
        // Same installation: same network, same node count.
        assert_eq!(msp.nodes_for(msp.max_cpus), ssp.nodes_for(ssp.max_cpus));
    }
}
