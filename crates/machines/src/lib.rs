//! `machines` — architecture models of the five supercomputers evaluated
//! by Saini et al. with the HPCC and IMB benchmark suites.
//!
//! Each model is built from the paper's own architecture descriptions
//! (Section 2, Tables 1-2) plus a small set of calibration anchors quoted
//! from the measurement figures; every constant cites its source in the
//! system's module documentation. The [`ClusterSim`] prices communication
//! schedules and compute phases against a model, which is how the figure
//! harness regenerates the paper's measurements without the hardware.
//!
//! ```
//! use machines::{systems, ClusterSim};
//!
//! let sx8 = systems::nec_sx8();
//! let sim = ClusterSim::new(&sx8, 64);
//! let mut sched = simnet::Schedule::new(64);
//! sched.push(simnet::Round::of(vec![simnet::Transfer { src: 0, dst: 63, bytes: 1024 }]));
//! let t = sim.run_fresh(&sched);
//! assert!(t.as_us() > 0.0);
//! ```

pub mod cluster;
pub mod model;
pub mod systems;
pub mod tables;
pub mod virtnet;

pub use cluster::ClusterSim;
pub use model::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};
pub use virtnet::SharedClusterNet;
