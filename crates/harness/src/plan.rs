//! The campaign driver: a [`RunPlan`] describes {machines x modes x
//! workloads x proc counts x message sizes} and executes it against a
//! [`Registry`](crate::Registry), producing one unified record stream.
//! One plan regenerates the inputs for every paper table and figure.

use machines::Machine;

use crate::record::{Mode, Record};
use crate::runner::Runner;
use crate::workload::{Registry, WorkloadMeta};

/// A per-workload grid function: called with the machine (`None` in
/// native mode) and the workload's metadata.
pub type GridFn = dyn Fn(Option<&Machine>, &WorkloadMeta) -> Vec<usize> + Send + Sync;

/// The processor counts a plan sweeps.
pub enum ProcGrid {
    /// One explicit list, shared by every workload and machine (capped
    /// at each machine's installation size).
    List(Vec<usize>),
    /// A per-workload grid: this is how the figure campaign reproduces
    /// the paper's per-machine grids.
    PerWorkload(Box<GridFn>),
    /// Powers of two from the workload's minimum rank count through the
    /// given ceiling — the high-rank scaling axis the cooperative rank
    /// scheduler opened up (virtual worlds are tasks, not OS threads, so
    /// the ceiling can sit orders of magnitude past the host's thread
    /// budget). Entries above a machine's installation size are still
    /// skipped by the plan as usual.
    Pow2Through(usize),
}

impl ProcGrid {
    /// Convenience constructor for the closure variant.
    pub fn per_workload(
        f: impl Fn(Option<&Machine>, &WorkloadMeta) -> Vec<usize> + Send + Sync + 'static,
    ) -> ProcGrid {
        ProcGrid::PerWorkload(Box::new(f))
    }

    fn resolve(&self, machine: Option<&Machine>, meta: &WorkloadMeta) -> Vec<usize> {
        match self {
            ProcGrid::List(list) => list.clone(),
            ProcGrid::PerWorkload(f) => f(machine, meta),
            ProcGrid::Pow2Through(cap) => {
                let mut grid = Vec::new();
                let mut p = meta.min_procs.max(2).next_power_of_two();
                while p <= *cap {
                    grid.push(p);
                    p *= 2;
                }
                grid
            }
        }
    }
}

/// A full campaign description: which workloads to run, in which modes,
/// on which machines, at which scales.
pub struct RunPlan {
    /// Execution modes, in order.
    pub modes: Vec<Mode>,
    /// Machine models for the simulated and virtual modes (ignored by
    /// native execution, which runs on the host).
    pub machines: Vec<Machine>,
    /// Processor counts.
    pub procs: ProcGrid,
    /// Message sizes for sized workloads (unsized workloads run once per
    /// proc count regardless).
    pub bytes: Vec<u64>,
    /// Workload-name filter; `None` runs the whole registry.
    pub workloads: Option<Vec<&'static str>>,
    /// The runner (warm-up + repetition policy) shared by every
    /// measurement.
    pub runner: Runner,
}

impl RunPlan {
    /// Executes the plan, returning every record it produced, in
    /// deterministic (workload, mode, machine, procs, bytes) order.
    pub fn execute(&self, registry: &Registry) -> Vec<Record> {
        let mut out = Vec::new();
        for workload in registry.iter() {
            if let Some(filter) = &self.workloads {
                if !filter.contains(&workload.meta.name) {
                    continue;
                }
            }
            for &mode in &self.modes {
                match mode {
                    Mode::Native => {
                        for p in self.procs.resolve(None, &workload.meta) {
                            for bytes in self.bytes_for(&workload.meta) {
                                if let Some(recs) = workload.run(mode, &self.runner, None, p, bytes)
                                {
                                    out.extend(recs);
                                }
                            }
                        }
                    }
                    Mode::Simulated | Mode::Virtual => {
                        for machine in &self.machines {
                            for p in self.procs.resolve(Some(machine), &workload.meta) {
                                if p > machine.max_cpus {
                                    continue;
                                }
                                for bytes in self.bytes_for(&workload.meta) {
                                    if let Some(recs) =
                                        workload.run(mode, &self.runner, Some(machine), p, bytes)
                                    {
                                        out.extend(recs);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Executes the plan with `mpcheck` instrumentation installed on the
    /// calling thread: every native-mode `mp::run` a workload performs is
    /// verified as it runs (live wait-for-graph deadlock detection) and
    /// its communication trace is linted afterwards. Simulated and
    /// virtual execution are unaffected — they are already deterministic.
    ///
    /// Returns the records plus the accumulated verification report. A
    /// detected deadlock panics out of the plan with the full cycle
    /// diagnosis as the message; a deadlocked campaign cannot continue.
    pub fn execute_checked(
        &self,
        registry: &Registry,
        settings: mpcheck::Settings,
    ) -> (Vec<Record>, mpcheck::Report) {
        let session = mpcheck::Session::begin(settings);
        let records = self.execute(registry);
        (records, session.finish())
    }

    fn bytes_for(&self, meta: &WorkloadMeta) -> Vec<Option<u64>> {
        if meta.sized {
            if self.bytes.is_empty() {
                vec![None]
            } else {
                self.bytes.iter().map(|&b| Some(b)).collect()
            }
        } else {
            vec![None]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricKind, Stats, Suite};
    use crate::workload::Workload;

    fn reg() -> Registry {
        let mut reg = Registry::new();
        let rec = |name: &'static str, mode: Mode, machine: &'static str, p: usize, b| Record {
            benchmark: name,
            suite: Suite::Imb,
            mode,
            machine,
            procs: p,
            threads: 1,
            bytes: b,
            metric: MetricKind::TimeUs,
            value: 1.0,
            stats: Stats::deterministic(1.0),
            passed: true,
        };
        reg.register(
            Workload::new(WorkloadMeta {
                name: "sized",
                suite: Suite::Imb,
                metric: MetricKind::TimeUs,
                min_procs: 2,
                pow2_procs: false,
                sized: true,
            })
            .native(move |_, p, b| vec![rec("sized", Mode::Native, "host", p, b)])
            .simulated(move |m, p, b| vec![rec("sized", Mode::Simulated, m.name, p, b)]),
        );
        reg.register(
            Workload::new(WorkloadMeta {
                name: "unsized",
                suite: Suite::Imb,
                metric: MetricKind::TimeUs,
                min_procs: 1,
                pow2_procs: false,
                sized: false,
            })
            .native(move |_, p, b| vec![rec("unsized", Mode::Native, "host", p, b)]),
        );
        reg
    }

    #[test]
    fn plan_crosses_workloads_modes_procs_and_bytes() {
        let plan = RunPlan {
            modes: vec![Mode::Native, Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::List(vec![2, 4]),
            bytes: vec![256, 1024],
            workloads: None,
            runner: Runner::smoke(),
        };
        let records = plan.execute(&reg());
        // sized: native 2 procs x 2 bytes + sim 2 procs x 2 bytes = 8;
        // unsized: native 2 procs x 1 (no sim closure) = 2.
        assert_eq!(records.len(), 10);
        assert!(records.iter().any(|r| r.mode == Mode::Simulated));
        assert!(records
            .iter()
            .filter(|r| r.benchmark == "unsized")
            .all(|r| r.bytes.is_none()));
    }

    #[test]
    fn plan_caps_at_installation_size_and_filters() {
        let mut x1 = machines::systems::cray_x1_msp();
        x1.max_cpus = 2;
        let plan = RunPlan {
            modes: vec![Mode::Simulated],
            machines: vec![x1],
            procs: ProcGrid::List(vec![2, 64]),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        let records = plan.execute(&reg());
        assert_eq!(
            records.len(),
            1,
            "p=64 exceeds max_cpus, 'unsized' filtered"
        );
        assert_eq!(records[0].procs, 2);
    }

    #[test]
    fn pow2_grid_climbs_from_min_procs_to_the_cap() {
        let plan = RunPlan {
            modes: vec![Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::Pow2Through(16),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        let records = plan.execute(&reg());
        // "sized" has min_procs = 2, so the axis is 2, 4, 8, 16.
        let procs: Vec<usize> = records.iter().map(|r| r.procs).collect();
        assert_eq!(procs, vec![2, 4, 8, 16]);
        // The cap can sit far above any installation: the plan still
        // skips entries past max_cpus instead of failing.
        let mut small = machines::systems::dell_xeon();
        small.max_cpus = 4;
        let capped = RunPlan {
            modes: vec![Mode::Simulated],
            machines: vec![small],
            procs: ProcGrid::Pow2Through(1 << 20),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        let procs: Vec<usize> = capped.execute(&reg()).iter().map(|r| r.procs).collect();
        assert_eq!(procs, vec![2, 4]);
    }

    #[test]
    fn execute_checked_verifies_native_runs() {
        let mut reg = Registry::new();
        reg.register(
            Workload::new(WorkloadMeta {
                name: "chk",
                suite: Suite::Imb,
                metric: MetricKind::TimeUs,
                min_procs: 2,
                pow2_procs: false,
                sized: false,
            })
            .native(|_, p, _| {
                mp::run(p, |comm| comm.barrier());
                vec![Record {
                    benchmark: "chk",
                    suite: Suite::Imb,
                    mode: Mode::Native,
                    machine: "host",
                    procs: p,
                    threads: 1,
                    bytes: None,
                    metric: MetricKind::TimeUs,
                    value: 1.0,
                    stats: Stats::deterministic(1.0),
                    passed: true,
                }]
            }),
        );
        let plan = RunPlan {
            modes: vec![Mode::Native],
            machines: vec![],
            procs: ProcGrid::List(vec![2]),
            bytes: vec![],
            workloads: None,
            runner: Runner::smoke(),
        };
        let (records, report) = plan.execute_checked(&reg, mpcheck::Settings::default());
        assert_eq!(records.len(), 1);
        assert_eq!(report.runs, 1, "the native mp::run must be instrumented");
        assert!(report.clean(), "unexpected findings:\n{report}");
        assert!(report.events > 0);
    }

    #[test]
    fn per_workload_grids_see_the_machine() {
        let plan = RunPlan {
            modes: vec![Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::per_workload(|m, _| {
                assert!(m.is_some());
                vec![4]
            }),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        assert_eq!(plan.execute(&reg()).len(), 1);
    }
}
