//! The campaign driver: a [`RunPlan`] describes {machines x modes x
//! workloads x proc counts x message sizes} and executes it against a
//! [`Registry`](crate::Registry), producing one unified record stream.
//! One plan regenerates the inputs for every paper table and figure.

use machines::Machine;
use mp::Backend;

use crate::record::{Mode, Record};
use crate::runner::Runner;
use crate::workload::{Registry, Workload, WorkloadMeta};

/// A per-workload grid function: called with the machine (`None` in
/// native mode) and the workload's metadata.
pub type GridFn = dyn Fn(Option<&Machine>, &WorkloadMeta) -> Vec<usize> + Send + Sync;

/// Visitor over the plan's (workload, mode, machine, procs, bytes) grid
/// points, in deterministic execution order (see `RunPlan::walk`).
type GridVisitor<'a> = dyn FnMut(&Workload, Mode, Option<&Machine>, usize, Option<u64>) + 'a;

/// The processor counts a plan sweeps.
pub enum ProcGrid {
    /// One explicit list, shared by every workload and machine (capped
    /// at each machine's installation size).
    List(Vec<usize>),
    /// A per-workload grid: this is how the figure campaign reproduces
    /// the paper's per-machine grids.
    PerWorkload(Box<GridFn>),
    /// Powers of two from the workload's minimum rank count through the
    /// given ceiling — the high-rank scaling axis the cooperative rank
    /// scheduler opened up (virtual worlds are tasks, not OS threads, so
    /// the ceiling can sit orders of magnitude past the host's thread
    /// budget). Entries above a machine's installation size are still
    /// skipped by the plan as usual.
    Pow2Through(usize),
}

impl ProcGrid {
    /// Convenience constructor for the closure variant.
    pub fn per_workload(
        f: impl Fn(Option<&Machine>, &WorkloadMeta) -> Vec<usize> + Send + Sync + 'static,
    ) -> ProcGrid {
        ProcGrid::PerWorkload(Box::new(f))
    }

    fn resolve(&self, machine: Option<&Machine>, meta: &WorkloadMeta) -> Vec<usize> {
        match self {
            ProcGrid::List(list) => list.clone(),
            ProcGrid::PerWorkload(f) => f(machine, meta),
            ProcGrid::Pow2Through(cap) => {
                let mut grid = Vec::new();
                let mut p = meta.min_procs.max(2).next_power_of_two();
                while p <= *cap {
                    grid.push(p);
                    p *= 2;
                }
                grid
            }
        }
    }
}

/// One native-mode grid cell of a plan: the unit of work a
/// multi-process backend ships to a worker fleet. Simulated and virtual
/// execution are deterministic model evaluation and always run
/// in-process, so only native cells are enumerated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// The workload's registry name.
    pub workload: &'static str,
    /// World size (rank count) for this cell.
    pub procs: usize,
    /// Message size, `None` for unsized workloads.
    pub bytes: Option<u64>,
}

/// A full campaign description: which workloads to run, in which modes,
/// on which machines, at which scales.
pub struct RunPlan {
    /// The transport backend native measurements run over. `Local` is
    /// the seed path ([`RunPlan::execute`] runs every rank as a thread
    /// of this process); `Shm` and `Tcp` mark the plan's native cells
    /// as destined for a worker fleet, which a driver launches per cell
    /// through [`RunPlan::execute_lines`] (the harness cannot spawn the
    /// fleet itself — only the driver binary knows its own executable).
    pub backend: Backend,
    /// Execution modes, in order.
    pub modes: Vec<Mode>,
    /// Machine models for the simulated and virtual modes (ignored by
    /// native execution, which runs on the host).
    pub machines: Vec<Machine>,
    /// Processor counts.
    pub procs: ProcGrid,
    /// Message sizes for sized workloads (unsized workloads run once per
    /// proc count regardless).
    pub bytes: Vec<u64>,
    /// Workload-name filter; `None` runs the whole registry.
    pub workloads: Option<Vec<&'static str>>,
    /// The runner (warm-up + repetition policy) shared by every
    /// measurement.
    pub runner: Runner,
}

impl RunPlan {
    /// Executes the plan, returning every record it produced, in
    /// deterministic (workload, mode, machine, procs, bytes) order.
    ///
    /// Requires [`Backend::Local`]: native measurements run in-process,
    /// every rank a thread. Multi-process plans go through
    /// [`RunPlan::execute_lines`] with a fleet runner instead.
    pub fn execute(&self, registry: &Registry) -> Vec<Record> {
        assert_eq!(
            self.backend,
            Backend::Local,
            "execute() runs native cells in-process; drive a {} plan \
             through execute_lines() with a per-cell fleet runner",
            self.backend
        );
        let mut out = Vec::new();
        self.walk(registry, &mut |workload, mode, machine, p, bytes| {
            if let Some(recs) = workload.run(mode, &self.runner, machine, p, bytes) {
                out.extend(recs);
            }
        });
        out
    }

    /// Visits every (workload, mode, machine, procs, bytes) grid point of
    /// the plan, in the deterministic execution order. Admissibility
    /// (min_procs, pow2, closure presence) is the visitor's concern —
    /// `Workload::run` already gates on it.
    fn walk(&self, registry: &Registry, visit: &mut GridVisitor<'_>) {
        for workload in registry.iter() {
            if let Some(filter) = &self.workloads {
                if !filter.contains(&workload.meta.name) {
                    continue;
                }
            }
            for &mode in &self.modes {
                match mode {
                    Mode::Native => {
                        for p in self.procs.resolve(None, &workload.meta) {
                            for bytes in self.bytes_for(&workload.meta) {
                                visit(workload, mode, None, p, bytes);
                            }
                        }
                    }
                    Mode::Simulated | Mode::Virtual => {
                        for machine in &self.machines {
                            for p in self.procs.resolve(Some(machine), &workload.meta) {
                                if p > machine.max_cpus {
                                    continue;
                                }
                                for bytes in self.bytes_for(&workload.meta) {
                                    visit(workload, mode, Some(machine), p, bytes);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The plan's admissible native-mode cells, in execution order: the
    /// work a multi-process driver distributes over worker fleets, one
    /// fleet (world size = `cell.procs`) per cell.
    pub fn native_cells(&self, registry: &Registry) -> Vec<Cell> {
        let mut cells = Vec::new();
        self.walk(registry, &mut |w, mode, _machine, p, bytes| {
            if mode == Mode::Native && w.supports(mode) && w.meta.admits(p, mode) {
                cells.push(Cell {
                    workload: w.meta.name,
                    procs: p,
                    bytes,
                });
            }
        });
        cells
    }

    /// Executes the plan as a JSON-line stream, delegating every native
    /// cell to `native` (which returns the cell's record lines — for a
    /// multi-process backend, the canonical lines emitted by the worker
    /// hosting rank 0). Simulated and virtual records are produced
    /// in-process, exactly as [`RunPlan::execute`] would, and serialised
    /// with [`Record::to_json`]; the interleaving matches `execute`'s
    /// record order line for line, which is what the local-vs-shm parity
    /// check rests on.
    pub fn execute_lines(
        &self,
        registry: &Registry,
        native: impl Fn(&Cell) -> Vec<String>,
    ) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(registry, &mut |w, mode, machine, p, bytes| {
            if mode == Mode::Native {
                if w.supports(mode) && w.meta.admits(p, mode) {
                    out.extend(native(&Cell {
                        workload: w.meta.name,
                        procs: p,
                        bytes,
                    }));
                }
            } else if let Some(recs) = w.run(mode, &self.runner, machine, p, bytes) {
                out.extend(recs.iter().map(Record::to_json));
            }
        });
        out
    }

    /// Executes the plan with `mpcheck` instrumentation installed on the
    /// calling thread: every native-mode `mp::run` a workload performs is
    /// verified as it runs (live wait-for-graph deadlock detection) and
    /// its communication trace is linted afterwards. Simulated and
    /// virtual execution are unaffected — they are already deterministic.
    ///
    /// Returns the records plus the accumulated verification report. A
    /// detected deadlock panics out of the plan with the full cycle
    /// diagnosis as the message; a deadlocked campaign cannot continue.
    pub fn execute_checked(
        &self,
        registry: &Registry,
        settings: mpcheck::Settings,
    ) -> (Vec<Record>, mpcheck::Report) {
        let session = mpcheck::Session::begin(settings);
        let records = self.execute(registry);
        (records, session.finish())
    }

    fn bytes_for(&self, meta: &WorkloadMeta) -> Vec<Option<u64>> {
        if meta.sized {
            if self.bytes.is_empty() {
                vec![None]
            } else {
                self.bytes.iter().map(|&b| Some(b)).collect()
            }
        } else {
            vec![None]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricKind, Stats, Suite};
    use crate::workload::Workload;

    fn reg() -> Registry {
        let mut reg = Registry::new();
        let rec = |name: &'static str, mode: Mode, machine: &'static str, p: usize, b| Record {
            benchmark: name,
            suite: Suite::Imb,
            mode,
            machine,
            procs: p,
            threads: 1,
            bytes: b,
            metric: MetricKind::TimeUs,
            value: 1.0,
            stats: Stats::deterministic(1.0),
            passed: true,
        };
        reg.register(
            Workload::new(WorkloadMeta {
                name: "sized",
                suite: Suite::Imb,
                metric: MetricKind::TimeUs,
                min_procs: 2,
                pow2_procs: false,
                sized: true,
            })
            .native(move |_, p, b| vec![rec("sized", Mode::Native, "host", p, b)])
            .simulated(move |m, p, b| vec![rec("sized", Mode::Simulated, m.name, p, b)]),
        );
        reg.register(
            Workload::new(WorkloadMeta {
                name: "unsized",
                suite: Suite::Imb,
                metric: MetricKind::TimeUs,
                min_procs: 1,
                pow2_procs: false,
                sized: false,
            })
            .native(move |_, p, b| vec![rec("unsized", Mode::Native, "host", p, b)]),
        );
        reg
    }

    #[test]
    fn plan_crosses_workloads_modes_procs_and_bytes() {
        let plan = RunPlan {
            backend: Backend::Local,
            modes: vec![Mode::Native, Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::List(vec![2, 4]),
            bytes: vec![256, 1024],
            workloads: None,
            runner: Runner::smoke(),
        };
        let records = plan.execute(&reg());
        // sized: native 2 procs x 2 bytes + sim 2 procs x 2 bytes = 8;
        // unsized: native 2 procs x 1 (no sim closure) = 2.
        assert_eq!(records.len(), 10);
        assert!(records.iter().any(|r| r.mode == Mode::Simulated));
        assert!(records
            .iter()
            .filter(|r| r.benchmark == "unsized")
            .all(|r| r.bytes.is_none()));
    }

    #[test]
    fn plan_caps_at_installation_size_and_filters() {
        let mut x1 = machines::systems::cray_x1_msp();
        x1.max_cpus = 2;
        let plan = RunPlan {
            backend: Backend::Local,
            modes: vec![Mode::Simulated],
            machines: vec![x1],
            procs: ProcGrid::List(vec![2, 64]),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        let records = plan.execute(&reg());
        assert_eq!(
            records.len(),
            1,
            "p=64 exceeds max_cpus, 'unsized' filtered"
        );
        assert_eq!(records[0].procs, 2);
    }

    #[test]
    fn pow2_grid_climbs_from_min_procs_to_the_cap() {
        let plan = RunPlan {
            backend: Backend::Local,
            modes: vec![Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::Pow2Through(16),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        let records = plan.execute(&reg());
        // "sized" has min_procs = 2, so the axis is 2, 4, 8, 16.
        let procs: Vec<usize> = records.iter().map(|r| r.procs).collect();
        assert_eq!(procs, vec![2, 4, 8, 16]);
        // The cap can sit far above any installation: the plan still
        // skips entries past max_cpus instead of failing.
        let mut small = machines::systems::dell_xeon();
        small.max_cpus = 4;
        let capped = RunPlan {
            backend: Backend::Local,
            modes: vec![Mode::Simulated],
            machines: vec![small],
            procs: ProcGrid::Pow2Through(1 << 20),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        let procs: Vec<usize> = capped.execute(&reg()).iter().map(|r| r.procs).collect();
        assert_eq!(procs, vec![2, 4]);
    }

    #[test]
    fn execute_checked_verifies_native_runs() {
        let mut reg = Registry::new();
        reg.register(
            Workload::new(WorkloadMeta {
                name: "chk",
                suite: Suite::Imb,
                metric: MetricKind::TimeUs,
                min_procs: 2,
                pow2_procs: false,
                sized: false,
            })
            .native(|_, p, _| {
                mp::run(p, |comm| comm.barrier());
                vec![Record {
                    benchmark: "chk",
                    suite: Suite::Imb,
                    mode: Mode::Native,
                    machine: "host",
                    procs: p,
                    threads: 1,
                    bytes: None,
                    metric: MetricKind::TimeUs,
                    value: 1.0,
                    stats: Stats::deterministic(1.0),
                    passed: true,
                }]
            }),
        );
        let plan = RunPlan {
            backend: Backend::Local,
            modes: vec![Mode::Native],
            machines: vec![],
            procs: ProcGrid::List(vec![2]),
            bytes: vec![],
            workloads: None,
            runner: Runner::smoke(),
        };
        let (records, report) = plan.execute_checked(&reg, mpcheck::Settings::default());
        assert_eq!(records.len(), 1);
        assert_eq!(report.runs, 1, "the native mp::run must be instrumented");
        assert!(report.clean(), "unexpected findings:\n{report}");
        assert!(report.events > 0);
    }

    #[test]
    fn native_cells_enumerate_the_admissible_native_grid() {
        let plan = RunPlan {
            backend: Backend::Shm,
            modes: vec![Mode::Native, Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::List(vec![1, 2]),
            bytes: vec![256, 1024],
            workloads: None,
            runner: Runner::smoke(),
        };
        let cells = plan.native_cells(&reg());
        // "sized" admits only p=2 (min_procs) and sweeps both sizes;
        // "unsized" runs once per proc count with bytes = None.
        assert_eq!(
            cells,
            vec![
                Cell {
                    workload: "sized",
                    procs: 2,
                    bytes: Some(256)
                },
                Cell {
                    workload: "sized",
                    procs: 2,
                    bytes: Some(1024)
                },
                Cell {
                    workload: "unsized",
                    procs: 1,
                    bytes: None
                },
                Cell {
                    workload: "unsized",
                    procs: 2,
                    bytes: None
                },
            ]
        );
    }

    #[test]
    fn execute_lines_matches_execute_order_exactly() {
        let mk = |backend| RunPlan {
            backend,
            modes: vec![Mode::Native, Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::List(vec![2]),
            bytes: vec![256, 1024],
            workloads: None,
            runner: Runner::smoke(),
        };
        let registry = reg();
        let direct: Vec<String> = mk(Backend::Local)
            .execute(&registry)
            .iter()
            .map(Record::to_json)
            .collect();
        // The delegated stream, with the "fleet" running cells through
        // the very same registry in-process, must interleave native and
        // simulated lines identically.
        let plan = mk(Backend::Shm);
        let runner = plan.runner;
        let delegated = plan.execute_lines(&registry, |cell| {
            let w = registry.get(cell.workload).expect("cell names an entry");
            w.run(Mode::Native, &runner, None, cell.procs, cell.bytes)
                .expect("native cells are admissible")
                .iter()
                .map(Record::to_json)
                .collect()
        });
        assert_eq!(delegated, direct);
    }

    #[test]
    #[should_panic(expected = "execute_lines")]
    fn execute_rejects_multiprocess_backends() {
        let plan = RunPlan {
            backend: Backend::Tcp,
            modes: vec![Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::List(vec![2]),
            bytes: vec![64],
            workloads: None,
            runner: Runner::smoke(),
        };
        plan.execute(&reg());
    }

    #[test]
    fn per_workload_grids_see_the_machine() {
        let plan = RunPlan {
            backend: Backend::Local,
            modes: vec![Mode::Simulated],
            machines: vec![machines::systems::dell_xeon()],
            procs: ProcGrid::per_workload(|m, _| {
                assert!(m.is_some());
                vec![4]
            }),
            bytes: vec![64],
            workloads: Some(vec!["sized"]),
            runner: Runner::smoke(),
        };
        assert_eq!(plan.execute(&reg()).len(), 1);
    }
}
