//! Wall-clock timing helpers for native benchmark runs.
//!
//! This is the workspace's only home for `std::time::Instant`: the
//! runtime and benchmark-kernel crates must stay wall-clock-free so
//! simulated and virtual execution remain deterministic (the invariant
//! `ci/arch_lint.sh` enforces).

use std::time::Instant;

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Microseconds elapsed since start.
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_secs() * 1e6
    }

    /// Restarts the stopwatch.
    pub fn reset(&mut self) {
        self.start = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let mut w = Stopwatch::start();
        let a = w.elapsed_secs();
        let b = w.elapsed_secs();
        assert!(a >= 0.0 && b >= a);
        w.reset();
        assert!(w.elapsed_us() >= 0.0);
    }
}
