//! The unified result schema: one [`Record`] per measurement, shared by
//! both suites (HPCC, IMB), all three execution modes (native threads,
//! simulated machines, virtual cluster) and every consumer (campaign
//! driver, figure regeneration, bench binaries).

use std::fmt;
use std::fmt::Write as _;

/// Which benchmark suite a workload belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// HPC Challenge (HPL, PTRANS, RandomAccess, STREAM, FFT, DGEMM,
    /// Random-Ring).
    Hpcc,
    /// Intel MPI Benchmarks 2.3.
    Imb,
}

impl Suite {
    /// Lower-case identifier used in the JSON emission.
    pub fn as_str(self) -> &'static str {
        match self {
            Suite::Hpcc => "hpcc",
            Suite::Imb => "imb",
        }
    }
}

/// How a measurement was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Real execution on host threads, wall-clock timing.
    Native,
    /// Closed-form / schedule-replay pricing on a machine model.
    Simulated,
    /// The real benchmark code executed on a modelled machine under
    /// virtual clocks (`mp::run_virtual`).
    Virtual,
}

impl Mode {
    /// All modes, in presentation order.
    pub const ALL: [Mode; 3] = [Mode::Native, Mode::Simulated, Mode::Virtual];

    /// Lower-case identifier used in the JSON emission.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Native => "native",
            Mode::Simulated => "simulated",
            Mode::Virtual => "virtual",
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a record's headline `value` measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Time per call, microseconds (smaller is better).
    TimeUs,
    /// Transfer bandwidth, MB/s.
    BandwidthMBs,
    /// Compute rate, Gflop/s.
    RateGflops,
    /// Memory/network rate, GB/s.
    RateGBs,
    /// Random-update rate, GUP/s.
    RateGups,
    /// One-way latency, microseconds.
    LatencyUs,
}

impl MetricKind {
    /// The unit string for this metric kind.
    pub fn unit(self) -> &'static str {
        match self {
            MetricKind::TimeUs => "us",
            MetricKind::BandwidthMBs => "MB/s",
            MetricKind::RateGflops => "Gflop/s",
            MetricKind::RateGBs => "GB/s",
            MetricKind::RateGups => "GUP/s",
            MetricKind::LatencyUs => "us",
        }
    }
}

/// IMB-2.3-style timing statistics: minimum / mean / maximum of the
/// per-rank average call time, plus the repetition count they average
/// over. Best-of is defined as the minimum, per HPCC/STREAM convention.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Timed repetitions behind each per-rank average.
    pub repetitions: usize,
    /// Minimum per-rank average time, microseconds.
    pub t_min_us: f64,
    /// Mean per-rank average time, microseconds.
    pub t_avg_us: f64,
    /// Maximum per-rank average time, microseconds (IMB's figure metric).
    pub t_max_us: f64,
}

impl Stats {
    /// Statistics of a deterministic (model-priced) measurement:
    /// min = avg = max, one repetition.
    pub fn deterministic(t_us: f64) -> Stats {
        Stats {
            repetitions: 1,
            t_min_us: t_us,
            t_avg_us: t_us,
            t_max_us: t_us,
        }
    }

    /// Statistics across per-rank average times (already averaged over
    /// `repetitions` calls each). Empty input yields all-zero stats.
    pub fn across(per_rank_us: &[f64], repetitions: usize) -> Stats {
        if per_rank_us.is_empty() {
            return Stats {
                repetitions,
                t_min_us: 0.0,
                t_avg_us: 0.0,
                t_max_us: 0.0,
            };
        }
        let t_min = per_rank_us.iter().copied().fold(f64::INFINITY, f64::min);
        let t_max = per_rank_us.iter().copied().fold(0.0f64, f64::max);
        let t_avg = per_rank_us.iter().sum::<f64>() / per_rank_us.len() as f64;
        Stats {
            repetitions,
            t_min_us: t_min,
            t_avg_us: t_avg,
            t_max_us: t_max,
        }
    }

    /// Best-of time (the minimum), microseconds.
    pub fn best_of_us(&self) -> f64 {
        self.t_min_us
    }

    /// The defining invariant: t_min <= t_avg <= t_max.
    pub fn is_ordered(&self) -> bool {
        self.t_min_us <= self.t_avg_us && self.t_avg_us <= self.t_max_us
    }
}

/// One structured measurement: benchmark identity (what ran, where, how)
/// plus its statistics and headline value. This replaces the per-crate
/// `Measurement` / summary-field plumbing that previously existed in
/// `imb::native`, `imb::sim`, `imb::virtual_run` and `hpcc::suite`.
#[derive(Clone, Copy, Debug)]
pub struct Record {
    /// Benchmark name ("PingPong", "G-HPL", "EP-STREAM-triad", ...).
    pub benchmark: &'static str,
    /// Which suite the benchmark belongs to.
    pub suite: Suite,
    /// How the measurement was produced.
    pub mode: Mode,
    /// Machine name (a `machines::Machine::name`, or "host" for native).
    pub machine: &'static str,
    /// Number of processes.
    pub procs: usize,
    /// Worker threads per rank (1 = pure message-passing; >1 = hybrid
    /// SMP ranks fanning kernels out over a per-rank pool).
    pub threads: usize,
    /// Message size in bytes; `None` for unsized workloads.
    pub bytes: Option<u64>,
    /// What `value` measures.
    pub metric: MetricKind,
    /// The headline value, in `metric.unit()`.
    pub value: f64,
    /// Timing statistics.
    pub stats: Stats,
    /// Whether the benchmark's built-in verification passed.
    pub passed: bool,
}

impl Record {
    /// Minimum per-rank average time, microseconds.
    pub fn t_min_us(&self) -> f64 {
        self.stats.t_min_us
    }

    /// Mean per-rank average time, microseconds.
    pub fn t_avg_us(&self) -> f64 {
        self.stats.t_avg_us
    }

    /// Maximum per-rank average time, microseconds.
    pub fn t_max_us(&self) -> f64 {
        self.stats.t_max_us
    }

    /// Bandwidth in MB/s, if this record measures one.
    pub fn bandwidth_mbs(&self) -> Option<f64> {
        (self.metric == MetricKind::BandwidthMBs).then_some(self.value)
    }

    /// The identity fields that name a measurement independently of the
    /// execution mode: (benchmark, suite, procs, bytes). Two runs of the
    /// same workload entry in different modes must agree on these.
    pub fn identity(&self) -> (&'static str, Suite, usize, Option<u64>) {
        (self.benchmark, self.suite, self.procs, self.bytes)
    }

    /// One JSON object for this record (serde-free).
    pub fn to_json(&self) -> String {
        let bytes = match self.bytes {
            Some(b) => b.to_string(),
            None => "null".into(),
        };
        format!(
            "{{ \"benchmark\": \"{}\", \"suite\": \"{}\", \"mode\": \"{}\", \
             \"machine\": \"{}\", \"procs\": {}, \"threads\": {}, \"bytes\": {}, \
             \"metric\": \"{}\", \"value\": {:.6}, \"unit\": \"{}\", \
             \"repetitions\": {}, \"t_min_us\": {:.6}, \"t_avg_us\": {:.6}, \
             \"t_max_us\": {:.6}, \"passed\": {} }}",
            self.benchmark,
            self.suite.as_str(),
            self.mode.as_str(),
            self.machine,
            self.procs,
            self.threads,
            bytes,
            self.metric.unit(),
            self.value,
            self.metric.unit(),
            self.stats.repetitions,
            self.stats.t_min_us,
            self.stats.t_avg_us,
            self.stats.t_max_us,
            self.passed,
        )
    }
}

/// Serialises a record stream as one JSON document (serde-free), the
/// unified artifact the campaign driver writes.
pub fn records_json(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"schema\": \"hpcbench-record-v1\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", r.to_json());
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialises an already-rendered record-line stream (one JSON object
/// per entry, as produced by [`Record::to_json`]) into the same unified
/// document as [`records_json`]. This is the assembly path for
/// multi-process campaigns, where native records arrive as canonical
/// JSON lines from worker fleets rather than as in-process [`Record`]s.
pub fn records_json_from_lines(lines: &[String]) -> String {
    let mut out = String::from("{\n  \"schema\": \"hpcbench-record-v1\",\n  \"records\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", line.trim());
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record {
            benchmark: "PingPong",
            suite: Suite::Imb,
            mode: Mode::Native,
            machine: "host",
            procs: 2,
            threads: 1,
            bytes: Some(1024),
            metric: MetricKind::BandwidthMBs,
            value: 123.4,
            stats: Stats::across(&[1.0, 2.0, 3.0], 10),
            passed: true,
        }
    }

    #[test]
    fn stats_across_orders_min_avg_max() {
        let s = Stats::across(&[3.0, 1.0, 2.0], 7);
        assert_eq!(s.t_min_us, 1.0);
        assert_eq!(s.t_avg_us, 2.0);
        assert_eq!(s.t_max_us, 3.0);
        assert_eq!(s.repetitions, 7);
        assert!(s.is_ordered());
        assert_eq!(s.best_of_us(), s.t_min_us);
    }

    #[test]
    fn deterministic_stats_collapse() {
        let s = Stats::deterministic(5.5);
        assert_eq!(s.t_min_us, s.t_max_us);
        assert_eq!(s.t_avg_us, 5.5);
        assert!(s.is_ordered());
    }

    #[test]
    fn record_accessors() {
        let r = rec();
        assert_eq!(r.t_min_us(), 1.0);
        assert_eq!(r.t_max_us(), 3.0);
        assert_eq!(r.bandwidth_mbs(), Some(123.4));
        assert_eq!(r.identity(), ("PingPong", Suite::Imb, 2, Some(1024)));
    }

    #[test]
    fn json_emission_is_wellformed() {
        let json = records_json(&[rec(), rec()]);
        assert!(json.contains("\"schema\": \"hpcbench-record-v1\""));
        assert!(json.contains("\"benchmark\": \"PingPong\""));
        assert!(json.contains("\"bytes\": 1024"));
        assert!(json.contains("\"threads\": 1"));
        assert_eq!(json.matches("\"mode\": \"native\"").count(), 2);
        // Unsized records serialise bytes as null.
        let mut r = rec();
        r.bytes = None;
        assert!(r.to_json().contains("\"bytes\": null"));
    }

    #[test]
    fn line_assembly_matches_record_assembly() {
        let records = [rec(), rec()];
        let lines: Vec<String> = records.iter().map(Record::to_json).collect();
        assert_eq!(records_json_from_lines(&lines), records_json(&records));
        assert_eq!(
            records_json_from_lines(&[]),
            records_json(&[]),
            "empty streams agree too"
        );
    }

    #[test]
    fn time_metric_has_no_bandwidth() {
        let mut r = rec();
        r.metric = MetricKind::TimeUs;
        assert_eq!(r.bandwidth_mbs(), None);
    }
}
