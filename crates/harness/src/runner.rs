//! The mode-agnostic runner: warm-up, repetition policy and IMB-style
//! statistics live here, so neither the benchmark crates nor the bench
//! binaries hand-roll timing loops or iteration tables.

use mp::{Comm, Op};

use crate::record::Stats;

/// How many timed repetitions a measurement runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepetitionPolicy {
    /// IMB 2.3's rule: 1000 iterations, scaled down for large messages.
    Imb,
    /// The IMB rule divided by 50 (floor 3): the fast CI mode every
    /// bench binary's `--smoke` flag maps to.
    Smoke,
    /// An explicit iteration count, regardless of message size.
    Fixed(usize),
}

impl RepetitionPolicy {
    /// Timed repetitions for a message of `bytes`.
    pub fn repetitions(&self, bytes: u64) -> usize {
        let full = match bytes {
            0..=4096 => 1000,
            4097..=65536 => 640,
            65537..=1048576 => 80,
            _ => 20,
        };
        match self {
            RepetitionPolicy::Imb => full,
            RepetitionPolicy::Smoke => (full / 50).max(3),
            RepetitionPolicy::Fixed(n) => *n,
        }
    }

    /// Best-of outer repetitions for noisy native measurements (the
    /// whole timed loop repeated, minimum kept).
    pub fn measure_repetitions(&self) -> usize {
        match self {
            RepetitionPolicy::Smoke => 1,
            _ => 3,
        }
    }

    /// Scales a bench binary's full-mode best-of count: unchanged at
    /// full fidelity, clamped to 2 in smoke mode.
    pub fn best_reps(&self, full: usize) -> usize {
        match self {
            RepetitionPolicy::Smoke => full.clamp(1, 2),
            RepetitionPolicy::Fixed(n) => (*n).max(1),
            RepetitionPolicy::Imb => full.max(1),
        }
    }

    /// Whether this is the smoke policy.
    pub fn is_smoke(&self) -> bool {
        *self == RepetitionPolicy::Smoke
    }
}

/// Owns warm-up and repetition policy for every execution path. One
/// `Runner` drives native HPCC components, native IMB loops, virtual
/// runs and the bench binaries alike.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    /// Untimed warm-up iterations before the timed loop.
    pub warmup: usize,
    /// Repetition policy for the timed loop.
    pub policy: RepetitionPolicy,
}

impl Runner {
    /// Full-fidelity runner: one warm-up pass, IMB repetition rule.
    pub fn standard() -> Runner {
        Runner {
            warmup: 1,
            policy: RepetitionPolicy::Imb,
        }
    }

    /// Fast-CI runner: one warm-up pass, smoke repetition rule.
    pub fn smoke() -> Runner {
        Runner {
            warmup: 1,
            policy: RepetitionPolicy::Smoke,
        }
    }

    /// A runner with an explicit iteration count.
    pub fn fixed(iters: usize) -> Runner {
        Runner {
            warmup: 1,
            policy: RepetitionPolicy::Fixed(iters),
        }
    }

    /// Timed repetitions for a message of `bytes` (unsized workloads
    /// pass `None`, which follows the small-message rule).
    pub fn repetitions(&self, bytes: Option<u64>) -> usize {
        self.policy.repetitions(bytes.unwrap_or(0)).max(1)
    }

    /// The collective timed loop, IMB convention: `warmup` untimed
    /// passes, a barrier, then `iters` timed passes. Returns this rank's
    /// per-call time in microseconds.
    pub fn time_collective(&self, comm: &Comm, iters: usize, mut body: impl FnMut(usize)) -> f64 {
        assert!(iters > 0, "need at least one iteration");
        for w in 0..self.warmup {
            body(w);
        }
        comm.barrier();
        let clock = crate::timer::Stopwatch::start();
        for it in 0..iters {
            body(it);
        }
        clock.elapsed_secs() / iters as f64 * 1e6
    }

    /// IMB cross-rank statistics: min/avg/max over the participating
    /// ranks' per-call averages. Collective; every rank returns the same
    /// stats.
    pub fn rank_stats(comm: &Comm, per_call_us: f64, participated: bool, iters: usize) -> Stats {
        let mut maxv = [if participated { per_call_us } else { 0.0 }];
        let mut minv = [if participated {
            per_call_us
        } else {
            f64::INFINITY
        }];
        let mut sums = [
            if participated { per_call_us } else { 0.0 },
            if participated { 1.0 } else { 0.0 },
        ];
        comm.allreduce(&mut maxv, Op::Max);
        comm.allreduce(&mut minv, Op::Min);
        comm.allreduce(&mut sums, Op::Sum);
        Stats {
            repetitions: iters,
            t_min_us: minv[0],
            t_avg_us: sums[0] / sums[1].max(1.0),
            t_max_us: maxv[0],
        }
    }

    /// Awaitable mirror of [`rank_stats`](Runner::rank_stats), for
    /// cooperative rank tasks.
    pub async fn rank_stats_async(
        comm: &Comm,
        per_call_us: f64,
        participated: bool,
        iters: usize,
    ) -> Stats {
        let mut maxv = [if participated { per_call_us } else { 0.0 }];
        let mut minv = [if participated {
            per_call_us
        } else {
            f64::INFINITY
        }];
        let mut sums = [
            if participated { per_call_us } else { 0.0 },
            if participated { 1.0 } else { 0.0 },
        ];
        comm.allreduce_async(&mut maxv, Op::Max).await;
        comm.allreduce_async(&mut minv, Op::Min).await;
        comm.allreduce_async(&mut sums, Op::Sum).await;
        Stats {
            repetitions: iters,
            t_min_us: minv[0],
            t_avg_us: sums[0] / sums[1].max(1.0),
            t_max_us: maxv[0],
        }
    }

    /// Best-of-`reps` wall time of one invocation of `f`, in seconds
    /// (floored at 1 ns so rates stay finite).
    pub fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t = std::time::Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best.max(1e-9)
    }

    /// Times one collective invocation of `f`, returning its result
    /// together with IMB-style cross-rank wall-time statistics
    /// (repetitions = 1, no warm-up — suited to one-shot components
    /// whose re-execution would be prohibitively expensive).
    pub fn timed_stats<T>(comm: &Comm, f: impl FnOnce() -> T) -> (T, Stats) {
        let clock = crate::timer::Stopwatch::start();
        let out = f();
        let elapsed_us = clock.elapsed_secs() * 1e6;
        (out, Runner::rank_stats(comm, elapsed_us, true, 1))
    }

    /// Awaitable mirror of [`timed_stats`](Runner::timed_stats): times
    /// one awaited region and reduces the cross-rank statistics without
    /// blocking the cooperative executor.
    pub async fn timed_stats_async<T, Fut>(comm: &Comm, f: impl FnOnce() -> Fut) -> (T, Stats)
    where
        Fut: std::future::Future<Output = T>,
    {
        let clock = crate::timer::Stopwatch::start();
        let out = f().await;
        let elapsed_us = clock.elapsed_secs() * 1e6;
        (
            out,
            Runner::rank_stats_async(comm, elapsed_us, true, 1).await,
        )
    }
}

/// Interleaved best-of accumulator for same-window A/B comparisons. The
/// caller's repetition loop prepares inputs, then times each competing
/// kernel back to back through one of the `time*` methods; the per-lane
/// minimum is kept, so all lanes see the same thermal/cache window.
pub struct BestOf {
    best: Vec<f64>,
}

impl BestOf {
    /// An accumulator comparing `lanes` competing kernels.
    pub fn new(lanes: usize) -> BestOf {
        BestOf {
            best: vec![f64::INFINITY; lanes],
        }
    }

    /// Times one invocation of `f` and folds it into `lane`'s minimum.
    pub fn time(&mut self, lane: usize, f: impl FnOnce()) {
        let t = std::time::Instant::now();
        f();
        let secs = t.elapsed().as_secs_f64();
        self.best[lane] = self.best[lane].min(secs);
    }

    /// Collective variant: barrier, stopwatch, `f`, barrier — every rank
    /// times the same window, including the slowest rank's finish.
    pub fn time_collective(&mut self, comm: &Comm, lane: usize, f: impl FnOnce()) {
        comm.barrier();
        let clock = crate::timer::Stopwatch::start();
        f();
        comm.barrier();
        let secs = clock.elapsed_secs();
        self.best[lane] = self.best[lane].min(secs);
    }

    /// The lane's best time in seconds, floored at 1 ns so derived rates
    /// stay finite.
    pub fn secs(&self, lane: usize) -> f64 {
        self.best[lane].max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imb_repetition_rule() {
        assert_eq!(RepetitionPolicy::Imb.repetitions(1024), 1000);
        assert_eq!(RepetitionPolicy::Imb.repetitions(65536), 640);
        assert_eq!(RepetitionPolicy::Imb.repetitions(1 << 20), 80);
        assert_eq!(RepetitionPolicy::Imb.repetitions(4 << 20), 20);
    }

    #[test]
    fn smoke_scales_down_with_floor() {
        assert_eq!(RepetitionPolicy::Smoke.repetitions(1024), 20);
        assert_eq!(RepetitionPolicy::Smoke.repetitions(4 << 20), 3);
        assert_eq!(RepetitionPolicy::Smoke.measure_repetitions(), 1);
        assert_eq!(RepetitionPolicy::Imb.measure_repetitions(), 3);
        assert_eq!(RepetitionPolicy::Smoke.best_reps(5), 2);
        assert_eq!(RepetitionPolicy::Imb.best_reps(5), 5);
    }

    #[test]
    fn fixed_ignores_bytes() {
        assert_eq!(RepetitionPolicy::Fixed(7).repetitions(0), 7);
        assert_eq!(RepetitionPolicy::Fixed(7).repetitions(4 << 20), 7);
    }

    #[test]
    fn timed_loop_runs_warmup_and_iters() {
        let counts = mp::run(2, |comm| {
            let runner = Runner::fixed(4);
            let mut calls = 0usize;
            let per_call = runner.time_collective(comm, 4, |_| calls += 1);
            assert!(per_call >= 0.0);
            calls
        });
        // 1 warm-up + 4 timed.
        assert_eq!(counts, vec![5, 5]);
    }

    #[test]
    fn rank_stats_cover_all_ranks() {
        let stats = mp::run(4, |comm| {
            let per_call = (comm.rank() + 1) as f64;
            Runner::rank_stats(comm, per_call, true, 10)
        });
        for s in stats {
            assert_eq!(s.t_min_us, 1.0);
            assert_eq!(s.t_max_us, 4.0);
            assert!((s.t_avg_us - 2.5).abs() < 1e-12);
            assert_eq!(s.repetitions, 10);
            assert!(s.is_ordered());
        }
    }

    #[test]
    fn best_of_keeps_per_lane_minima() {
        let mut best = BestOf::new(2);
        for rep in 0..3 {
            best.time(0, || {
                std::thread::sleep(std::time::Duration::from_micros(50))
            });
            // Lane 1 is instantaneous on one rep only; the fold keeps it.
            if rep == 1 {
                best.time(1, || {});
            } else {
                best.time(1, || {
                    std::thread::sleep(std::time::Duration::from_micros(200))
                });
            }
        }
        assert!(best.secs(0) >= 40e-6);
        assert!(best.secs(1) < best.secs(0));
        assert!(best.secs(1) >= 1e-9, "floored at 1 ns");
    }

    #[test]
    fn timed_stats_times_one_collective_region() {
        let stats = mp::run(2, |comm| {
            let (value, stats) = Runner::timed_stats(comm, || 42usize);
            assert_eq!(value, 42);
            stats
        });
        for s in stats {
            assert_eq!(s.repetitions, 1);
            assert!(s.is_ordered());
            assert!(s.t_min_us >= 0.0);
        }
    }

    #[test]
    fn rank_stats_ignore_non_participants() {
        let stats = mp::run(4, |comm| {
            let participated = comm.rank() < 2;
            Runner::rank_stats(comm, 3.0, participated, 1)
        });
        for s in stats {
            assert_eq!(s.t_min_us, 3.0, "idle ranks must not drag the min to 0");
            assert_eq!(s.t_max_us, 3.0);
        }
    }
}
