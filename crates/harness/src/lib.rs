//! The unified benchmark harness.
//!
//! This crate is the layer every execution path in the workspace routes
//! through:
//!
//! - [`Record`] — one structured result schema (benchmark, mode,
//!   machine, procs, bytes, statistics) shared by the HPCC and IMB
//!   suites across native, simulated and virtual execution.
//! - [`Runner`] — owns warm-up, the IMB-2.3 repetition rule and the
//!   cross-rank min/avg/max statistics, replacing hand-rolled timing
//!   loops.
//! - [`Workload`] / [`Registry`] — one entry per benchmark declaring
//!   metadata plus native/simulated/virtual closures, replacing
//!   per-crate dispatch.
//! - [`RunPlan`] — the campaign driver: {machines x modes x workloads x
//!   proc counts} executed against a registry, yielding one record
//!   stream that regenerates every paper table and figure.
//! - [`metrics`] — the `BENCH_*.json` named-metric sink and baseline
//!   parser shared by the bench binaries.
//!
//! The harness sits below `hpcc`/`imb` (it depends only on `mp`,
//! `simnet` and `machines`); the registry wiring the suites' closures
//! together lives above them, in `hpcbench::registry`.

pub mod explore;
pub mod metrics;
mod plan;
mod record;
mod runner;
pub mod timer;
mod workload;

pub use metrics::{Metric, MetricSink};
pub use mp::Backend;
pub use plan::{Cell, GridFn, ProcGrid, RunPlan};
pub use record::{records_json, records_json_from_lines, MetricKind, Mode, Record, Stats, Suite};
pub use runner::{BestOf, RepetitionPolicy, Runner};
pub use timer::Stopwatch;
pub use workload::{Registry, Workload, WorkloadMeta};
