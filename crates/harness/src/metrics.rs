//! Named-metric JSON emission for the bench binaries (`BENCH_*.json`):
//! one flat `{"suite": ..., "metrics": {name: {value, unit}}}` document
//! plus the matching baseline parser, shared so the three bench binaries
//! stop hand-rolling the same serialisation.

use std::fmt::Write as _;

/// One named scalar metric.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Metric name (e.g. `pingpong_8b_latency_us`).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit string (e.g. `us`, `MB/s`, `Gflop/s`, `x`).
    pub unit: &'static str,
}

/// Collects named metrics and serialises them as a `BENCH_*.json`
/// document (serde-free, line-oriented so [`parse_baseline`] can read it
/// back without a JSON parser).
#[derive(Clone, Debug)]
pub struct MetricSink {
    suite: &'static str,
    metrics: Vec<Metric>,
}

impl MetricSink {
    /// An empty sink for `suite` (the JSON document's `"suite"` field).
    pub fn new(suite: &'static str) -> MetricSink {
        MetricSink {
            suite,
            metrics: Vec::new(),
        }
    }

    /// Appends one metric.
    pub fn push(&mut self, name: impl Into<String>, value: f64, unit: &'static str) {
        self.metrics.push(Metric {
            name: name.into(),
            value,
            unit,
        });
    }

    /// The collected metrics, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Looks a metric value up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// Merges a prior run: every `(name, value)` pair is re-emitted as
    /// `<name>_baseline`, and names present in the current run also get
    /// a `<name>_speedup` ratio (higher-is-better; names ending in `_us`
    /// or `_s` are treated as times, where lower is better). Returns the
    /// speedups that were emitted.
    pub fn merge_baseline(&mut self, baseline: &[(String, f64)]) -> Vec<(String, f64)> {
        let current: Vec<(String, f64)> = self
            .metrics
            .iter()
            .map(|m| (m.name.clone(), m.value))
            .collect();
        let mut speedups = Vec::new();
        for (name, value) in baseline {
            let unit = if name.ends_with("_us") || name.ends_with("_s") {
                "us"
            } else {
                "MB/s"
            };
            self.push(format!("{name}_baseline"), *value, unit);
            if let Some((_, now)) = current.iter().find(|(n, _)| n == name) {
                let speedup = if name.ends_with("_us") || name.ends_with("_s") {
                    value / now
                } else {
                    now / value
                };
                self.push(format!("{name}_speedup"), speedup, "x");
                speedups.push((name.clone(), speedup));
            }
        }
        speedups
    }

    /// Serialises the sink as one JSON document.
    pub fn to_json(&self) -> String {
        let mut json = format!("{{\n  \"suite\": \"{}\",\n  \"metrics\": {{\n", self.suite);
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            writeln!(
                json,
                "    \"{}\": {{ \"value\": {}, \"unit\": \"{}\" }}{comma}",
                m.name,
                fmt_value(m.value),
                m.unit
            )
            .unwrap();
        }
        json.push_str("  }\n}\n");
        json
    }

    /// Writes the JSON document to `path`.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
}

/// Fixed-point for ordinary magnitudes, scientific for the extremes
/// (verification residuals near 1e-12 must not round to 0.0000).
fn fmt_value(v: f64) -> String {
    if v == 0.0 || (v.abs() >= 1e-3 && v.abs() < 1e9) {
        format!("{v:.4}")
    } else {
        format!("{v:.6e}")
    }
}

/// Extracts `"name": { "value": X` pairs from a prior `BENCH_*.json`
/// (the exact format [`MetricSink::to_json`] writes; no general JSON
/// parser needed). `_baseline` and `_speedup` entries from an earlier
/// merge are skipped so baselines don't compound.
pub fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(idx) = rest.find("\"value\":") else {
            continue;
        };
        let tail = rest[idx + 8..].trim_start();
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            if !name.ends_with("_baseline") && !name.ends_with("_speedup") {
                out.push((name.to_string(), v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_roundtrips_through_parse_baseline() {
        let mut sink = MetricSink::new("mp-transport");
        sink.push("pingpong_8b_latency_us", 1.25, "us");
        sink.push("pingpong_4096b_bw_mbs", 812.5, "MB/s");
        let parsed = parse_baseline(&sink.to_json());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "pingpong_8b_latency_us");
        assert!((parsed[0].1 - 1.25).abs() < 1e-9);
        assert!((parsed[1].1 - 812.5).abs() < 1e-9);
    }

    #[test]
    fn tiny_values_survive_serialisation() {
        let mut sink = MetricSink::new("fft");
        sink.push("gfft_p4_max_error", 3.25e-12, "abs");
        let parsed = parse_baseline(&sink.to_json());
        assert!((parsed[0].1 - 3.25e-12).abs() < 1e-18);
    }

    #[test]
    fn baseline_merge_emits_speedups() {
        let mut sink = MetricSink::new("s");
        sink.push("a_us", 2.0, "us");
        sink.push("b_mbs", 200.0, "MB/s");
        let speedups = sink.merge_baseline(&[
            ("a_us".into(), 4.0),
            ("b_mbs".into(), 100.0),
            ("gone".into(), 1.0),
        ]);
        // Lower time and higher bandwidth both read as 2x.
        assert_eq!(speedups.len(), 2);
        assert!((speedups[0].1 - 2.0).abs() < 1e-12);
        assert!((speedups[1].1 - 2.0).abs() < 1e-12);
        assert_eq!(sink.get("a_us_baseline"), Some(4.0));
        assert_eq!(sink.get("gone_baseline"), Some(1.0));
        assert!(sink.get("gone_speedup").is_none());
    }

    #[test]
    fn derived_entries_do_not_compound() {
        let mut sink = MetricSink::new("s");
        sink.push("a_us", 2.0, "us");
        sink.merge_baseline(&[("a_us".into(), 4.0)]);
        let parsed = parse_baseline(&sink.to_json());
        assert_eq!(parsed.len(), 1, "baseline/speedup entries are skipped");
        assert_eq!(parsed[0].0, "a_us");
    }
}
