//! The workload registry: one entry per benchmark, each declaring its
//! metadata (metric kind, minimum processes, sized/unsized) and closures
//! for native, simulated and virtual execution. The registry replaces
//! the per-crate ad-hoc dispatch that previously lived in `hpcc/suite.rs`,
//! `hpcc/sim.rs`, `imb/native.rs`, `imb/sim.rs` and `imb/virtual_run.rs`.

use machines::Machine;

use crate::record::{MetricKind, Mode, Record, Suite};
use crate::runner::Runner;

/// Static metadata for one workload entry.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadMeta {
    /// Workload name; the primary record a run emits carries this name.
    pub name: &'static str,
    /// Which suite the workload belongs to.
    pub suite: Suite,
    /// What the workload's headline value measures (native/simulated).
    pub metric: MetricKind,
    /// Minimum number of processes.
    pub min_procs: usize,
    /// Whether *executing* modes (native, virtual) require a
    /// power-of-two rank count (G-RandomAccess, G-FFT). The closed-form
    /// simulation handles any rank count.
    pub pow2_procs: bool,
    /// Whether the workload takes a message-size sweep (IMB benchmarks
    /// except Barrier). Unsized workloads run once per proc count.
    pub sized: bool,
}

impl WorkloadMeta {
    /// Whether `procs` is admissible in `mode`.
    pub fn admits(&self, procs: usize, mode: Mode) -> bool {
        procs >= self.min_procs
            && (mode == Mode::Simulated || !self.pow2_procs || procs.is_power_of_two())
    }
}

type NativeFn = Box<dyn Fn(&Runner, usize, Option<u64>) -> Vec<Record> + Send + Sync>;
type SimFn = Box<dyn Fn(&Machine, usize, Option<u64>) -> Vec<Record> + Send + Sync>;
type VirtFn = Box<dyn Fn(&Runner, &Machine, usize, Option<u64>) -> Vec<Record> + Send + Sync>;

/// One registry entry: metadata plus up to three execution closures.
/// A run may emit several records (EP-STREAM reports copy and triad);
/// the first record carries the workload's name.
pub struct Workload {
    /// The workload's static metadata.
    pub meta: WorkloadMeta,
    native: Option<NativeFn>,
    sim: Option<SimFn>,
    virt: Option<VirtFn>,
}

impl Workload {
    /// A new entry with no execution closures yet.
    pub fn new(meta: WorkloadMeta) -> Workload {
        Workload {
            meta,
            native: None,
            sim: None,
            virt: None,
        }
    }

    /// Attaches the native-execution closure.
    pub fn native(
        mut self,
        f: impl Fn(&Runner, usize, Option<u64>) -> Vec<Record> + Send + Sync + 'static,
    ) -> Workload {
        self.native = Some(Box::new(f));
        self
    }

    /// Attaches the simulated-execution closure.
    pub fn simulated(
        mut self,
        f: impl Fn(&Machine, usize, Option<u64>) -> Vec<Record> + Send + Sync + 'static,
    ) -> Workload {
        self.sim = Some(Box::new(f));
        self
    }

    /// Attaches the virtual-execution closure.
    pub fn virtual_mode(
        mut self,
        f: impl Fn(&Runner, &Machine, usize, Option<u64>) -> Vec<Record> + Send + Sync + 'static,
    ) -> Workload {
        self.virt = Some(Box::new(f));
        self
    }

    /// Whether this entry can run in `mode`.
    pub fn supports(&self, mode: Mode) -> bool {
        match mode {
            Mode::Native => self.native.is_some(),
            Mode::Simulated => self.sim.is_some(),
            Mode::Virtual => self.virt.is_some(),
        }
    }

    /// Runs the entry in `mode`. `machine` is required for the simulated
    /// and virtual modes and ignored natively. Returns `None` when the
    /// mode has no closure or the proc count is inadmissible.
    pub fn run(
        &self,
        mode: Mode,
        runner: &Runner,
        machine: Option<&Machine>,
        procs: usize,
        bytes: Option<u64>,
    ) -> Option<Vec<Record>> {
        if !self.meta.admits(procs, mode) {
            return None;
        }
        let bytes = if self.meta.sized { bytes } else { None };
        match mode {
            Mode::Native => self.native.as_ref().map(|f| f(runner, procs, bytes)),
            Mode::Simulated => {
                let m = machine.expect("simulated mode needs a machine");
                self.sim.as_ref().map(|f| f(m, procs, bytes))
            }
            Mode::Virtual => {
                let m = machine.expect("virtual mode needs a machine");
                self.virt.as_ref().map(|f| f(runner, m, procs, bytes))
            }
        }
    }
}

/// The registry: every workload of the campaign, looked up by name.
#[derive(Default)]
pub struct Registry {
    workloads: Vec<Workload>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds an entry. Panics on a duplicate name: the registry is the
    /// single source of truth, and two entries with one name would make
    /// record identities ambiguous.
    pub fn register(&mut self, workload: Workload) {
        assert!(
            self.get(workload.meta.name).is_none(),
            "duplicate workload {}",
            workload.meta.name
        );
        self.workloads.push(workload);
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.meta.name == name)
    }

    /// All entries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Workload> {
        self.workloads.iter()
    }

    /// Entries of one suite, in registration order.
    pub fn suite(&self, suite: Suite) -> impl Iterator<Item = &Workload> {
        self.workloads.iter().filter(move |w| w.meta.suite == suite)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Stats;

    fn dummy_record(name: &'static str, procs: usize) -> Record {
        Record {
            benchmark: name,
            suite: Suite::Imb,
            mode: Mode::Native,
            machine: "host",
            procs,
            threads: 1,
            bytes: None,
            metric: MetricKind::TimeUs,
            value: 1.0,
            stats: Stats::deterministic(1.0),
            passed: true,
        }
    }

    fn entry(name: &'static str, pow2: bool) -> Workload {
        Workload::new(WorkloadMeta {
            name,
            suite: Suite::Imb,
            metric: MetricKind::TimeUs,
            min_procs: 2,
            pow2_procs: pow2,
            sized: false,
        })
        .native(move |_, p, _| vec![dummy_record(name, p)])
    }

    #[test]
    fn registry_lookup_and_iteration() {
        let mut reg = Registry::new();
        reg.register(entry("A", false));
        reg.register(entry("B", false));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("A").is_some());
        assert!(reg.get("C").is_none());
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate workload")]
    fn duplicate_names_are_rejected() {
        let mut reg = Registry::new();
        reg.register(entry("A", false));
        reg.register(entry("A", false));
    }

    #[test]
    fn admissibility_gates_execution() {
        let w = entry("A", true);
        let runner = Runner::smoke();
        assert!(
            w.run(Mode::Native, &runner, None, 1, None).is_none(),
            "min_procs"
        );
        assert!(
            w.run(Mode::Native, &runner, None, 3, None).is_none(),
            "pow2"
        );
        let recs = w.run(Mode::Native, &runner, None, 4, None).unwrap();
        assert_eq!(recs[0].procs, 4);
        // Simulated mode has no closure here and no pow2 restriction.
        assert!(w.meta.admits(6, Mode::Simulated));
        assert!(!w.supports(Mode::Simulated));
    }
}
