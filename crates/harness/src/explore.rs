//! Schedule-space exploration of registry workloads: runs a workload's
//! virtual-mode closure under the DPOR explorer ([`mpcheck::explore`]),
//! so every `mp` world the workload creates is driven through all
//! meaningfully distinct interleavings.
//!
//! The virtual closures call [`mp::run_virtual_coop`] internally; the
//! ambient [`mp::install_explore`] hook reroutes those runs through the
//! explorer's [`Guided`](mpcheck::Guided) controller without touching
//! the workload signatures — the same pattern [`mpcheck::Session`] uses
//! for `--check`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use machines::Machine;
use mpcheck::{classify_panic, ExploreOptions, Guided, Report, RunOutcome, Schedule};

use crate::record::Mode;
use crate::runner::Runner;
use crate::workload::Workload;

/// The schedule-file target label for a workload exploration, parsable
/// by [`parse_target`].
pub fn workload_target(name: &str, machine: &Machine, procs: usize, bytes: Option<u64>) -> String {
    match bytes {
        Some(b) => format!("workload:{name}:m={}:p={procs}:b={b}", machine.name),
        None => format!("workload:{name}:m={}:p={procs}", machine.name),
    }
}

/// Splits a `workload:<name>:m=<machine>:p=<procs>[:b=<bytes>]` target
/// label back into its parts (workload name, machine name, procs,
/// bytes). Gallery targets and malformed labels yield `None`.
pub fn parse_target(target: &str) -> Option<(String, String, usize, Option<u64>)> {
    let rest = target.strip_prefix("workload:")?;
    let mut fields = rest.split(':');
    let name = fields.next()?.to_string();
    let mut machine = None;
    let mut procs = None;
    let mut bytes = None;
    for field in fields {
        if let Some(m) = field.strip_prefix("m=") {
            machine = Some(m.to_string());
        } else if let Some(p) = field.strip_prefix("p=") {
            procs = p.parse().ok();
        } else if let Some(b) = field.strip_prefix("b=") {
            bytes = Some(b.parse().ok()?);
        }
    }
    Some((name, machine?, procs?, bytes))
}

/// Runs the workload's virtual closure once under a scripted controller,
/// collecting every world's run log and any rank panic.
fn run_scripted(
    workload: &Workload,
    machine: &Machine,
    procs: usize,
    bytes: Option<u64>,
    settings: &mpcheck::Settings,
    guided: Arc<Guided>,
) -> RunOutcome {
    let logs = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&logs);
    let guard = mp::install_explore(mp::ScopedExplore {
        controller: guided,
        settings: settings.clone(),
        sink: Arc::new(move |log| sink.lock().unwrap().push(log)),
    });
    let runner = Runner::fixed(1);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        workload.run(Mode::Virtual, &runner, Some(machine), procs, bytes)
    }));
    drop(guard);
    let mut panics = Vec::new();
    if let Err(payload) = caught {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("opaque panic payload")
            .to_string();
        // Deadlock poison unwinds carry their diagnosis in the run log
        // already; anything else is a genuine rank panic.
        if let Some((rank, msg)) = classify_panic(&msg) {
            panics.push((rank, msg));
        } else if !msg.starts_with(mp::check::POISON_MARK) {
            panics.push((0, msg));
        }
    }
    let logs = std::mem::take(&mut *logs.lock().unwrap());
    RunOutcome { logs, panics }
}

/// Explores the schedule space of one workload at one (machine, procs,
/// bytes) cell. The workload must support virtual mode and admit
/// `procs`; inadmissible cells return an empty exhausted report.
pub fn explore_workload(
    workload: &Workload,
    machine: &Machine,
    procs: usize,
    bytes: Option<u64>,
    opts: &ExploreOptions,
) -> Report {
    let target = workload_target(workload.meta.name, machine, procs, bytes);
    mpcheck::explore_with(&target, opts, |guided| {
        run_scripted(workload, machine, procs, bytes, &opts.settings, guided)
    })
}

/// Replays one recorded workload schedule, strictly. The caller looks
/// the workload up from the schedule's target (see [`parse_target`]).
pub fn replay_workload(
    workload: &Workload,
    machine: &Machine,
    schedule: &Schedule,
    settings: &mpcheck::Settings,
) -> Result<Report, String> {
    let (_, _, procs, bytes) = parse_target(&schedule.target)
        .ok_or_else(|| format!("target {:?} is not a workload label", schedule.target))?;
    mpcheck::replay_with(schedule, |guided| {
        run_scripted(workload, machine, procs, bytes, settings, guided)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricKind, Record, Stats, Suite};
    use crate::workload::WorkloadMeta;
    use mpcheck::FindingClass;

    /// A minimal virtual-mode workload built directly on
    /// [`mp::run_virtual_coop`], standing in for the imb/hpcc closures
    /// (which live above this crate).
    fn toy_workload(racy: bool) -> Workload {
        Workload::new(WorkloadMeta {
            name: "toy",
            suite: Suite::Imb,
            metric: MetricKind::TimeUs,
            min_procs: 2,
            pow2_procs: false,
            sized: false,
        })
        .virtual_mode(move |_, machine, procs, _| {
            let net = machines::SharedClusterNet::new(machine, procs);
            let (_, clocks) = mp::run_virtual_coop(procs, Box::new(net), move |comm| async move {
                if racy && comm.rank() == 0 {
                    let mut sync = [0u8; 1];
                    for peer in 1..comm.size() {
                        comm.recv_async(&mut sync, peer, 99).await;
                    }
                    for _ in 1..comm.size() {
                        let _ = comm.recv_any_async::<u64>(None, Some(1)).await;
                    }
                } else if racy {
                    comm.send(&[comm.rank() as u64], 0, 1);
                    comm.send(&[1u8], 0, 99);
                } else {
                    let mut x = [comm.rank() as f64];
                    comm.allreduce_async(&mut x, mp::Op::Sum).await;
                }
                comm.v_sync_async().await;
            });
            vec![Record {
                benchmark: "toy",
                suite: Suite::Imb,
                mode: Mode::Virtual,
                machine: machine.name,
                procs,
                threads: 1,
                bytes: None,
                metric: MetricKind::TimeUs,
                value: clocks.last().map(|t| t.as_secs() * 1e6).unwrap_or(0.0),
                stats: Stats::deterministic(0.0),
                passed: true,
            }]
        })
    }

    #[test]
    fn workload_exploration_finds_a_wildcard_race() {
        let machine = machines::systems::dell_xeon();
        let report = explore_workload(
            &toy_workload(true),
            &machine,
            3,
            None,
            &ExploreOptions {
                max_schedules: 32,
                ..ExploreOptions::default()
            },
        );
        let stats = report.schedules.expect("explorer stats");
        assert!(stats.visited >= 2, "wildcard alternatives enumerated");
        let finding = report
            .findings
            .iter()
            .find(|f| f.class == FindingClass::WildcardRace)
            .unwrap_or_else(|| panic!("expected wildcard race:\n{report}"));
        let schedule = Schedule::from_json(finding.counterexample.as_deref().expect("replayable"))
            .expect("valid schedule");
        assert!(schedule.target.starts_with("workload:toy:"));
        // And the counterexample replays to the same finding class.
        let replayed = replay_workload(
            &toy_workload(true),
            &machine,
            &schedule,
            &mpcheck::Settings::default(),
        )
        .expect("replays");
        assert!(
            replayed
                .findings
                .iter()
                .any(|f| f.class == FindingClass::WildcardRace),
            "replay reproduces the race:\n{replayed}"
        );
    }

    #[test]
    fn clean_workload_explores_clean_and_exhaustively() {
        let machine = machines::systems::dell_xeon();
        let report = explore_workload(
            &toy_workload(false),
            &machine,
            2,
            None,
            &ExploreOptions {
                max_schedules: 64,
                ..ExploreOptions::default()
            },
        );
        assert!(report.clean(), "unexpected findings:\n{report}");
        let stats = report.schedules.expect("stats");
        assert!(stats.visited >= 1);
        assert!(stats.exhaustive);
    }

    #[test]
    fn target_labels_round_trip() {
        let machine = machines::systems::dell_xeon();
        let target = workload_target("pingpong", &machine, 2, Some(1024));
        let (name, m, procs, bytes) = parse_target(&target).expect("parses");
        assert_eq!(name, "pingpong");
        assert_eq!(m, machine.name);
        assert_eq!(procs, 2);
        assert_eq!(bytes, Some(1024));
        let (_, _, _, none_bytes) =
            parse_target(&workload_target("barrier", &machine, 4, None)).expect("parses");
        assert_eq!(none_bytes, None);
        assert!(parse_target("gallery:recv-cycle-2").is_none());
    }
}
