//! Hybrid-SMP support for the benchmark suite: a per-rank worker-thread
//! pool, host CPU-topology detection, and a persistent per-host tuning
//! table.
//!
//! The paper's machines all ran HPCC in hybrid MPI+SMP mode — a few
//! ranks per node, each fanning out over the node's cores. This crate is
//! the intra-rank half of that model:
//!
//! * [`pool`] — a fork-join worker pool sized per execution mode. Native
//!   ranks get `cores / ranks` threads; cooperative/virtual worlds (up
//!   to 65k ranks hosted on one OS thread) degrade to pool size 1
//!   without ever spawning.
//! * [`topo`] — CPU model / core-count / cache detection, the key the
//!   tuning table is indexed by.
//! * [`tune`] — the versioned tuning table: autotuned DGEMM blocking,
//!   FFT block schedule, HPL panel width and thread count, persisted per
//!   host and loaded transparently by the kernels (overridable by env).

pub mod pool;
pub mod topo;
pub mod tune;

pub use pool::{ambient_threads, AmbientGuard, Pool};
pub use tune::{current as tuned_now, tuned, Tuned};
