//! The per-rank worker-thread pool: deterministic fork-join parallelism
//! for the compute kernels.
//!
//! # Design
//!
//! The pool is a *sizing policy* plus a *fork-join execution engine*,
//! not a set of long-lived parked threads: the workspace forbids
//! `unsafe`, and lending stack-borrowed kernel operands to persistent
//! workers cannot be expressed safely, so parallel regions run on
//! [`std::thread::scope`] workers spawned per region. Kernel call sites
//! parallelise at *macro* granularity (a whole GEMM, a whole STREAM
//! pass, a whole FFT block band), so the per-region spawn cost is
//! amortised over milliseconds of work. What persists is the sizing —
//! the ambient thread count installed per rank — and the autotuned
//! parameters in [`crate::tune`].
//!
//! # Sizing discipline
//!
//! [`Pool::current`] reads the *ambient* thread count, resolved in
//! priority order:
//!
//! 1. the thread-local ambient installed by the runtime for this rank
//!    ([`AmbientGuard::install`]) — the `mp` runtime installs
//!    `cores / ranks` on native rank threads and **1** on cooperative /
//!    baton-serialised worlds, so a 65k-rank virtual world never spawns
//!    a single worker;
//! 2. the process-wide override ([`set_process_threads`], the bench
//!    binaries' `--threads` flag);
//! 3. the `HPCB_THREADS` environment variable;
//! 4. the tuned per-host thread count ([`crate::tune::tuned`]).
//!
//! Every parallel region partitions work deterministically (contiguous
//! chunks or round-robin bins fixed by index), so results do not depend
//! on scheduling order.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// The ambient pool size installed on this thread, if any.
    static AMBIENT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide thread-count override (0 = unset). Set by bench binaries'
/// `--threads` flag; read after the thread-local ambient, before env.
static PROCESS_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker-thread count override (0 clears it).
/// Rank-local ambient installs still take precedence, so cooperative
/// worlds stay serial even under `--threads`.
pub fn set_process_threads(n: usize) {
    PROCESS_THREADS.store(n, Ordering::Relaxed);
}

/// The worker-thread count the current thread's kernels should use.
pub fn ambient_threads() -> usize {
    if let Some(n) = AMBIENT.with(Cell::get) {
        return n.max(1);
    }
    let p = PROCESS_THREADS.load(Ordering::Relaxed);
    if p > 0 {
        return p;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    crate::tune::tuned().threads.max(1)
}

/// `HPCB_THREADS`, if set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var("HPCB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The worker-thread budget for one rank of an `n`-rank native world:
/// the process override / env / tuned count if set, else an even share
/// of the online cores (never below 1).
pub fn rank_threads(world_size: usize) -> usize {
    let p = PROCESS_THREADS.load(Ordering::Relaxed);
    if p > 0 {
        return p;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    let tuned = crate::tune::tuned().threads;
    if tuned > 1 {
        return tuned;
    }
    (crate::topo::detect().online_cpus / world_size.max(1)).max(1)
}

/// RAII install of an ambient pool size on the current thread; the
/// previous value is restored on drop. Used by the `mp` runtime when it
/// enters a rank body (native: `cores / ranks`; cooperative: 1).
pub struct AmbientGuard {
    prev: Option<usize>,
}

impl AmbientGuard {
    /// Installs `threads` as this thread's ambient pool size.
    pub fn install(threads: usize) -> AmbientGuard {
        AmbientGuard {
            prev: AMBIENT.with(|c| c.replace(Some(threads.max(1)))),
        }
    }

    /// Installs pool size 1: the guard for cooperative / virtual worlds,
    /// where thousands of ranks share one OS thread and a worker spawn
    /// per rank would oversubscribe the host by orders of magnitude.
    pub fn serial() -> AmbientGuard {
        AmbientGuard::install(1)
    }
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

/// A fork-join worker pool of a fixed size.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A serial pool (size 1): every region runs inline.
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// The pool sized by the current thread's ambient policy (see module
    /// docs for the resolution order).
    pub fn current() -> Pool {
        Pool::new(ambient_threads())
    }

    /// Number of worker threads a parallel region may use.
    pub fn size(&self) -> usize {
        self.threads
    }

    /// Runs `f(index, part)` for every part, distributing parts over the
    /// pool's workers round-robin by index (part `i` runs on worker
    /// `i % size`). Runs inline — no threads spawned — when the pool is
    /// serial or there is at most one part. Parts are disjoint `&mut`
    /// borrows, so the partitioning is race-free by construction, and
    /// the assignment is deterministic, so any per-part floating-point
    /// work is reproducible run to run.
    pub fn run_parts<T, F>(&self, parts: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let workers = self.threads.min(parts.len());
        if workers <= 1 {
            for (i, part) in parts.iter_mut().enumerate() {
                f(i, part);
            }
            return;
        }
        // Deterministic round-robin binning: worker w gets parts
        // w, w + workers, w + 2*workers, ...
        let mut bins: Vec<Vec<(usize, &mut T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, part) in parts.iter_mut().enumerate() {
            bins[i % workers].push((i, part));
        }
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = bins;
            let mine = rest.remove(0);
            for bin in rest {
                scope.spawn(move || {
                    for (i, part) in bin {
                        f(i, part);
                    }
                });
            }
            // Worker 0 is the calling thread: one fewer spawn per region.
            for (i, part) in mine {
                f(i, part);
            }
        });
    }

    /// Splits `0..len` into `size()` near-equal contiguous ranges whose
    /// boundaries are multiples of `align` (the last range takes the
    /// remainder). Empty ranges are dropped, so short inputs yield fewer
    /// parts than workers rather than empty work.
    pub fn chunk_ranges(&self, len: usize, align: usize) -> Vec<std::ops::Range<usize>> {
        chunk_ranges(len, self.threads, align)
    }
}

/// Splits `0..len` into at most `parts` contiguous ranges aligned to
/// `align` (boundaries are multiples of `align`; the final range absorbs
/// the tail). Deterministic in `(len, parts, align)` alone.
pub fn chunk_ranges(len: usize, parts: usize, align: usize) -> Vec<std::ops::Range<usize>> {
    let align = align.max(1);
    let parts = parts.max(1);
    let per = len.div_ceil(parts).div_ceil(align) * align;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    while start < len {
        let end = (start + per).min(len);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::serial();
        let mut parts = vec![0u64; 4];
        pool.run_parts(&mut parts, |i, p| *p = i as u64 + 1);
        assert_eq!(parts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn parallel_pool_covers_every_part_exactly_once() {
        let pool = Pool::new(3);
        let mut parts: Vec<u64> = vec![0; 17];
        let calls = AtomicUsize::new(0);
        pool.run_parts(&mut parts, |i, p| {
            calls.fetch_add(1, Ordering::Relaxed);
            *p = (i * i) as u64;
        });
        assert_eq!(calls.load(Ordering::Relaxed), 17);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(*p, (i * i) as u64);
        }
    }

    #[test]
    fn more_workers_than_parts_is_fine() {
        let pool = Pool::new(8);
        let mut parts = vec![0u8; 2];
        pool.run_parts(&mut parts, |_, p| *p += 1);
        assert_eq!(parts, vec![1, 1]);
    }

    #[test]
    fn ambient_guard_installs_and_restores() {
        let outer = ambient_threads();
        {
            let _g = AmbientGuard::install(7);
            assert_eq!(ambient_threads(), 7);
            {
                let _s = AmbientGuard::serial();
                assert_eq!(ambient_threads(), 1);
                assert_eq!(Pool::current().size(), 1);
            }
            assert_eq!(ambient_threads(), 7);
        }
        assert_eq!(ambient_threads(), outer);
    }

    #[test]
    fn ambient_is_thread_local() {
        let _g = AmbientGuard::install(5);
        let inner = std::thread::spawn(|| {
            let _s = AmbientGuard::serial();
            ambient_threads()
        })
        .join()
        .unwrap();
        assert_eq!(inner, 1);
        assert_eq!(ambient_threads(), 5);
    }

    #[test]
    fn chunk_ranges_cover_and_align() {
        for (len, parts, align) in [(100, 3, 8), (7, 4, 8), (0, 2, 4), (64, 2, 8), (65, 2, 8)] {
            let ranges = chunk_ranges(len, parts, align);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "len={len} parts={parts}");
                assert!(r.start == 0 || r.start.is_multiple_of(align));
                next = r.end;
            }
            assert_eq!(next.max(ranges[0].end), len, "covers len");
            assert!(ranges.len() <= parts.max(1) || len == 0);
        }
    }

    #[test]
    fn pool_clamps_zero_to_one() {
        assert_eq!(Pool::new(0).size(), 1);
    }
}
