//! Host CPU topology detection: the key the per-host tuning table is
//! indexed by, and the core budget the pool sizing divides among ranks.

use std::sync::OnceLock;

/// What the tuning table keys on: enough topology to distinguish hosts
/// whose tuned parameters would differ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostTopo {
    /// CPU model string (`model name` from `/proc/cpuinfo`, or
    /// "unknown-cpu" when undetectable).
    pub model: String,
    /// Logical CPUs available to this process.
    pub online_cpus: usize,
}

impl HostTopo {
    /// The tuning-table key for this topology: the model string with
    /// whitespace collapsed, joined with the core count. Stable across
    /// runs on the same host, distinct across machines that would tune
    /// differently.
    pub fn key(&self) -> String {
        let model: String = self
            .model
            .split_whitespace()
            .collect::<Vec<_>>()
            .join("-")
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{model}/cpus{}", self.online_cpus)
    }
}

/// Detects the host topology once per process.
pub fn detect() -> &'static HostTopo {
    static TOPO: OnceLock<HostTopo> = OnceLock::new();
    TOPO.get_or_init(|| HostTopo {
        model: cpu_model().unwrap_or_else(|| "unknown-cpu".to_string()),
        online_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// The tuning-table key for this host.
pub fn host_key() -> String {
    detect().key()
}

/// First `model name` line of `/proc/cpuinfo` (Linux); `None` elsewhere.
fn cpu_model() -> Option<String> {
    let info = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    for line in info.lines() {
        if let Some(rest) = line.strip_prefix("model name") {
            return Some(rest.trim_start_matches([' ', '\t', ':']).trim().to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_positive() {
        let a = detect();
        let b = detect();
        assert_eq!(a, b);
        assert!(a.online_cpus >= 1);
    }

    #[test]
    fn key_is_filesystem_safe() {
        let t = HostTopo {
            model: "Intel(R) Xeon(R) Processor @ 2.70GHz".to_string(),
            online_cpus: 4,
        };
        let key = t.key();
        assert!(!key.contains(' '), "{key}");
        assert!(key.ends_with("/cpus4"));
        assert!(key.chars().all(|c| c.is_ascii_alphanumeric()
            || c == '-'
            || c == '.'
            || c == '_'
            || c == '/'));
    }

    #[test]
    fn distinct_topologies_get_distinct_keys() {
        let a = HostTopo {
            model: "m".into(),
            online_cpus: 2,
        };
        let b = HostTopo {
            model: "m".into(),
            online_cpus: 4,
        };
        assert_ne!(a.key(), b.key());
    }
}
