//! The persistent per-host tuning table.
//!
//! The autotuner (`bench` crate's `tune` binary) sweeps the kernel
//! parameter space on a host and persists the winners here, keyed by
//! [`crate::topo::host_key`] — the same table-driven pattern the FFT
//! engine uses for its twiddle tables, lifted to a file so the sweep
//! survives the process. Kernels load the host's entry transparently
//! through [`tuned`]; every parameter is overridable by environment
//! variable for experiments.
//!
//! # File format (versioned)
//!
//! ```text
//! hpcbench-tune-v1
//! host <topology-key>
//! threads 2
//! dgemm_mc 64
//! dgemm_nc 256
//! dgemm_kc 256
//! fft_l1_block 1024
//! fft_l2_block 32768
//! hpl_nb 32
//! hpl_lookahead 1
//! end
//! ```
//!
//! A table whose version line does not match is *stale*: it is ignored
//! with a warning and the built-in defaults apply, so a format change
//! can never feed a kernel garbage parameters. Unknown keys inside a
//! host block are ignored (forward compatibility); malformed lines make
//! the whole table invalid (a corrupt table should be conspicuous, not
//! silently half-applied).

use std::fmt;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

/// The version stamp every table leads with.
pub const TUNE_VERSION: &str = "hpcbench-tune-v1";

/// Default tuning-table filename, read from the working directory when
/// `HPCB_TUNE_FILE` is unset.
pub const DEFAULT_TUNE_FILE: &str = "TUNE.hpcc";

/// One host's tuned kernel parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tuned {
    /// Worker threads per rank (pool sizing default).
    pub threads: usize,
    /// DGEMM macro-block rows (multiple of the 8-row microkernel).
    pub dgemm_mc: usize,
    /// DGEMM macro-block columns (multiple of the 8-column microkernel).
    pub dgemm_nc: usize,
    /// DGEMM macro-block depth.
    pub dgemm_kc: usize,
    /// FFT L1-resident block, complex elements (power of two).
    pub fft_l1_block: usize,
    /// FFT L2-resident block, complex elements (power of two).
    pub fft_l2_block: usize,
    /// HPL panel width.
    pub hpl_nb: usize,
    /// Whether HPL factors panel k+1 concurrently with the trailing
    /// update of panel k.
    pub hpl_lookahead: bool,
}

impl Default for Tuned {
    /// The untuned baseline: the constants the kernels shipped with.
    fn default() -> Tuned {
        Tuned {
            threads: 1,
            dgemm_mc: 64,
            dgemm_nc: 256,
            dgemm_kc: 256,
            fft_l1_block: 1024,
            fft_l2_block: 1 << 15,
            hpl_nb: 32,
            hpl_lookahead: true,
        }
    }
}

impl Tuned {
    /// Clamps every parameter into its valid domain: positive, DGEMM
    /// blocks rounded up to microkernel multiples (8), FFT blocks to
    /// powers of two >= 64. A table entry can therefore never drive a
    /// kernel out of its preconditions, no matter what was persisted.
    pub fn sanitized(mut self) -> Tuned {
        fn mult8(v: usize) -> usize {
            v.max(8).div_ceil(8) * 8
        }
        self.threads = self.threads.clamp(1, 1024);
        self.dgemm_mc = mult8(self.dgemm_mc);
        self.dgemm_nc = mult8(self.dgemm_nc);
        self.dgemm_kc = self.dgemm_kc.clamp(8, 1 << 20);
        self.fft_l1_block = self.fft_l1_block.clamp(64, 1 << 24).next_power_of_two();
        self.fft_l2_block = self
            .fft_l2_block
            .clamp(self.fft_l1_block, 1 << 26)
            .next_power_of_two();
        self.hpl_nb = self.hpl_nb.clamp(1, 4096);
        self
    }

    /// Applies `HPCB_*` environment overrides (using `lookup` so tests
    /// can inject variables without touching the process environment).
    pub fn with_overrides(mut self, lookup: impl Fn(&str) -> Option<String>) -> Tuned {
        fn num(v: Option<String>) -> Option<usize> {
            v.and_then(|s| s.trim().parse().ok()).filter(|&n| n > 0)
        }
        if let Some(v) = num(lookup("HPCB_THREADS")) {
            self.threads = v;
        }
        if let Some(v) = num(lookup("HPCB_DGEMM_MC")) {
            self.dgemm_mc = v;
        }
        if let Some(v) = num(lookup("HPCB_DGEMM_NC")) {
            self.dgemm_nc = v;
        }
        if let Some(v) = num(lookup("HPCB_DGEMM_KC")) {
            self.dgemm_kc = v;
        }
        if let Some(v) = num(lookup("HPCB_FFT_L1")) {
            self.fft_l1_block = v;
        }
        if let Some(v) = num(lookup("HPCB_FFT_L2")) {
            self.fft_l2_block = v;
        }
        if let Some(v) = num(lookup("HPCB_HPL_NB")) {
            self.hpl_nb = v;
        }
        if let Some(v) = lookup("HPCB_HPL_LOOKAHEAD") {
            self.hpl_lookahead = !matches!(v.trim(), "0" | "false" | "off");
        }
        self.sanitized()
    }
}

/// Why a tuning table failed to load.
#[derive(Debug)]
pub enum TuneError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The version line does not match [`TUNE_VERSION`] (stale table).
    Stale(String),
    /// A line inside the table could not be parsed.
    Parse(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Io(e) => write!(f, "cannot read tuning table: {e}"),
            TuneError::Stale(v) => write!(
                f,
                "stale tuning table version {v:?} (expected {TUNE_VERSION:?}); re-run the tuner"
            ),
            TuneError::Parse(line) => write!(f, "corrupt tuning table line: {line:?}"),
        }
    }
}

/// The on-disk table: tuned parameters for every host that ran the
/// autotuner against this file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneTable {
    entries: Vec<(String, Tuned)>,
}

impl TuneTable {
    /// An empty table.
    pub fn new() -> TuneTable {
        TuneTable::default()
    }

    /// The tuned parameters for `host_key`, if present (sanitized).
    pub fn get(&self, host_key: &str) -> Option<Tuned> {
        self.entries
            .iter()
            .find(|(k, _)| k == host_key)
            .map(|(_, t)| t.sanitized())
    }

    /// Inserts or replaces the entry for `host_key`.
    pub fn set(&mut self, host_key: &str, tuned: Tuned) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == host_key) {
            e.1 = tuned;
        } else {
            self.entries.push((host_key.to_string(), tuned));
        }
    }

    /// Number of host entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses a table from its textual form.
    pub fn parse(text: &str) -> Result<TuneTable, TuneError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        match lines.next() {
            Some(v) if v == TUNE_VERSION => {}
            other => return Err(TuneError::Stale(other.unwrap_or("").to_string())),
        }
        let mut table = TuneTable::new();
        let mut current: Option<(String, Tuned)> = None;
        for line in lines {
            if let Some(key) = line.strip_prefix("host ") {
                if current.is_some() {
                    return Err(TuneError::Parse(line.to_string()));
                }
                current = Some((key.trim().to_string(), Tuned::default()));
            } else if line == "end" {
                let (key, tuned) = current
                    .take()
                    .ok_or_else(|| TuneError::Parse(line.to_string()))?;
                table.set(&key, tuned);
            } else {
                let (k, v) = line
                    .split_once(' ')
                    .ok_or_else(|| TuneError::Parse(line.to_string()))?;
                let t = &mut current
                    .as_mut()
                    .ok_or_else(|| TuneError::Parse(line.to_string()))?
                    .1;
                let parse = |v: &str| -> Result<usize, TuneError> {
                    v.trim()
                        .parse()
                        .map_err(|_| TuneError::Parse(line.to_string()))
                };
                match k {
                    "threads" => t.threads = parse(v)?,
                    "dgemm_mc" => t.dgemm_mc = parse(v)?,
                    "dgemm_nc" => t.dgemm_nc = parse(v)?,
                    "dgemm_kc" => t.dgemm_kc = parse(v)?,
                    "fft_l1_block" => t.fft_l1_block = parse(v)?,
                    "fft_l2_block" => t.fft_l2_block = parse(v)?,
                    "hpl_nb" => t.hpl_nb = parse(v)?,
                    "hpl_lookahead" => t.hpl_lookahead = parse(v)? != 0,
                    // Unknown keys are skipped: a newer tuner may write
                    // parameters this build does not know about.
                    _ => {}
                }
            }
        }
        if current.is_some() {
            return Err(TuneError::Parse("unterminated host block".to_string()));
        }
        Ok(table)
    }

    /// Renders the table in its on-disk textual form.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(TUNE_VERSION);
        out.push('\n');
        for (key, t) in &self.entries {
            let _ = write!(
                out,
                "host {key}\nthreads {}\ndgemm_mc {}\ndgemm_nc {}\ndgemm_kc {}\n\
                 fft_l1_block {}\nfft_l2_block {}\nhpl_nb {}\nhpl_lookahead {}\nend\n",
                t.threads,
                t.dgemm_mc,
                t.dgemm_nc,
                t.dgemm_kc,
                t.fft_l1_block,
                t.fft_l2_block,
                t.hpl_nb,
                u8::from(t.hpl_lookahead),
            );
        }
        out
    }

    /// Loads a table from `path`.
    pub fn load(path: &Path) -> Result<TuneTable, TuneError> {
        let text = std::fs::read_to_string(path).map_err(TuneError::Io)?;
        TuneTable::parse(&text)
    }

    /// Persists the table to `path`.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// The tuning-table path this process reads: `HPCB_TUNE_FILE` if set,
/// else [`DEFAULT_TUNE_FILE`] in the working directory.
pub fn tune_file_path() -> std::path::PathBuf {
    std::env::var("HPCB_TUNE_FILE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from(DEFAULT_TUNE_FILE))
}

/// The tuned parameters for this host, loaded once per process:
/// the tuning table's entry for [`crate::topo::host_key`] when present
/// (a missing file simply means untuned defaults; a stale or corrupt
/// table warns on stderr and falls back to defaults), with `HPCB_*`
/// environment overrides applied on top.
pub fn tuned() -> &'static Tuned {
    static TUNED: OnceLock<Tuned> = OnceLock::new();
    TUNED.get_or_init(|| {
        let path = tune_file_path();
        let base = match TuneTable::load(&path) {
            Ok(table) => table.get(&crate::topo::host_key()).unwrap_or_default(),
            Err(TuneError::Io(_)) => Tuned::default(), // untuned host: silent
            Err(e) => {
                eprintln!(
                    "hpcbench: ignoring tuning table {}: {e}; using built-in defaults",
                    path.display()
                );
                Tuned::default()
            }
        };
        base.with_overrides(|k| std::env::var(k).ok())
    })
}

/// A candidate parameter set installed by the autotuner while it times
/// one trial. `None` (the normal state) means [`current`] serves the
/// persisted per-host entry.
static TRIAL: Mutex<Option<Tuned>> = Mutex::new(None);

/// Installs (or clears) a trial parameter set. Only the autotuner
/// calls this — it is process-wide, so trials must not run while
/// benchmark ranks are active.
pub fn set_trial(t: Option<Tuned>) {
    *TRIAL.lock().unwrap() = t.map(Tuned::sanitized);
}

/// The parameters kernels should use right now: the autotuner's trial
/// set if one is installed, else the persisted per-host entry from
/// [`tuned`]. Kernels read this at each macro-level entry (once per
/// GEMM / FFT / HPL run), so a sweep can retune between calls.
pub fn current() -> Tuned {
    TRIAL.lock().unwrap().unwrap_or_else(|| *tuned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuned {
        Tuned {
            threads: 2,
            dgemm_mc: 128,
            dgemm_nc: 512,
            dgemm_kc: 192,
            fft_l1_block: 2048,
            fft_l2_block: 1 << 16,
            hpl_nb: 64,
            hpl_lookahead: false,
        }
    }

    #[test]
    fn round_trips_through_text() {
        let mut table = TuneTable::new();
        table.set("hostA/cpus4", sample());
        table.set("hostB/cpus1", Tuned::default());
        let parsed = TuneTable::parse(&table.render()).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(parsed.get("hostA/cpus4"), Some(sample().sanitized()));
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("hpcb-tune-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table-roundtrip");
        let mut table = TuneTable::new();
        table.set("k", sample());
        table.store(&path).unwrap();
        let reloaded = TuneTable::load(&path).unwrap();
        assert_eq!(reloaded.get("k"), Some(sample().sanitized()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_version_is_rejected() {
        let text = "hpcbench-tune-v0\nhost k\nend\n";
        match TuneTable::parse(text) {
            Err(TuneError::Stale(v)) => assert_eq!(v, "hpcbench-tune-v0"),
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        for text in [
            "hpcbench-tune-v1\ngarbage-no-space\n",
            "hpcbench-tune-v1\nthreads 2\n", // key outside a host block
            "hpcbench-tune-v1\nhost k\nthreads banana\nend\n",
            "hpcbench-tune-v1\nhost k\nthreads 2\n", // unterminated
        ] {
            assert!(
                matches!(TuneTable::parse(text), Err(TuneError::Parse(_))),
                "{text:?}"
            );
        }
    }

    #[test]
    fn unknown_keys_are_forward_compatible() {
        let text = "hpcbench-tune-v1\nhost k\nthreads 3\nfuture_param 99\nend\n";
        let table = TuneTable::parse(text).unwrap();
        assert_eq!(table.get("k").unwrap().threads, 3);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = TuneTable::load(Path::new("/nonexistent/hpcb-tune")).unwrap_err();
        assert!(matches!(err, TuneError::Io(_)));
    }

    #[test]
    fn sanitize_clamps_into_valid_domains() {
        let t = Tuned {
            threads: 0,
            dgemm_mc: 3,
            dgemm_nc: 9,
            dgemm_kc: 0,
            fft_l1_block: 100,
            fft_l2_block: 1,
            hpl_nb: 0,
            hpl_lookahead: true,
        }
        .sanitized();
        assert_eq!(t.threads, 1);
        assert_eq!(t.dgemm_mc, 8);
        assert_eq!(t.dgemm_nc, 16);
        assert_eq!(t.dgemm_kc, 8);
        assert_eq!(t.fft_l1_block, 128);
        assert!(t.fft_l2_block >= t.fft_l1_block);
        assert!(t.fft_l2_block.is_power_of_two());
        assert_eq!(t.hpl_nb, 1);
    }

    #[test]
    fn env_overrides_apply_on_top() {
        let vars = [
            ("HPCB_DGEMM_MC", "96"),
            ("HPCB_HPL_NB", "48"),
            ("HPCB_HPL_LOOKAHEAD", "off"),
        ];
        let t = Tuned::default().with_overrides(|k| {
            vars.iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.to_string())
        });
        assert_eq!(t.dgemm_mc, 96);
        assert_eq!(t.hpl_nb, 48);
        assert!(!t.hpl_lookahead);
        // Untouched parameters keep their defaults.
        assert_eq!(t.dgemm_nc, Tuned::default().dgemm_nc);
    }
}
