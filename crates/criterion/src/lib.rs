//! A minimal, API-compatible subset of the `criterion` crate, so the
//! workspace benches build and run without network access to crates.io.
//!
//! The harness is deliberately simple: each benchmark is warmed up once,
//! then timed over enough iterations to fill a short measurement window,
//! and the mean per-iteration time (plus throughput, when declared) is
//! printed in a criterion-like format. There is no statistical analysis
//! or HTML report — `cargo bench` exists here to exercise the bench
//! code paths and give coarse numbers, not publication statistics.

// Vendored stand-in: item docs live with the real crate's API.
#![allow(missing_docs)]
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one benchmark's measurement phase.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(300);
/// Iteration cap so pathologically slow benches still terminate.
const MAX_ITERS: u64 = 1_000_000_000;

/// Declared per-iteration throughput, echoed as a rate in the output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier (`BenchmarkId` subset).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures under timing (`Bencher` subset).
pub struct Bencher {
    iters_done: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f` over a calibrated number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration pass.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (MEASUREMENT_WINDOW.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.total = start.elapsed();
        self.iters_done = iters;
    }

    fn per_iter(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters_done as u32
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(throughput: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match throughput {
        Throughput::Bytes(b) => {
            let rate = b as f64 / secs;
            if rate >= 1e9 {
                format!("{:.2} GiB/s", rate / (1u64 << 30) as f64)
            } else {
                format!("{:.2} MiB/s", rate / (1u64 << 20) as f64)
            }
        }
        Throughput::Elements(e) => format!("{:.2} Melem/s", e as f64 / secs / 1e6),
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.per_iter();
    match throughput {
        Some(t) => println!(
            "{label:<40} time: {:>12}   thrpt: {}",
            fmt_duration(per_iter),
            fmt_rate(t, per_iter)
        ),
        None => println!("{label:<40} time: {:>12}", fmt_duration(per_iter)),
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver (`Criterion` subset).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), None, &mut f);
        self
    }
}

/// Re-export mirroring criterion's `black_box` (std's since 1.66).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(41 + 1));
        assert!(b.iters_done >= 1);
        assert!(b.per_iter() <= Duration::from_secs(1));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("algo", 64).label, "algo/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("x", |b| b.iter(|| 3 * 3));
        g.bench_with_input(BenchmarkId::new("y", 7), &7, |b, &v| b.iter(|| v * v));
        g.finish();
    }

    #[test]
    fn rates_format_sanely() {
        assert!(fmt_rate(Throughput::Bytes(1 << 30), Duration::from_secs(1)).contains("GiB/s"));
        assert!(
            fmt_rate(Throughput::Elements(2_000_000), Duration::from_secs(1)).contains("Melem/s")
        );
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
    }
}
