//! Property tests for the simulator substrate: first-fit resource
//! invariants, topology routing laws and fabric causality.

use proptest::prelude::*;

use simnet::{
    Clos, Crossbar, Fabric, FabricParams, FatTree, Hypercube, Resource, Time, Topology, Torus3D,
};

fn build_topology(n: usize, kind: usize) -> Box<dyn Topology> {
    match kind {
        0 => Box::new(FatTree::new(n, 2 + n % 3)),
        1 => Box::new(Hypercube::new(n)),
        2 => Box::new(Crossbar::new(n)),
        3 => Box::new(Clos::new(n, 8)),
        _ => Box::new(Torus3D::new(n)),
    }
}

fn any_topology() -> impl Strategy<Value = (usize, usize)> {
    (2usize..40, 0usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// First-fit reservations never overlap, never start before ready,
    /// and account busy time exactly.
    #[test]
    fn resource_first_fit_invariants(
        reqs in prop::collection::vec((0u64..10_000, 1u64..1_000_000), 1..200),
    ) {
        let bw = 1e9;
        let mut r = Resource::new(bw);
        let mut granted: Vec<(f64, f64)> = Vec::new();
        let mut total_service = 0.0;
        for &(ready_us, bytes) in &reqs {
            let ready = Time::from_us(ready_us as f64);
            let (s, e) = r.reserve(ready, bytes);
            prop_assert!(s >= ready);
            prop_assert!(e >= s);
            let service = bytes as f64 / bw;
            prop_assert!((e.as_secs() - s.as_secs() - service).abs() < 1e-12);
            granted.push((s.as_secs(), e.as_secs()));
            total_service += service;
        }
        granted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in granted.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-12, "overlap {w:?}");
        }
        prop_assert!((r.busy_time().as_secs() - total_service).abs() < 1e-9);
        prop_assert_eq!(r.reservations(), reqs.len() as u64);
    }

    /// Every topology satisfies the routing laws for arbitrary sizes:
    /// self-routes empty, hop symmetry, in-range links, positive
    /// bisection.
    #[test]
    fn topology_routing_laws((n, kind) in any_topology()) {
        let topo = build_topology(n, kind);
        for a in 0..n {
            prop_assert!(topo.route(a, a).is_empty());
            for b in 0..n {
                if a == b { continue; }
                prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
                for l in topo.route(a, b) {
                    prop_assert!(l < topo.num_links());
                    prop_assert!(topo.link_capacity_scale(l) > 0.0);
                }
            }
        }
        prop_assert!(topo.bisection_links() > 0.0);
        prop_assert!(topo.diameter() <= n);
    }

    /// Fabric causality: arrivals never precede the message's own
    /// serialisation plus pure latency, and stats account every byte.
    #[test]
    fn fabric_causality(
        (n, kind) in any_topology(),
        transfers in prop::collection::vec((0usize..40, 0usize..40, 1u64..1_000_000), 1..60),
    ) {
        let topo = build_topology(n, kind);
        let params = FabricParams {
            link_bw: 1e9,
            nic_bw: 1e9,
            nic_duplex: true,
            base_latency: Time::from_us(3.0),
            per_hop_latency: Time::from_us(0.2),
        };
        let mut fabric = Fabric::new(topo, params);
        let mut total_bytes = 0u64;
        for &(a, b, bytes) in &transfers {
            let (src, dst) = (a % n, b % n);
            if src == dst { continue; }
            let lat = fabric.latency(src, dst);
            let arrival = fabric.transfer(src, dst, bytes, Time::ZERO);
            // Physical floor: a message can never beat its own
            // serialisation plus the pure path latency. (First-fit means
            // a *later-issued* small transfer may legitimately finish
            // before an earlier big one — no FIFO law holds per pair.)
            let floor = Time::from_secs(bytes as f64 / 1e9) + lat;
            prop_assert!(
                arrival.as_secs() >= floor.as_secs() - 1e-12,
                "arrival {arrival} below physical floor {floor}"
            );
            total_bytes += bytes;
        }
        let stats = fabric.stats();
        prop_assert_eq!(stats.bytes as u64, total_bytes, "stats must account all bytes");
    }

    /// Reset really clears the fabric: repeating the same transfer list
    /// after a reset yields identical arrivals.
    #[test]
    fn fabric_reset_is_deterministic(
        transfers in prop::collection::vec((0usize..16, 0usize..16, 1u64..100_000), 1..30),
    ) {
        let build = || Fabric::new(Box::new(Crossbar::new(16)), FabricParams {
            link_bw: 1e9, nic_bw: 1e9, nic_duplex: true,
            base_latency: Time::from_us(1.0), per_hop_latency: Time::ZERO,
        });
        let run = |f: &mut Fabric| -> Vec<f64> {
            transfers.iter().filter(|(a, b, _)| a % 16 != b % 16)
                .map(|&(a, b, bytes)| f.transfer(a % 16, b % 16, bytes, Time::ZERO).as_secs())
                .collect()
        };
        let mut f = build();
        let first = run(&mut f);
        f.reset();
        let second = run(&mut f);
        prop_assert_eq!(first, second);
    }
}
