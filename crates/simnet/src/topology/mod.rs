//! Interconnect topologies.
//!
//! The paper's five systems use five different networks with three topology
//! families (Table 2): fat-tree (SGI NUMALINK4, InfiniBand, Myrinet's Clos is
//! modelled separately), 4-D hypercube (Cray X1) and crossbar (NEC IXS).
//!
//! A [`Topology`] enumerates *interior* directed links (NIC injection and
//! ejection at the endpoints are modelled separately by the
//! [`Fabric`](crate::fabric::Fabric)) and answers routing queries. Links may
//! carry a capacity scale relative to the base link bandwidth: an ideal
//! fat-tree link aggregating `k` child links has scale `k`.

mod clos;
mod crossbar;
mod fat_tree;
mod hypercube;
mod torus;

pub use clos::Clos;
pub use crossbar::Crossbar;
pub use fat_tree::FatTree;
pub use hypercube::Hypercube;
pub use torus::Torus3D;

/// Index of a compute node attached to the fabric.
pub type NodeId = usize;
/// Index of a directed interior link.
pub type LinkId = usize;

/// An interconnect topology: a set of nodes joined by directed interior links.
pub trait Topology: Send + Sync {
    /// Human-readable topology family name.
    fn name(&self) -> &'static str;

    /// Number of attached compute nodes.
    fn num_nodes(&self) -> usize;

    /// Number of directed interior links.
    fn num_links(&self) -> usize;

    /// Capacity of `link` relative to the base link bandwidth.
    fn link_capacity_scale(&self, link: LinkId) -> f64;

    /// Directed interior links traversed from `src` to `dst`, in order.
    /// `src == dst` yields an empty route. Routes are deterministic.
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId>;

    /// Switch hops between `src` and `dst` (used for per-hop latency).
    /// At least 1 for distinct nodes even when the interior is non-blocking.
    fn hops(&self, src: NodeId, dst: NodeId) -> usize;

    /// Worst-case bisection capacity in base-link equivalents: the number of
    /// full-rate flows the fabric can carry across a worst-case half/half cut.
    fn bisection_links(&self) -> f64;

    /// Longest hop count between any pair of nodes.
    fn diameter(&self) -> usize {
        let n = self.num_nodes();
        let mut d = 0;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    d = d.max(self.hops(a, b));
                }
            }
        }
        d
    }
}

/// Checks routing invariants shared by every topology; used by unit and
/// property tests of each implementation.
#[doc(hidden)]
pub fn check_topology_invariants(t: &dyn Topology) {
    let n = t.num_nodes();
    assert!(n > 0);
    for src in 0..n {
        assert!(t.route(src, src).is_empty(), "self-route must be empty");
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let route = t.route(src, dst);
            for &l in &route {
                assert!(l < t.num_links(), "route uses out-of-range link {l}");
                assert!(t.link_capacity_scale(l) > 0.0);
            }
            assert!(t.hops(src, dst) >= 1);
            assert!(t.hops(src, dst) == t.hops(dst, src), "hop symmetry");
            // A route never visits the same directed link twice.
            let mut seen = route.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), route.len(), "route revisits a link");
        }
    }
    assert!(t.bisection_links() > 0.0);
}
