//! Ideal (capacity-scaled) fat-tree topology.
//!
//! SGI's NUMALINK4 and the Dell cluster's InfiniBand fabric are fat-trees:
//! "a fat-tree network topology [in which] the bisection bandwidth scales
//! linearly with the number of processors" (paper, Section 2.1). We model a
//! single k-ary tree whose edge capacities aggregate the leaves beneath them
//! — equivalent, for occupancy accounting, to the multi-rooted constant-rate
//! link fabric real systems build. An optional *blocking factor* thins every
//! level above the leaf switches, modelling configurations like the Dell
//! cluster's "groups of 18 nodes 1:1 with 3:1 blocking through the core IB
//! switches" (Section 2.4).

use super::{LinkId, NodeId, Topology};

/// A k-ary fat-tree over `n` compute nodes.
#[derive(Clone, Debug)]
pub struct FatTree {
    n: usize,
    arity: usize,
    blocking: f64,
    /// First edge level the blocking factor applies to (default 1: all
    /// levels above the leaf switches).
    blocking_from: usize,
    levels: usize,
    /// `level_count[l]` = number of tree vertices at level `l` (level 0 =
    /// compute nodes). Edges exist from each vertex at level `l < levels`
    /// up to its parent.
    level_count: Vec<usize>,
    /// Prefix sums of `level_count` for edge-id computation.
    edge_offset: Vec<usize>,
    num_edges: usize,
}

impl FatTree {
    /// Builds a fat-tree with switch arity `arity` over `n` nodes and no
    /// blocking (full bisection bandwidth).
    pub fn new(n: usize, arity: usize) -> FatTree {
        FatTree::with_blocking(n, arity, 1.0)
    }

    /// Builds a fat-tree whose levels above the leaf switches carry only
    /// `1/blocking` of the ideal capacity.
    pub fn with_blocking(n: usize, arity: usize, blocking: f64) -> FatTree {
        FatTree::with_blocking_from(n, arity, blocking, 1)
    }

    /// Builds a fat-tree that is ideal below edge level `from_level` and
    /// oversubscribed by `blocking` at and above it — the shape of systems
    /// whose intra-"box" fabric is full-bisection but whose box-to-box
    /// links are thin (SGI Altix BX2 beyond one 512-CPU box).
    pub fn with_blocking_from(n: usize, arity: usize, blocking: f64, from_level: usize) -> FatTree {
        assert!(n > 0, "fat-tree needs at least one node");
        assert!(from_level >= 1, "blocking below level 1 is meaningless");
        assert!(arity >= 2, "fat-tree arity must be at least 2");
        assert!(
            blocking.is_finite() && blocking >= 1.0,
            "blocking factor must be >= 1"
        );
        let mut level_count = vec![n];
        let mut c = n;
        while c > 1 {
            c = c.div_ceil(arity);
            level_count.push(c);
        }
        let levels = level_count.len() - 1; // number of edge levels
        let mut edge_offset = Vec::with_capacity(levels + 1);
        let mut acc = 0;
        for &cnt in level_count.iter().take(levels) {
            edge_offset.push(acc);
            acc += cnt;
        }
        edge_offset.push(acc);
        FatTree {
            n,
            arity,
            blocking,
            blocking_from: from_level,
            levels,
            level_count,
            edge_offset,
            num_edges: acc,
        }
    }

    /// Undirected edge id for the edge above vertex `i` at level `l`.
    fn edge_id(&self, level: usize, i: usize) -> usize {
        debug_assert!(level < self.levels && i < self.level_count[level]);
        self.edge_offset[level] + i
    }

    /// Directed link ids: even = upward, odd = downward.
    fn up(&self, level: usize, i: usize) -> LinkId {
        2 * self.edge_id(level, i)
    }

    fn down(&self, level: usize, i: usize) -> LinkId {
        2 * self.edge_id(level, i) + 1
    }

    /// Edge level of a directed link.
    fn link_level(&self, link: LinkId) -> usize {
        let e = link / 2;
        // Levels are few (log_k n); a linear scan is fine and branch-friendly.
        (0..self.levels)
            .find(|&l| e < self.edge_offset[l + 1])
            .expect("link id out of range")
    }

    /// Number of tree levels above the compute nodes.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Switch arity.
    pub fn arity(&self) -> usize {
        self.arity
    }
}

impl Topology for FatTree {
    fn name(&self) -> &'static str {
        "fat-tree"
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_links(&self) -> usize {
        2 * self.num_edges
    }

    fn link_capacity_scale(&self, link: LinkId) -> f64 {
        let level = self.link_level(link);
        // An edge above a level-l vertex aggregates up to arity^l leaves.
        let ideal = (self.arity as f64).powi(level as i32);
        if level < self.blocking_from {
            ideal
        } else {
            (ideal / self.blocking).max(1.0 / self.blocking)
        }
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        assert!(src < self.n && dst < self.n, "node out of range");
        if src == dst {
            return Vec::new();
        }
        let mut up_path = Vec::new();
        let mut down_path = Vec::new();
        let (mut a, mut b) = (src, dst);
        let mut level = 0;
        while a != b {
            up_path.push(self.up(level, a));
            down_path.push(self.down(level, b));
            a /= self.arity;
            b /= self.arity;
            level += 1;
        }
        down_path.reverse();
        up_path.extend(down_path);
        up_path
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            return 0;
        }
        let (mut a, mut b) = (src / self.arity, dst / self.arity);
        let mut h = 1; // leaf switch
        while a != b {
            a /= self.arity;
            b /= self.arity;
            h += 2; // one more switch up on each side
        }
        h
    }

    fn bisection_links(&self) -> f64 {
        if self.n == 1 {
            return 1.0;
        }
        // The worst-case cut crosses the top edge level; blocking only
        // matters if that level is at or above `blocking_from`.
        let b = if self.levels > self.blocking_from {
            self.blocking
        } else {
            1.0
        };
        (self.n as f64 / 2.0 / b).max(1.0)
    }

    fn diameter(&self) -> usize {
        if self.n == 1 {
            0
        } else {
            2 * self.levels - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::check_topology_invariants;

    #[test]
    fn small_tree_structure() {
        let t = FatTree::new(8, 2);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.levels(), 3);
        // Edges: 8 at level 0, 4 at level 1, 2 at level 2 = 14; 28 directed.
        assert_eq!(t.num_links(), 28);
        check_topology_invariants(&t);
    }

    #[test]
    fn route_same_switch_is_short() {
        let t = FatTree::new(8, 2);
        let r = t.route(0, 1);
        assert_eq!(r.len(), 2, "siblings route via one switch");
        assert_eq!(t.hops(0, 1), 1);
    }

    #[test]
    fn route_across_root() {
        let t = FatTree::new(8, 2);
        let r = t.route(0, 7);
        assert_eq!(r.len(), 6, "3 up + 3 down");
        assert_eq!(t.hops(0, 7), 5);
        assert_eq!(t.diameter(), 5);
    }

    #[test]
    fn capacity_scales_with_level() {
        let t = FatTree::new(16, 2);
        // Level-0 edge: scale 1; deepest route edges carry more.
        let route = t.route(0, 15);
        let first = t.link_capacity_scale(route[0]);
        let top = t.link_capacity_scale(route[route.len() / 2 - 1]);
        assert_eq!(first, 1.0);
        assert!(top > first, "upper links aggregate capacity");
        assert_eq!(t.bisection_links(), 8.0);
    }

    #[test]
    fn blocking_reduces_upper_capacity_and_bisection() {
        let full = FatTree::new(64, 4);
        let blocked = FatTree::with_blocking(64, 4, 3.0);
        assert_eq!(full.bisection_links(), 32.0);
        assert!((blocked.bisection_links() - 32.0 / 3.0).abs() < 1e-12);
        let route = full.route(0, 63);
        let top_link = route[route.len() / 2 - 1];
        assert!(blocked.link_capacity_scale(top_link) < full.link_capacity_scale(top_link));
    }

    #[test]
    fn non_power_of_arity_node_count() {
        let t = FatTree::new(12, 4);
        check_topology_invariants(&t);
        assert_eq!(t.levels(), 2);
    }

    #[test]
    fn single_node_tree() {
        let t = FatTree::new(1, 2);
        assert_eq!(t.num_links(), 0);
        assert!(t.route(0, 0).is_empty());
        assert_eq!(t.diameter(), 0);
    }

    #[test]
    fn routes_are_symmetric_in_length() {
        let t = FatTree::new(32, 4);
        for a in 0..32 {
            for b in 0..32 {
                assert_eq!(t.route(a, b).len(), t.route(b, a).len());
            }
        }
    }
}
