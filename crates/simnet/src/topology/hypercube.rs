//! Binary hypercube topology (Cray X1).
//!
//! "A large system is built by modified torus, called 4D-hypercube using
//! specialized routing chips" (paper, Section 2.2). We model a d-dimensional
//! binary hypercube with dimension-ordered routing; the NASA Cray X1 studied
//! in the paper has 4 nodes (a 2-cube).

use super::{LinkId, NodeId, Topology};

/// A d-dimensional binary hypercube over up to `2^d` nodes.
///
/// Node ids beyond `num_nodes` (when the attached node count is not a power
/// of two) still exist as routing points but never originate traffic.
#[derive(Clone, Debug)]
pub struct Hypercube {
    n: usize,
    dims: u32,
}

impl Hypercube {
    /// Builds the smallest hypercube containing `n` nodes.
    pub fn new(n: usize) -> Hypercube {
        assert!(n > 0, "hypercube needs at least one node");
        let dims = (usize::BITS - (n - 1).leading_zeros()).max(1);
        let dims = if n == 1 { 0 } else { dims };
        Hypercube { n, dims }
    }

    /// Builds a hypercube with exactly `dims` dimensions (`2^dims` vertices).
    pub fn with_dims(dims: u32) -> Hypercube {
        Hypercube {
            n: 1usize << dims,
            dims,
        }
    }

    /// Dimensionality of the cube.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Directed link leaving `node` along `dim`.
    fn link(&self, node: usize, dim: u32) -> LinkId {
        node * self.dims as usize + dim as usize
    }
}

impl Topology for Hypercube {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_links(&self) -> usize {
        (1usize << self.dims) * self.dims as usize
    }

    fn link_capacity_scale(&self, _link: LinkId) -> f64 {
        1.0
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        assert!(src < self.n && dst < self.n, "node out of range");
        let mut cur = src;
        let mut path = Vec::with_capacity((src ^ dst).count_ones() as usize);
        // Dimension-ordered (e-cube) routing: correct bits lowest-first.
        for dim in 0..self.dims {
            let bit = 1usize << dim;
            if (cur ^ dst) & bit != 0 {
                path.push(self.link(cur, dim));
                cur ^= bit;
            }
        }
        debug_assert_eq!(cur, dst);
        path
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        (src ^ dst).count_ones() as usize
    }

    fn bisection_links(&self) -> f64 {
        if self.dims == 0 {
            1.0
        } else {
            (1usize << (self.dims - 1)) as f64
        }
    }

    fn diameter(&self) -> usize {
        self.dims as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::check_topology_invariants;

    #[test]
    fn four_node_cube_matches_cray_x1() {
        let t = Hypercube::new(4);
        assert_eq!(t.dims(), 2);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.bisection_links(), 2.0);
        check_topology_invariants(&t);
    }

    #[test]
    fn routing_is_dimension_ordered() {
        let t = Hypercube::with_dims(4);
        let route = t.route(0b0000, 0b1011);
        assert_eq!(route.len(), 3);
        assert_eq!(t.hops(0b0000, 0b1011), 3);
        // First hop flips the lowest differing bit.
        assert_eq!(route[0], t.link(0b0000, 0));
    }

    #[test]
    fn non_power_of_two_padding() {
        let t = Hypercube::new(5);
        assert_eq!(t.dims(), 3);
        assert_eq!(t.num_nodes(), 5);
        check_topology_invariants(&t);
    }

    #[test]
    fn single_node() {
        let t = Hypercube::new(1);
        assert_eq!(t.dims(), 0);
        assert!(t.route(0, 0).is_empty());
    }

    #[test]
    fn hop_counts_are_hamming_distance() {
        let t = Hypercube::with_dims(4);
        for a in 0..16usize {
            for b in 0..16usize {
                assert_eq!(t.hops(a, b), (a ^ b).count_ones() as usize);
                assert_eq!(t.route(a, b).len(), t.hops(a, b));
            }
        }
    }
}
