//! 3-D torus topology.
//!
//! Not used by the paper's five systems, but required for the follow-up
//! machines its conclusion announces: the IBM Blue Gene/P and the Cray
//! XT4 (SeaStar) interconnects are 3-D tori.

use super::{LinkId, NodeId, Topology};

/// A `dx x dy x dz` torus with wraparound links in all three dimensions.
#[derive(Clone, Debug)]
pub struct Torus3D {
    n: usize,
    dims: [usize; 3],
}

/// Directions: +x, -x, +y, -y, +z, -z.
const DIRS: usize = 6;

impl Torus3D {
    /// Builds a torus with the given dimensions; nodes beyond `n` (when
    /// the attached node count is smaller than the full grid) exist as
    /// routing points only.
    pub fn with_dims(n: usize, dims: [usize; 3]) -> Torus3D {
        assert!(
            dims.iter().all(|&d| d >= 1),
            "torus dimensions must be >= 1"
        );
        assert!(
            n >= 1 && n <= dims.iter().product(),
            "node count exceeds the grid"
        );
        Torus3D { n, dims }
    }

    /// Builds a near-cubic torus containing `n` nodes.
    pub fn new(n: usize) -> Torus3D {
        assert!(n >= 1, "torus needs at least one node");
        let side = (n as f64).cbrt().ceil() as usize;
        let mut dims = [side.max(1); 3];
        // Shrink dimensions while the grid still fits n.
        for d in (0..3).rev() {
            while dims[d] > 1 && (dims[0] * dims[1] * dims[2]) / dims[d] * (dims[d] - 1) >= n {
                dims[d] -= 1;
            }
        }
        Torus3D { n, dims }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    fn coords(&self, node: NodeId) -> [usize; 3] {
        let [dx, dy, _] = self.dims;
        [node % dx, (node / dx) % dy, node / (dx * dy)]
    }

    fn node_at(&self, c: [usize; 3]) -> NodeId {
        let [dx, dy, _] = self.dims;
        c[0] + c[1] * dx + c[2] * dx * dy
    }

    /// Directed link leaving `node` in `dir` (see [`DIRS`]).
    fn link(&self, node: NodeId, dir: usize) -> LinkId {
        node * DIRS + dir
    }

    /// Signed shortest step count along dimension `d` from `a` to `b`
    /// with wraparound (positive = the `+` direction).
    fn signed_dist(&self, d: usize, a: usize, b: usize) -> isize {
        let n = self.dims[d] as isize;
        let fwd = ((b as isize - a as isize) % n + n) % n;
        if fwd <= n - fwd {
            fwd
        } else {
            fwd - n
        }
    }
}

impl Topology for Torus3D {
    fn name(&self) -> &'static str {
        "torus3d"
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_links(&self) -> usize {
        self.dims.iter().product::<usize>() * DIRS
    }

    fn link_capacity_scale(&self, _link: LinkId) -> f64 {
        1.0
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        assert!(src < self.n && dst < self.n, "node out of range");
        let mut cur = self.coords(src);
        let to = self.coords(dst);
        let mut path = Vec::new();
        // Dimension-ordered, shortest wraparound direction per dimension.
        for d in 0..3 {
            let mut steps = self.signed_dist(d, cur[d], to[d]);
            while steps != 0 {
                let dir = 2 * d + usize::from(steps < 0);
                path.push(self.link(self.node_at(cur), dir));
                let dim = self.dims[d];
                cur[d] = if steps > 0 {
                    (cur[d] + 1) % dim
                } else {
                    (cur[d] + dim - 1) % dim
                };
                steps -= steps.signum();
            }
        }
        debug_assert_eq!(cur, to);
        path
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        let a = self.coords(src);
        let b = self.coords(dst);
        (0..3)
            .map(|d| self.signed_dist(d, a[d], b[d]).unsigned_abs())
            .sum()
    }

    fn bisection_links(&self) -> f64 {
        // Cut across the largest dimension: two crossing link sets (the
        // direct and the wraparound side), each of size (other dims).
        let (dmax_idx, _) = self
            .dims
            .iter()
            .enumerate()
            .max_by_key(|&(_, d)| *d)
            .expect("three dims");
        let others: usize = self
            .dims
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != dmax_idx)
            .map(|(_, d)| d)
            .product();
        if self.dims[dmax_idx] == 1 {
            return 1.0;
        }
        (2 * others) as f64
    }

    fn diameter(&self) -> usize {
        self.dims.iter().map(|&d| d / 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::check_topology_invariants;

    #[test]
    fn small_tori_validate() {
        for n in [1usize, 2, 5, 8, 27, 30, 64] {
            let t = Torus3D::new(n);
            assert_eq!(t.num_nodes(), n);
            assert!(t.dims().iter().product::<usize>() >= n);
            check_topology_invariants(&t);
        }
    }

    #[test]
    fn explicit_dims_route_correctly() {
        let t = Torus3D::with_dims(24, [4, 3, 2]);
        check_topology_invariants(&t);
        assert_eq!(t.diameter(), 2 + 1 + 1);
    }

    #[test]
    fn wraparound_takes_the_short_way() {
        let t = Torus3D::with_dims(8, [8, 1, 1]);
        // 0 -> 7 is one wraparound hop, not seven forward hops.
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.route(0, 7).len(), 1);
        assert_eq!(t.hops(0, 4), 4);
    }

    #[test]
    fn route_length_equals_hops_everywhere() {
        let t = Torus3D::with_dims(18, [3, 3, 2]);
        for a in 0..18 {
            for b in 0..18 {
                assert_eq!(t.route(a, b).len(), t.hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn bisection_matches_theory() {
        // 4x4x4 torus: cut in any dim crosses 2*16 links.
        let t = Torus3D::with_dims(64, [4, 4, 4]);
        assert_eq!(t.bisection_links(), 32.0);
        // Degenerate 1-wide dimension.
        let flat = Torus3D::with_dims(16, [16, 1, 1]);
        assert_eq!(flat.bisection_links(), 2.0);
    }

    #[test]
    fn bluegene_like_shape() {
        // BG/P rack-scale: 8x8x16 = 1024 nodes.
        let t = Torus3D::with_dims(1024, [8, 8, 16]);
        check_invariants_sample(&t);
        assert_eq!(t.diameter(), 4 + 4 + 8);
    }

    /// Sampled invariant check (the full pairwise loop is O(n^2)).
    fn check_invariants_sample(t: &Torus3D) {
        for a in (0..t.num_nodes()).step_by(97) {
            for b in (0..t.num_nodes()).step_by(61) {
                assert_eq!(t.hops(a, b), t.hops(b, a));
                assert_eq!(t.route(a, b).len(), t.hops(a, b));
            }
        }
    }
}
