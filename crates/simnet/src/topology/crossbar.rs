//! Full crossbar topology (NEC IXS).
//!
//! "The IXS is a 128x128 crossbar switch. Each individual link has a peak
//! bi-directional bandwidth of 16 GB/s" (paper, Section 2.5). A full
//! crossbar's interior is non-blocking: the only contention points are the
//! per-node ports, which the [`Fabric`](crate::fabric::Fabric) models as NIC
//! injection/ejection resources. The topology therefore contributes no
//! interior links, only a one-switch hop for latency.

use super::{LinkId, NodeId, Topology};

/// A single-stage full crossbar over `n` nodes.
#[derive(Clone, Debug)]
pub struct Crossbar {
    n: usize,
}

impl Crossbar {
    /// Builds an `n`-port crossbar.
    pub fn new(n: usize) -> Crossbar {
        assert!(n > 0, "crossbar needs at least one node");
        Crossbar { n }
    }
}

impl Topology for Crossbar {
    fn name(&self) -> &'static str {
        "crossbar"
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_links(&self) -> usize {
        0
    }

    fn link_capacity_scale(&self, _link: LinkId) -> f64 {
        1.0
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        assert!(src < self.n && dst < self.n, "node out of range");
        Vec::new()
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        usize::from(src != dst)
    }

    fn bisection_links(&self) -> f64 {
        (self.n as f64 / 2.0).max(1.0)
    }

    fn diameter(&self) -> usize {
        usize::from(self.n > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::check_topology_invariants;

    #[test]
    fn interior_is_non_blocking() {
        let t = Crossbar::new(128);
        assert_eq!(t.num_links(), 0);
        assert!(t.route(3, 97).is_empty());
        assert_eq!(t.hops(3, 97), 1);
        assert_eq!(t.hops(5, 5), 0);
        assert_eq!(t.bisection_links(), 64.0);
        assert_eq!(t.diameter(), 1);
        check_topology_invariants(&t);
    }

    #[test]
    fn single_port() {
        let t = Crossbar::new(1);
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.bisection_links(), 1.0);
    }
}
