//! Three-stage Clos network (Myrinet).
//!
//! "Myrinet offers ready to use 8-256 port switches. The 8 and 16 port
//! switches are full crossbars" (paper, Section 2.3); multi-switch Myrinet
//! installations compose these crossbars into a Clos/spine arrangement. We
//! model a classic three-stage Clos: edge switches each serving `down`
//! nodes, fully wired to `middle` spine crossbars.

use super::{LinkId, NodeId, Topology};

/// A three-stage Clos fabric over `n` nodes.
#[derive(Clone, Debug)]
pub struct Clos {
    n: usize,
    down: usize,
    num_edge: usize,
    num_middle: usize,
}

impl Clos {
    /// Builds a Clos network from `radix`-port crossbar switches: each edge
    /// switch dedicates half its ports to nodes and half to the spine, which
    /// makes the fabric rearrangeably non-blocking.
    pub fn new(n: usize, radix: usize) -> Clos {
        assert!(n > 0, "clos needs at least one node");
        assert!(
            radix >= 2 && radix.is_multiple_of(2),
            "radix must be even and >= 2"
        );
        let down = radix / 2;
        let num_edge = n.div_ceil(down);
        Clos {
            n,
            down,
            num_edge,
            num_middle: down,
        }
    }

    /// Builds a Clos with an explicit spine width (allows oversubscription
    /// when `middle < radix/2`).
    pub fn with_spine(n: usize, radix: usize, middle: usize) -> Clos {
        let mut c = Clos::new(n, radix);
        assert!(middle >= 1);
        c.num_middle = middle;
        c
    }

    /// Edge switch serving `node`.
    fn edge_of(&self, node: NodeId) -> usize {
        node / self.down
    }

    /// Directed uplink from edge switch `e` to middle switch `m`.
    fn up(&self, e: usize, m: usize) -> LinkId {
        2 * (e * self.num_middle + m)
    }

    /// Directed downlink from middle switch `m` to edge switch `e`.
    fn dn(&self, e: usize, m: usize) -> LinkId {
        2 * (e * self.num_middle + m) + 1
    }

    /// Number of edge switches.
    pub fn num_edge_switches(&self) -> usize {
        self.num_edge
    }

    /// Number of middle (spine) switches.
    pub fn num_middle_switches(&self) -> usize {
        self.num_middle
    }
}

impl Topology for Clos {
    fn name(&self) -> &'static str {
        "clos"
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_links(&self) -> usize {
        2 * self.num_edge * self.num_middle
    }

    fn link_capacity_scale(&self, _link: LinkId) -> f64 {
        1.0
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        assert!(src < self.n && dst < self.n, "node out of range");
        if src == dst {
            return Vec::new();
        }
        let (es, ed) = (self.edge_of(src), self.edge_of(dst));
        if es == ed {
            // Same edge crossbar: non-blocking, no spine traversal.
            return Vec::new();
        }
        // Deterministic, direction-symmetric spine selection.
        let m = (src + dst) % self.num_middle;
        vec![self.up(es, m), self.dn(ed, m)]
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            0
        } else if self.edge_of(src) == self.edge_of(dst) {
            1
        } else {
            3
        }
    }

    fn bisection_links(&self) -> f64 {
        ((self.num_edge * self.num_middle) as f64 / 2.0).max(1.0)
    }

    fn diameter(&self) -> usize {
        if self.n == 1 {
            0
        } else if self.num_edge == 1 {
            1
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::check_topology_invariants;

    #[test]
    fn myrinet_like_64_nodes() {
        let t = Clos::new(64, 16);
        assert_eq!(t.num_edge_switches(), 8);
        assert_eq!(t.num_middle_switches(), 8);
        assert_eq!(t.bisection_links(), 32.0);
        assert_eq!(t.diameter(), 3);
        check_topology_invariants(&t);
    }

    #[test]
    fn same_switch_traffic_stays_local() {
        let t = Clos::new(64, 16);
        assert!(t.route(0, 7).is_empty());
        assert_eq!(t.hops(0, 7), 1);
    }

    #[test]
    fn cross_switch_traffic_uses_one_spine() {
        let t = Clos::new(64, 16);
        let r = t.route(0, 63);
        assert_eq!(r.len(), 2);
        assert_eq!(t.hops(0, 63), 3);
        // Symmetric spine selection: reverse route uses the same spine pair.
        let rev = t.route(63, 0);
        assert_eq!(rev.len(), 2);
    }

    #[test]
    fn oversubscribed_spine() {
        let full = Clos::new(64, 16);
        let thin = Clos::with_spine(64, 16, 4);
        assert!(thin.bisection_links() < full.bisection_links());
        check_topology_invariants(&thin);
    }

    #[test]
    fn tiny_cluster_single_switch() {
        let t = Clos::new(4, 16);
        assert_eq!(t.num_edge_switches(), 1);
        assert!(t.route(0, 3).is_empty());
        assert_eq!(t.diameter(), 1);
    }
}
