//! Unit helpers shared across the simulator and the machine models.
//!
//! Bandwidths in this workspace follow the paper's convention: **GB/s means
//! 10^9 bytes per second** (decimal), matching how vendors quote link rates
//! (e.g. "NEC IXS: 16 GB/s per direction"). Message sizes follow the IMB
//! convention of binary sizes (1 MB message = 2^20 bytes).

/// One kibibyte (2^10 bytes) — IMB message-size convention.
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes) — IMB message-size convention ("1 MB" in the paper).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;

/// Converts a vendor-style bandwidth in GB/s (10^9 bytes/s) to bytes/s.
#[inline]
pub fn gbps(gigabytes_per_sec: f64) -> f64 {
    gigabytes_per_sec * 1e9
}

/// Converts a vendor-style bandwidth in MB/s (10^6 bytes/s) to bytes/s.
#[inline]
pub fn mbps(megabytes_per_sec: f64) -> f64 {
    megabytes_per_sec * 1e6
}

/// Converts a rate in Gflop/s to flop/s.
#[inline]
pub fn gflops(g: f64) -> f64 {
    g * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(GIB, 1024 * 1024 * 1024);
        assert_eq!(gbps(16.0), 16e9);
        assert_eq!(mbps(841.0), 841e6);
        assert_eq!(gflops(6.4), 6.4e9);
    }
}
