//! Communication schedules: the lingua franca between the message-passing
//! runtime's collective algorithms and the fabric simulator.
//!
//! A [`Schedule`] is a sequence of rounds; each round lists point-to-point
//! transfers (by *rank*) and local reduction work. The `mp` crate's schedule
//! generators emit these for every collective algorithm, the trace transport
//! cross-checks real executions against them, and
//! `machines::ClusterSim` replays them against a machine model to obtain
//! simulated timings.

use crate::time::Time;

/// One point-to-point transfer within a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Transfer {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
}

/// Local computation performed by a rank within a round (e.g. combining a
/// received reduction operand with the local accumulator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalWork {
    /// The rank doing the work.
    pub rank: usize,
    /// Bytes of operand data streamed through the reduction.
    pub bytes: u64,
}

/// One communication round: transfers that may proceed concurrently,
/// followed by per-rank local work that depends on the received data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Round {
    /// Concurrent transfers.
    pub transfers: Vec<Transfer>,
    /// Post-transfer local work.
    pub work: Vec<LocalWork>,
}

impl Round {
    /// A round containing only the given transfers.
    pub fn of(transfers: Vec<Transfer>) -> Round {
        Round {
            transfers,
            work: Vec::new(),
        }
    }

    /// True if the round moves no data and does no work.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty() && self.work.is_empty()
    }
}

/// A complete communication schedule over `nranks` ranks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    /// Number of participating ranks.
    pub nranks: usize,
    /// Rounds in dependency order.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// An empty schedule over `nranks` ranks.
    pub fn new(nranks: usize) -> Schedule {
        Schedule {
            nranks,
            rounds: Vec::new(),
        }
    }

    /// Appends a round.
    pub fn push(&mut self, round: Round) {
        self.rounds.push(round);
    }

    /// Total payload bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| r.transfers.iter())
            .map(|t| t.bytes)
            .sum()
    }

    /// Total number of point-to-point messages.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.transfers.len()).sum()
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// All transfers as a sorted multiset — the canonical form used when
    /// comparing a schedule against a recorded execution trace.
    pub fn transfer_multiset(&self) -> Vec<Transfer> {
        let mut v: Vec<Transfer> = self
            .rounds
            .iter()
            .flat_map(|r| r.transfers.iter().copied())
            .collect();
        v.sort_unstable();
        v
    }

    /// Validates rank bounds and non-self transfers. Returns an error string
    /// naming the first offending entry.
    pub fn validate(&self) -> Result<(), String> {
        for (i, round) in self.rounds.iter().enumerate() {
            for t in &round.transfers {
                if t.src >= self.nranks || t.dst >= self.nranks {
                    return Err(format!(
                        "round {i}: transfer {t:?} out of range for {} ranks",
                        self.nranks
                    ));
                }
                if t.src == t.dst {
                    return Err(format!("round {i}: self-transfer {t:?}"));
                }
            }
            for w in &round.work {
                if w.rank >= self.nranks {
                    return Err(format!("round {i}: work {w:?} out of range"));
                }
            }
        }
        Ok(())
    }
}

/// Costs of a point-to-point transfer as seen by the two endpoints.
#[derive(Clone, Copy, Debug)]
pub struct P2pCost {
    /// When the sender may proceed (its send buffer is drained).
    pub sender_done: Time,
    /// When the last byte is available at the receiver.
    pub arrival: Time,
}

/// Replays a schedule against per-rank virtual clocks.
///
/// `transfer(src, dst, bytes, ready)` prices one message given the sender's
/// readiness; `work(rank, bytes, start)` prices local reduction work.
/// Both callbacks may carry mutable fabric state. Returns the completion
/// time (the maximum clock over all ranks).
///
/// Transfers within a round are *concurrent*: every send becomes ready at
/// its sender's round-start clock (several sends by one rank in the same
/// round serialise after one another), matching MPI semantics where a
/// `sendrecv` posts its send before blocking on the receive. Receivers
/// advance to `max(clock, arrival)`. Across rounds the dependency
/// structure of tree/ring/doubling collectives is preserved: a rank that
/// receives in round *r* forwards in round *r+1* no earlier than its
/// arrival.
pub fn execute<FT, FW>(
    schedule: &Schedule,
    clocks: &mut [Time],
    mut transfer: FT,
    mut work: FW,
) -> Time
where
    FT: FnMut(usize, usize, u64, Time) -> P2pCost,
    FW: FnMut(usize, u64, Time) -> Time,
{
    assert_eq!(clocks.len(), schedule.nranks, "clock vector size mismatch");
    // Send cursors decouple this round's send readiness from this round's
    // arrivals; reused across rounds to avoid per-round allocation.
    let mut send_cursor: Vec<Time> = clocks.to_vec();
    for round in &schedule.rounds {
        send_cursor.copy_from_slice(clocks);
        for t in &round.transfers {
            let cost = transfer(t.src, t.dst, t.bytes, send_cursor[t.src]);
            send_cursor[t.src] = send_cursor[t.src].max(cost.sender_done);
            clocks[t.src] = clocks[t.src].max(cost.sender_done);
            clocks[t.dst] = clocks[t.dst].max(cost.arrival);
        }
        for w in &round.work {
            clocks[w.rank] = work(w.rank, w.bytes, clocks[w.rank]);
        }
    }
    clocks.iter().copied().fold(Time::ZERO, Time::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_cost(latency_us: f64, bw: f64) -> impl FnMut(usize, usize, u64, Time) -> P2pCost {
        move |_s, _d, bytes, ready| {
            let dur = Time::from_secs(bytes as f64 / bw) + Time::from_us(latency_us);
            P2pCost {
                sender_done: ready + Time::from_us(0.5),
                arrival: ready + dur,
            }
        }
    }

    fn no_work(_r: usize, _b: u64, start: Time) -> Time {
        start
    }

    #[test]
    fn schedule_accounting() {
        let mut s = Schedule::new(4);
        s.push(Round::of(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes: 100,
            },
            Transfer {
                src: 2,
                dst: 3,
                bytes: 200,
            },
        ]));
        s.push(Round::of(vec![Transfer {
            src: 1,
            dst: 2,
            bytes: 50,
        }]));
        assert_eq!(s.total_bytes(), 350);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.num_rounds(), 2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_entries() {
        let mut s = Schedule::new(2);
        s.push(Round::of(vec![Transfer {
            src: 0,
            dst: 2,
            bytes: 1,
        }]));
        assert!(s.validate().is_err());
        let mut s2 = Schedule::new(2);
        s2.push(Round::of(vec![Transfer {
            src: 1,
            dst: 1,
            bytes: 1,
        }]));
        assert!(s2.validate().is_err());
    }

    #[test]
    fn dependency_chain_accumulates() {
        // 0 -> 1 -> 2 -> 3, 1 MB each at 1 GB/s: three sequential milliseconds.
        let mut s = Schedule::new(4);
        for i in 0..3 {
            s.push(Round::of(vec![Transfer {
                src: i,
                dst: i + 1,
                bytes: 1_000_000,
            }]));
        }
        let mut clocks = vec![Time::ZERO; 4];
        let t = execute(&s, &mut clocks, fixed_cost(0.0, 1e9), no_work);
        assert!((t.as_secs() - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn parallel_transfers_overlap() {
        let mut s = Schedule::new(4);
        s.push(Round::of(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            },
            Transfer {
                src: 2,
                dst: 3,
                bytes: 1_000_000,
            },
        ]));
        let mut clocks = vec![Time::ZERO; 4];
        let t = execute(&s, &mut clocks, fixed_cost(0.0, 1e9), no_work);
        assert!((t.as_secs() - 1e-3).abs() < 1e-9, "one round, not two");
    }

    #[test]
    fn work_extends_the_receiving_rank() {
        let mut s = Schedule::new(2);
        s.push(Round {
            transfers: vec![Transfer {
                src: 0,
                dst: 1,
                bytes: 1000,
            }],
            work: vec![LocalWork {
                rank: 1,
                bytes: 1000,
            }],
        });
        let mut clocks = vec![Time::ZERO; 2];
        let t = execute(&s, &mut clocks, fixed_cost(0.0, 1e9), |_r, bytes, start| {
            start + Time::from_secs(bytes as f64 / 1e8)
        });
        let expected = 1000.0 / 1e9 + 1000.0 / 1e8;
        assert!((t.as_secs() - expected).abs() < 1e-12);
    }

    #[test]
    fn transfer_multiset_is_order_independent() {
        let mut a = Schedule::new(3);
        a.push(Round::of(vec![
            Transfer {
                src: 0,
                dst: 1,
                bytes: 10,
            },
            Transfer {
                src: 1,
                dst: 2,
                bytes: 20,
            },
        ]));
        let mut b = Schedule::new(3);
        b.push(Round::of(vec![Transfer {
            src: 1,
            dst: 2,
            bytes: 20,
        }]));
        b.push(Round::of(vec![Transfer {
            src: 0,
            dst: 1,
            bytes: 10,
        }]));
        assert_eq!(a.transfer_multiset(), b.transfer_multiset());
    }
}
