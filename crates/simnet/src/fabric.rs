//! The fabric: topology + occupancy-timeline resources + latency model.
//!
//! A [`Fabric`] owns one [`Resource`] per directed interior link of its
//! topology plus per-node NIC injection/ejection resources, and answers the
//! single question the benchmark simulations ask: *if node `a` starts
//! sending `b` bytes to node `c` at virtual time `t`, when does the message
//! fully arrive?* Messages are cut-through routed: every resource on the
//! path is occupied for `bytes / bandwidth`, the resources operate
//! concurrently, and arrival is bounded by the most congested one.

use crate::resource::Resource;
use crate::time::Time;
use crate::topology::{NodeId, Topology};

/// Bandwidth/latency parameters of a fabric.
#[derive(Clone, Copy, Debug)]
pub struct FabricParams {
    /// Bytes/s of a base interior link, per direction.
    pub link_bw: f64,
    /// Bytes/s a node can inject into (and accept from) the fabric.
    pub nic_bw: f64,
    /// Whether a node can inject and eject at full rate simultaneously.
    /// PCI-X era NICs (Myrinet on the Cray Opteron cluster) effectively
    /// cannot; modern HCAs can.
    pub nic_duplex: bool,
    /// End-to-end zero-byte message latency (the "MPI latency" the paper
    /// quotes per system), charged once per message.
    pub base_latency: Time,
    /// Additional latency per switch hop.
    pub per_hop_latency: Time,
}

impl FabricParams {
    fn validate(&self) {
        assert!(self.link_bw > 0.0 && self.link_bw.is_finite());
        assert!(self.nic_bw > 0.0 && self.nic_bw.is_finite());
    }
}

/// Aggregate traffic statistics of a fabric since the last reset.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FabricStats {
    /// Number of inter-node messages carried.
    pub transfers: u64,
    /// Total payload bytes carried.
    pub bytes: f64,
    /// Busy time of the most-occupied resource (link or NIC).
    pub max_busy: f64,
}

/// One resource's traffic record, for hot-spot analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceStats {
    /// What the resource is.
    pub kind: ResourceKind,
    /// Node or link index within its kind.
    pub index: usize,
    /// Total busy seconds.
    pub busy: f64,
    /// Bytes served.
    pub bytes: f64,
    /// Reservations granted.
    pub reservations: u64,
}

/// Resource classes inside a fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// Per-node NIC injection (also ejection on half-duplex NICs).
    Inject,
    /// Per-node NIC ejection (full-duplex fabrics only).
    Eject,
    /// Interior topology link.
    Link,
}

/// A simulated interconnect fabric.
pub struct Fabric {
    topo: Box<dyn Topology>,
    params: FabricParams,
    inject: Vec<Resource>,
    eject: Vec<Resource>,
    links: Vec<Resource>,
    transfers: u64,
    bytes: f64,
}

impl Fabric {
    /// Builds a fabric over `topo` with the given parameters.
    pub fn new(topo: Box<dyn Topology>, params: FabricParams) -> Fabric {
        params.validate();
        let n = topo.num_nodes();
        let inject = (0..n).map(|_| Resource::new(params.nic_bw)).collect();
        let eject = if params.nic_duplex {
            (0..n).map(|_| Resource::new(params.nic_bw)).collect()
        } else {
            Vec::new() // half-duplex: ejection shares the injection resource
        };
        let links = (0..topo.num_links())
            .map(|l| Resource::new(params.link_bw * topo.link_capacity_scale(l)))
            .collect();
        Fabric {
            topo,
            params,
            inject,
            eject,
            links,
            transfers: 0,
            bytes: 0.0,
        }
    }

    /// Number of attached compute nodes.
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// The fabric's parameters.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// The underlying topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Pure latency (no occupancy) of a message from `src` to `dst`.
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Time {
        self.params.base_latency + self.params.per_hop_latency * self.topo.hops(src, dst) as f64
    }

    /// Simulates an inter-node message: `bytes` from `src` to `dst`, ready
    /// to inject at `ready`. Returns the time the last byte arrives.
    ///
    /// Panics if `src == dst`; intra-node traffic never touches the fabric.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, ready: Time) -> Time {
        assert_ne!(src, dst, "intra-node traffic must not enter the fabric");
        let route = self.topo.route(src, dst);
        let latency = self.latency(src, dst);

        // Cut-through pipeline: the head of the message proceeds to the next
        // resource as soon as the previous one starts serving; each resource
        // is occupied for its full serialisation time.
        let (mut head, mut done) = self.inject[src].reserve(ready, bytes);
        for l in route {
            let (s, e) = self.links[l].reserve(head, bytes);
            head = s;
            done = done.max(e);
        }
        let eject = if self.params.nic_duplex {
            &mut self.eject[dst]
        } else {
            &mut self.inject[dst]
        };
        let (_, e) = eject.reserve(head, bytes);
        done = done.max(e);

        self.transfers += 1;
        self.bytes += bytes as f64;
        done + latency
    }

    /// Traffic statistics since construction or the last [`reset`](Self::reset).
    pub fn stats(&self) -> FabricStats {
        let max_busy = self
            .inject
            .iter()
            .chain(self.eject.iter())
            .chain(self.links.iter())
            .map(|r| r.busy_time().as_secs())
            .fold(0.0, f64::max);
        FabricStats {
            transfers: self.transfers,
            bytes: self.bytes,
            max_busy,
        }
    }

    /// The `k` busiest resources, sorted by busy time descending — the
    /// fabric's hot spots under the traffic simulated so far.
    pub fn hot_spots(&self, k: usize) -> Vec<ResourceStats> {
        let mut all: Vec<ResourceStats> = Vec::new();
        let collect = |kind: ResourceKind, list: &[Resource], all: &mut Vec<ResourceStats>| {
            for (index, r) in list.iter().enumerate() {
                if r.reservations() > 0 {
                    all.push(ResourceStats {
                        kind,
                        index,
                        busy: r.busy_time().as_secs(),
                        bytes: r.served_bytes(),
                        reservations: r.reservations(),
                    });
                }
            }
        };
        collect(ResourceKind::Inject, &self.inject, &mut all);
        collect(ResourceKind::Eject, &self.eject, &mut all);
        collect(ResourceKind::Link, &self.links, &mut all);
        all.sort_by(|a, b| b.busy.total_cmp(&a.busy));
        all.truncate(k);
        all
    }

    /// Clears all occupancy timelines and counters.
    pub fn reset(&mut self) {
        for r in self
            .inject
            .iter_mut()
            .chain(self.eject.iter_mut())
            .chain(self.links.iter_mut())
        {
            r.reset();
        }
        self.transfers = 0;
        self.bytes = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Crossbar, FatTree};

    fn params() -> FabricParams {
        FabricParams {
            link_bw: 1e9,
            nic_bw: 1e9,
            nic_duplex: true,
            base_latency: Time::from_us(5.0),
            per_hop_latency: Time::from_us(0.1),
        }
    }

    #[test]
    fn single_message_time_is_latency_plus_serialisation() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        let arrival = f.transfer(0, 1, 1_000_000, Time::ZERO);
        // 1 MB at 1 GB/s = 1 ms, + 5.1 us latency (1 hop).
        let expected = 1e-3 + 5.1e-6;
        assert!((arrival.as_secs() - expected).abs() < 1e-9, "{arrival:?}");
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        let arrival = f.transfer(0, 1, 0, Time::ZERO);
        assert!((arrival.as_us() - 5.1).abs() < 1e-9);
    }

    #[test]
    fn injection_contention_serialises_sends() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        let a1 = f.transfer(0, 1, 1_000_000, Time::ZERO);
        let a2 = f.transfer(0, 2, 1_000_000, Time::ZERO);
        // Second message waits for the first to leave node 0's NIC.
        assert!(a2 > a1);
        assert!((a2.as_secs() - (2e-3 + 5.1e-6)).abs() < 1e-9);
    }

    #[test]
    fn distinct_pairs_do_not_contend_on_a_crossbar() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        let a1 = f.transfer(0, 1, 1_000_000, Time::ZERO);
        let a2 = f.transfer(2, 3, 1_000_000, Time::ZERO);
        assert_eq!(a1, a2, "non-blocking interior: parallel pairs independent");
    }

    #[test]
    fn ejection_contention_applies() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        let a1 = f.transfer(1, 0, 1_000_000, Time::ZERO);
        let a2 = f.transfer(2, 0, 1_000_000, Time::ZERO);
        assert!(a2 > a1, "two senders to one node share its ejection port");
    }

    #[test]
    fn half_duplex_nic_couples_directions() {
        let mut p = params();
        p.nic_duplex = false;
        let mut f = Fabric::new(Box::new(Crossbar::new(2)), p);
        let a1 = f.transfer(0, 1, 1_000_000, Time::ZERO);
        let a2 = f.transfer(1, 0, 1_000_000, Time::ZERO);
        // Node 1's single NIC resource must both eject msg 1 and inject msg 2.
        assert!(a2 > a1);

        let mut fd = Fabric::new(Box::new(Crossbar::new(2)), params());
        let b1 = fd.transfer(0, 1, 1_000_000, Time::ZERO);
        let b2 = fd.transfer(1, 0, 1_000_000, Time::ZERO);
        assert_eq!(b1, b2, "full duplex: opposite directions independent");
    }

    #[test]
    fn fat_tree_upper_links_aggregate() {
        // 8 nodes, arity 2: simultaneous far-pair traffic crosses the root,
        // but ideal fat-tree capacity scaling keeps it uncontended.
        let mut f = Fabric::new(Box::new(FatTree::new(8, 2)), params());
        let a1 = f.transfer(0, 4, 1_000_000, Time::ZERO);
        let a2 = f.transfer(1, 5, 1_000_000, Time::ZERO);
        let serialised = 2e-3;
        assert!(a1.as_secs() < serialised && a2.as_secs() < serialised);
    }

    #[test]
    fn blocked_fat_tree_contends_at_the_core() {
        let full = FatTree::new(8, 2);
        let thin = FatTree::with_blocking(8, 2, 4.0);
        let mut ff = Fabric::new(Box::new(full), params());
        let mut ft = Fabric::new(Box::new(thin), params());
        let mut worst_full = Time::ZERO;
        let mut worst_thin = Time::ZERO;
        for i in 0..4 {
            worst_full = worst_full.max(ff.transfer(i, i + 4, 1_000_000, Time::ZERO));
            worst_thin = worst_thin.max(ft.transfer(i, i + 4, 1_000_000, Time::ZERO));
        }
        assert!(
            worst_thin > worst_full,
            "oversubscription slows core traffic"
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        f.transfer(0, 1, 1000, Time::ZERO);
        f.transfer(1, 2, 2000, Time::ZERO);
        let s = f.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 3000.0);
        assert!(s.max_busy > 0.0);
        f.reset();
        assert_eq!(f.stats(), FabricStats::default());
    }

    #[test]
    fn hot_spots_identify_the_congested_nic() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        // Node 0 receives from everyone: its ejection port is the hot spot.
        for src in 1..4 {
            f.transfer(src, 0, 1_000_000, Time::ZERO);
        }
        let hot = f.hot_spots(3);
        assert_eq!(hot[0].kind, ResourceKind::Eject);
        assert_eq!(hot[0].index, 0);
        assert!(hot[0].busy > hot[1].busy);
        assert_eq!(hot[0].reservations, 3);
        assert_eq!(hot[0].bytes, 3e6);
    }

    #[test]
    fn hot_spots_see_blocked_fat_tree_core() {
        let thin = FatTree::with_blocking(8, 2, 8.0);
        let mut f = Fabric::new(Box::new(thin), params());
        for i in 0..4 {
            f.transfer(i, i + 4, 4_000_000, Time::ZERO);
        }
        let hot = f.hot_spots(1);
        assert_eq!(hot[0].kind, ResourceKind::Link, "the core link dominates");
    }

    #[test]
    #[should_panic(expected = "intra-node")]
    fn self_transfer_rejected() {
        let mut f = Fabric::new(Box::new(Crossbar::new(4)), params());
        f.transfer(2, 2, 10, Time::ZERO);
    }
}
