//! `simnet` — a deterministic interconnect-fabric simulator.
//!
//! This crate is the substrate beneath the machine models used to reproduce
//! the figures of Saini et al., *"Performance evaluation of supercomputers
//! using HPCC and IMB Benchmarks"*: virtual [`time`], contended
//! [`resource`]s with occupancy timelines, the interconnect [`topology`]
//! families of the paper's five systems (fat-tree, hypercube, crossbar,
//! Clos), the cut-through [`fabric`] model built from them, and the
//! [`schedule`] representation shared with the `mp` runtime's collective
//! algorithms.
//!
//! Everything here is deterministic: replaying the same schedule against the
//! same fabric yields bit-identical timings, which keeps the regenerated
//! figures stable across runs.

pub mod fabric;
pub mod resource;
pub mod schedule;
pub mod time;
pub mod topology;
pub mod units;

pub use fabric::{Fabric, FabricParams, FabricStats, ResourceKind, ResourceStats};
pub use resource::Resource;
pub use schedule::{LocalWork, P2pCost, Round, Schedule, Transfer};
pub use time::Time;
pub use topology::{Clos, Crossbar, FatTree, Hypercube, LinkId, NodeId, Topology, Torus3D};
