//! Occupancy-timeline resources: the contention primitive of the simulator.
//!
//! Every shared piece of hardware — a NIC injection port, a fat-tree link, a
//! node's memory system, the fabric bisection — is modelled as a FIFO server
//! with a fixed service bandwidth. A transfer of `b` bytes occupies the
//! resource for `b / bandwidth` seconds and cannot start before the
//! resource's next-free time. Serialising competing transfers this way
//! yields the same *total* completion time as fair fluid sharing for equal
//! concurrent flows, which is the quantity the paper's figures report.

use crate::time::Time;

/// A serially-reusable resource with a service bandwidth (bytes/second).
///
/// Reservations are placed *first-fit*: a transfer takes the earliest
/// gap in the occupancy timeline at or after its ready time. Pure FIFO
/// (always appending after the latest reservation) would create
/// unphysical cascades in symmetric patterns — e.g. a ring over
/// half-duplex NICs, where each node's send would queue behind its
/// neighbour's receive all the way around the ring. First-fit recovers
/// the alternating schedule real networks settle into while still never
/// starting a transfer before it is ready.
///
/// The timeline is a chunked sorted vector: disjoint `(start, end)`
/// intervals in global order, split across contiguous chunks of at
/// most [`MAX_CHUNK`] entries. Two production access patterns pull a
/// flat structure in opposite directions, and the chunks serve both:
///
/// * Simulated-mode figure sweeps are scan/append-dominated (fig05
///   alone issues 223 M reserves and fragments hot resources to 661 k
///   intervals, almost never landing mid-timeline). Scans stay
///   contiguous within a chunk, so this regime keeps the flat `Vec`'s
///   prefetcher-friendly speed — a `BTreeMap` timeline's pointer-chased
///   range walks made fig05/table3 1.5–2x slower end to end.
/// * High-rank virtual worlds backfill mid-timeline constantly
///   (profiled at 16 384 ranks: 7.1 M reserves, 2.7 M of them
///   mid-timeline, lists to 13 818 intervals). A mid insert memmoves
///   one chunk (≤ 8 KB) instead of the whole list, where the flat
///   `Vec` paid an O(n) shift each (see the before/after lanes in
///   `BENCH_sched.json`).
#[derive(Clone, Debug)]
pub struct Resource {
    bandwidth: f64,
    intervals: Chunks,
    busy: Time,
    served_bytes: f64,
    reservations: u64,
}

/// Chunk capacity: splits keep chunks at half this, so a mid-timeline
/// insert memmoves at most `MAX_CHUNK * 16` bytes.
const MAX_CHUNK: usize = 512;

/// Disjoint busy intervals in global `(start, end)` order, sharded
/// into non-empty sorted chunks.
#[derive(Clone, Debug, Default)]
struct Chunks {
    chunks: Vec<Vec<(f64, f64)>>,
}

impl Resource {
    /// Creates a resource serving `bandwidth` bytes per second.
    ///
    /// Panics on a non-positive or non-finite bandwidth: a zero-bandwidth
    /// resource would make every reservation infinite.
    pub fn new(bandwidth: f64) -> Resource {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "invalid resource bandwidth: {bandwidth}"
        );
        Resource {
            bandwidth,
            intervals: Chunks::default(),
            busy: Time::ZERO,
            served_bytes: 0.0,
            reservations: 0,
        }
    }

    /// Service bandwidth in bytes per second.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Reserves the resource for `bytes` bytes, not before `ready`.
    /// Returns `(start, end)` of the granted slot and records it in the
    /// occupancy timeline (first-fit).
    pub fn reserve(&mut self, ready: Time, bytes: u64) -> (Time, Time) {
        let service = bytes as f64 / self.bandwidth;
        self.busy += Time::from_secs(service);
        self.served_bytes += bytes as f64;
        self.reservations += 1;

        let ready = ready.as_secs();
        if service == 0.0 {
            return (Time::from_secs(ready), Time::from_secs(ready));
        }

        let (start, end) = self.intervals.reserve(ready, service);
        (Time::from_secs(start), Time::from_secs(end))
    }

    /// Number of disjoint busy intervals in the occupancy timeline (a
    /// fragmentation gauge).
    #[inline]
    pub fn fragments(&self) -> usize {
        self.intervals.len()
    }

    /// The end of the last reservation (the timeline's high-water mark).
    #[inline]
    pub fn next_free(&self) -> Time {
        Time::from_secs(self.intervals.last_end().unwrap_or(0.0))
    }

    /// Total time spent serving transfers.
    #[inline]
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Total bytes served.
    #[inline]
    pub fn served_bytes(&self) -> f64 {
        self.served_bytes
    }

    /// Number of reservations granted.
    #[inline]
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Utilisation of the resource over `[0, horizon]`.
    pub fn utilisation(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy.as_secs() / horizon.as_secs()
        }
    }

    /// Resets the timeline (between independent simulated experiments).
    pub fn reset(&mut self) {
        self.intervals.chunks.clear();
        self.busy = Time::ZERO;
        self.served_bytes = 0.0;
        self.reservations = 0;
    }
}

impl Chunks {
    /// Total interval count across all chunks.
    fn len(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }

    /// End of the last interval (the high-water mark), if any.
    fn last_end(&self) -> Option<f64> {
        self.chunks.last().map(|c| c.last().expect("non-empty").1)
    }

    /// Splits chunk `ci` in two if an insert pushed it past capacity.
    fn split_if_full(&mut self, ci: usize) {
        if self.chunks[ci].len() > MAX_CHUNK {
            let tail = self.chunks[ci].split_off(MAX_CHUNK / 2);
            self.chunks.insert(ci + 1, tail);
        }
    }

    /// First-fit reservation: grants the earliest gap of length
    /// `service` at or after `ready`, merging the new interval with
    /// touching neighbours. Grant-for-grant identical to a flat sorted
    /// `Vec` running the same scan (pinned by the oracle test below) —
    /// the chunks only change which memory the scan walks.
    fn reserve(&mut self, ready: f64, service: f64) -> (f64, f64) {
        // Append fast path: ready at or past the high-water mark means
        // there is no gap to search for. This is the dominant case in
        // simulated-mode sweeps.
        match self.last_end() {
            None => {
                self.chunks.push(vec![(ready, ready + service)]);
                return (ready, ready + service);
            }
            Some(last_end) if ready >= last_end => {
                let start = ready;
                let end = start + service;
                let lc = self.chunks.len() - 1;
                let last = self.chunks[lc].last_mut().expect("non-empty");
                if last.1 == start {
                    last.1 = end; // extend the trailing interval
                } else {
                    self.chunks[lc].push((start, end));
                    self.split_if_full(lc);
                }
                return (start, end);
            }
            Some(_) => {}
        }

        // Scan position (chunk, index) of the first interval ending
        // after `ready`: binary search over chunk last-ends, then
        // within the chunk (ends are globally increasing because the
        // intervals are disjoint and sorted by start).
        let mut ci = self
            .chunks
            .partition_point(|c| c.last().expect("non-empty").1 <= ready);
        let mut ii = self.chunks[ci].partition_point(|iv| iv.1 <= ready);

        // First-fit: walk forward until the gap before the next
        // interval fits. Within a chunk this is a contiguous scan.
        let mut candidate = ready;
        'scan: while ci < self.chunks.len() {
            let chunk = &self.chunks[ci];
            while ii < chunk.len() {
                let (s, e) = chunk[ii];
                if s >= candidate + service {
                    break 'scan; // the gap before `s` fits
                }
                candidate = candidate.max(e);
                ii += 1;
            }
            ci += 1;
            ii = 0;
        }
        let start = candidate;
        let end = start + service;

        // (ci, ii) is the insertion position; merge with the global
        // predecessor ending exactly at `start` and/or the interval at
        // the position starting exactly at `end` (no existing interval
        // starts inside [start, end)).
        let at_end = ci == self.chunks.len();
        let prev = if ii > 0 {
            Some((ci, ii - 1))
        } else if ci > 0 {
            Some((ci - 1, self.chunks[ci - 1].len() - 1))
        } else {
            None
        };
        let merges_prev = prev.is_some_and(|(pc, pi)| self.chunks[pc][pi].1 == start);
        let merges_next = !at_end && self.chunks[ci][ii].0 == end;
        match (merges_prev, merges_next) {
            (true, true) => {
                let (pc, pi) = prev.expect("merges_prev");
                self.chunks[pc][pi].1 = self.chunks[ci][ii].1;
                self.chunks[ci].remove(ii);
                if self.chunks[ci].is_empty() {
                    self.chunks.remove(ci);
                }
            }
            (true, false) => {
                let (pc, pi) = prev.expect("merges_prev");
                self.chunks[pc][pi].1 = end;
            }
            (false, true) => self.chunks[ci][ii].0 = start,
            (false, false) => {
                // An exhausted scan leaves `candidate` equal to the
                // last interval's end (ends are increasing and the
                // append fast path already excluded `ready` past the
                // high-water mark), so `at_end` implies `merges_prev`
                // and cannot reach this arm — but appending is still
                // the order-preserving action, so handle it rather
                // than assume.
                let (c, i) = if at_end {
                    let lc = self.chunks.len() - 1;
                    (lc, self.chunks[lc].len())
                } else {
                    (ci, ii)
                };
                self.chunks[c].insert(i, (start, end));
                self.split_if_full(c);
            }
        }
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_reservation() {
        let mut r = Resource::new(1e9); // 1 GB/s
        let (start, end) = r.reserve(Time::ZERO, 1_000_000);
        assert_eq!(start, Time::ZERO);
        assert!((end.as_secs() - 1e-3).abs() < 1e-12);
        assert_eq!(r.reservations(), 1);
    }

    #[test]
    fn back_to_back_reservations_queue() {
        let mut r = Resource::new(1e9);
        let (_, e1) = r.reserve(Time::ZERO, 500_000);
        // Second transfer is ready at t=0 but must wait for the first.
        let (s2, e2) = r.reserve(Time::ZERO, 500_000);
        assert_eq!(s2, e1);
        assert!((e2.as_secs() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut r = Resource::new(1e9);
        let (_, e1) = r.reserve(Time::ZERO, 1000);
        let late = Time::from_secs(1.0);
        let (s2, _) = r.reserve(late, 1000);
        assert!(e1 < late);
        assert_eq!(s2, late, "resource was free; transfer starts when ready");
    }

    #[test]
    fn accounting() {
        let mut r = Resource::new(2e9);
        r.reserve(Time::ZERO, 2_000_000_000);
        r.reserve(Time::ZERO, 2_000_000_000);
        assert!((r.busy_time().as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(r.served_bytes(), 4e9);
        assert!((r.utilisation(Time::from_secs(4.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_timeline() {
        let mut r = Resource::new(1e9);
        r.reserve(Time::ZERO, 1000);
        r.reset();
        assert_eq!(r.next_free(), Time::ZERO);
        assert_eq!(r.reservations(), 0);
        assert_eq!(r.served_bytes(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid resource bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Resource::new(0.0);
    }

    #[test]
    fn reservations_never_overlap_or_jump_the_ready_time() {
        let mut r = Resource::new(1e8);
        let mut granted: Vec<(f64, f64)> = Vec::new();
        for i in 0..200u64 {
            let ready = Time::from_us((i % 7) as f64 * 3.0);
            let (start, end) = r.reserve(ready, 1 + (i * 37) % 5000);
            assert!(start >= ready, "reservation started before ready");
            assert!(end >= start);
            granted.push((start.as_secs(), end.as_secs()));
        }
        granted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in granted.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-15,
                "overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn first_fit_backfills_gaps() {
        let mut r = Resource::new(1e9);
        // Late transfer occupies [1ms, 2ms).
        let (_, _) = r.reserve(Time::from_secs(1e-3), 1_000_000);
        // An earlier-ready transfer fits entirely before it.
        let (s, e) = r.reserve(Time::ZERO, 500_000);
        assert_eq!(s, Time::ZERO);
        assert!((e.as_secs() - 5e-4).abs() < 1e-12);
        // A transfer too big for the gap goes after the late one.
        let (s2, _) = r.reserve(Time::ZERO, 900_000);
        assert!((s2.as_secs() - 2e-3).abs() < 1e-12);
    }

    /// The pre-BTreeMap sorted-`Vec` first-fit, frozen verbatim as a
    /// semantic oracle (same algorithm `bench_sched` uses as its naive
    /// reference lane).
    struct NaiveTimeline {
        intervals: Vec<(f64, f64)>,
    }

    impl NaiveTimeline {
        fn reserve(&mut self, ready: f64, service: f64) -> (f64, f64) {
            if service == 0.0 {
                return (ready, ready);
            }
            let mut idx = self.intervals.partition_point(|iv| iv.1 <= ready);
            let mut candidate = ready;
            while idx < self.intervals.len() {
                let (s, e) = self.intervals[idx];
                if s >= candidate + service {
                    break;
                }
                candidate = candidate.max(e);
                idx += 1;
            }
            let start = candidate;
            let end = start + service;
            let merges_prev = idx > 0 && self.intervals[idx - 1].1 == start;
            let merges_next = idx < self.intervals.len() && self.intervals[idx].0 == end;
            match (merges_prev, merges_next) {
                (true, true) => {
                    self.intervals[idx - 1].1 = self.intervals[idx].1;
                    self.intervals.remove(idx);
                }
                (true, false) => self.intervals[idx - 1].1 = end,
                (false, true) => self.intervals[idx].0 = start,
                (false, false) => self.intervals.insert(idx, (start, end)),
            }
            (start, end)
        }
    }

    #[test]
    fn first_fit_matches_the_frozen_naive_reference() {
        let mut r = Resource::new(1e9);
        let mut naive = NaiveTimeline {
            intervals: Vec::new(),
        };
        // Loosely increasing ready times with a wide jitter window: the
        // fragmentation + mid-timeline backfill pattern high-rank virtual
        // worlds produce, exercising every reserve path (append, extend,
        // straddle, gap scan, both-side merges).
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for i in 0..20_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let jitter = ((state >> 33) % 1_000_000) as f64;
            let ready = Time::from_us(i as f64 * 0.5 + jitter);
            let bytes = 1 + (state >> 55) % 4096;
            let (s, e) = r.reserve(ready, bytes);
            let (ns, ne) = naive.reserve(ready.as_secs(), bytes as f64 / 1e9);
            assert_eq!(s.as_secs().to_bits(), ns.to_bits(), "start diverged at {i}");
            assert_eq!(e.as_secs().to_bits(), ne.to_bits(), "end diverged at {i}");
        }
        assert_eq!(
            r.fragments(),
            naive.intervals.len(),
            "timelines fragmented differently"
        );
        assert!(
            r.intervals.chunks.len() > 1,
            "this pattern fragments far past one chunk; splits and \
             cross-chunk scans must have been exercised"
        );
        for c in &r.intervals.chunks {
            assert!(!c.is_empty(), "empty chunk left behind");
            assert!(c.len() <= MAX_CHUNK, "chunk overgrew its capacity");
        }
    }

    #[test]
    fn timeline_splits_into_chunks_and_stays_ordered() {
        let mut r = Resource::new(1e9);
        // Widely separated reservations never merge: one fragment each,
        // enough of them to force several chunk splits.
        let n = 3 * MAX_CHUNK as u64;
        for i in 0..n {
            r.reserve(Time::from_secs(i as f64), 1000);
        }
        assert_eq!(r.fragments(), n as usize);
        assert!(r.intervals.chunks.len() >= 3, "expected multiple chunks");
        let flat: Vec<(f64, f64)> = r.intervals.chunks.iter().flatten().copied().collect();
        assert!(
            flat.windows(2).all(|w| w[0].1 <= w[1].0),
            "chunks out of global order"
        );
        // Backfill far behind the high-water mark crosses chunk
        // boundaries and keeps first-fit semantics.
        let (s, e) = r.reserve(Time::from_secs(0.25), 1000);
        assert_eq!(s, Time::from_secs(0.25));
        assert!(e < Time::from_secs(1.0), "backfills the first gap");
        r.reset();
        assert_eq!(r.fragments(), 0);
        assert_eq!(r.next_free(), Time::ZERO);
    }

    #[test]
    fn half_duplex_ring_does_not_cascade() {
        // The regression that motivated first-fit: alternating use of a
        // shared (half-duplex) resource by "receive then send" pairs must
        // cost 2 slots, not N slots.
        let n = 16;
        let mut nics: Vec<Resource> = (0..n).map(|_| Resource::new(1e9)).collect();
        let mut worst = Time::ZERO;
        for i in 0..n {
            let j = (i + 1) % n;
            // node i sends 1 MB to node j: occupies nic[i] and nic[j].
            let (head, e1) = nics[i].reserve(Time::ZERO, 1_000_000);
            let (_, e2) = nics[j].reserve(head, 1_000_000);
            worst = worst.max(e1).max(e2);
        }
        assert!(
            worst.as_secs() < 2.5e-3,
            "ring over shared NICs took {worst} (cascade regression)"
        );
    }
}
