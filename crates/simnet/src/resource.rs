//! Occupancy-timeline resources: the contention primitive of the simulator.
//!
//! Every shared piece of hardware — a NIC injection port, a fat-tree link, a
//! node's memory system, the fabric bisection — is modelled as a FIFO server
//! with a fixed service bandwidth. A transfer of `b` bytes occupies the
//! resource for `b / bandwidth` seconds and cannot start before the
//! resource's next-free time. Serialising competing transfers this way
//! yields the same *total* completion time as fair fluid sharing for equal
//! concurrent flows, which is the quantity the paper's figures report.

use crate::time::Time;

/// A serially-reusable resource with a service bandwidth (bytes/second).
///
/// Reservations are placed *first-fit*: a transfer takes the earliest
/// gap in the occupancy timeline at or after its ready time. Pure FIFO
/// (always appending after the latest reservation) would create
/// unphysical cascades in symmetric patterns — e.g. a ring over
/// half-duplex NICs, where each node's send would queue behind its
/// neighbour's receive all the way around the ring. First-fit recovers
/// the alternating schedule real networks settle into while still never
/// starting a transfer before it is ready.
#[derive(Clone, Debug)]
pub struct Resource {
    bandwidth: f64,
    /// Sorted, disjoint busy intervals (seconds).
    intervals: Vec<(f64, f64)>,
    busy: Time,
    served_bytes: f64,
    reservations: u64,
}

impl Resource {
    /// Creates a resource serving `bandwidth` bytes per second.
    ///
    /// Panics on a non-positive or non-finite bandwidth: a zero-bandwidth
    /// resource would make every reservation infinite.
    pub fn new(bandwidth: f64) -> Resource {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "invalid resource bandwidth: {bandwidth}"
        );
        Resource {
            bandwidth,
            intervals: Vec::new(),
            busy: Time::ZERO,
            served_bytes: 0.0,
            reservations: 0,
        }
    }

    /// Service bandwidth in bytes per second.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Reserves the resource for `bytes` bytes, not before `ready`.
    /// Returns `(start, end)` of the granted slot and records it in the
    /// occupancy timeline (first-fit).
    pub fn reserve(&mut self, ready: Time, bytes: u64) -> (Time, Time) {
        let service = bytes as f64 / self.bandwidth;
        self.busy += Time::from_secs(service);
        self.served_bytes += bytes as f64;
        self.reservations += 1;

        let ready = ready.as_secs();
        if service == 0.0 {
            return (Time::from_secs(ready), Time::from_secs(ready));
        }

        // First interval that ends after `ready` (intervals are disjoint
        // and sorted, so both starts and ends are increasing).
        let mut idx = self.intervals.partition_point(|iv| iv.1 <= ready);
        let mut candidate = ready;
        while idx < self.intervals.len() {
            let (s, e) = self.intervals[idx];
            if s >= candidate + service {
                break; // the gap before `s` fits
            }
            candidate = candidate.max(e);
            idx += 1;
        }
        let start = candidate;
        let end = start + service;

        // Insert, merging with touching neighbours to keep the list short.
        let merges_prev = idx > 0 && self.intervals[idx - 1].1 == start;
        let merges_next = idx < self.intervals.len() && self.intervals[idx].0 == end;
        match (merges_prev, merges_next) {
            (true, true) => {
                self.intervals[idx - 1].1 = self.intervals[idx].1;
                self.intervals.remove(idx);
            }
            (true, false) => self.intervals[idx - 1].1 = end,
            (false, true) => self.intervals[idx].0 = start,
            (false, false) => self.intervals.insert(idx, (start, end)),
        }
        (Time::from_secs(start), Time::from_secs(end))
    }

    /// The end of the last reservation (the timeline's high-water mark).
    #[inline]
    pub fn next_free(&self) -> Time {
        Time::from_secs(self.intervals.last().map(|iv| iv.1).unwrap_or(0.0))
    }

    /// Total time spent serving transfers.
    #[inline]
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Total bytes served.
    #[inline]
    pub fn served_bytes(&self) -> f64 {
        self.served_bytes
    }

    /// Number of reservations granted.
    #[inline]
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Utilisation of the resource over `[0, horizon]`.
    pub fn utilisation(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy.as_secs() / horizon.as_secs()
        }
    }

    /// Resets the timeline (between independent simulated experiments).
    pub fn reset(&mut self) {
        self.intervals.clear();
        self.busy = Time::ZERO;
        self.served_bytes = 0.0;
        self.reservations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_reservation() {
        let mut r = Resource::new(1e9); // 1 GB/s
        let (start, end) = r.reserve(Time::ZERO, 1_000_000);
        assert_eq!(start, Time::ZERO);
        assert!((end.as_secs() - 1e-3).abs() < 1e-12);
        assert_eq!(r.reservations(), 1);
    }

    #[test]
    fn back_to_back_reservations_queue() {
        let mut r = Resource::new(1e9);
        let (_, e1) = r.reserve(Time::ZERO, 500_000);
        // Second transfer is ready at t=0 but must wait for the first.
        let (s2, e2) = r.reserve(Time::ZERO, 500_000);
        assert_eq!(s2, e1);
        assert!((e2.as_secs() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut r = Resource::new(1e9);
        let (_, e1) = r.reserve(Time::ZERO, 1000);
        let late = Time::from_secs(1.0);
        let (s2, _) = r.reserve(late, 1000);
        assert!(e1 < late);
        assert_eq!(s2, late, "resource was free; transfer starts when ready");
    }

    #[test]
    fn accounting() {
        let mut r = Resource::new(2e9);
        r.reserve(Time::ZERO, 2_000_000_000);
        r.reserve(Time::ZERO, 2_000_000_000);
        assert!((r.busy_time().as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(r.served_bytes(), 4e9);
        assert!((r.utilisation(Time::from_secs(4.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_timeline() {
        let mut r = Resource::new(1e9);
        r.reserve(Time::ZERO, 1000);
        r.reset();
        assert_eq!(r.next_free(), Time::ZERO);
        assert_eq!(r.reservations(), 0);
        assert_eq!(r.served_bytes(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid resource bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Resource::new(0.0);
    }

    #[test]
    fn reservations_never_overlap_or_jump_the_ready_time() {
        let mut r = Resource::new(1e8);
        let mut granted: Vec<(f64, f64)> = Vec::new();
        for i in 0..200u64 {
            let ready = Time::from_us((i % 7) as f64 * 3.0);
            let (start, end) = r.reserve(ready, 1 + (i * 37) % 5000);
            assert!(start >= ready, "reservation started before ready");
            assert!(end >= start);
            granted.push((start.as_secs(), end.as_secs()));
        }
        granted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in granted.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-15,
                "overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn first_fit_backfills_gaps() {
        let mut r = Resource::new(1e9);
        // Late transfer occupies [1ms, 2ms).
        let (_, _) = r.reserve(Time::from_secs(1e-3), 1_000_000);
        // An earlier-ready transfer fits entirely before it.
        let (s, e) = r.reserve(Time::ZERO, 500_000);
        assert_eq!(s, Time::ZERO);
        assert!((e.as_secs() - 5e-4).abs() < 1e-12);
        // A transfer too big for the gap goes after the late one.
        let (s2, _) = r.reserve(Time::ZERO, 900_000);
        assert!((s2.as_secs() - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn half_duplex_ring_does_not_cascade() {
        // The regression that motivated first-fit: alternating use of a
        // shared (half-duplex) resource by "receive then send" pairs must
        // cost 2 slots, not N slots.
        let n = 16;
        let mut nics: Vec<Resource> = (0..n).map(|_| Resource::new(1e9)).collect();
        let mut worst = Time::ZERO;
        for i in 0..n {
            let j = (i + 1) % n;
            // node i sends 1 MB to node j: occupies nic[i] and nic[j].
            let (head, e1) = nics[i].reserve(Time::ZERO, 1_000_000);
            let (_, e2) = nics[j].reserve(head, 1_000_000);
            worst = worst.max(e1).max(e2);
        }
        assert!(
            worst.as_secs() < 2.5e-3,
            "ring over shared NICs took {worst} (cascade regression)"
        );
    }
}
