//! Virtual time for the deterministic fabric simulator.
//!
//! Simulated time is a non-negative number of seconds held in an `f64`.
//! A newtype keeps seconds from being confused with the many other `f64`
//! quantities in the simulator (bytes, bandwidths, ratios) and centralises
//! the handful of arithmetic operations the engine needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) virtual time, in seconds.
///
/// `Time` is totally ordered; the simulator never produces NaN (all inputs
/// are validated to be finite and non-negative), so `max`/`min` on it are
/// well-defined.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time from seconds. Panics on negative or non-finite input:
    /// a negative timestamp is always a simulator bug, and catching it at
    /// construction keeps every downstream `max` well-defined.
    #[inline]
    pub fn from_secs(s: f64) -> Time {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        Time(s)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Time {
        Time::from_secs(us * 1e-6)
    }

    /// Seconds since the virtual origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Microseconds since the virtual origin.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: construction forbids NaN, so the derived PartialOrd is
        // already a total order; this just unwraps it.
        self.partial_cmp(other).expect("Time is never NaN")
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// Difference between two times. Panics (in debug builds) if the result
    /// would be negative, which indicates a causality violation.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(
            self.0 >= rhs.0,
            "negative time span: {} - {}",
            self.0,
            rhs.0
        );
        Time((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time::from_secs(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.6}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.as_us())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        let t = Time::from_us(2.5);
        assert!((t.as_secs() - 2.5e-6).abs() < 1e-18);
        assert!((t.as_us() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_max() {
        let a = Time::from_us(1.0);
        let b = Time::from_us(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_us(3.0);
        let b = Time::from_us(1.0);
        let close = |x: Time, y: Time| (x.as_us() - y.as_us()).abs() < 1e-9;
        assert!(close(a + b, Time::from_us(4.0)));
        assert!(close(a - b, Time::from_us(2.0)));
        assert!(close(a * 2.0, Time::from_us(6.0)));
        assert!(close(a / 3.0, Time::from_us(1.0)));
        let mut c = a;
        c += b;
        assert!(close(c, Time::from_us(4.0)));
    }

    #[test]
    fn sum_iterator() {
        let total: Time = (1..=4).map(|i| Time::from_us(i as f64)).sum();
        assert_eq!(total, Time::from_us(10.0));
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_rejected() {
        let _ = Time::from_secs(-1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Time::from_secs(2.0)), "2.000000s");
        assert_eq!(format!("{}", Time::from_secs(2e-3)), "2.000ms");
        assert_eq!(format!("{}", Time::from_us(2.0)), "2.000us");
    }
}
