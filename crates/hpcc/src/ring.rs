//! Random-Ring bandwidth and latency (the HPCC `b_eff` component).
//!
//! "Randomly Ordered Ring bandwidth reports bandwidth achieved per CPU in
//! a ring communication pattern [where] the communicating nodes are
//! ordered randomly", averaged over several random permutations. With 8+
//! SMP nodes most neighbours land on other nodes, which is why the paper
//! uses this metric as *the* inter-node bandwidth per MPI process.

use mp::Comm;

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    /// Message length for the bandwidth measurement, bytes (HPCC uses
    /// 2,000,000 bytes).
    pub bw_bytes: usize,
    /// Number of random ring permutations to average over.
    pub patterns: usize,
    /// Iterations per pattern.
    pub iters: usize,
    /// RNG seed for the permutations (fixed for reproducibility).
    pub seed: u64,
}

impl Default for RingConfig {
    fn default() -> RingConfig {
        RingConfig {
            bw_bytes: 2_000_000,
            patterns: 4,
            iters: 3,
            seed: 0xBEEF,
        }
    }
}

/// Outcome: per-CPU ring bandwidth and latency.
#[derive(Clone, Copy, Debug)]
pub struct RingResult {
    /// Random-ring bandwidth per CPU, GB/s.
    pub random_bw: f64,
    /// Random-ring latency, microseconds.
    pub random_latency_us: f64,
    /// Natural-ring bandwidth per CPU, GB/s.
    pub natural_bw: f64,
    /// Natural-ring latency, microseconds.
    pub natural_latency_us: f64,
}

/// Deterministic Fisher-Yates permutation of `0..n` from a splitmix64
/// stream.
pub fn ring_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// One timed ring pass: every rank exchanges `words` f64s with both ring
/// neighbours (`perm` defines the ring order). Returns seconds (max over
/// ranks).
async fn ring_pass(comm: &Comm, perm: &[usize], words: usize, iters: usize) -> f64 {
    let me = comm.rank();
    let pos = perm.iter().position(|&r| r == me).expect("rank in ring");
    let n = perm.len();
    let right = perm[(pos + 1) % n];
    let left = perm[(pos + n - 1) % n];

    let sbuf = vec![1.0f64; words];
    let mut rbuf = vec![0.0f64; words];
    comm.barrier_async().await;
    let clock = harness::Stopwatch::start();
    for _ in 0..iters {
        // Both directions, as in b_eff's ring pattern.
        comm.sendrecv_async(&sbuf, right, &mut rbuf, left, 23).await;
        comm.sendrecv_async(&sbuf, left, &mut rbuf, right, 23).await;
    }
    let mut t = [clock.elapsed_secs() / iters as f64];
    comm.allreduce_async(&mut t, mp::Op::Max).await;
    t[0]
}

/// Runs the ring benchmarks on `comm`.
pub fn run(comm: &Comm, cfg: &RingConfig) -> RingResult {
    mp::block_on(run_async(comm, cfg))
}

/// Awaitable mirror of [`run`], for cooperative rank tasks.
pub async fn run_async(comm: &Comm, cfg: &RingConfig) -> RingResult {
    let n = comm.size();
    let words = cfg.bw_bytes / 8;
    let natural: Vec<usize> = (0..n).collect();

    let nat_bw_t = ring_pass(comm, &natural, words, cfg.iters).await;
    let nat_lat_t = ring_pass(comm, &natural, 1, cfg.iters.max(4)).await;

    let mut rnd_bw_t = 0.0;
    let mut rnd_lat_t = 0.0;
    for k in 0..cfg.patterns {
        let perm = ring_permutation(n, cfg.seed.wrapping_add(k as u64));
        rnd_bw_t += ring_pass(comm, &perm, words, cfg.iters).await;
        rnd_lat_t += ring_pass(comm, &perm, 1, cfg.iters.max(4)).await;
    }
    rnd_bw_t /= cfg.patterns as f64;
    rnd_lat_t /= cfg.patterns as f64;

    // Each pass moves 2 messages out + 2 in per rank; per b_eff's
    // convention the per-CPU ring bandwidth counts both (in + out), and
    // latency is the one-way time.
    let bytes_out = 4.0 * cfg.bw_bytes as f64;
    RingResult {
        random_bw: bytes_out / rnd_bw_t / 1e9,
        random_latency_us: rnd_lat_t / 2.0 * 1e6,
        natural_bw: bytes_out / nat_bw_t / 1e9,
        natural_latency_us: nat_lat_t / 2.0 * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        for n in [1, 2, 5, 64] {
            let mut p = ring_permutation(n, 42);
            p.sort_unstable();
            assert_eq!(p, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permutation_is_seed_deterministic() {
        assert_eq!(ring_permutation(16, 7), ring_permutation(16, 7));
        assert_ne!(ring_permutation(16, 7), ring_permutation(16, 8));
    }

    #[test]
    fn ring_benchmark_reports_sane_numbers() {
        let cfg = RingConfig {
            bw_bytes: 80_000,
            patterns: 2,
            iters: 2,
            seed: 1,
        };
        let results = mp::run(4, |comm| run(comm, &cfg));
        for r in &results {
            assert!(r.random_bw > 0.0 && r.random_bw.is_finite());
            assert!(r.natural_bw > 0.0);
            assert!(r.random_latency_us > 0.0);
            assert!(r.natural_latency_us > 0.0);
        }
    }

    #[test]
    fn two_rank_ring_degenerates_gracefully() {
        let cfg = RingConfig {
            bw_bytes: 8_000,
            patterns: 1,
            iters: 1,
            seed: 1,
        };
        let results = mp::run(2, |comm| run(comm, &cfg));
        assert!(results[0].natural_bw > 0.0);
    }
}
