//! G-PTRANS: parallel matrix transpose, `A = A + B^T`.
//!
//! "This benchmark heavily exercises the communication subsystem where
//! pairs of processors communicate with each other simultaneously. It
//! measures the total communications capacity of the network."
//!
//! Distribution: 1-D block by rows — rank `r` owns rows
//! `[r*n/p, (r+1)*n/p)` of both A and B. Computing `A += B^T` requires,
//! for my row block and rank `s`'s column range, the sub-block
//! `B[rows_s][cols_me]` — a pairwise all-to-all of `(n/p)^2` tiles,
//! exactly the simultaneous-pairs pattern the paper describes.

use mp::Comm;

/// Configuration: matrix order (must be divisible by the rank count).
#[derive(Clone, Copy, Debug)]
pub struct PtransConfig {
    /// Matrix order.
    pub n: usize,
}

/// Benchmark outcome.
#[derive(Clone, Copy, Debug)]
pub struct PtransResult {
    /// Matrix order.
    pub n: usize,
    /// Achieved rate in GB/s (8 n^2 bytes over the measured time).
    pub gb_per_s: f64,
    /// Wall time, seconds.
    pub time_s: f64,
    /// Max |error| against the analytically known result.
    pub max_error: f64,
    /// Whether verification passed.
    pub passed: bool,
}

/// Deterministic element generators (distinct for A and B).
fn a_elem(i: usize, j: usize) -> f64 {
    crate::hpl::matrix_element(i, j + 1_000_003)
}

fn b_elem(i: usize, j: usize) -> f64 {
    crate::hpl::matrix_element(i + 2_000_033, j)
}

/// Tile size (elements) below which the transpose-accumulate stays
/// serial: a fork-join region costs more than a small tile's arithmetic.
const PAR_MIN_ELEMS: usize = 64 * 64;

/// The local transpose-accumulate at the heart of PTRANS:
/// `a[r][col0 + c] += incoming[c * rows + r]` over the `rows x rows`
/// tile, fanned out over the rank's worker pool in contiguous row bands
/// (`a` is row-major, so a row band is one contiguous `&mut` split).
/// Every output element receives exactly one addition from exactly one
/// worker — the same addition the serial loop performs — so the result
/// is bitwise identical for any thread count.
fn transpose_accumulate(a: &mut [f64], n: usize, rows: usize, col0: usize, incoming: &[f64]) {
    let pool = smp::Pool::current();
    if pool.size() <= 1 || rows * rows < PAR_MIN_ELEMS {
        for r in 0..rows {
            for c in 0..rows {
                a[r * n + col0 + c] += incoming[c * rows + r];
            }
        }
        return;
    }
    let ranges = pool.chunk_ranges(rows, 1);
    let mut bands: Vec<(usize, &mut [f64])> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [f64] = a;
    for rng in ranges {
        let (band, tail) = std::mem::take(&mut rest).split_at_mut((rng.end - rng.start) * n);
        bands.push((rng.start, band));
        rest = tail;
    }
    pool.run_parts(&mut bands, |_, (r0, band)| {
        for (dr, row) in band.chunks_mut(n).enumerate() {
            let r = *r0 + dr;
            for c in 0..rows {
                row[col0 + c] += incoming[c * rows + r];
            }
        }
    });
}

/// Runs G-PTRANS on `comm`.
pub fn run(comm: &Comm, cfg: &PtransConfig) -> PtransResult {
    mp::block_on(run_async(comm, cfg))
}

/// Awaitable mirror of [`run`], for cooperative rank tasks.
pub async fn run_async(comm: &Comm, cfg: &PtransConfig) -> PtransResult {
    let n = cfg.n;
    let p = comm.size();
    let me = comm.rank();
    assert!(
        n.is_multiple_of(p),
        "PTRANS requires n divisible by the rank count"
    );
    let rows = n / p;
    let my0 = me * rows;

    // Local row blocks, row-major.
    let mut a: Vec<f64> = (0..rows * n).map(|k| a_elem(my0 + k / n, k % n)).collect();
    let b: Vec<f64> = (0..rows * n).map(|k| b_elem(my0 + k / n, k % n)).collect();

    comm.barrier_async().await;
    let clock = harness::Stopwatch::start();

    // Pairwise tile exchange: in step s I trade tiles with partner
    // (me + s) mod p / (me - s) mod p.
    let mut tile = vec![0.0f64; rows * rows];
    let mut incoming = vec![0.0f64; rows * rows];
    for s in 0..p {
        let dst = (me + s) % p;
        let src = (me + p - s) % p;
        // Tile for dst: my rows, dst's column range.
        for r in 0..rows {
            let off = r * n + dst * rows;
            tile[r * rows..(r + 1) * rows].copy_from_slice(&b[off..off + rows]);
        }
        if dst == me {
            incoming.copy_from_slice(&tile);
        } else {
            comm.sendrecv_async(&tile, dst, &mut incoming, src, 3).await;
        }
        // incoming = B[rows_src][cols_me]; A[my rows][cols_src] += its
        // transpose, fanned over the rank's worker pool.
        transpose_accumulate(&mut a, n, rows, src * rows, &incoming);
    }

    let time_s = clock.elapsed_secs();

    // Verify against the closed form A'[i][j] = a(i,j) + b(j,i).
    let mut max_err = 0.0f64;
    for r in 0..rows {
        for j in 0..n {
            let expect = a_elem(my0 + r, j) + b_elem(j, my0 + r);
            max_err = max_err.max((a[r * n + j] - expect).abs());
        }
    }
    let mut reduced = [max_err, time_s];
    comm.allreduce_async(&mut reduced, mp::Op::Max).await;

    let bytes = 8.0 * (n as f64) * (n as f64);
    PtransResult {
        n,
        gb_per_s: bytes / reduced[1] / 1e9,
        time_s: reduced[1],
        max_error: reduced[0],
        passed: reduced[0] < 1e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_correct() {
        for (p, n) in [(1, 16), (2, 16), (4, 32), (8, 64)] {
            let results = mp::run(p, |comm| run(comm, &PtransConfig { n }));
            for r in &results {
                assert!(r.passed, "p={p} n={n}: max error {}", r.max_error);
                assert!(r.gb_per_s > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_order() {
        mp::run(3, |comm| run(comm, &PtransConfig { n: 16 }));
    }

    #[test]
    fn transpose_accumulate_is_bitwise_identical_across_thread_counts() {
        let n = 512;
        let rows = 128; // rows * rows >= PAR_MIN_ELEMS: the banded path runs.
        let col0 = 256;
        let mk = || -> Vec<f64> { (0..rows * n).map(|k| a_elem(k / n, k % n)).collect() };
        let incoming: Vec<f64> = (0..rows * rows)
            .map(|k| b_elem(k % rows, k / rows))
            .collect();
        let reference = {
            let _serial = smp::AmbientGuard::install(1);
            let mut a = mk();
            transpose_accumulate(&mut a, n, rows, col0, &incoming);
            a
        };
        for threads in [2usize, 3, 4, 8] {
            let _guard = smp::AmbientGuard::install(threads);
            let mut a = mk();
            transpose_accumulate(&mut a, n, rows, col0, &incoming);
            let identical = reference
                .iter()
                .zip(&a)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(identical, "{threads}-thread transpose drifted from serial");
        }
    }
}
