//! The embarrassingly parallel HPCC benchmarks: EP-STREAM and EP-DGEMM.
//!
//! "All the computational nodes execute the benchmark simultaneously, and
//! the arithmetic average is reported."

use mp::Comm;

use crate::kernels::dgemm::{dgemm, dgemm_flops};
use crate::kernels::stream::{StreamArrays, StreamKernel};

/// EP-STREAM configuration.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Vector length per rank (STREAM requires arrays well beyond cache).
    pub len: usize,
    /// Timed repetitions (best-of, per STREAM convention).
    pub iters: usize,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            len: 4_000_000,
            iters: 5,
        }
    }
}

/// Per-kernel EP-STREAM outcome (GB/s averaged over ranks, as the suite
/// reports).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamResult {
    /// Copy bandwidth, GB/s per rank (arithmetic mean).
    pub copy: f64,
    /// Scale bandwidth, GB/s per rank.
    pub scale: f64,
    /// Add bandwidth, GB/s per rank.
    pub add: f64,
    /// Triad bandwidth, GB/s per rank.
    pub triad: f64,
    /// Whether the built-in solution check passed on every rank.
    pub passed: bool,
}

/// Runs EP-STREAM: every rank simultaneously, mean bandwidths reported.
pub fn stream(comm: &Comm, cfg: &StreamConfig) -> StreamResult {
    mp::block_on(stream_async(comm, cfg))
}

/// Awaitable mirror of [`stream`], for cooperative rank tasks.
pub async fn stream_async(comm: &Comm, cfg: &StreamConfig) -> StreamResult {
    let mut arrays = StreamArrays::new(cfg.len);
    let mut best = [f64::INFINITY; 4]; // seconds per kernel
    comm.barrier_async().await;
    for _ in 0..cfg.iters {
        for (k, kernel) in StreamKernel::ALL.into_iter().enumerate() {
            let t = harness::Stopwatch::start();
            arrays.run(kernel);
            best[k] = best[k].min(t.elapsed_secs().max(1e-9));
        }
    }
    let ok = arrays.verify(cfg.iters).is_ok();

    // Mean over ranks of each kernel's bandwidth + min of the check flag.
    let mut sums: Vec<f64> = StreamKernel::ALL
        .iter()
        .enumerate()
        .map(|(k, kernel)| cfg.len as f64 * kernel.bytes_per_element() as f64 / best[k] / 1e9)
        .collect();
    sums.push(if ok { 1.0 } else { 0.0 });
    comm.allreduce_async(&mut sums[..4], mp::Op::Sum).await;
    comm.allreduce_async(&mut sums[4..], mp::Op::Min).await;
    let p = comm.size() as f64;
    StreamResult {
        copy: sums[0] / p,
        scale: sums[1] / p,
        add: sums[2] / p,
        triad: sums[3] / p,
        passed: sums[4] > 0.5,
    }
}

/// EP-DGEMM configuration.
#[derive(Clone, Copy, Debug)]
pub struct DgemmConfig {
    /// Matrix order per rank.
    pub n: usize,
    /// Timed repetitions (best-of).
    pub iters: usize,
}

impl Default for DgemmConfig {
    fn default() -> DgemmConfig {
        DgemmConfig { n: 512, iters: 3 }
    }
}

/// EP-DGEMM outcome.
#[derive(Clone, Copy, Debug)]
pub struct DgemmResult {
    /// Gflop/s per rank (arithmetic mean over ranks).
    pub gflops: f64,
    /// Result checksum sanity flag.
    pub passed: bool,
}

/// Runs EP-DGEMM: every rank multiplies its own `n x n` matrices.
pub fn ep_dgemm(comm: &Comm, cfg: &DgemmConfig) -> DgemmResult {
    mp::block_on(ep_dgemm_async(comm, cfg))
}

/// Awaitable mirror of [`ep_dgemm`], for cooperative rank tasks.
pub async fn ep_dgemm_async(comm: &Comm, cfg: &DgemmConfig) -> DgemmResult {
    let n = cfg.n;
    let a: Vec<f64> = (0..n * n)
        .map(|k| crate::hpl::matrix_element(k / n, k % n))
        .collect();
    let b: Vec<f64> = (0..n * n)
        .map(|k| crate::hpl::matrix_element(k % n, k / n))
        .collect();
    let mut c = vec![0.0f64; n * n];

    comm.barrier_async().await;
    let mut best = f64::INFINITY;
    for _ in 0..cfg.iters {
        for v in c.iter_mut() {
            *v = 0.0;
        }
        let t = harness::Stopwatch::start();
        dgemm(n, &a, &b, &mut c);
        best = best.min(t.elapsed_secs().max(1e-9));
    }

    // Spot-check a few entries against the naive dot product.
    let mut ok = true;
    for &(i, j) in &[(0usize, 0usize), (n / 2, n / 3), (n - 1, n - 1)] {
        let expect: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
        if (c[i * n + j] - expect).abs() > 1e-9 * expect.abs().max(1.0) {
            ok = false;
        }
    }

    let mut vals = [dgemm_flops(n) / best / 1e9, if ok { 1.0 } else { 0.0 }];
    comm.allreduce_async(&mut vals[..1], mp::Op::Sum).await;
    comm.allreduce_async(&mut vals[1..], mp::Op::Min).await;
    DgemmResult {
        gflops: vals[0] / comm.size() as f64,
        passed: vals[1] > 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_reports_positive_bandwidths() {
        let cfg = StreamConfig {
            len: 100_000,
            iters: 2,
        };
        let results = mp::run(2, |comm| stream(comm, &cfg));
        for r in &results {
            assert!(r.passed);
            for v in [r.copy, r.scale, r.add, r.triad] {
                assert!(v > 0.0 && v.is_finite());
            }
            // All ranks agree (the result is a collective mean).
            assert_eq!(r.copy, results[0].copy);
        }
    }

    #[test]
    fn dgemm_reports_positive_gflops() {
        let cfg = DgemmConfig { n: 96, iters: 1 };
        let results = mp::run(3, |comm| ep_dgemm(comm, &cfg));
        for r in &results {
            assert!(r.passed);
            assert!(r.gflops > 0.0);
            assert_eq!(r.gflops, results[0].gflops);
        }
    }
}
