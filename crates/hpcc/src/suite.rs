//! Full-suite orchestration: runs every HPCC benchmark natively on the
//! `mp` runtime and collects the summary the paper's analysis consumes.

use mp::Comm;

use crate::{ep, fft_dist, hpl, ptrans, random_access, ring};

/// Native-run configuration, scaled for in-process execution.
#[derive(Clone, Copy, Debug)]
pub struct SuiteConfig {
    /// HPL matrix order.
    pub hpl_n: usize,
    /// HPL panel width.
    pub hpl_nb: usize,
    /// PTRANS matrix order (divisible by the rank count).
    pub ptrans_n: usize,
    /// log2 of the RandomAccess table size.
    pub ra_log2_size: u32,
    /// STREAM vector length per rank.
    pub stream_len: usize,
    /// log2 of the global FFT length.
    pub fft_log2_n: u32,
    /// EP-DGEMM matrix order per rank.
    pub dgemm_n: usize,
    /// Ring message bytes.
    pub ring_bytes: usize,
    /// Use the 2-D process-grid HPL (near-square grid) instead of the
    /// 1-D column-cyclic variant.
    pub hpl_2d: bool,
}

impl SuiteConfig {
    /// A configuration sized for quick in-process runs on `p` ranks.
    pub fn small(p: usize) -> SuiteConfig {
        SuiteConfig {
            hpl_n: 96,
            hpl_nb: 16,
            ptrans_n: 16 * p,
            ra_log2_size: 12,
            stream_len: 200_000,
            fft_log2_n: 12,
            dgemm_n: 128,
            ring_bytes: 100_000,
            hpl_2d: false,
        }
    }
}

/// The suite summary: one row of the paper's analysis per configuration.
/// All rates follow HPCC conventions (global values for G-*, per-CPU
/// means for EP-*).
#[derive(Clone, Copy, Debug, Default)]
pub struct HpccSummary {
    /// Ranks.
    pub cpus: usize,
    /// G-HPL, Gflop/s.
    pub ghpl: f64,
    /// G-PTRANS, GB/s.
    pub ptrans: f64,
    /// G-RandomAccess, GUP/s.
    pub gups: f64,
    /// EP-STREAM copy, GB/s per CPU.
    pub stream_copy: f64,
    /// EP-STREAM triad, GB/s per CPU.
    pub stream_triad: f64,
    /// G-FFT, Gflop/s.
    pub gfft: f64,
    /// EP-DGEMM, Gflop/s per CPU.
    pub ep_dgemm: f64,
    /// Random-ring bandwidth, GB/s per CPU.
    pub ring_bw: f64,
    /// Random-ring latency, microseconds.
    pub ring_latency_us: f64,
    /// Every benchmark's verification passed.
    pub all_passed: bool,
}

/// Runs the complete HPCC suite on an existing communicator.
pub fn run_on(comm: &Comm, cfg: &SuiteConfig) -> HpccSummary {
    let p = comm.size();
    let hplr = if cfg.hpl_2d {
        crate::hpl2d::run(
            comm,
            &crate::hpl2d::Hpl2dConfig::near_square(cfg.hpl_n, cfg.hpl_nb, p),
        )
    } else {
        hpl::run(
            comm,
            &hpl::HplConfig {
                n: cfg.hpl_n,
                nb: cfg.hpl_nb,
            },
        )
    };
    let ptr = ptrans::run(comm, &ptrans::PtransConfig { n: cfg.ptrans_n });
    let rar = if p.is_power_of_two() {
        Some(random_access::run(
            comm,
            &random_access::RandomAccessConfig {
                log2_size: cfg.ra_log2_size,
                updates_per_entry: 1,
                batch: 512,
            },
        ))
    } else {
        None
    };
    let str = ep::stream(
        comm,
        &ep::StreamConfig {
            len: cfg.stream_len,
            iters: 2,
        },
    );
    let fftr = if p.is_power_of_two() {
        Some(fft_dist::run(
            comm,
            &fft_dist::FftConfig {
                log2_n: cfg.fft_log2_n,
            },
        ))
    } else {
        None
    };
    let dg = ep::ep_dgemm(
        comm,
        &ep::DgemmConfig {
            n: cfg.dgemm_n,
            iters: 1,
        },
    );
    let rg = ring::run(
        comm,
        &ring::RingConfig {
            bw_bytes: cfg.ring_bytes,
            patterns: 2,
            iters: 2,
            seed: 0xBEEF,
        },
    );

    HpccSummary {
        cpus: p,
        ghpl: hplr.gflops,
        ptrans: ptr.gb_per_s,
        gups: rar.map(|r| r.gups).unwrap_or(0.0),
        stream_copy: str.copy,
        stream_triad: str.triad,
        gfft: fftr.map(|r| r.gflops).unwrap_or(0.0),
        ep_dgemm: dg.gflops,
        ring_bw: rg.random_bw,
        ring_latency_us: rg.random_latency_us,
        all_passed: hplr.passed
            && ptr.passed
            && rar.map(|r| r.passed).unwrap_or(true)
            && str.passed
            && fftr.map(|r| r.passed).unwrap_or(true)
            && dg.passed,
    }
}

/// Spawns `p` ranks and runs the complete suite natively on the host.
pub fn run_native(p: usize, cfg: &SuiteConfig) -> HpccSummary {
    let results = mp::run(p, |comm| run_on(comm, cfg));
    results[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_runs_and_verifies_on_4_ranks() {
        let s = run_native(4, &SuiteConfig::small(4));
        assert!(s.all_passed, "{s:?}");
        assert!(s.ghpl > 0.0);
        assert!(s.ptrans > 0.0);
        assert!(s.gups > 0.0);
        assert!(s.stream_copy > 0.0);
        assert!(s.gfft > 0.0);
        assert!(s.ep_dgemm > 0.0);
        assert!(s.ring_bw > 0.0);
        assert!(s.ring_latency_us > 0.0);
        assert_eq!(s.cpus, 4);
    }

    #[test]
    fn full_suite_with_2d_hpl() {
        let mut cfg = SuiteConfig::small(4);
        cfg.hpl_2d = true;
        let s = run_native(4, &cfg);
        assert!(s.all_passed, "{s:?}");
        assert!(s.ghpl > 0.0);
    }

    #[test]
    fn suite_skips_power_of_two_benchmarks_on_odd_worlds() {
        let s = run_native(3, &SuiteConfig::small(3));
        assert!(s.all_passed);
        assert_eq!(s.gups, 0.0);
        assert_eq!(s.gfft, 0.0);
        assert!(s.ghpl > 0.0);
    }
}
