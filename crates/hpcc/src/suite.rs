//! Full-suite orchestration as a component table: every HPCC benchmark
//! is one [`Component`] entry that executes natively on the `mp` runtime
//! and emits unified [`harness::Record`]s. The paper-facing
//! [`HpccSummary`] is a derived view over a record stream.

use harness::{MetricKind, Mode, Record, Runner, Suite};
use mp::Comm;

use crate::{ep, fft_dist, hpl, ptrans, random_access, ring};

/// Native-run configuration, scaled for in-process execution.
#[derive(Clone, Copy, Debug)]
pub struct SuiteConfig {
    /// HPL matrix order.
    pub hpl_n: usize,
    /// HPL panel width.
    pub hpl_nb: usize,
    /// PTRANS matrix order (divisible by the rank count).
    pub ptrans_n: usize,
    /// log2 of the RandomAccess table size.
    pub ra_log2_size: u32,
    /// STREAM vector length per rank.
    pub stream_len: usize,
    /// log2 of the global FFT length.
    pub fft_log2_n: u32,
    /// EP-DGEMM matrix order per rank.
    pub dgemm_n: usize,
    /// Ring message bytes.
    pub ring_bytes: usize,
    /// Use the 2-D process-grid HPL (near-square grid) instead of the
    /// 1-D column-cyclic variant.
    pub hpl_2d: bool,
}

impl SuiteConfig {
    /// A configuration sized for quick in-process runs on `p` ranks.
    pub fn small(p: usize) -> SuiteConfig {
        SuiteConfig {
            hpl_n: 96,
            hpl_nb: 16,
            ptrans_n: 16 * p,
            ra_log2_size: 12,
            stream_len: 200_000,
            fft_log2_n: 12,
            dgemm_n: 128,
            ring_bytes: 100_000,
            hpl_2d: false,
        }
    }
}

/// One HPCC suite component (paper Section 4 naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// G-HPL: global LU solve.
    Hpl,
    /// G-PTRANS: global matrix transpose.
    Ptrans,
    /// G-RandomAccess: global random updates.
    RandomAccess,
    /// EP-STREAM: embarrassingly-parallel memory bandwidth.
    Stream,
    /// G-FFT: global 1-D FFT.
    Fft,
    /// EP-DGEMM: embarrassingly-parallel matrix multiply.
    Dgemm,
    /// Random-ring bandwidth and latency.
    RandomRing,
}

impl Component {
    /// All components, in the paper's presentation order.
    pub const ALL: [Component; 7] = [
        Component::Hpl,
        Component::Ptrans,
        Component::RandomAccess,
        Component::Stream,
        Component::Fft,
        Component::Dgemm,
        Component::RandomRing,
    ];

    /// The component's HPCC name (also its primary [`Record`] identity).
    pub fn name(self) -> &'static str {
        match self {
            Component::Hpl => "G-HPL",
            Component::Ptrans => "G-PTRANS",
            Component::RandomAccess => "G-RandomAccess",
            Component::Stream => "EP-STREAM",
            Component::Fft => "G-FFT",
            Component::Dgemm => "EP-DGEMM",
            Component::RandomRing => "RandomRing",
        }
    }

    /// What the component's primary record measures.
    pub fn metric(self) -> MetricKind {
        match self {
            Component::Hpl | Component::Fft | Component::Dgemm => MetricKind::RateGflops,
            Component::Ptrans | Component::Stream | Component::RandomRing => MetricKind::RateGBs,
            Component::RandomAccess => MetricKind::RateGups,
        }
    }

    /// Whether native/virtual execution needs a power-of-two rank count
    /// (the closed-form model handles any count).
    pub fn pow2_procs(self) -> bool {
        matches!(self, Component::RandomAccess | Component::Fft)
    }

    /// Executes the component's real benchmark code on `comm`, returning
    /// `(name, metric, value)` rows plus the verification verdict. The
    /// first row carries the component's primary name.
    async fn execute(self, comm: &Comm, cfg: &SuiteConfig) -> ComponentOutput {
        match self {
            Component::Hpl => {
                let r = if cfg.hpl_2d {
                    crate::hpl2d::run_async(
                        comm,
                        &crate::hpl2d::Hpl2dConfig::near_square(cfg.hpl_n, cfg.hpl_nb, comm.size()),
                    )
                    .await
                } else {
                    hpl::run_async(
                        comm,
                        &hpl::HplConfig {
                            n: cfg.hpl_n,
                            nb: cfg.hpl_nb,
                            ..hpl::HplConfig::default()
                        },
                    )
                    .await
                };
                ComponentOutput {
                    values: vec![("G-HPL", MetricKind::RateGflops, r.gflops)],
                    passed: r.passed,
                }
            }
            Component::Ptrans => {
                let r = ptrans::run_async(comm, &ptrans::PtransConfig { n: cfg.ptrans_n }).await;
                ComponentOutput {
                    values: vec![("G-PTRANS", MetricKind::RateGBs, r.gb_per_s)],
                    passed: r.passed,
                }
            }
            Component::RandomAccess => {
                let r = random_access::run_async(
                    comm,
                    &random_access::RandomAccessConfig {
                        log2_size: cfg.ra_log2_size,
                        updates_per_entry: 1,
                        batch: 512,
                    },
                )
                .await;
                ComponentOutput {
                    values: vec![("G-RandomAccess", MetricKind::RateGups, r.gups)],
                    passed: r.passed,
                }
            }
            Component::Stream => {
                let r = ep::stream_async(
                    comm,
                    &ep::StreamConfig {
                        len: cfg.stream_len,
                        iters: 2,
                    },
                )
                .await;
                ComponentOutput {
                    values: vec![
                        ("EP-STREAM", MetricKind::RateGBs, r.copy),
                        ("EP-STREAM-triad", MetricKind::RateGBs, r.triad),
                    ],
                    passed: r.passed,
                }
            }
            Component::Fft => {
                let r = fft_dist::run_async(
                    comm,
                    &fft_dist::FftConfig {
                        log2_n: cfg.fft_log2_n,
                    },
                )
                .await;
                ComponentOutput {
                    values: vec![("G-FFT", MetricKind::RateGflops, r.gflops)],
                    passed: r.passed,
                }
            }
            Component::Dgemm => {
                let r = ep::ep_dgemm_async(
                    comm,
                    &ep::DgemmConfig {
                        n: cfg.dgemm_n,
                        iters: 1,
                    },
                )
                .await;
                ComponentOutput {
                    values: vec![("EP-DGEMM", MetricKind::RateGflops, r.gflops)],
                    passed: r.passed,
                }
            }
            Component::RandomRing => {
                let r = ring::run_async(
                    comm,
                    &ring::RingConfig {
                        bw_bytes: cfg.ring_bytes,
                        patterns: 2,
                        iters: 2,
                        seed: 0xBEEF,
                    },
                )
                .await;
                ComponentOutput {
                    values: vec![
                        ("RandomRing", MetricKind::RateGBs, r.random_bw),
                        (
                            "RandomRing-latency",
                            MetricKind::LatencyUs,
                            r.random_latency_us,
                        ),
                    ],
                    passed: true,
                }
            }
        }
    }
}

/// The rows one component execution produced.
struct ComponentOutput {
    values: Vec<(&'static str, MetricKind, f64)>,
    passed: bool,
}

/// Runs one component natively on an existing communicator, emitting its
/// records. Collective; the records' stats are the cross-rank min/avg/max
/// of the component's wall time.
pub fn run_component_on(comm: &Comm, component: Component, cfg: &SuiteConfig) -> Vec<Record> {
    mp::block_on(run_component_on_async(comm, component, cfg))
}

/// Awaitable mirror of [`run_component_on`], for cooperative rank tasks.
pub async fn run_component_on_async(
    comm: &Comm,
    component: Component,
    cfg: &SuiteConfig,
) -> Vec<Record> {
    let (out, stats) = Runner::timed_stats_async(comm, || component.execute(comm, cfg)).await;
    out.values
        .iter()
        .map(|&(name, metric, value)| Record {
            benchmark: name,
            suite: Suite::Hpcc,
            mode: Mode::Native,
            machine: "host",
            procs: comm.size(),
            threads: smp::ambient_threads(),
            bytes: None,
            metric,
            value,
            stats,
            passed: out.passed,
        })
        .collect()
}

/// Spawns `p` ranks and runs one component natively on the host,
/// returning its records (rank 0's view).
pub fn run_component_native(p: usize, component: Component, cfg: &SuiteConfig) -> Vec<Record> {
    let mut results = mp::run(p, |comm| run_component_on(comm, component, cfg));
    results.swap_remove(0)
}

/// Runs every admissible component on an existing communicator: the
/// power-of-two-only components (G-RandomAccess, G-FFT) are skipped on
/// other world sizes, exactly as the HPCC harness does.
pub fn run_records_on(comm: &Comm, cfg: &SuiteConfig) -> Vec<Record> {
    let p = comm.size();
    let mut records = Vec::new();
    for c in Component::ALL {
        if c.pow2_procs() && !p.is_power_of_two() {
            continue;
        }
        records.extend(run_component_on(comm, c, cfg));
    }
    records
}

/// Runs the complete HPCC suite on an existing communicator (summary
/// view over [`run_records_on`]).
pub fn run_on(comm: &Comm, cfg: &SuiteConfig) -> HpccSummary {
    HpccSummary::from_records(&run_records_on(comm, cfg))
}

/// Spawns `p` ranks and runs the complete suite natively on the host,
/// returning the record stream.
pub fn run_native_records(p: usize, cfg: &SuiteConfig) -> Vec<Record> {
    let mut results = mp::run(p, |comm| run_records_on(comm, cfg));
    results.swap_remove(0)
}

/// Spawns `p` ranks and runs the complete suite natively on the host.
pub fn run_native(p: usize, cfg: &SuiteConfig) -> HpccSummary {
    HpccSummary::from_records(&run_native_records(p, cfg))
}

/// The suite summary: one row of the paper's analysis per configuration.
/// All rates follow HPCC conventions (global values for G-*, per-CPU
/// means for EP-*).
#[derive(Clone, Copy, Debug, Default)]
pub struct HpccSummary {
    /// Ranks.
    pub cpus: usize,
    /// G-HPL, Gflop/s.
    pub ghpl: f64,
    /// G-PTRANS, GB/s.
    pub ptrans: f64,
    /// G-RandomAccess, GUP/s.
    pub gups: f64,
    /// EP-STREAM copy, GB/s per CPU.
    pub stream_copy: f64,
    /// EP-STREAM triad, GB/s per CPU.
    pub stream_triad: f64,
    /// G-FFT, Gflop/s.
    pub gfft: f64,
    /// EP-DGEMM, Gflop/s per CPU.
    pub ep_dgemm: f64,
    /// Random-ring bandwidth, GB/s per CPU.
    pub ring_bw: f64,
    /// Random-ring latency, microseconds.
    pub ring_latency_us: f64,
    /// Every benchmark's verification passed.
    pub all_passed: bool,
}

impl HpccSummary {
    /// Derives the summary view from a record stream: each known
    /// benchmark name fills its field (missing components stay 0.0, as
    /// with the skipped power-of-two benchmarks), `cpus` comes from the
    /// records, and `all_passed` holds over the records present.
    pub fn from_records(records: &[Record]) -> HpccSummary {
        let mut s = HpccSummary {
            all_passed: !records.is_empty(),
            ..HpccSummary::default()
        };
        for r in records {
            s.cpus = r.procs;
            s.all_passed &= r.passed;
            match r.benchmark {
                "G-HPL" => s.ghpl = r.value,
                "G-PTRANS" => s.ptrans = r.value,
                "G-RandomAccess" => s.gups = r.value,
                "EP-STREAM" => s.stream_copy = r.value,
                "EP-STREAM-triad" => s.stream_triad = r.value,
                "G-FFT" => s.gfft = r.value,
                "EP-DGEMM" => s.ep_dgemm = r.value,
                "RandomRing" => s.ring_bw = r.value,
                "RandomRing-latency" => s.ring_latency_us = r.value,
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_runs_and_verifies_on_4_ranks() {
        let s = run_native(4, &SuiteConfig::small(4));
        assert!(s.all_passed, "{s:?}");
        assert!(s.ghpl > 0.0);
        assert!(s.ptrans > 0.0);
        assert!(s.gups > 0.0);
        assert!(s.stream_copy > 0.0);
        assert!(s.gfft > 0.0);
        assert!(s.ep_dgemm > 0.0);
        assert!(s.ring_bw > 0.0);
        assert!(s.ring_latency_us > 0.0);
        assert_eq!(s.cpus, 4);
    }

    #[test]
    fn full_suite_with_2d_hpl() {
        let mut cfg = SuiteConfig::small(4);
        cfg.hpl_2d = true;
        let s = run_native(4, &cfg);
        assert!(s.all_passed, "{s:?}");
        assert!(s.ghpl > 0.0);
    }

    #[test]
    fn suite_skips_power_of_two_benchmarks_on_odd_worlds() {
        let s = run_native(3, &SuiteConfig::small(3));
        assert!(s.all_passed);
        assert_eq!(s.gups, 0.0);
        assert_eq!(s.gfft, 0.0);
        assert!(s.ghpl > 0.0);
    }

    #[test]
    fn record_stream_names_every_component() {
        let records = run_native_records(4, &SuiteConfig::small(4));
        // 7 components, with STREAM and RandomRing each emitting a
        // secondary row (triad, latency).
        assert_eq!(records.len(), 9);
        for c in Component::ALL {
            let r = records
                .iter()
                .find(|r| r.benchmark == c.name())
                .unwrap_or_else(|| panic!("{} missing", c.name()));
            assert_eq!(r.metric, c.metric());
            assert_eq!(r.mode, Mode::Native);
            assert_eq!(r.procs, 4);
            assert!(r.stats.is_ordered());
            assert!(r.stats.t_max_us > 0.0);
        }
    }
}
