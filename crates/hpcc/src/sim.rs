//! Modelled HPCC results for the paper's machines: the same
//! [`HpccSummary`](crate::suite::HpccSummary) rows, derived from a
//! [`machines::Machine`] model instead of a native run. This is what the
//! figure harness uses for Figs. 1-5 and Table 3.

use harness::{MetricKind, Mode, Record, Stats, Suite};
use machines::{ClusterSim, Machine};
use mp::sched;
use simnet::Time;

use crate::suite::HpccSummary;

/// HPL panel width used by the model.
const NB: usize = 128;

/// Fraction of peak the (partially vectorising) HPCC FFT kernel sustains
/// locally, by system class. "The Global FFT Benchmark in the HPCC suite
/// does not completely vectorize" (Section 5.1), which is why the vector
/// systems' FFT efficiency is not far above the scalar systems' despite
/// their memory advantage.
fn fft_eff(m: &Machine) -> f64 {
    match m.class {
        machines::SystemClass::Vector => 0.020,
        machines::SystemClass::Scalar => 0.012,
    }
}

/// G-HPL model: a right-looking block-LU loop. Per panel iteration the
/// critical path is the *maximum* of the trailing update's compute time
/// (spread over all ranks) and the pipelined panel broadcast — HPL's
/// look-ahead overlaps the two, and the ratio between them is what
/// erodes HPL efficiency at scale (strongly on the Myrinet Opteron
/// cluster, barely on the NEC SX-8).
pub fn hpl(m: &Machine, p: usize) -> f64 {
    // Constant memory per rank: N grows with sqrt(p).
    let n = ((2000.0 * (p as f64).sqrt()) as usize).div_ceil(NB) * NB;
    let compute_rate = m.node.peak_gflops * 1e9 * m.node.hpl_eff; // per CPU
    let nodes = m.nodes_for(p);
    // Pipelined broadcast: bandwidth term once, latency per tree level.
    let bcast_bw = if nodes > 1 {
        m.net.plain_link_bw
    } else {
        m.net.intra_bw
    };
    let bcast_lat = if nodes > 1 {
        m.net.mpi_latency_us
    } else {
        m.net.intra_latency_us
    } * 1e-6;
    let levels = (p.max(2) as f64).log2().ceil();

    let panels = n / NB;
    let mut time = 0.0f64;
    for k in 0..panels {
        let remaining = (n - k * NB) as f64;
        let flops = 2.0 * NB as f64 * remaining * remaining;
        let compute = flops / (p as f64 * compute_rate);
        let bytes = remaining * NB as f64 * 8.0;
        // Panel broadcast plus row-swap traffic of comparable volume;
        // neither fully overlaps with the update in practice, so the
        // iteration cost is additive.
        let comm = 2.0 * bytes / bcast_bw + bcast_lat * levels;
        time += compute + comm;
    }
    let total_flops = 2.0 / 3.0 * (n as f64).powi(3);
    total_flops / time / 1e9
}

/// How much longer PTRANS's exchange runs than an ideal synchronous
/// pairwise all-to-all: strided tile packing/unpacking costs extra memory
/// passes and the pairwise rounds de-synchronise, which is why measured
/// PTRANS rates sit several-fold below fabric peak.
const PTRANS_SKEW: f64 = 2.5;

/// G-PTRANS model: the pairwise tile exchange priced on the fabric, plus
/// the local transpose/accumulate memory passes.
pub fn ptrans(m: &Machine, p: usize) -> f64 {
    let n = 256 * p; // constant 512 KiB tiles
    let tile_bytes = ((n / p) * (n / p) * 8) as u64;
    let sim = ClusterSim::new_plain(m, p);
    let t = sim.run_fresh(&sched::alltoall::pairwise(p, tile_bytes)) * PTRANS_SKEW;
    // Local transpose of the diagonal tile plus the accumulate pass.
    for r in 0..p {
        sim.compute_stream(r, (n / p * n * 8) as f64);
    }
    8.0 * (n as f64) * (n as f64) / sim.time().max(t).as_secs() / 1e9
}

/// G-FFT model: local butterflies at the (low) HPCC FFT efficiency plus
/// three pairwise all-to-all transposes, as in the six-step algorithm.
pub fn gfft(m: &Machine, p: usize) -> f64 {
    let ln: u64 = 1 << 20; // 16 MiB of complex data per rank
    let n = ln * p as u64;
    let flops = 5.0 * n as f64 * (n as f64).log2();
    let sim = ClusterSim::new_plain(m, p);
    for r in 0..p {
        sim.compute_flops(r, flops / p as f64, fft_eff(m));
    }
    if p > 1 {
        let block = 16 * ln / (p as u64); // complex = 16 bytes
        let transpose = sched::alltoall::pairwise(p, block);
        for _ in 0..3 {
            sim.run(&transpose);
            sim.sync();
        }
    }
    flops / sim.time().as_secs() / 1e9
}

/// G-RandomAccess model: every rank's update rate is the minimum of its
/// memory system's random-update rate and the network's bucketed
/// small-message throughput.
pub fn gups(m: &Machine, p: usize) -> f64 {
    let node = &m.node;
    let mem_rate = node.random_concurrency / (node.mem_latency_us * 1e-6);
    if p == 1 {
        return mem_rate / 1e9;
    }
    // HPCC's look-ahead window split across p-1 destinations: each bucket
    // message carries only a few updates (an effective window of ~256
    // once the verification-safe batching is accounted for), at ~16 wire
    // bytes per update including headers.
    let per_msg = (256.0 / p as f64).max(1.0);
    let link_per_rank = m.net.plain_link_bw / node.cpus as f64;
    let wire = 16.0 / link_per_rank;
    let lat = m.net.mpi_latency_us * 1e-6 / per_msg;
    let remote_fraction = (p as f64 - 1.0) / p as f64;
    let net_rate = 1.0 / (remote_fraction * (wire + lat));
    p as f64 * mem_rate.min(net_rate) / 1e9
}

/// Random-ring bandwidth (GB/s per CPU) and latency (us) from the fabric.
pub fn random_ring(m: &Machine, p: usize) -> (f64, f64) {
    let bytes: u64 = 2_000_000;
    let (mut bw_t, mut lat_t) = (0.0, 0.0);
    let patterns = 4;
    for k in 0..patterns {
        let perm = crate::ring::ring_permutation(p, 0xBEEF + k);
        // The measured benchmark averages many iterations; a cold
        // single shot over-counts start-up skew, so time a steady-state
        // iteration (the marginal cost after a warm-up pass).
        let ring = sched::p2p::random_ring(&perm, bytes);
        let sim = ClusterSim::new_plain(m, p);
        let warm = sim.run(&ring).as_secs();
        bw_t += sim.run(&ring).as_secs() - warm;
        let lat = sched::p2p::random_ring(&perm, 8);
        let lsim = ClusterSim::new_plain(m, p);
        let lwarm = lsim.run(&lat).as_secs();
        lat_t += lsim.run(&lat).as_secs() - lwarm;
    }
    bw_t /= patterns as f64;
    lat_t /= patterns as f64;
    // b_eff convention: a process's ring bandwidth counts its inbound
    // plus outbound traffic (2 messages each way per iteration).
    (4.0 * bytes as f64 / bw_t / 1e9, lat_t / 2.0 * 1e6)
}

/// The modelled record rows for one suite component on `machine` at `p`
/// CPUs: the same benchmark names as a native run (identity fields
/// match), with model-derived values and deterministic statistics.
pub fn component_records(m: &Machine, p: usize, c: crate::suite::Component) -> Vec<Record> {
    use crate::suite::Component;
    let rows: Vec<(&'static str, MetricKind, f64)> = match c {
        Component::Hpl => vec![("G-HPL", MetricKind::RateGflops, hpl(m, p))],
        Component::Ptrans => vec![("G-PTRANS", MetricKind::RateGBs, ptrans(m, p))],
        Component::RandomAccess => vec![("G-RandomAccess", MetricKind::RateGups, gups(m, p))],
        Component::Stream => vec![
            ("EP-STREAM", MetricKind::RateGBs, m.node.stream_bw / 1e9),
            (
                "EP-STREAM-triad",
                MetricKind::RateGBs,
                m.node.stream_bw * 1.05 / 1e9,
            ),
        ],
        Component::Fft => vec![("G-FFT", MetricKind::RateGflops, gfft(m, p))],
        Component::Dgemm => vec![(
            "EP-DGEMM",
            MetricKind::RateGflops,
            m.node.peak_gflops * m.node.dgemm_eff,
        )],
        Component::RandomRing => {
            let (ring_bw, ring_latency_us) = random_ring(m, p);
            vec![
                ("RandomRing", MetricKind::RateGBs, ring_bw),
                ("RandomRing-latency", MetricKind::LatencyUs, ring_latency_us),
            ]
        }
    };
    rows.iter()
        .map(|&(name, metric, value)| Record {
            benchmark: name,
            suite: Suite::Hpcc,
            mode: Mode::Simulated,
            machine: m.name,
            procs: p,
            threads: 1,
            bytes: None,
            metric,
            value,
            stats: Stats::deterministic(0.0),
            passed: true,
        })
        .collect()
}

/// The full modelled HPCC record stream for `machine` at `p` CPUs: every
/// component's rows, in the paper's presentation order.
pub fn records(m: &Machine, p: usize) -> Vec<Record> {
    crate::suite::Component::ALL
        .into_iter()
        .flat_map(|c| component_records(m, p, c))
        .collect()
}

/// The full modelled HPCC summary for `machine` at `p` CPUs (summary
/// view over [`records`]).
pub fn summary(m: &Machine, p: usize) -> HpccSummary {
    HpccSummary::from_records(&records(m, p))
}

/// Convenience: `Time` for a schedule on a fresh cluster (used by tests).
pub fn schedule_time(m: &Machine, p: usize, s: &simnet::Schedule) -> Time {
    ClusterSim::new(m, p).run_fresh(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use machines::systems::*;

    #[test]
    fn hpl_efficiency_is_plausible_and_decreasing() {
        let m = cray_opteron();
        let e4 = hpl(&m, 4) / m.peak_gflops(4);
        let e64 = hpl(&m, 64) / m.peak_gflops(64);
        assert!(e4 > 0.4 && e4 <= m.node.hpl_eff, "e4 = {e4}");
        assert!(e64 < e4, "HPL efficiency must fall with scale");
    }

    #[test]
    fn sx8_leads_ptrans_and_fft() {
        // Section 5.1: "the NEC SX-8 performs extremely well on benchmarks
        // that stress the memory and network capabilities like Global
        // PTRANS and Global FFTs".
        let p = 64;
        let sx8 = nec_sx8();
        let xeon = dell_xeon();
        assert!(ptrans(&sx8, p) > 1.5 * ptrans(&xeon, p));
        assert!(gfft(&sx8, p) > 2.0 * gfft(&xeon, p));
    }

    #[test]
    fn altix_has_best_ring_latency() {
        let p = 64;
        let (_, altix_lat) = random_ring(&altix_bx2(), p);
        for m in [cray_x1_msp(), cray_opteron(), dell_xeon(), nec_sx8()] {
            if m.max_cpus >= p {
                let (_, lat) = random_ring(&m, p);
                assert!(
                    altix_lat < lat,
                    "Altix latency {altix_lat} !< {} on {}",
                    lat,
                    m.name
                );
            }
        }
    }

    #[test]
    fn sx8_ring_bandwidth_beats_clusters() {
        let p = 64;
        let (sx8_bw, _) = random_ring(&nec_sx8(), p);
        let (opt_bw, _) = random_ring(&cray_opteron(), p);
        let (xeon_bw, _) = random_ring(&dell_xeon(), p);
        // Paper-implied per-CPU ring bandwidths at scale: SX-8 ~0.78,
        // Myrinet Opteron ~0.06, IB Xeon in between.
        assert!(sx8_bw > 3.0 * opt_bw, "{sx8_bw} vs opteron {opt_bw}");
        assert!(sx8_bw > 1.2 * xeon_bw, "{sx8_bw} vs xeon {xeon_bw}");
    }

    #[test]
    fn summary_is_fully_populated() {
        let s = summary(&dell_xeon(), 16);
        assert!(s.ghpl > 0.0 && s.ptrans > 0.0 && s.gups > 0.0);
        assert!(s.gfft > 0.0 && s.ring_bw > 0.0 && s.ring_latency_us > 0.0);
        assert_eq!(s.cpus, 16);
    }

    #[test]
    fn record_stream_matches_component_models() {
        let m = dell_xeon();
        let p = 16;
        let recs = records(&m, p);
        assert_eq!(recs.len(), 9);
        let val = |name: &str| recs.iter().find(|r| r.benchmark == name).unwrap().value;
        assert_eq!(val("G-HPL"), hpl(&m, p));
        assert_eq!(val("G-PTRANS"), ptrans(&m, p));
        assert_eq!(val("G-FFT"), gfft(&m, p));
        assert_eq!(val("G-RandomAccess"), gups(&m, p));
        assert!(recs.iter().all(|r| r.machine == m.name && r.procs == p));
    }

    #[test]
    fn gups_is_network_bound_at_scale() {
        let m = dell_xeon();
        let per_cpu_1 = gups(&m, 1);
        let per_cpu_64 = gups(&m, 64) / 64.0;
        assert!(per_cpu_64 < per_cpu_1, "remote updates must slow GUPS");
    }
}
