//! `hpcc` — a pure-Rust implementation of the HPC Challenge benchmark
//! suite, as evaluated in Saini et al.'s five-supercomputer study.
//!
//! "The local and global performance are characterized by the following
//! four benchmarks from HPCC suite that represent combinations of minimal
//! and maximal spatial and temporal locality: (a) HPL for high temporal
//! and spatial locality, (b) STREAM and PTRANS for low temporal and high
//! spatial locality, (c) RANDOM ACCESS for low temporal and spatial
//! locality, and (d) FFT for high temporal and low spatial locality."
//!
//! Every benchmark runs *natively* on the [`mp`] runtime (real data, real
//! wall-clock timing, built-in verification) via [`suite::run_native`],
//! and is also *modelled* against the paper's machine descriptions via
//! [`sim::summary`], which is how the figure harness reproduces the
//! paper's HPCC analysis without the original hardware.
//!
//! ```
//! let cfg = hpcc::suite::SuiteConfig::small(2);
//! let s = hpcc::suite::run_native(2, &cfg);
//! assert!(s.all_passed);
//! ```

pub mod beff;
pub mod ep;
pub mod fft_dist;
pub mod hpl;
pub mod hpl2d;
pub mod kernels;
pub mod ptrans;
pub mod random_access;
pub mod ring;
pub mod sim;
pub mod suite;
pub mod virtual_run;

pub use suite::{Component, HpccSummary, SuiteConfig};
pub use virtual_run::run_virtual_records;
