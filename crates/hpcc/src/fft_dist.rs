//! G-FFT: distributed 1-D complex FFT "across the entire computer by
//! distributing the input vector in block fashion across all the nodes".
//!
//! Binary-exchange algorithm, decimation in frequency: the first
//! `log2(p)` butterfly stages span multiple ranks — each rank exchanges
//! its whole block with the partner at XOR distance and computes its half
//! of the butterflies — and the remaining stages are a local DIF
//! transform. The result is globally bit-reversed; the benchmark (like
//! FFTE's internal representation) leaves it so, and the verifier
//! accounts for it.
//!
//! Hot-path structure (see DESIGN.md, "FFT engine"): each cross-rank
//! stage's twiddle slice is precomputed from the shared
//! [`twiddle`](crate::kernels::twiddle) table before the first exchange
//! (per-rank global offsets make every slice a contiguous stride of
//! `W_n`), the block is flattened into one reusable byte buffer, and the
//! partner exchange rides the `send_raw`/`recv_raw` zero-copy transport
//! path — steady-state stages perform no allocation and no trig.

// Index-heavy numeric code: explicit indices mirror the maths.
#![allow(clippy::needless_range_loop)]

use mp::Comm;

use crate::kernels::fft::{self, fft_flops, Complex};
use crate::kernels::twiddle::{table_for, TwiddleTable};

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct FftConfig {
    /// log2 of the global transform length.
    pub log2_n: u32,
}

/// Benchmark outcome.
#[derive(Clone, Copy, Debug)]
pub struct FftResult {
    /// Global transform length.
    pub n: u64,
    /// Gflop/s by the 5 n log2 n convention.
    pub gflops: f64,
    /// Wall time, seconds.
    pub time_s: f64,
    /// Max |error| of an inverse-transform round trip, relative.
    pub max_error: f64,
    /// Whether the round trip reproduced the input.
    pub passed: bool,
}

/// The deterministic input signal.
fn input_element(g: u64) -> Complex {
    let x = crate::hpl::matrix_element(g as usize, 77);
    let y = crate::hpl::matrix_element(g as usize, 78);
    Complex::new(x, y)
}

/// Tag of the cross-rank block exchanges.
const EXCHANGE_TAG: mp::Tag = 19;

/// One cross-rank stage: its global butterfly span and, when this rank
/// holds the high half, the precomputed twiddle slice `W_span^{base+l}`
/// (direction already folded in).
struct CrossStage {
    span: usize,
    twiddles: Option<Vec<Complex>>,
}

/// Precomputes every cross-rank stage's twiddle slice for this rank,
/// descending span order (the forward stage order). The high half's
/// twiddle index `k = (me*ln + l) mod (span/2)` is contiguous in `l`
/// because `ln` divides `span/2`, so each slice is one strided read of
/// the shared `W_n` table — nothing is recomputed per stage.
fn cross_stages(
    table: &TwiddleTable,
    me: usize,
    ln: usize,
    p: usize,
    inverse: bool,
) -> Vec<CrossStage> {
    let n = ln * p;
    let mut stages = Vec::with_capacity(p.trailing_zeros() as usize);
    let mut span = n;
    while span > ln {
        let dist_ranks = span / 2 / ln;
        let twiddles = (me & dist_ranks != 0).then(|| {
            let stride = n / span;
            let base = (me * ln) % (span / 2);
            (0..ln)
                .map(|l| table.w((base + l) * stride, inverse))
                .collect()
        });
        stages.push(CrossStage { span, twiddles });
        span /= 2;
    }
    stages
}

/// Flattens the local block into a reusable little-endian byte buffer
/// (the raw-transport wire format). After the first stage this is a
/// plain in-place overwrite — no allocation.
fn pack(local: &[Complex], buf: &mut Vec<u8>) {
    buf.resize(16 * local.len(), 0);
    for (dst, c) in buf.chunks_exact_mut(16).zip(local) {
        dst[..8].copy_from_slice(&c.re.to_le_bytes());
        dst[8..].copy_from_slice(&c.im.to_le_bytes());
    }
}

#[inline]
fn unpack(bytes: &[u8]) -> Complex {
    Complex::new(
        f64::from_le_bytes(bytes[..8].try_into().expect("8-byte re")),
        f64::from_le_bytes(bytes[8..16].try_into().expect("8-byte im")),
    )
}

/// Exchanges the packed local block with `partner`, reusing both buffers:
/// `send_raw` copies into the transport's recycled scratch and `recv_raw`
/// transfers payload ownership into `recvbuf`, recycling the displaced
/// allocation — so per-stage traffic allocates nothing in steady state.
async fn exchange_blocks(
    comm: &Comm,
    local: &[Complex],
    partner: usize,
    sendbuf: &mut Vec<u8>,
    recvbuf: &mut Vec<u8>,
) {
    pack(local, sendbuf);
    comm.send_raw(sendbuf, partner, EXCHANGE_TAG);
    comm.recv_raw_async(recvbuf, partner, EXCHANGE_TAG).await;
    debug_assert_eq!(recvbuf.len(), 16 * local.len(), "partner block length");
}

/// One distributed DIF transform over `comm`; `local` is this rank's
/// block (length `n/p`). Output is globally bit-reversed in place.
pub fn distributed_fft(comm: &Comm, local: &mut [Complex], inverse: bool) {
    mp::block_on(distributed_fft_async(comm, local, inverse));
}

/// Awaitable mirror of [`distributed_fft`], for cooperative rank tasks.
pub async fn distributed_fft_async(comm: &Comm, local: &mut [Complex], inverse: bool) {
    let p = comm.size();
    let me = comm.rank();
    assert!(p.is_power_of_two(), "G-FFT needs a power-of-two rank count");
    let ln = local.len();
    assert!(ln.is_power_of_two(), "local block must be a power of two");

    if p > 1 {
        let table = table_for(ln * p);
        let stages = cross_stages(&table, me, ln, p, inverse);
        let mut sendbuf: Vec<u8> = Vec::new();
        let mut recvbuf: Vec<u8> = Vec::new();
        for stage in &stages {
            let partner = me ^ (stage.span / 2 / ln);
            exchange_blocks(comm, local, partner, &mut sendbuf, &mut recvbuf).await;
            match &stage.twiddles {
                // I hold `a`; partner holds `b`: a' = a + b.
                None => {
                    for (c, bytes) in local.iter_mut().zip(recvbuf.chunks_exact(16)) {
                        *c = *c + unpack(bytes);
                    }
                }
                // I hold `b`: b' = (a - b) * W_span^k, table-driven.
                Some(tw) => {
                    for ((c, bytes), w) in local.iter_mut().zip(recvbuf.chunks_exact(16)).zip(tw) {
                        *c = (unpack(bytes) - *c) * *w;
                    }
                }
            }
        }
    }

    fft::dif_in_place(local, inverse);
}

/// Exactly undoes a forward [`distributed_fft`], unscaled: afterwards
/// every rank holds `n` times its original input block. Runs the DIT
/// mirror — local inverse butterflies first, then the cross-rank stages
/// in ascending span order with conjugate twiddles — and stays O(n/p)
/// memory per rank (this is what the benchmark's verification uses
/// instead of gathering the spectrum to rank 0).
pub fn distributed_ifft_unscaled(comm: &Comm, local: &mut [Complex]) {
    mp::block_on(distributed_ifft_unscaled_async(comm, local));
}

/// Awaitable mirror of [`distributed_ifft_unscaled`].
pub async fn distributed_ifft_unscaled_async(comm: &Comm, local: &mut [Complex]) {
    let p = comm.size();
    let me = comm.rank();
    assert!(p.is_power_of_two(), "G-FFT needs a power-of-two rank count");
    let ln = local.len();
    assert!(ln.is_power_of_two(), "local block must be a power of two");

    fft::dit_in_place(local, true);

    if p > 1 {
        let table = table_for(ln * p);
        let stages = cross_stages(&table, me, ln, p, true);
        let mut sendbuf: Vec<u8> = Vec::new();
        let mut recvbuf: Vec<u8> = Vec::new();
        for stage in stages.iter().rev() {
            let partner = me ^ (stage.span / 2 / ln);
            // Forward: a' = a + b (low), b' = (a - b) W (high). Undo with
            // t = b' * conj(W) = a - b: low gets a' + t = 2a, high gets
            // a' - t = 2b. The high half premultiplies in place, both
            // sides exchange, and each combines with one pass.
            if let Some(tw) = &stage.twiddles {
                for (c, w) in local.iter_mut().zip(tw) {
                    *c = *c * *w;
                }
            }
            exchange_blocks(comm, local, partner, &mut sendbuf, &mut recvbuf).await;
            match &stage.twiddles {
                None => {
                    for (c, bytes) in local.iter_mut().zip(recvbuf.chunks_exact(16)) {
                        *c = *c + unpack(bytes);
                    }
                }
                Some(_) => {
                    for (c, bytes) in local.iter_mut().zip(recvbuf.chunks_exact(16)) {
                        *c = unpack(bytes) - *c;
                    }
                }
            }
        }
    }
}

/// Runs G-FFT: forward transform (timed), then a *distributed* inverse
/// round trip for verification — O(n/p) memory per rank, no gather.
pub fn run(comm: &Comm, cfg: &FftConfig) -> FftResult {
    mp::block_on(run_async(comm, cfg))
}

/// Awaitable mirror of [`run`], for cooperative rank tasks.
pub async fn run_async(comm: &Comm, cfg: &FftConfig) -> FftResult {
    let p = comm.size();
    let me = comm.rank();
    let n = 1u64 << cfg.log2_n;
    assert!(
        n as usize >= p * p.max(2),
        "transform too small for the rank count"
    );
    let ln = (n as usize) / p;
    let base = (me * ln) as u64;
    let mut data: Vec<Complex> = (0..ln as u64).map(|l| input_element(base + l)).collect();

    comm.barrier_async().await;
    let clock = harness::Stopwatch::start();
    distributed_fft_async(comm, &mut data, false).await;
    comm.barrier_async().await;
    let time_s = clock.elapsed_secs();

    // Round trip entirely in place: the inverse mirror returns n * input
    // in the original block layout, so each rank checks its own slice
    // against the deterministic generator and only the scalar error is
    // reduced. (The old gather-to-rank-0 check needed O(n) memory on one
    // rank; it survives as a cross-check in the small-n tests.)
    distributed_ifft_unscaled_async(comm, &mut data).await;
    let scale = 1.0 / n as f64;
    let mut max_err = 0.0f64;
    for (l, v) in data.iter().enumerate() {
        let expect = input_element(base + l as u64);
        let scaled = Complex::new(v.re * scale, v.im * scale);
        max_err = max_err.max((scaled - expect).abs());
    }
    let mut stats = [max_err, time_s];
    comm.allreduce_async(&mut stats, mp::Op::Max).await;

    FftResult {
        n,
        gflops: fft_flops(n as usize) / stats[1] / 1e9,
        time_s: stats[1],
        max_error: stats[0],
        passed: stats[0] < 1e-10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_matches_serial_across_rank_counts() {
        for (p, log2_n) in [(1usize, 8u32), (2, 8), (4, 10), (8, 12)] {
            let results = mp::run(p, |comm| run(comm, &FftConfig { log2_n }));
            for r in &results {
                assert!(r.passed, "p={p} n=2^{log2_n}: max error {}", r.max_error);
                // Tables make the transform exact to rounding: hold the
                // tightened bound, not just `passed`.
                assert!(
                    r.max_error <= 1e-10,
                    "p={p} n=2^{log2_n}: max error {} above 1e-10",
                    r.max_error
                );
                assert!(r.gflops > 0.0);
            }
        }
    }

    /// The retired full-gather verification, kept as a small-n
    /// cross-check: gather the bit-reversed spectrum to rank 0, undo the
    /// reversal, serial-inverse, compare to the generator.
    fn gathered_roundtrip_error(comm: &Comm, data: &[Complex], log2_n: u32) -> f64 {
        let n = 1usize << log2_n;
        let me = comm.rank();
        let ln = data.len();
        let mut gathered = (me == 0).then(|| vec![0.0f64; 2 * n]);
        let mut flat = vec![0.0f64; 2 * ln];
        for (i, c) in data.iter().enumerate() {
            flat[2 * i] = c.re;
            flat[2 * i + 1] = c.im;
        }
        comm.gather(&flat, gathered.as_deref_mut(), 0);

        let mut max_err = 0.0f64;
        if let Some(g) = gathered {
            let mut spectrum = vec![Complex::default(); n];
            for i in 0..n {
                let rev = (i as u64).reverse_bits() >> (64 - log2_n) as u64;
                spectrum[rev as usize] = Complex::new(g[2 * i], g[2 * i + 1]);
            }
            crate::kernels::fft::fft(&mut spectrum, true);
            for (i, v) in spectrum.iter().enumerate() {
                let expect = input_element(i as u64);
                let scaled = Complex::new(v.re / n as f64, v.im / n as f64);
                max_err = max_err.max((scaled - expect).abs());
            }
        }
        let mut stats = [max_err];
        comm.bcast(&mut stats, 0);
        stats[0]
    }

    /// The distributed inverse verification and the full-gather check
    /// must agree that the forward transform is correct.
    #[test]
    fn distributed_inverse_agrees_with_full_gather_check() {
        for (p, log2_n) in [(2usize, 8u32), (4, 10), (8, 12)] {
            let errs = mp::run(p, |comm| {
                let n = 1usize << log2_n;
                let ln = n / p;
                let base = (comm.rank() * ln) as u64;
                let mut data: Vec<Complex> =
                    (0..ln as u64).map(|l| input_element(base + l)).collect();
                distributed_fft(comm, &mut data, false);
                let gather_err = gathered_roundtrip_error(comm, &data, log2_n);

                distributed_ifft_unscaled(comm, &mut data);
                let mut dist_err = 0.0f64;
                for (l, v) in data.iter().enumerate() {
                    let expect = input_element(base + l as u64);
                    let scaled = Complex::new(v.re / n as f64, v.im / n as f64);
                    dist_err = dist_err.max((scaled - expect).abs());
                }
                let mut stats = [dist_err];
                comm.allreduce(&mut stats, mp::Op::Max);
                (gather_err, stats[0])
            });
            for (gather_err, dist_err) in errs {
                assert!(gather_err <= 1e-10, "p={p}: gather check {gather_err}");
                assert!(dist_err <= 1e-10, "p={p}: distributed check {dist_err}");
            }
        }
    }

    #[test]
    fn local_dif_is_a_bit_reversed_fft() {
        let n = 64usize;
        let input: Vec<Complex> = (0..n as u64).map(input_element).collect();
        let mut dif = input.clone();
        fft::dif_in_place(&mut dif, false);
        let mut reference = input;
        crate::kernels::fft::fft(&mut reference, false);
        let bits = n.trailing_zeros();
        for i in 0..n {
            let rev = i.reverse_bits() >> (usize::BITS - bits);
            let d = dif[i] - reference[rev];
            assert!(d.abs() < 1e-9, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two rank count")]
    fn rejects_odd_rank_counts() {
        mp::run(3, |comm| {
            let mut block = vec![Complex::default(); 8];
            distributed_fft(comm, &mut block, false);
        });
    }
}
