//! G-FFT: distributed 1-D complex FFT "across the entire computer by
//! distributing the input vector in block fashion across all the nodes".
//!
//! Binary-exchange algorithm, decimation in frequency: the first
//! `log2(p)` butterfly stages span multiple ranks — each rank exchanges
//! its whole block with the partner at XOR distance and computes its half
//! of the butterflies — and the remaining stages are a local DIF
//! transform. The result is globally bit-reversed; the benchmark (like
//! FFTE's internal representation) leaves it so, and the verifier
//! accounts for it.

// Index-heavy numeric code: explicit indices mirror the maths.
#![allow(clippy::needless_range_loop)]

use mp::Comm;

use crate::kernels::fft::{fft_flops, Complex};

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct FftConfig {
    /// log2 of the global transform length.
    pub log2_n: u32,
}

/// Benchmark outcome.
#[derive(Clone, Copy, Debug)]
pub struct FftResult {
    /// Global transform length.
    pub n: u64,
    /// Gflop/s by the 5 n log2 n convention.
    pub gflops: f64,
    /// Wall time, seconds.
    pub time_s: f64,
    /// Max |error| of an inverse-transform round trip, relative.
    pub max_error: f64,
    /// Whether the round trip reproduced the input.
    pub passed: bool,
}

/// The deterministic input signal.
fn input_element(g: u64) -> Complex {
    let x = crate::hpl::matrix_element(g as usize, 77);
    let y = crate::hpl::matrix_element(g as usize, 78);
    Complex::new(x, y)
}

/// Local decimation-in-frequency stages (spans `data.len()` down to 2),
/// no bit-reversal. Output is in bit-reversed order.
fn dif_local(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = n;
    while len >= 2 {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2];
                data[start + k] = a + b;
                data[start + k + len / 2] = (a - b) * Complex::cis(ang * k as f64);
            }
        }
        len >>= 1;
    }
}

/// One distributed DIF transform over `comm`; `local` is this rank's
/// block (length `n/p`). Output is globally bit-reversed in place.
pub fn distributed_fft(comm: &Comm, local: &mut [Complex], inverse: bool) {
    let p = comm.size();
    let me = comm.rank();
    assert!(p.is_power_of_two(), "G-FFT needs a power-of-two rank count");
    let ln = local.len();
    assert!(ln.is_power_of_two(), "local block must be a power of two");
    let n = ln * p;
    let sign = if inverse { 1.0 } else { -1.0 };

    // Cross-rank stages: global span L from n down to 2*ln.
    let mut flat: Vec<f64> = vec![0.0; 2 * ln];
    let mut incoming = vec![0.0f64; 2 * ln];
    let mut span = n;
    while span > ln {
        let dist_ranks = span / 2 / ln; // partner XOR distance in ranks
        let partner = me ^ dist_ranks;
        for (i, c) in local.iter().enumerate() {
            flat[2 * i] = c.re;
            flat[2 * i + 1] = c.im;
        }
        comm.sendrecv(&flat, partner, &mut incoming, partner, 19);
        let low = me & dist_ranks == 0;
        let ang = sign * 2.0 * std::f64::consts::PI / span as f64;
        for l in 0..ln {
            let other = Complex::new(incoming[2 * l], incoming[2 * l + 1]);
            if low {
                // I hold `a`; partner holds `b`.
                local[l] = local[l] + other;
            } else {
                // I hold `b`; twiddle index is my global offset within the
                // low half of the span.
                let g = me * ln + l;
                let k = g % (span / 2);
                local[l] = (other - local[l]) * Complex::cis(ang * k as f64);
            }
        }
        span /= 2;
    }

    dif_local(local, inverse);
}

/// Runs G-FFT: forward transform (timed), then an inverse round trip for
/// verification.
pub fn run(comm: &Comm, cfg: &FftConfig) -> FftResult {
    let p = comm.size();
    let me = comm.rank();
    let n = 1u64 << cfg.log2_n;
    assert!(
        n as usize >= p * p.max(2),
        "transform too small for the rank count"
    );
    let ln = (n as usize) / p;
    let base = (me * ln) as u64;
    let mut data: Vec<Complex> = (0..ln as u64).map(|l| input_element(base + l)).collect();

    comm.barrier();
    let clock = mp::timer::Stopwatch::start();
    distributed_fft(comm, &mut data, false);
    comm.barrier();
    let time_s = clock.elapsed_secs();

    // Round trip: the bit-reversed forward output fed to an inverse
    // transform of the same shape returns the input, scaled by n and
    // block-permuted by double bit-reversal = identity ordering when both
    // transforms use the same stage structure.
    // Here we verify numerically: inverse-transform the *bit-reversed*
    // spectrum by gathering, reordering, scattering conceptually — to
    // stay distributed we instead apply the inverse DIT mirror: reverse
    // the stage order by running the same DIF inverse on the
    // bit-reversed data's reversed index space. The cheap, robust check:
    // gather to rank 0, undo bit reversal, serial-inverse, compare.
    let mut gathered = (me == 0).then(|| vec![0.0f64; 2 * n as usize]);
    let mut flat = vec![0.0f64; 2 * ln];
    for (i, c) in data.iter().enumerate() {
        flat[2 * i] = c.re;
        flat[2 * i + 1] = c.im;
    }
    comm.gather(&flat, gathered.as_deref_mut(), 0);

    let mut max_err = 0.0f64;
    if let Some(g) = gathered {
        let bits = cfg.log2_n;
        let mut spectrum = vec![Complex::default(); n as usize];
        for i in 0..n as usize {
            let rev = (i as u64).reverse_bits() >> (64 - bits) as u64;
            spectrum[rev as usize] = Complex::new(g[2 * i], g[2 * i + 1]);
        }
        crate::kernels::fft::fft(&mut spectrum, true);
        for (i, v) in spectrum.iter().enumerate() {
            let expect = input_element(i as u64);
            let scaled = Complex::new(v.re / n as f64, v.im / n as f64);
            max_err = max_err.max((scaled - expect).abs());
        }
    }
    let mut stats = [max_err, time_s];
    comm.bcast(&mut stats, 0);

    FftResult {
        n,
        gflops: fft_flops(n as usize) / stats[1] / 1e9,
        time_s: stats[1],
        max_error: stats[0],
        passed: stats[0] < 1e-8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_matches_serial_across_rank_counts() {
        for (p, log2_n) in [(1usize, 8u32), (2, 8), (4, 10), (8, 12)] {
            let results = mp::run(p, |comm| run(comm, &FftConfig { log2_n }));
            for r in &results {
                assert!(r.passed, "p={p} n=2^{log2_n}: max error {}", r.max_error);
                assert!(r.gflops > 0.0);
            }
        }
    }

    #[test]
    fn dif_local_is_a_bit_reversed_fft() {
        let n = 64usize;
        let input: Vec<Complex> = (0..n as u64).map(input_element).collect();
        let mut dif = input.clone();
        dif_local(&mut dif, false);
        let mut reference = input;
        crate::kernels::fft::fft(&mut reference, false);
        let bits = n.trailing_zeros();
        for i in 0..n {
            let rev = i.reverse_bits() >> (usize::BITS - bits);
            let d = dif[i] - reference[rev];
            assert!(d.abs() < 1e-9, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two rank count")]
    fn rejects_odd_rank_counts() {
        mp::run(3, |comm| {
            let mut block = vec![Complex::default(); 8];
            distributed_fft(comm, &mut block, false);
        });
    }
}
