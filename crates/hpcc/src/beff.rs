//! b_eff: the effective bandwidth benchmark (Rabenseifner & Koniges),
//! the paper's reference [14] and the origin of its random-ring
//! bandwidth/latency metric.
//!
//! b_eff summarises a system's communication capability in one number:
//! the bandwidth per process averaged over **21 message sizes** (from a
//! few bytes to `L_max`) and **several communication patterns** (natural
//! rings, random rings), with each size's contribution weighted by the
//! logarithmic average the benchmark defines:
//!
//! `b_eff = avg over patterns ( avg over sizes ( L * iters / time ) )`

use mp::Comm;

use crate::ring::ring_permutation;

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct BeffConfig {
    /// Largest message size in bytes (`L_max`; the official run uses
    /// 1/128 of node memory — scaled down for in-process runs).
    pub l_max: usize,
    /// Number of random ring patterns.
    pub random_patterns: usize,
    /// Iterations per (pattern, size) measurement.
    pub iters: usize,
    /// Permutation seed.
    pub seed: u64,
}

impl Default for BeffConfig {
    fn default() -> BeffConfig {
        BeffConfig {
            l_max: 1 << 20,
            random_patterns: 3,
            iters: 3,
            seed: 0xEFF,
        }
    }
}

/// Result: the effective bandwidth and its decomposition.
#[derive(Clone, Debug)]
pub struct BeffResult {
    /// Effective bandwidth per process, GB/s.
    pub b_eff: f64,
    /// Effective bandwidth accumulated over all processes, GB/s.
    pub b_eff_total: f64,
    /// Per-size average bandwidths (bytes, GB/s per process).
    pub by_size: Vec<(usize, f64)>,
}

/// The 21-size geometric grid of the benchmark: `L_max` down by factors
/// of two (clamped at 1 byte), reversed to ascending order.
pub fn size_grid(l_max: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..21).map(|k| (l_max >> k).max(1)).collect();
    v.dedup();
    v.reverse();
    v
}

/// One timed both-directions ring pass at `bytes`; returns seconds per
/// iteration (max over ranks).
fn ring_pass(comm: &Comm, perm: &[usize], bytes: usize, iters: usize) -> f64 {
    let words = (bytes / 8).max(1);
    let me = comm.rank();
    let n = perm.len();
    let pos = perm.iter().position(|&r| r == me).expect("rank in ring");
    let right = perm[(pos + 1) % n];
    let left = perm[(pos + n - 1) % n];
    let sbuf = vec![1.0f64; words];
    let mut rbuf = vec![0.0f64; words];
    comm.barrier();
    let clock = harness::Stopwatch::start();
    for _ in 0..iters {
        comm.sendrecv(&sbuf, right, &mut rbuf, left, 37);
        comm.sendrecv(&sbuf, left, &mut rbuf, right, 37);
    }
    let mut t = [clock.elapsed_secs() / iters as f64];
    comm.allreduce(&mut t, mp::Op::Max);
    t[0].max(1e-9)
}

/// Runs b_eff on `comm`.
pub fn run(comm: &Comm, cfg: &BeffConfig) -> BeffResult {
    let n = comm.size();
    let sizes = size_grid(cfg.l_max);
    let natural: Vec<usize> = (0..n).collect();
    let mut patterns: Vec<Vec<usize>> = vec![natural];
    for k in 0..cfg.random_patterns {
        patterns.push(ring_permutation(n, cfg.seed.wrapping_add(k as u64)));
    }

    let mut by_size = Vec::with_capacity(sizes.len());
    let mut sum_over_sizes = 0.0;
    for &bytes in &sizes {
        // Average the per-pattern bandwidths at this size. Each pass
        // moves 2 messages out + 2 in per rank (b_eff counts in + out).
        let mut acc = 0.0;
        for p in &patterns {
            let t = ring_pass(comm, p, bytes, cfg.iters);
            acc += 4.0 * bytes as f64 / t;
        }
        let bw = acc / patterns.len() as f64;
        by_size.push((bytes, bw / 1e9));
        sum_over_sizes += bw;
    }
    let b_eff = sum_over_sizes / sizes.len() as f64 / 1e9;
    BeffResult {
        b_eff,
        b_eff_total: b_eff * n as f64,
        by_size,
    }
}

/// Spawns `p` ranks and runs b_eff natively.
pub fn run_native(p: usize, cfg: &BeffConfig) -> BeffResult {
    mp::run(p, |comm| run(comm, cfg)).swap_remove(0)
}

/// Modelled b_eff for a machine at `p` CPUs: the same size/pattern
/// averaging priced on the fabric (plain MPI path, like the real
/// benchmark).
pub fn simulate(machine: &machines::Machine, p: usize, cfg: &BeffConfig) -> BeffResult {
    let sizes = size_grid(cfg.l_max);
    let natural: Vec<usize> = (0..p).collect();
    let mut patterns: Vec<Vec<usize>> = vec![natural];
    for k in 0..cfg.random_patterns {
        patterns.push(ring_permutation(p, cfg.seed.wrapping_add(k as u64)));
    }

    let mut by_size = Vec::with_capacity(sizes.len());
    let mut sum = 0.0;
    for &bytes in &sizes {
        let mut acc = 0.0;
        for perm in &patterns {
            let ring = mp::sched::p2p::random_ring(perm, bytes as u64);
            let sim = machines::ClusterSim::new_plain(machine, p);
            let warm = sim.run(&ring).as_secs();
            let t = (sim.run(&ring).as_secs() - warm).max(1e-12);
            acc += 4.0 * bytes as f64 / t;
        }
        let bw = acc / patterns.len() as f64;
        by_size.push((bytes, bw / 1e9));
        sum += bw;
    }
    let b_eff = sum / sizes.len() as f64 / 1e9;
    BeffResult {
        b_eff,
        b_eff_total: b_eff * p as f64,
        by_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_grid_has_21_dyadic_sizes() {
        let g = size_grid(1 << 20);
        assert_eq!(g.len(), 21);
        assert_eq!(*g.last().unwrap(), 1 << 20);
        assert_eq!(g[0], 1);
        assert!(g.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn tiny_l_max_deduplicates() {
        let g = size_grid(16);
        assert_eq!(g, vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn native_beff_reports_positive_bandwidths() {
        let cfg = BeffConfig {
            l_max: 1 << 14,
            random_patterns: 1,
            iters: 2,
            seed: 1,
        };
        let r = run_native(4, &cfg);
        assert!(r.b_eff > 0.0 && r.b_eff.is_finite());
        assert!((r.b_eff_total - 4.0 * r.b_eff).abs() < 1e-9);
        // Bandwidth at the largest size exceeds the smallest (latency
        // dominates tiny messages).
        assert!(r.by_size.last().unwrap().1 > r.by_size[0].1);
    }

    #[test]
    fn simulated_beff_ranks_machines_plausibly() {
        let cfg = BeffConfig::default();
        let sx8 = simulate(&machines::systems::nec_sx8(), 64, &cfg);
        let opteron = simulate(&machines::systems::cray_opteron(), 64, &cfg);
        assert!(
            sx8.b_eff > 2.0 * opteron.b_eff,
            "SX-8 {} vs Opteron {}",
            sx8.b_eff,
            opteron.b_eff
        );
        // b_eff is far below the peak large-message ring bandwidth — the
        // small-size average drags it down, by design.
        let peak = sx8.by_size.last().unwrap().1;
        assert!(sx8.b_eff < 0.7 * peak, "b_eff {} vs peak {peak}", sx8.b_eff);
    }
}
