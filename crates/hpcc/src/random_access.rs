//! G-RandomAccess: giga-updates per second (GUPS).
//!
//! "It measures the rate at which the computer can update pseudo-random
//! locations of its memory." The global table of `2^log2_size` 64-bit
//! words is block-distributed; each rank generates its slice of the
//! official HPCC update stream, buckets the updates by owner, and the
//! ranks exchange buckets with an all-to-all-v round per batch, applying
//! `table[addr] ^= value` locally. Verification exploits the XOR
//! update's self-inverse property: replaying the identical stream must
//! restore the initial table.

use mp::Comm;

use crate::kernels::ra_rng;

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct RandomAccessConfig {
    /// log2 of the global table size in words.
    pub log2_size: u32,
    /// Updates to perform, as a multiple of the table size (the official
    /// run uses 4x).
    pub updates_per_entry: usize,
    /// Updates generated per rank between bucket exchanges (the official
    /// benchmark also limits look-ahead, to 1024).
    pub batch: usize,
}

impl Default for RandomAccessConfig {
    fn default() -> RandomAccessConfig {
        RandomAccessConfig {
            log2_size: 16,
            updates_per_entry: 4,
            batch: 1024,
        }
    }
}

/// Benchmark outcome.
#[derive(Clone, Copy, Debug)]
pub struct RandomAccessResult {
    /// Global table words.
    pub table_size: u64,
    /// Total updates applied.
    pub updates: u64,
    /// Giga-updates per second.
    pub gups: f64,
    /// Wall time, seconds.
    pub time_s: f64,
    /// Whether the self-inverse verification restored the table.
    pub passed: bool,
}

/// Bucket size below which the XOR apply stays serial: with the default
/// 1024-update look-ahead a fork-join region would dwarf the updates.
const PAR_MIN_UPDATES: usize = 4096;

/// Applies one bucket of XOR updates to the local table slice, fanning
/// the scan over the rank's worker pool when the bucket is large: the
/// table splits into contiguous bands and every worker scans the whole
/// bucket, applying only the updates that land in its band. Each table
/// word belongs to exactly one band, so updates to it are applied by one
/// worker in stream order — and XOR is exact and order-independent
/// anyway — making the result bitwise identical to the serial loop for
/// any thread count.
fn apply_updates(table: &mut [u64], my_base: u64, table_bits: u32, incoming: &[u64]) {
    let mask = (1u64 << table_bits) - 1;
    let pool = smp::Pool::current();
    if pool.size() <= 1 || incoming.len() < PAR_MIN_UPDATES {
        for &v in incoming {
            let local = (v & mask) - my_base;
            debug_assert!((local as usize) < table.len());
            table[local as usize] ^= v;
        }
        return;
    }
    let ranges = pool.chunk_ranges(table.len(), 1);
    let mut bands: Vec<(u64, &mut [u64])> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [u64] = table;
    for rng in ranges {
        let (band, tail) = std::mem::take(&mut rest).split_at_mut(rng.end - rng.start);
        bands.push((rng.start as u64, band));
        rest = tail;
    }
    pool.run_parts(&mut bands, |_, (lo, band)| {
        let hi = *lo + band.len() as u64;
        for &v in incoming {
            let local = (v & mask) - my_base;
            if local >= *lo && local < hi {
                band[(local - *lo) as usize] ^= v;
            }
        }
    });
}

/// One pass over this rank's update stream, exchanging buckets and
/// applying XOR updates to the local table slice.
async fn apply_stream(
    comm: &Comm,
    table: &mut [u64],
    my_base: u64,
    cfg: &RandomAccessConfig,
    total_updates: u64,
) {
    let p = comm.size();
    let me = comm.rank();
    let per_rank = total_updates / p as u64;
    let mut stream = ra_rng::UpdateStream::at((per_rank * me as u64) as i64);
    let table_bits = cfg.log2_size;

    let mut remaining = per_rank;
    let mut buckets: Vec<Vec<u64>> = vec![Vec::with_capacity(cfg.batch); p];
    while remaining > 0 {
        let now = (cfg.batch as u64).min(remaining) as usize;
        for b in buckets.iter_mut() {
            b.clear();
        }
        for _ in 0..now {
            let v = stream.next().expect("stream is infinite");
            let addr = v & ((1u64 << table_bits) - 1);
            let owner = (addr >> (table_bits - log2(p as u64))) as usize;
            // For p == 1 the shift above would be the full width; handle
            // uniformly by arithmetic below.
            let owner = if p == 1 { 0 } else { owner.min(p - 1) };
            buckets[owner].push(v);
        }
        // Exchange bucket sizes, then buckets (allgatherv-of-pairs style:
        // pairwise rounds keep it simple and deadlock-free).
        for s in 0..p {
            let dst = (me + s) % p;
            let src = (me + p - s) % p;
            let incoming: Vec<u64> = if dst == me {
                buckets[me].clone()
            } else {
                comm.send(&buckets[dst], dst, 11);
                let (data, _, _) = comm.recv_any_async::<u64>(Some(src), Some(11)).await;
                data
            };
            apply_updates(table, my_base, table_bits, &incoming);
        }
        remaining -= now as u64;
    }
}

fn log2(x: u64) -> u32 {
    63 - x.leading_zeros()
}

/// Runs G-RandomAccess on `comm`. Rank count must be a power of two (an
/// HPCC-style restriction that keeps address-to-owner mapping a shift).
pub fn run(comm: &Comm, cfg: &RandomAccessConfig) -> RandomAccessResult {
    mp::block_on(run_async(comm, cfg))
}

/// Awaitable mirror of [`run`], for cooperative rank tasks.
pub async fn run_async(comm: &Comm, cfg: &RandomAccessConfig) -> RandomAccessResult {
    let p = comm.size();
    let me = comm.rank();
    assert!(
        p.is_power_of_two(),
        "RandomAccess needs a power-of-two rank count"
    );
    assert!(
        cfg.log2_size >= log2(p as u64),
        "table must have at least one word per rank"
    );
    let table_size = 1u64 << cfg.log2_size;
    let local_size = table_size / p as u64;
    let my_base = local_size * me as u64;
    let total_updates = table_size * cfg.updates_per_entry as u64;

    // table[i] = global index, the official initialisation.
    let mut table: Vec<u64> = (0..local_size).map(|i| my_base + i).collect();

    comm.barrier_async().await;
    let clock = harness::Stopwatch::start();
    apply_stream(comm, &mut table, my_base, cfg, total_updates).await;
    comm.barrier_async().await;
    let time_s = clock.elapsed_secs();

    // Verification: replay the identical stream; XOR self-inverts.
    apply_stream(comm, &mut table, my_base, cfg, total_updates).await;
    let ok = table
        .iter()
        .enumerate()
        .all(|(i, &v)| v == my_base + i as u64);

    let mut reduced = [time_s, if ok { 1.0 } else { 0.0 }];
    comm.allreduce_async(&mut reduced[..1], mp::Op::Max).await;
    comm.allreduce_async(&mut reduced[1..], mp::Op::Min).await;

    let updates = (total_updates / p as u64) * p as u64;
    RandomAccessResult {
        table_size,
        updates,
        gups: updates as f64 / reduced[0] / 1e9,
        time_s: reduced[0],
        passed: reduced[1] > 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_verify_on_various_rank_counts() {
        for p in [1usize, 2, 4, 8] {
            let cfg = RandomAccessConfig {
                log2_size: 10,
                updates_per_entry: 2,
                batch: 128,
            };
            let results = mp::run(p, |comm| run(comm, &cfg));
            for r in &results {
                assert!(r.passed, "p={p}: verification failed");
                assert_eq!(r.table_size, 1024);
                assert!(r.gups > 0.0);
            }
        }
    }

    #[test]
    fn owner_mapping_is_block_distribution() {
        let p = 4u64;
        let bits = 10u32;
        let block = (1u64 << bits) / p;
        for addr in 0..(1u64 << bits) {
            let owner = addr >> (bits - super::log2(p));
            assert_eq!(owner, addr / block);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two_ranks() {
        mp::run(3, |comm| run(comm, &RandomAccessConfig::default()));
    }

    #[test]
    fn banded_apply_is_bitwise_identical_across_thread_counts() {
        let bits = 14u32;
        let mut stream = ra_rng::UpdateStream::at(0);
        // Large enough to clear PAR_MIN_UPDATES: the banded path runs.
        let incoming: Vec<u64> = (0..2 * PAR_MIN_UPDATES)
            .map(|_| stream.next().expect("stream is infinite"))
            .collect();
        let mk = || (0..(1u64 << bits)).collect::<Vec<u64>>();
        let reference = {
            let _serial = smp::AmbientGuard::install(1);
            let mut table = mk();
            apply_updates(&mut table, 0, bits, &incoming);
            table
        };
        for threads in [2usize, 3, 4, 8] {
            let _guard = smp::AmbientGuard::install(threads);
            let mut table = mk();
            apply_updates(&mut table, 0, bits, &incoming);
            assert_eq!(
                table, reference,
                "{threads}-thread apply drifted from serial"
            );
        }
    }
}
