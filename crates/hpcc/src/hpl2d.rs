//! G-HPL on a 2-D process grid: the ScaLAPACK/HPL distribution proper.
//!
//! The 1-D column variant in [`crate::hpl`] gives every rank full
//! columns, which caps scalability at O(N/NB) ranks and makes the panel
//! factorisation serial per column block. Real HPL distributes the
//! matrix block-cyclically over a `P x Q` grid so that panel
//! factorisation, row swaps and the trailing update all parallelise in
//! both dimensions — at the cost of distributed partial pivoting. This
//! module implements that algorithm faithfully:
//!
//! 1. distributed panel factorisation with pivot search by all-gather
//!    over the panel's *column* communicator and cross-row swaps;
//! 2. pivot application to the trailing (and finished) columns;
//! 3. panel broadcast along *row* communicators;
//! 4. U12 triangular solve on the pivot block row + broadcast down
//!    column communicators;
//! 5. local rank-NB trailing update.
//!
//! Row/column communicators come from `Comm::split`, exercising the
//! communicator machinery the way ScaLAPACK does.

// Index-heavy distributed linear algebra: explicit indices mirror the
// block-cyclic maths.
#![allow(clippy::needless_range_loop)]

use mp::Comm;

use crate::hpl::{matrix_element, rhs_element, scaled_residual, HplResult};
use crate::kernels::dgemm::gemm_update;

/// 2-D HPL configuration.
#[derive(Clone, Copy, Debug)]
pub struct Hpl2dConfig {
    /// Matrix order.
    pub n: usize,
    /// Square block size.
    pub nb: usize,
    /// Process rows (`P`); `P * Q = comm.size()` with `Q = size / P`.
    pub p_rows: usize,
    /// Panel lookahead: the process column owning panel `k+1` updates
    /// its columns first, factors the panel, then finishes its trailing
    /// update — so the next iteration starts from a stashed factor
    /// while the other columns are still updating. Identical
    /// arithmetic, reordered schedule.
    pub lookahead: bool,
}

impl Hpl2dConfig {
    /// Picks a near-square grid for `size` ranks.
    pub fn near_square(n: usize, nb: usize, size: usize) -> Hpl2dConfig {
        let mut p = (size as f64).sqrt() as usize;
        while p > 1 && !size.is_multiple_of(p) {
            p -= 1;
        }
        Hpl2dConfig {
            n,
            nb,
            p_rows: p.max(1),
            lookahead: smp::tuned_now().hpl_lookahead,
        }
    }
}

/// Local block-cyclic storage: the rows/columns this rank owns, stored
/// column-major as `data[lc * lrows + lr]`.
struct Local {
    /// Global row index of each local row.
    rows: Vec<usize>,
    /// Global column index of each local column.
    cols: Vec<usize>,
    data: Vec<f64>,
}

/// Global indices owned by grid coordinate `c` of `g` with block `nb`.
fn owned(n: usize, nb: usize, grid: usize, coord: usize) -> Vec<usize> {
    (0..n).filter(|i| (i / nb) % grid == coord).collect()
}

impl Local {
    fn generate(n: usize, nb: usize, pi: usize, qj: usize, grid_p: usize, grid_q: usize) -> Local {
        let rows = owned(n, nb, grid_p, pi);
        let cols = owned(n, nb, grid_q, qj);
        let (lr, lc) = (rows.len(), cols.len());
        let mut data = vec![0.0f64; lr * lc];
        for (c, &gc) in cols.iter().enumerate() {
            for (r, &gr) in rows.iter().enumerate() {
                data[c * lr + r] = matrix_element(gr, gc);
            }
        }
        Local { rows, cols, data }
    }

    fn lrows(&self) -> usize {
        self.rows.len()
    }

    /// Local row index of global row `g`, if owned.
    fn lrow(&self, g: usize) -> Option<usize> {
        self.rows.binary_search(&g).ok()
    }

    /// Local column index of global column `g`, if owned.
    fn lcol(&self, g: usize) -> Option<usize> {
        self.cols.binary_search(&g).ok()
    }

    fn at(&self, lr: usize, lc: usize) -> f64 {
        self.data[lc * self.lrows() + lr]
    }

    fn at_mut(&mut self, lr: usize, lc: usize) -> &mut f64 {
        let n = self.lrows();
        &mut self.data[lc * n + lr]
    }

    /// Copies the local segment of global row `g` across columns
    /// `col_filter(gc)` into a vector (with the matching local column
    /// indices).
    fn row_segment(&self, lr: usize, col_filter: impl Fn(usize) -> bool) -> Vec<f64> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, &gc)| col_filter(gc))
            .map(|(lc, _)| self.at(lr, lc))
            .collect()
    }

    fn set_row_segment(&mut self, lr: usize, col_filter: impl Fn(usize) -> bool, vals: &[f64]) {
        let targets: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, &gc)| col_filter(gc))
            .map(|(lc, _)| lc)
            .collect();
        assert_eq!(targets.len(), vals.len());
        for (lc, &v) in targets.into_iter().zip(vals) {
            *self.at_mut(lr, lc) = v;
        }
    }
}

/// Exchanges (or locally swaps) global rows `ga` and `gb` across this
/// rank's columns selected by `col_filter`, using the column
/// communicator. Owners of the two rows are process rows `(ga/nb)%P`
/// and `(gb/nb)%P`; `col_comm` ranks are indexed by process row.
async fn swap_rows(
    local: &mut Local,
    col_comm: &Comm,
    nb: usize,
    ga: usize,
    gb: usize,
    col_filter: impl Fn(usize) -> bool + Copy,
) {
    if ga == gb {
        return;
    }
    let grid_p = col_comm.size();
    let owner_a = (ga / nb) % grid_p;
    let owner_b = (gb / nb) % grid_p;
    let me = col_comm.rank();
    if owner_a == owner_b {
        if me == owner_a {
            let (la, lb) = (
                local.lrow(ga).expect("own row a"),
                local.lrow(gb).expect("own row b"),
            );
            let seg_a = local.row_segment(la, col_filter);
            let seg_b = local.row_segment(lb, col_filter);
            local.set_row_segment(la, col_filter, &seg_b);
            local.set_row_segment(lb, col_filter, &seg_a);
        }
    } else if me == owner_a || me == owner_b {
        let (mine, peer) = if me == owner_a {
            (ga, owner_b)
        } else {
            (gb, owner_a)
        };
        let lr = local.lrow(mine).expect("own my row");
        let seg = local.row_segment(lr, col_filter);
        let mut incoming = vec![0.0f64; seg.len()];
        col_comm
            .sendrecv_async(&seg, peer, &mut incoming, peer, 29)
            .await;
        local.set_row_segment(lr, col_filter, &incoming);
    }
}

/// Distributed panel factorisation of `[k0, k1)`, collective over one
/// process column (every rank with `qj == panel_q` calls this in
/// lockstep). Returns the pivot rows.
///
/// The pivot search is fused with the pivot-row transport: each rank's
/// allgather contribution carries `[best, best_row, candidate panel
/// row]`, so once the winner is chosen every rank already holds the
/// winning row's panel segment and the per-column pivot-row broadcast
/// of the naive phasing disappears — one collective per column instead
/// of two.
async fn factor_panel_col(
    local: &mut Local,
    col_comm: &Comm,
    nb: usize,
    k0: usize,
    k1: usize,
) -> Vec<usize> {
    let kw = k1 - k0;
    let grid_p = col_comm.size();
    let in_panel = |gc: usize| (k0..k1).contains(&gc);
    // Local indices of the panel columns, hoisted out of the row loops
    // (they were binary-searched per row per column before).
    let panel_lcs: Vec<usize> = (k0..k1)
        .map(|g| local.lcol(g).expect("panel col owned"))
        .collect();
    let mut panel_pivots = vec![0usize; kw];
    let stride = 2 + kw;
    let mut contrib = vec![0.0f64; stride];
    let mut all = vec![0.0f64; stride * grid_p];
    for j in 0..kw {
        let gj = k0 + j;
        let ljc = panel_lcs[j];
        // Local pivot candidate over my trailing rows.
        let (mut best, mut best_row) = (-1.0f64, usize::MAX);
        for (lr, &gr) in local.rows.iter().enumerate() {
            if gr >= gj {
                let v = local.at(lr, ljc).abs();
                if v > best {
                    best = v;
                    best_row = gr;
                }
            }
        }
        contrib[0] = best;
        contrib[1] = best_row as f64;
        if best_row != usize::MAX {
            let lr = local.lrow(best_row).expect("candidate row owned");
            for c in 0..kw {
                contrib[2 + c] = local.at(lr, panel_lcs[c]);
            }
        }
        // Global argmax across the process column (ties to the lowest
        // row, matching serial partial pivoting).
        col_comm.allgather_async(&contrib, &mut all).await;
        let (mut gbest, mut grow, mut win) = (-1.0f64, usize::MAX, 0usize);
        for c in 0..grid_p {
            let (v, r) = (all[stride * c], all[stride * c + 1] as usize);
            if v > gbest || (v == gbest && r < grow) {
                gbest = v;
                grow = r;
                win = c;
            }
        }
        assert!(gbest > 0.0, "2-D HPL hit an exactly singular pivot");
        panel_pivots[j] = grow;
        let urow = &all[stride * win + 2..stride * win + 2 + kw];
        let ajj = urow[j];

        // Swap rows gj <-> grow within the panel columns.
        swap_rows(local, col_comm, nb, gj, grow, in_panel).await;

        // Scale my below-diagonal entries of column j and rank-1 update
        // the remaining panel columns.
        let lrows = local.lrows();
        for lr in 0..lrows {
            if local.rows[lr] > gj {
                let l = local.at(lr, ljc) / ajj;
                *local.at_mut(lr, ljc) = l;
                for c in j + 1..kw {
                    *local.at_mut(lr, panel_lcs[c]) -= l * urow[c];
                }
            }
        }
    }
    panel_pivots
}

/// Runs 2-D G-HPL on `comm`. All ranks receive the same result.
pub fn run(comm: &Comm, cfg: &Hpl2dConfig) -> HplResult {
    mp::block_on(run_async(comm, cfg))
}

/// Awaitable mirror of [`run`], for cooperative rank tasks.
pub async fn run_async(comm: &Comm, cfg: &Hpl2dConfig) -> HplResult {
    let (n, nb) = (cfg.n, cfg.nb);
    let size = comm.size();
    let grid_p = cfg.p_rows;
    assert!(
        grid_p >= 1 && size.is_multiple_of(grid_p),
        "grid must tile the world"
    );
    let grid_q = size / grid_p;

    // Grid position: row-major rank numbering.
    let me = comm.rank();
    let (pi, qj) = (me / grid_q, me % grid_q);
    // Communicators: all ranks in my process row / column.
    let row_comm = comm.split_async(pi as u32, qj as i64).await;
    let col_comm = comm.split_async((grid_p + qj) as u32, pi as i64).await;
    assert_eq!(row_comm.size(), grid_q);
    assert_eq!(col_comm.size(), grid_p);

    let mut local = Local::generate(n, nb, pi, qj, grid_p, grid_q);
    let nblocks = n.div_ceil(nb);
    let mut pivots: Vec<usize> = Vec::with_capacity(n);
    // Lookahead pipeline: pivots of the panel factored one iteration
    // early (ranks of the owning process column only).
    let mut pending_pivots: Option<Vec<usize>> = None;

    comm.barrier_async().await;
    let clock = harness::Stopwatch::start();

    for kb in 0..nblocks {
        let k0 = kb * nb;
        let k1 = ((kb + 1) * nb).min(n);
        let kw = k1 - k0;
        let panel_q = kb % grid_q; // process column owning the panel
        let in_panel_col = qj == panel_q;
        let in_panel = |gc: usize| (k0..k1).contains(&gc);

        // --- 1. Distributed panel factorisation -------------------------
        // Everyone tracks the pivot list; panel owners do the
        // arithmetic — unless lookahead already factored this panel
        // during the previous iteration's trailing update.
        let mut panel_pivots = vec![0usize; kw];
        if in_panel_col {
            panel_pivots = match pending_pivots.take() {
                Some(ready) => ready,
                None => factor_panel_col(&mut local, &col_comm, nb, k0, k1).await,
            };
        }

        // --- 2. Share pivots; apply swaps outside the panel -------------
        let mut piv_f: Vec<f64> = panel_pivots.iter().map(|&p| p as f64).collect();
        mp::coll::bcast::binomial_async(&row_comm, &mut piv_f, panel_q).await;
        let panel_pivots: Vec<usize> = piv_f.iter().map(|&v| v as usize).collect();
        for (j, &piv) in panel_pivots.iter().enumerate() {
            let gj = k0 + j;
            // Panel columns were already swapped during factorisation;
            // everything else (finished columns and the trailing
            // submatrix) swaps now. The filter is uniform across each
            // column communicator, keeping the exchanges matched.
            swap_rows(&mut local, &col_comm, nb, gj, piv, |gc| {
                !in_panel_col || !in_panel(gc)
            })
            .await;
            pivots.push(piv);
        }

        // --- 3. Broadcast the panel along process rows ------------------
        // My local panel piece: for each of my local rows, the kw panel
        // values (L below the diagonal, U11 on/above it).
        let lrows = local.lrows();
        let mut panel_piece = vec![0.0f64; lrows * kw];
        if in_panel_col {
            for c in 0..kw {
                let lc = local.lcol(k0 + c).expect("panel col owned");
                for lr in 0..lrows {
                    panel_piece[c * lrows + lr] = local.at(lr, lc);
                }
            }
        }
        mp::coll::bcast::auto_async(&row_comm, &mut panel_piece, panel_q).await;

        // --- 4. U12: solve L11 U12 = A12 on the pivot block rows --------
        // The rows k0..k1 are spread over process rows ((k0..k1)/nb = kb,
        // owner pi_k = kb % grid_p) — a single process row.
        let pi_k = kb % grid_p;
        let my_u_rows: Vec<usize> = (k0..k1).collect();
        let trailing: Vec<usize> = local.cols.iter().copied().filter(|&gc| gc >= k1).collect();
        // u12[jj][t] for jj in 0..kw over my trailing columns.
        let mut u12 = vec![0.0f64; kw * trailing.len()];
        if pi == pi_k {
            // I own the block row; panel_piece has L11 in my local rows.
            let l11_lr: Vec<usize> = my_u_rows
                .iter()
                .map(|&g| local.lrow(g).expect("block row owned"))
                .collect();
            for (t, &gc) in trailing.iter().enumerate() {
                let lc = local.lcol(gc).expect("trailing col owned");
                // Forward substitution with unit lower L11.
                for jj in 0..kw {
                    let mut v = local.at(l11_lr[jj], lc);
                    for pp in 0..jj {
                        v -= panel_piece[pp * lrows + l11_lr[jj]] * u12[pp * trailing.len() + t];
                    }
                    u12[jj * trailing.len() + t] = v;
                    *local.at_mut(l11_lr[jj], lc) = v;
                }
            }
        }
        mp::coll::bcast::auto_async(&col_comm, &mut u12, pi_k).await;

        // --- 5. Trailing update: A22 -= L21 * U12 -----------------------
        // Rows and columns are sorted, so the trailing submatrix is the
        // contiguous bottom-right corner of the local block: one
        // rectangular GEMM on column-major views. L21 is the gr >= k1
        // row suffix of the broadcast panel (column stride lrows), U12
        // the broadcast row block (row stride = my trailing width).
        //
        // Lookahead: the process column owning panel kb+1 holds that
        // panel's columns as its first `w` trailing columns. It updates
        // just those, factors the panel collectively (stashing the
        // pivots for the next iteration), then finishes the rest of the
        // update — by which point the other columns' ranks are deep in
        // their own GEMMs, so the factor's latency-bound collectives
        // hide behind compute instead of serialising ahead of it.
        let lr0 = local.rows.partition_point(|&gr| gr < k1);
        let lc0 = local.cols.len() - trailing.len();
        let look = cfg.lookahead && k1 < n && (kb + 1) % grid_q == qj;
        let next_k1 = (k1 + nb).min(n);
        let w = if look {
            trailing.partition_point(|&gc| gc < next_k1)
        } else {
            0
        };
        if lr0 < lrows && w > 0 {
            gemm_update(
                lrows - lr0,
                w,
                kw,
                -1.0,
                &panel_piece[lr0..],
                1,
                lrows,
                &u12,
                trailing.len(),
                1,
                &mut local.data[lc0 * lrows + lr0..],
                1,
                lrows,
            );
        }
        if look {
            pending_pivots = Some(factor_panel_col(&mut local, &col_comm, nb, k1, next_k1).await);
        }
        if lr0 < lrows && trailing.len() > w {
            gemm_update(
                lrows - lr0,
                trailing.len() - w,
                kw,
                -1.0,
                &panel_piece[lr0..],
                1,
                lrows,
                &u12[w..],
                trailing.len(),
                1,
                &mut local.data[(lc0 + w) * lrows + lr0..],
                1,
                lrows,
            );
        }
    }

    // --- Gather to rank 0, solve, verify --------------------------------
    let x = solve_on_root(comm, &local, &pivots, n).await;
    let time_s = clock.elapsed_secs();

    let mut stats = [0.0f64; 2];
    if me == 0 {
        stats[0] = scaled_residual(n, &x);
        stats[1] = time_s;
    }
    comm.bcast_async(&mut stats, 0).await;

    let flops = 2.0 / 3.0 * (n as f64).powi(3) + 2.0 * (n as f64).powi(2);
    HplResult {
        n,
        gflops: flops / stats[1] / 1e9,
        time_s: stats[1],
        residual: stats[0],
        passed: stats[0] < 16.0,
    }
}

/// Gathers the distributed factors to rank 0 and solves P L U x = b.
async fn solve_on_root(comm: &Comm, local: &Local, pivots: &[usize], n: usize) -> Vec<f64> {
    const TAG: mp::Tag = 31;
    let me = comm.rank();

    // Every rank ships (rows, cols, data) to rank 0.
    if me != 0 {
        let rows_f: Vec<f64> = local.rows.iter().map(|&r| r as f64).collect();
        let cols_f: Vec<f64> = local.cols.iter().map(|&c| c as f64).collect();
        comm.send(&[rows_f.len() as f64, cols_f.len() as f64], 0, TAG);
        comm.send(&rows_f, 0, TAG);
        comm.send(&cols_f, 0, TAG);
        comm.send(&local.data, 0, TAG);
        return Vec::new();
    }

    let mut full = vec![0.0f64; n * n]; // column-major
    let mut place = |rows: &[usize], cols: &[usize], data: &[f64]| {
        for (c, &gc) in cols.iter().enumerate() {
            for (r, &gr) in rows.iter().enumerate() {
                full[gc * n + gr] = data[c * rows.len() + r];
            }
        }
    };
    place(&local.rows, &local.cols, &local.data);
    for src in 1..comm.size() {
        let mut sizes = [0.0f64; 2];
        comm.recv_async(&mut sizes, src, TAG).await;
        let mut rows_f = vec![0.0f64; sizes[0] as usize];
        let mut cols_f = vec![0.0f64; sizes[1] as usize];
        comm.recv_async(&mut rows_f, src, TAG).await;
        comm.recv_async(&mut cols_f, src, TAG).await;
        let mut data = vec![0.0f64; rows_f.len() * cols_f.len()];
        comm.recv_async(&mut data, src, TAG).await;
        let rows: Vec<usize> = rows_f.iter().map(|&v| v as usize).collect();
        let cols: Vec<usize> = cols_f.iter().map(|&v| v as usize).collect();
        place(&rows, &cols, &data);
    }

    let mut b: Vec<f64> = (0..n).map(rhs_element).collect();
    for (j, &piv) in pivots.iter().enumerate() {
        b.swap(j, piv);
    }
    for j in 0..n {
        let yj = b[j];
        if yj != 0.0 {
            for r in j + 1..n {
                b[r] -= full[j * n + r] * yj;
            }
        }
    }
    for j in (0..n).rev() {
        b[j] /= full[j * n + j];
        let xj = b[j];
        for r in 0..j {
            b[r] -= full[j * n + r] * xj;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(size: usize, p_rows: usize, n: usize, nb: usize) {
        let cfg = Hpl2dConfig {
            n,
            nb,
            p_rows,
            lookahead: true,
        };
        let results = mp::run(size, |comm| run(comm, &cfg));
        for r in &results {
            assert!(
                r.passed,
                "size={size} P={p_rows} n={n} nb={nb}: residual {}",
                r.residual
            );
        }
    }

    #[test]
    fn single_rank_grid() {
        check(1, 1, 48, 8);
    }

    #[test]
    fn row_and_column_grids() {
        check(4, 1, 64, 8); // 1x4: pure column distribution
        check(4, 4, 64, 8); // 4x1: pure row distribution
        check(4, 2, 64, 8); // 2x2: square grid
    }

    #[test]
    fn rectangular_grids() {
        check(6, 2, 60, 8); // 2x3
        check(6, 3, 60, 8); // 3x2
        check(8, 2, 64, 16); // 2x4, block = panel
    }

    #[test]
    fn ragged_sizes() {
        check(4, 2, 50, 7); // n not a multiple of nb or the grid
        check(9, 3, 81, 9);
    }

    #[test]
    fn non_square_grid_prime_size_odd_block() {
        // 2x3 grid with prime n and odd nb: every panel boundary is
        // ragged and the row/column owners are maximally unaligned.
        check(6, 2, 97, 17);
    }

    #[test]
    fn near_square_grid_selection() {
        assert_eq!(Hpl2dConfig::near_square(100, 8, 16).p_rows, 4);
        assert_eq!(Hpl2dConfig::near_square(100, 8, 6).p_rows, 2);
        assert_eq!(
            Hpl2dConfig::near_square(100, 8, 7).p_rows,
            1,
            "prime worlds fall back to 1xN"
        );
        assert_eq!(Hpl2dConfig::near_square(100, 8, 1).p_rows, 1);
    }

    #[test]
    fn matches_1d_variant_quality() {
        // Both variants solve the same deterministic system; their
        // residual quality must be comparable.
        let r2d = mp::run(4, |comm| {
            run(
                comm,
                &Hpl2dConfig {
                    n: 64,
                    nb: 8,
                    p_rows: 2,
                    lookahead: true,
                },
            )
        })[0];
        let r1d = mp::run(4, |comm| {
            crate::hpl::run(
                comm,
                &crate::hpl::HplConfig {
                    n: 64,
                    nb: 8,
                    ..crate::hpl::HplConfig::default()
                },
            )
        })[0];
        assert!(r2d.passed && r1d.passed);
        assert!(r2d.residual < 16.0 && r1d.residual < 16.0);
    }
}
