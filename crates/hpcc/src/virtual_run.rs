//! Virtual execution of the HPCC components: the *real* suite code
//! (same component table as [`crate::suite`]) running on a modelled
//! machine via [`mp::run_virtual_coop`], with communication priced by
//! virtual clocks. Each rank is a resumable cooperative task, not an OS
//! thread, so virtual worlds scale to tens of thousands of ranks; the
//! thread-backed engine survives as [`run_virtual_components_threads`]
//! and the parity tests assert both produce byte-identical records.
//! This gives HPCC the same third execution mode the IMB suite has had,
//! so the harness registry can run both suites natively, simulated and
//! virtually.
//!
//! The emitted records carry the component's primary name with metric
//! [`MetricKind::TimeUs`] — the max per-rank virtual time of the
//! component — so their identity fields line up with the native records
//! while the value measures modelled communication time rather than
//! host throughput.

use harness::{MetricKind, Mode, Record, Stats, Suite};
use machines::{Machine, SharedClusterNet};

use crate::suite::{Component, SuiteConfig};

/// Runs every admissible component on `procs` ranks of the modelled
/// `machine`, executing the real benchmark code under virtual time.
/// Power-of-two-only components are skipped on other world sizes, as in
/// the native suite.
pub fn run_virtual_records(machine: &Machine, procs: usize, cfg: &SuiteConfig) -> Vec<Record> {
    let components: Vec<Component> = Component::ALL
        .into_iter()
        .filter(|c| !c.pow2_procs() || procs.is_power_of_two())
        .collect();
    run_virtual_components(machine, procs, cfg, &components)
}

/// Runs the given components under virtual time, one record each.
///
/// Ranks are cooperative tasks on [`mp::run_virtual_coop`], so world
/// sizes are bounded by memory rather than by OS threads.
pub fn run_virtual_components(
    machine: &Machine,
    procs: usize,
    cfg: &SuiteConfig,
    components: &[Component],
) -> Vec<Record> {
    run_virtual_engine(machine, procs, cfg, components, true).0
}

/// Thread-backed variant of [`run_virtual_components`]: one OS thread
/// per rank, serialized by the run-queue baton. Kept as the reference
/// engine for the cooperative/threaded parity tests; prefer
/// [`run_virtual_components`] for real sweeps.
pub fn run_virtual_components_threads(
    machine: &Machine,
    procs: usize,
    cfg: &SuiteConfig,
    components: &[Component],
) -> Vec<Record> {
    run_virtual_engine(machine, procs, cfg, components, false).0
}

/// Runs the given components under virtual time on the chosen engine
/// and returns the records together with the per-rank final virtual
/// clocks — the differential hook behind the cooperative/threaded
/// parity tests.
pub fn run_virtual_components_clocked(
    machine: &Machine,
    procs: usize,
    cfg: &SuiteConfig,
    components: &[Component],
    cooperative: bool,
) -> (Vec<Record>, Vec<simnet::Time>) {
    run_virtual_engine(machine, procs, cfg, components, cooperative)
}

fn run_virtual_engine(
    machine: &Machine,
    procs: usize,
    cfg: &SuiteConfig,
    components: &[Component],
    coop: bool,
) -> (Vec<Record>, Vec<simnet::Time>) {
    let cfg = *cfg;
    let list: Vec<Component> = components.to_vec();
    let net = SharedClusterNet::new(machine, procs);
    // Each rank times every component between virtual-clock syncs.
    let (per_rank, clocks) = if coop {
        mp::run_virtual_coop(procs, Box::new(net), move |comm| {
            let list = list.clone();
            async move {
                let mut times = Vec::with_capacity(list.len());
                for &c in &list {
                    let t0 = comm.v_sync_async().await;
                    let recs = crate::suite::run_component_on_async(&comm, c, &cfg).await;
                    let t1 = comm.v_sync_async().await;
                    let passed = recs.iter().all(|r| r.passed);
                    times.push(((t1 - t0).as_us(), passed));
                }
                times
            }
        })
    } else {
        mp::run_virtual(procs, Box::new(net), move |comm| {
            let mut times = Vec::with_capacity(list.len());
            for &c in &list {
                let t0 = comm.v_sync();
                let recs = crate::suite::run_component_on(comm, c, &cfg);
                let t1 = comm.v_sync();
                let passed = recs.iter().all(|r| r.passed);
                times.push(((t1 - t0).as_us(), passed));
            }
            times
        })
    };
    let records: Vec<Record> = components
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let us: Vec<f64> = per_rank.iter().map(|rank| rank[i].0).collect();
            let passed = per_rank.iter().all(|rank| rank[i].1);
            let stats = Stats::across(&us, 1);
            Record {
                benchmark: c.name(),
                suite: Suite::Hpcc,
                mode: Mode::Virtual,
                machine: machine.name,
                procs,
                threads: 1,
                bytes: None,
                metric: MetricKind::TimeUs,
                value: stats.t_max_us,
                stats,
                passed,
            }
        })
        .collect();
    (records, clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use machines::systems::{dell_xeon, nec_sx8};

    #[test]
    fn every_component_runs_virtually() {
        let cfg = SuiteConfig::small(4);
        let recs = run_virtual_records(&dell_xeon(), 4, &cfg);
        assert_eq!(recs.len(), Component::ALL.len());
        for r in &recs {
            assert!(r.t_max_us() > 0.0, "{}", r.benchmark);
            assert!(r.passed, "{}", r.benchmark);
            assert_eq!(r.mode, Mode::Virtual);
        }
    }

    #[test]
    fn pow2_components_are_skipped_on_odd_worlds() {
        let cfg = SuiteConfig::small(3);
        let recs = run_virtual_records(&dell_xeon(), 3, &cfg);
        assert_eq!(recs.len(), Component::ALL.len() - 2);
        assert!(!recs.iter().any(|r| r.benchmark == "G-RandomAccess"));
        assert!(!recs.iter().any(|r| r.benchmark == "G-FFT"));
    }

    #[test]
    fn faster_fabric_means_less_virtual_comm_time() {
        // PTRANS is communication-bound: on the SX-8's IXS fabric its
        // virtual exchange must be far cheaper than on the Xeon cluster.
        let cfg = SuiteConfig::small(4);
        let t =
            |m: &Machine| run_virtual_components(m, 4, &cfg, &[Component::Ptrans])[0].t_max_us();
        let sx8 = t(&nec_sx8());
        let xeon = t(&dell_xeon());
        assert!(sx8 < xeon, "SX-8 {sx8} !< Xeon {xeon}");
    }

    #[test]
    #[ignore = "release-scale: 4096 ranks, 16M-point FFT; run with --ignored --release"]
    fn virtual_gfft_runs_at_4096_ranks() {
        // High-rank smoke: the distributed FFT needs n >= p^2, so 4096
        // ranks is the largest world a 2^24-point transform admits.
        let m = machines::systems::exascale_cluster();
        let mut cfg = SuiteConfig::small(4096);
        cfg.fft_log2_n = 24;
        let recs = run_virtual_components(&m, 4096, &cfg, &[Component::Fft]);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].passed, "G-FFT residual failed at 4096 ranks");
        assert!(recs[0].t_max_us() > 0.0);
        assert_eq!(recs[0].procs, 4096);
    }

    #[test]
    fn virtual_identity_matches_native_identity() {
        let cfg = SuiteConfig::small(2);
        let virt = run_virtual_components(&dell_xeon(), 2, &cfg, &[Component::Dgemm]);
        let native = crate::suite::run_native_records(2, &cfg);
        let native_dgemm = native.iter().find(|r| r.benchmark == "EP-DGEMM").unwrap();
        assert_eq!(virt[0].identity(), native_dgemm.identity());
    }
}
