//! Virtual execution of the HPCC components: the *real* suite code
//! (same component table as [`crate::suite`]) running on a modelled
//! machine via [`mp::run_virtual`], with communication priced by virtual
//! clocks. This gives HPCC the same third execution mode the IMB suite
//! has had, so the harness registry can run both suites natively,
//! simulated and virtually.
//!
//! The emitted records carry the component's primary name with metric
//! [`MetricKind::TimeUs`] — the max per-rank virtual time of the
//! component — so their identity fields line up with the native records
//! while the value measures modelled communication time rather than
//! host throughput.

use harness::{MetricKind, Mode, Record, Stats, Suite};
use machines::{Machine, SharedClusterNet};

use crate::suite::{Component, SuiteConfig};

/// Runs every admissible component on `procs` ranks of the modelled
/// `machine`, executing the real benchmark code under virtual time.
/// Power-of-two-only components are skipped on other world sizes, as in
/// the native suite.
pub fn run_virtual_records(machine: &Machine, procs: usize, cfg: &SuiteConfig) -> Vec<Record> {
    let components: Vec<Component> = Component::ALL
        .into_iter()
        .filter(|c| !c.pow2_procs() || procs.is_power_of_two())
        .collect();
    run_virtual_components(machine, procs, cfg, &components)
}

/// Runs the given components under virtual time, one record each.
pub fn run_virtual_components(
    machine: &Machine,
    procs: usize,
    cfg: &SuiteConfig,
    components: &[Component],
) -> Vec<Record> {
    let cfg = *cfg;
    let list: Vec<Component> = components.to_vec();
    let net = SharedClusterNet::new(machine, procs);
    // Each rank times every component between virtual-clock syncs.
    let (per_rank, _clocks) = mp::run_virtual(procs, Box::new(net), move |comm| {
        let mut times = Vec::with_capacity(list.len());
        for &c in &list {
            let t0 = comm.v_sync();
            let recs = crate::suite::run_component_on(comm, c, &cfg);
            let t1 = comm.v_sync();
            let passed = recs.iter().all(|r| r.passed);
            times.push(((t1 - t0).as_us(), passed));
        }
        times
    });
    components
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let us: Vec<f64> = per_rank.iter().map(|rank| rank[i].0).collect();
            let passed = per_rank.iter().all(|rank| rank[i].1);
            let stats = Stats::across(&us, 1);
            Record {
                benchmark: c.name(),
                suite: Suite::Hpcc,
                mode: Mode::Virtual,
                machine: machine.name,
                procs,
                bytes: None,
                metric: MetricKind::TimeUs,
                value: stats.t_max_us,
                stats,
                passed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use machines::systems::{dell_xeon, nec_sx8};

    #[test]
    fn every_component_runs_virtually() {
        let cfg = SuiteConfig::small(4);
        let recs = run_virtual_records(&dell_xeon(), 4, &cfg);
        assert_eq!(recs.len(), Component::ALL.len());
        for r in &recs {
            assert!(r.t_max_us() > 0.0, "{}", r.benchmark);
            assert!(r.passed, "{}", r.benchmark);
            assert_eq!(r.mode, Mode::Virtual);
        }
    }

    #[test]
    fn pow2_components_are_skipped_on_odd_worlds() {
        let cfg = SuiteConfig::small(3);
        let recs = run_virtual_records(&dell_xeon(), 3, &cfg);
        assert_eq!(recs.len(), Component::ALL.len() - 2);
        assert!(!recs.iter().any(|r| r.benchmark == "G-RandomAccess"));
        assert!(!recs.iter().any(|r| r.benchmark == "G-FFT"));
    }

    #[test]
    fn faster_fabric_means_less_virtual_comm_time() {
        // PTRANS is communication-bound: on the SX-8's IXS fabric its
        // virtual exchange must be far cheaper than on the Xeon cluster.
        let cfg = SuiteConfig::small(4);
        let t =
            |m: &Machine| run_virtual_components(m, 4, &cfg, &[Component::Ptrans])[0].t_max_us();
        let sx8 = t(&nec_sx8());
        let xeon = t(&dell_xeon());
        assert!(sx8 < xeon, "SX-8 {sx8} !< Xeon {xeon}");
    }

    #[test]
    fn virtual_identity_matches_native_identity() {
        let cfg = SuiteConfig::small(2);
        let virt = run_virtual_components(&dell_xeon(), 2, &cfg, &[Component::Dgemm]);
        let native = crate::suite::run_native_records(2, &cfg);
        let native_dgemm = native.iter().find(|r| r.benchmark == "EP-DGEMM").unwrap();
        assert_eq!(virt[0].identity(), native_dgemm.identity());
    }
}
