//! Double-precision matrix multiplication: the DGEMM kernel behind
//! EP-DGEMM and the trailing-matrix updates of both HPL variants.
//!
//! The implementation is a packed, register-blocked GEMM in the BLIS
//! style: operand panels are packed into contiguous micro-panel buffers
//! (`MR`-row slivers of A, `NR`-column slivers of B) sized to stay cache
//! resident, and an `MR x NR` register-accumulator microkernel streams
//! through them with one broadcast-multiply-accumulate per element. Edges
//! are handled by zero-padding the packed slivers, so the microkernel
//! always runs full tiles and only the final accumulate into C is ragged.
//! When the build target has FMA (the workspace `.cargo/config.toml`
//! compiles with `target-cpu=native`), the accumulate lowers to fused
//! multiply-adds; elsewhere a portable mul+add body is used.
//!
//! The general entry point is [`gemm_update`]: a rectangular, arbitrary-
//! stride `C += alpha * A * B`, which serves row-major kernels (EP-DGEMM)
//! and the column-major trailing updates of `hpl`/`hpl2d` alike.
//!
//! ## Threading and tuning
//!
//! `gemm_update` consults the ambient [`smp::Pool`]: with more than one
//! worker it splits `C` along whichever of M/N yields disjoint
//! contiguous subslices (boundaries aligned to the register block) and
//! runs the serial packed GEMM on each part. Per-element summation
//! order depends only on the `KC` depth blocking — never on how M or N
//! are partitioned — so the threaded result is **bitwise identical** to
//! the single-thread result. Macro-blocking parameters (`MC`/`NC`/`KC`)
//! come from the per-host tuning table ([`smp::tuned`]) and fall back
//! to the compiled defaults below.

/// Microkernel register block: `MR x NR` f64 accumulators.
pub const MR: usize = 8;
/// Microkernel register block width.
pub const NR: usize = 8;

/// Default rows of A packed per macro block (multiple of `MR`; A pack
/// is `MC x KC` = 128 KiB, L2-resident). Overridable per host via the
/// tuning table.
pub const MC_DEFAULT: usize = 64;
/// Default columns of B packed per macro block (multiple of `NR`).
pub const NC_DEFAULT: usize = 256;
/// Default depth of one packed block (`KC x NC` B pack = 512 KiB).
pub const KC_DEFAULT: usize = 256;

/// Below this `m * n * k` volume the thread-split overhead outweighs
/// the work; run serial regardless of pool size.
const SPLIT_MIN_VOLUME: usize = 1 << 16;

/// Macro-blocking parameters for this host: tuned values clamped to
/// microkernel multiples (the tuning layer already sanitises, this is
/// belt-and-braces against a hand-edited table).
fn blocking() -> (usize, usize, usize) {
    let t = smp::tuned_now();
    (
        t.dgemm_mc.max(MR) / MR * MR,
        t.dgemm_nc.max(NR) / NR * NR,
        t.dgemm_kc.max(1),
    )
}

/// `C += A * B` for row-major `n x n` matrices (the EP-DGEMM shape).
pub fn dgemm(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(b.len(), n * n, "B must be n x n");
    assert_eq!(c.len(), n * n, "C must be n x n");
    gemm_update(n, n, n, 1.0, a, n, 1, b, n, 1, c, n, 1);
}

/// Rectangular strided GEMM: `C += alpha * A * B` where `A` is `m x k`,
/// `B` is `k x n` and `C` is `m x n`.
///
/// Each operand is addressed as `x[i * rs + j * cs]`, so both row-major
/// (`rs = width, cs = 1`) and column-major (`rs = 1, cs = height`)
/// storage — and sub-views of either — plug in directly. All layouts are
/// packed into the same contiguous micro-panel format before the
/// microkernel runs, so the stride choice does not change the hot loop.
#[allow(clippy::too_many_arguments)]
pub fn gemm_update(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    rsa: usize,
    csa: usize,
    b: &[f64],
    rsb: usize,
    csb: usize,
    c: &mut [f64],
    rsc: usize,
    csc: usize,
) {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    assert!(
        (m - 1) * rsa + (k - 1) * csa < a.len(),
        "A view out of bounds: m={m} k={k} rsa={rsa} csa={csa} len={}",
        a.len()
    );
    assert!(
        (k - 1) * rsb + (n - 1) * csb < b.len(),
        "B view out of bounds: k={k} n={n} rsb={rsb} csb={csb} len={}",
        b.len()
    );
    assert!(
        (m - 1) * rsc + (n - 1) * csc < c.len(),
        "C view out of bounds: m={m} n={n} rsc={rsc} csc={csc} len={}",
        c.len()
    );

    let pool = smp::Pool::current();
    let threads = pool.size();
    if threads <= 1 || m * n * k < SPLIT_MIN_VOLUME {
        return gemm_update_serial(m, n, k, alpha, a, rsa, csa, b, rsb, csb, c, rsc, csc);
    }

    // A dimension is splittable when its C subslices are disjoint
    // contiguous ranges: columns [j0, j1) span c[j0*csc .. j1*csc) iff
    // every row offset fits inside one column stride (and dually for
    // rows). Both row-major and column-major C satisfy exactly one of
    // these; exotic interleaved strides fall back to serial.
    let n_splittable = csc > (m - 1) * rsc;
    let m_splittable = rsc > (n - 1) * csc;

    if n_splittable && (n >= m || !m_splittable) {
        // Split C by column bands; each part sees the matching columns
        // of B and all of A.
        let ranges = smp::pool::chunk_ranges(n, threads, NR);
        let mut parts: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(ranges.len());
        let mut rest = c;
        let mut off = 0usize;
        for (i, r) in ranges.iter().enumerate() {
            let end = if i + 1 < ranges.len() {
                ranges[i + 1].start * csc
            } else {
                off + rest.len()
            };
            let (head, tail) = rest.split_at_mut(end - off);
            off = end;
            rest = tail;
            parts.push((r.start, r.len(), head));
        }
        pool.run_parts(&mut parts, |_, part| {
            let (j0, nn, cpart) = part;
            gemm_update_serial(
                m,
                *nn,
                k,
                alpha,
                a,
                rsa,
                csa,
                &b[*j0 * csb..],
                rsb,
                csb,
                &mut cpart[..],
                rsc,
                csc,
            );
        });
    } else if m_splittable {
        // Split C by row bands; each part sees the matching rows of A
        // and all of B.
        let ranges = smp::pool::chunk_ranges(m, threads, MR);
        let mut parts: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(ranges.len());
        let mut rest = c;
        let mut off = 0usize;
        for (i, r) in ranges.iter().enumerate() {
            let end = if i + 1 < ranges.len() {
                ranges[i + 1].start * rsc
            } else {
                off + rest.len()
            };
            let (head, tail) = rest.split_at_mut(end - off);
            off = end;
            rest = tail;
            parts.push((r.start, r.len(), head));
        }
        pool.run_parts(&mut parts, |_, part| {
            let (i0, mm, cpart) = part;
            gemm_update_serial(
                *mm,
                n,
                k,
                alpha,
                &a[*i0 * rsa..],
                rsa,
                csa,
                b,
                rsb,
                csb,
                &mut cpart[..],
                rsc,
                csc,
            );
        });
    } else {
        gemm_update_serial(m, n, k, alpha, a, rsa, csa, b, rsb, csb, c, rsc, csc);
    }
}

/// The serial packed GEMM core: macro-blocked loops around the
/// register microkernel, blocking parameters from the host tuning
/// table. Callers guarantee in-bounds views.
#[allow(clippy::too_many_arguments)]
fn gemm_update_serial(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    rsa: usize,
    csa: usize,
    b: &[f64],
    rsb: usize,
    csb: usize,
    c: &mut [f64],
    rsc: usize,
    csc: usize,
) {
    let (mc_blk, nc_blk, kc_blk) = blocking();
    let mut apack = vec![0.0f64; mc_blk * kc_blk];
    let mut bpack = vec![0.0f64; kc_blk * nc_blk];

    for jc in (0..n).step_by(nc_blk) {
        let nc = nc_blk.min(n - jc);
        let nr_panels = nc.div_ceil(NR);
        for pc in (0..k).step_by(kc_blk) {
            let kc = kc_blk.min(k - pc);
            pack_b(&mut bpack, b, pc, jc, kc, nc, rsb, csb, alpha);
            for ic in (0..m).step_by(mc_blk) {
                let mc = mc_blk.min(m - ic);
                let mr_panels = mc.div_ceil(MR);
                pack_a(&mut apack, a, ic, pc, mc, kc, rsa, csa);
                for jp in 0..nr_panels {
                    let jr = jp * NR;
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
                    for ip in 0..mr_panels {
                        let ir = ip * MR;
                        let mr = MR.min(mc - ir);
                        let ap = &apack[ip * kc * MR..(ip + 1) * kc * MR];
                        let mut acc = [[0.0f64; NR]; MR];
                        microkernel(kc, ap, bp, &mut acc);
                        // Ragged-edge accumulate: only the valid mr x nr
                        // corner of the padded tile lands in C.
                        for (i, row) in acc.iter().enumerate().take(mr) {
                            let cbase = (ic + ir + i) * rsc + (jc + jr) * csc;
                            for (j, &v) in row.iter().enumerate().take(nr) {
                                c[cbase + j * csc] += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packs an `mc x kc` block of A into `MR`-row micro-panels laid out
/// depth-major (`panel[p * MR + i]`), zero-padding the last panel.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    apack: &mut [f64],
    a: &[f64],
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    rsa: usize,
    csa: usize,
) {
    for ip in 0..mc.div_ceil(MR) {
        let ir = ip * MR;
        let mr = MR.min(mc - ir);
        let panel = &mut apack[ip * kc * MR..(ip + 1) * kc * MR];
        for p in 0..kc {
            let sliver = &mut panel[p * MR..(p + 1) * MR];
            for i in 0..mr {
                sliver[i] = a[(ic + ir + i) * rsa + (pc + p) * csa];
            }
            sliver[mr..].fill(0.0);
        }
    }
}

/// Packs a `kc x nc` block of B into `NR`-column micro-panels laid out
/// depth-major (`panel[p * NR + j]`), folding `alpha` in and zero-padding
/// the last panel.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bpack: &mut [f64],
    b: &[f64],
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    rsb: usize,
    csb: usize,
    alpha: f64,
) {
    for jp in 0..nc.div_ceil(NR) {
        let jr = jp * NR;
        let nr = NR.min(nc - jr);
        let panel = &mut bpack[jp * kc * NR..(jp + 1) * kc * NR];
        for p in 0..kc {
            let sliver = &mut panel[p * NR..(p + 1) * NR];
            let bbase = (pc + p) * rsb + (jc + jr) * csb;
            for j in 0..nr {
                sliver[j] = alpha * b[bbase + j * csb];
            }
            sliver[nr..].fill(0.0);
        }
    }
}

/// Fused multiply-add when the target guarantees a hardware FMA (then
/// `mul_add` is a single `vfmadd` instruction); plain multiply-add
/// otherwise, where `mul_add` would fall back to a slow libm call.
#[cfg(target_feature = "fma")]
#[inline(always)]
fn madd(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}

#[cfg(not(target_feature = "fma"))]
#[inline(always)]
fn madd(a: f64, b: f64, c: f64) -> f64 {
    a * b + c
}

/// The register-blocked inner loop: `acc += Ap * Bp` over `kc` depth
/// steps, where `Ap` is an `MR`-row sliver and `Bp` an `NR`-column
/// sliver of the packed operands. The fixed-trip `MR`/`NR` loops unroll
/// and vectorise: each depth step is `MR` broadcast-multiply-accumulate
/// updates of an `NR`-wide accumulator row held in registers.
fn microkernel(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    let (ap, bp) = (&ap[..kc * MR], &bp[..kc * NR]);
    for p in 0..kc {
        let asl = &ap[p * MR..p * MR + MR];
        let bsl = &bp[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = asl[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] = madd(ai, bsl[j], row[j]);
            }
        }
    }
}

/// Floating-point operations performed by one `n x n` DGEMM.
pub fn dgemm_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Reference (naive) triple loop, for validation.
pub fn dgemm_reference(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    gemm_reference(n, n, n, 1.0, a, n, 1, b, n, 1, c, n, 1);
}

/// Strided reference GEMM (`C += alpha * A * B`), for validating
/// [`gemm_update`] across layouts and shapes.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    rsa: usize,
    csa: usize,
    b: &[f64],
    rsb: usize,
    csb: usize,
    c: &mut [f64],
    rsc: usize,
    csc: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * rsa + p * csa] * b[p * rsb + j * csb];
            }
            c[i * rsc + j * csc] += alpha * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                // xorshift64*
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_reference_various_sizes() {
        // Exercise full tiles, ragged edges, and sub-tile matrices.
        for n in [1, 2, 7, 48, 49, 100] {
            let a = fill(n * n, 1);
            let b = fill(n * n, 2);
            let mut c1 = fill(n * n, 3);
            let mut c2 = c1.clone();
            dgemm(n, &a, &b, &mut c1);
            dgemm_reference(n, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-10, "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn rectangular_shapes_match_reference() {
        // m != n != k, prime sizes, sub-tile sizes, blocking-boundary
        // straddlers.
        for (m, n, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (17, 13, 29),
            (8, 8, 8),
            (9, 7, 65),
            (65, 64, 63),
            (100, 3, 257),
            (2, 300, 5),
            (31, 257, 31),
        ] {
            let a = fill(m * k, 11);
            let b = fill(k * n, 22);
            let mut c1 = fill(m * n, 33);
            let mut c2 = c1.clone();
            gemm_update(m, n, k, 1.0, &a, k, 1, &b, n, 1, &mut c1, n, 1);
            gemm_reference(m, n, k, 1.0, &a, k, 1, &b, n, 1, &mut c2, n, 1);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-10, "m={m} n={n} k={k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn column_major_and_negative_alpha() {
        // The HPL trailing-update shape: column-major views, alpha = -1.
        let (m, n, k) = (37, 23, 17);
        let a = fill(m * k, 5); // column-major m x k: a[i + p*m]
        let b = fill(k * n, 6); // column-major k x n: b[p + j*k]
        let mut c1 = fill(m * n, 7); // column-major m x n
        let mut c2 = c1.clone();
        gemm_update(m, n, k, -1.0, &a, 1, m, &b, 1, k, &mut c1, 1, m);
        gemm_reference(m, n, k, -1.0, &a, 1, m, &b, 1, k, &mut c2, 1, m);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn mixed_layouts_match() {
        // Row-major A, column-major B and C.
        let (m, n, k) = (19, 31, 41);
        let a = fill(m * k, 8);
        let b = fill(k * n, 9);
        let mut c1 = fill(m * n, 10);
        let mut c2 = c1.clone();
        gemm_update(m, n, k, 0.5, &a, k, 1, &b, 1, k, &mut c1, 1, m);
        gemm_reference(m, n, k, 0.5, &a, k, 1, &b, 1, k, &mut c2, 1, m);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn zero_sized_and_zero_alpha_are_noops() {
        let a = fill(16, 1);
        let b = fill(16, 2);
        let mut c = fill(16, 3);
        let before = c.clone();
        gemm_update(0, 4, 4, 1.0, &a, 4, 1, &b, 4, 1, &mut c, 4, 1);
        gemm_update(4, 0, 4, 1.0, &a, 4, 1, &b, 4, 1, &mut c, 4, 1);
        gemm_update(4, 4, 0, 1.0, &a, 4, 1, &b, 4, 1, &mut c, 4, 1);
        gemm_update(4, 4, 4, 0.0, &a, 4, 1, &b, 4, 1, &mut c, 4, 1);
        assert_eq!(c, before);
    }

    #[test]
    fn identity_multiplication() {
        let n = 10;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a = fill(n * n, 7);
        let mut c = vec![0.0; n * n];
        dgemm(n, &a, &eye, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulates_into_c() {
        let n = 4;
        let a = fill(n * n, 1);
        let b = fill(n * n, 2);
        let mut c = vec![1.0; n * n];
        dgemm(n, &a, &b, &mut c);
        let mut expect = vec![1.0; n * n];
        dgemm_reference(n, &a, &b, &mut expect);
        // Blocking reorders the summation; compare within rounding noise.
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn flop_count() {
        assert_eq!(dgemm_flops(100), 2e6);
    }
}
