//! Double-precision matrix-matrix multiplication (the DGEMM kernel behind
//! EP-DGEMM): `C += A * B` on row-major square matrices.

/// Cache-blocking tile edge. 48x48 f64 tiles (~18 KiB per operand) fit
/// comfortably in L1/L2 on current hardware.
const TILE: usize = 48;

/// `C += A * B` for row-major `n x n` matrices, tiled i-k-j loop order so
/// the inner loop streams contiguously through `B` and `C`.
pub fn dgemm(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(b.len(), n * n, "B must be n x n");
    assert_eq!(c.len(), n * n, "C must be n x n");
    for it in (0..n).step_by(TILE) {
        let imax = (it + TILE).min(n);
        for kt in (0..n).step_by(TILE) {
            let kmax = (kt + TILE).min(n);
            for jt in (0..n).step_by(TILE) {
                let jmax = (jt + TILE).min(n);
                for i in it..imax {
                    for k in kt..kmax {
                        let aik = a[i * n + k];
                        let brow = &b[k * n + jt..k * n + jmax];
                        let crow = &mut c[i * n + jt..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Floating-point operations performed by one `n x n` DGEMM.
pub fn dgemm_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Reference (naive) triple loop, for validation.
pub fn dgemm_reference(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed;
        (0..n * n)
            .map(|_| {
                // xorshift64*
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_reference_various_sizes() {
        // Exercise full tiles, ragged edges, and sub-tile matrices.
        for n in [1, 2, 7, 48, 49, 100] {
            let a = fill(n, 1);
            let b = fill(n, 2);
            let mut c1 = fill(n, 3);
            let mut c2 = c1.clone();
            dgemm(n, &a, &b, &mut c1);
            dgemm_reference(n, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-10, "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 10;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a = fill(n, 7);
        let mut c = vec![0.0; n * n];
        dgemm(n, &a, &eye, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulates_into_c() {
        let n = 4;
        let a = fill(n, 1);
        let b = fill(n, 2);
        let mut c = vec![1.0; n * n];
        dgemm(n, &a, &b, &mut c);
        let mut expect = vec![1.0; n * n];
        dgemm_reference(n, &a, &b, &mut expect);
        // Tiling reorders the summation; compare within rounding noise.
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn flop_count() {
        assert_eq!(dgemm_flops(100), 2e6);
    }
}
