//! Compute kernels underlying the HPCC benchmarks: DGEMM, the STREAM
//! vector operations, the table-driven cache-blocked FFT (with its
//! twiddle-table cache) and the RandomAccess update-stream generator.

pub mod dgemm;
pub mod fft;
pub mod ra_rng;
pub mod stream;
pub mod twiddle;
