//! Compute kernels underlying the HPCC benchmarks: DGEMM, the STREAM
//! vector operations, the radix-2 FFT and the RandomAccess update-stream
//! generator.

pub mod dgemm;
pub mod fft;
pub mod ra_rng;
pub mod stream;
