//! Precomputed FFT twiddle factors: symmetry-folded tables behind a
//! process-wide cache.
//!
//! The seed kernels evaluated `sin`/`cos` (or an error-accumulating
//! `w = w * wlen` recurrence) inside the butterfly loops; here every
//! twiddle the FFT engine touches comes from a table that is computed
//! once per transform length and shared across ranks and iterations via
//! an `Arc` cache. Storage is folded with the exact symmetries of the
//! roots of unity:
//!
//! * only the first quadrant `k in 0..=n/4` of `W_n^k = e^{-2*pi*i*k/n}`
//!   is stored;
//! * within the quadrant, entries above the eighth-wave point come from
//!   the sin/cos swap `W^{n/4-j} = -i * conj(W^j)`, so mirrored entries
//!   are bit-identical to their partners;
//! * the second quadrant is `W^{n/2-j} = -conj(W^j)` and the second half
//!   is `W^{k+n/2} = -W^k`, applied by the accessor, never stored.
//!
//! On top of the folded quarter wave the table carries *stage packs*: the
//! twiddle pairs `(W_{2h}^k, W_{4h}^k)` each merged radix-2^2 butterfly
//! stage of the iterative kernels consumes, laid out contiguously so the
//! inner loops are branch-free sequential loads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::fft::Complex;

/// Twiddle pairs for one merged radix-2^2 stage (DIT halves `(h, 2h)`,
/// equivalently DIF spans `(4h, 2h)`).
///
/// The pairs are stored twice: interleaved as `Complex` (the layout the
/// tests validate against) and as four split-complex planes, which is
/// what the vectorized butterfly kernels load — plane-separated `f64`
/// streams keep the inner loops free of shuffles so they compile to
/// packed FMA.
pub struct Stage {
    /// The stage's half-pair parameter: butterflies combine elements at
    /// distances `h` and `2h` within blocks of `4h`.
    pub h: usize,
    /// Interleaved per butterfly index `k < h`:
    /// `w[2k] = W_{2h}^k`, `w[2k+1] = W_{4h}^k` (forward sign).
    pub w: Vec<Complex>,
    /// `Re W_{2h}^k` for `k < h` (split-complex plane of `w[2k]`).
    pub w1re: Vec<f64>,
    /// `Im W_{2h}^k` for `k < h`.
    pub w1im: Vec<f64>,
    /// `Re W_{4h}^k` for `k < h` (split-complex plane of `w[2k+1]`).
    pub w2re: Vec<f64>,
    /// `Im W_{4h}^k` for `k < h`.
    pub w2im: Vec<f64>,
}

/// Forward twiddle table for one power-of-two transform length.
pub struct TwiddleTable {
    n: usize,
    /// `W_n^k` for `k in 0..=n/4`, forward sign (`e^{-2*pi*i*k/n}`).
    quarter: Vec<Complex>,
    /// Stage packs for the merged radix-2^2 kernels, ascending `h`.
    stages: Vec<Stage>,
}

impl TwiddleTable {
    /// Transform length this table serves.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate `n <= 1` table.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Whether the merged stages are preceded (DIT) / followed (DIF) by a
    /// single twiddle-free radix-2 stage (odd `log2 n`).
    #[inline]
    pub fn has_odd_stage(&self) -> bool {
        self.n >= 2 && self.n.trailing_zeros() % 2 == 1
    }

    /// The merged radix-2^2 stage packs, ascending in `h`.
    #[inline]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Forward twiddle `W_n^k = e^{-2*pi*i*k/n}` for any `k < n`,
    /// reconstructed from the folded quarter-wave storage.
    #[inline]
    pub fn w_forward(&self, k: usize) -> Complex {
        debug_assert!(
            k < self.n,
            "twiddle index {k} out of range for n={}",
            self.n
        );
        let half = self.n / 2;
        if k >= half {
            let w = self.w_first_half(k - half);
            Complex::new(-w.re, -w.im)
        } else {
            self.w_first_half(k)
        }
    }

    /// Twiddle with the transform direction folded in: forward for
    /// `inverse = false`, conjugate for `inverse = true`.
    #[inline]
    pub fn w(&self, k: usize, inverse: bool) -> Complex {
        let w = self.w_forward(k);
        if inverse {
            w.conj()
        } else {
            w
        }
    }

    /// `W_n^k` for `k < n/2` via the second-quadrant fold
    /// `W^{n/2-j} = -conj(W^j)`.
    #[inline]
    fn w_first_half(&self, k: usize) -> Complex {
        let quart = self.n / 4;
        if k <= quart {
            self.quarter[k]
        } else {
            let w = self.quarter[self.n / 2 - k];
            Complex::new(-w.re, w.im)
        }
    }

    fn build(n: usize) -> TwiddleTable {
        assert!(n.is_power_of_two(), "twiddle tables need a power of two");
        if n < 4 {
            // n <= 2 only ever uses W^0 = 1.
            return TwiddleTable {
                n,
                quarter: vec![Complex::new(1.0, 0.0)],
                stages: Vec::new(),
            };
        }

        // First quadrant, folded again at the eighth-wave point: entries
        // k <= n/8 are evaluated directly, the rest come from the exact
        // sin/cos swap W^{n/4-j} = -i * conj(W^j) = (sin t_j, -cos t_j).
        let quart = n / 4;
        let eighth = n / 8;
        let mut quarter = vec![Complex::default(); quart + 1];
        for (k, w) in quarter.iter_mut().enumerate().take(eighth + 1) {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            *w = Complex::new(theta.cos(), theta.sin());
        }
        for k in eighth + 1..=quart {
            let m = quarter[quart - k];
            quarter[k] = Complex::new(-m.im, -m.re);
        }
        // Pin the exact lattice points.
        quarter[0] = Complex::new(1.0, 0.0);
        quarter[quart] = Complex::new(0.0, -1.0);
        if n >= 8 {
            use std::f64::consts::FRAC_1_SQRT_2;
            quarter[eighth] = Complex::new(FRAC_1_SQRT_2, -FRAC_1_SQRT_2);
        }

        let mut table = TwiddleTable {
            n,
            quarter,
            stages: Vec::new(),
        };

        // Stage packs: h starts at 1 (even log2 n) or 2 (odd, after the
        // twiddle-free radix-2 stage) and advances by factors of 4.
        let mut h = if table.has_odd_stage() { 2 } else { 1 };
        while 4 * h <= n {
            let mut stage = Stage {
                h,
                w: Vec::with_capacity(2 * h),
                w1re: Vec::with_capacity(h),
                w1im: Vec::with_capacity(h),
                w2re: Vec::with_capacity(h),
                w2im: Vec::with_capacity(h),
            };
            for k in 0..h {
                // W_{2h}^k and W_{4h}^k as strided reads of W_n.
                let w1 = table.w_forward(k * (n / (2 * h)));
                let w2 = table.w_forward(k * (n / (4 * h)));
                stage.w.push(w1);
                stage.w.push(w2);
                stage.w1re.push(w1.re);
                stage.w1im.push(w1.im);
                stage.w2re.push(w2.re);
                stage.w2im.push(w2.im);
            }
            table.stages.push(stage);
            h *= 4;
        }
        table
    }
}

/// Process-wide table cache: each length is computed once and shared
/// (`Arc`) across every rank, transform and iteration that needs it.
pub fn table_for(n: usize) -> Arc<TwiddleTable> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<TwiddleTable>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(t) = cache.lock().expect("twiddle cache poisoned").get(&n) {
        return Arc::clone(t);
    }
    // Build outside the lock so concurrent ranks are not serialised on
    // the trig evaluation; the second builder loses and drops its copy.
    let fresh = Arc::new(TwiddleTable::build(n));
    let mut map = cache.lock().expect("twiddle cache poisoned");
    Arc::clone(map.entry(n).or_insert(fresh))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cis_forward(k: usize, n: usize) -> Complex {
        Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64)
    }

    /// Satellite: every symmetry-folded entry must agree with a direct
    /// `cis` evaluation of the same root of unity.
    #[test]
    fn folded_entries_match_direct_cis() {
        for n in [4usize, 8, 16, 64, 256, 1024, 4096] {
            let t = table_for(n);
            for k in 0..n {
                let got = t.w_forward(k);
                let expect = cis_forward(k, n);
                assert!(
                    (got - expect).abs() < 1e-12,
                    "n={n} k={k}: {got:?} vs {expect:?}"
                );
            }
        }
    }

    #[test]
    fn lattice_points_are_exact() {
        let t = table_for(64);
        assert_eq!(t.w_forward(0), Complex::new(1.0, 0.0));
        assert_eq!(t.w_forward(16), Complex::new(0.0, -1.0));
        assert_eq!(t.w_forward(32), Complex::new(-1.0, 0.0));
        assert_eq!(t.w_forward(48), Complex::new(0.0, 1.0));
        // Eighth-wave mirror pairs are bit-identical in |re|/|im| swap.
        let w8 = t.w_forward(8);
        assert_eq!(w8.re, -w8.im);
    }

    #[test]
    fn stage_packs_match_direct_cis() {
        for n in [8usize, 16, 128, 1024] {
            let t = table_for(n);
            for stage in t.stages() {
                for k in 0..stage.h {
                    let w1 = stage.w[2 * k];
                    let w2 = stage.w[2 * k + 1];
                    assert!((w1 - cis_forward(k, 2 * stage.h)).abs() < 1e-12);
                    assert!((w2 - cis_forward(k, 4 * stage.h)).abs() < 1e-12);
                    // Split-complex planes are bit-identical to the pack.
                    assert_eq!((stage.w1re[k], stage.w1im[k]), (w1.re, w1.im));
                    assert_eq!((stage.w2re[k], stage.w2im[k]), (w2.re, w2.im));
                }
            }
            // Stage structure covers every butterfly length exactly once.
            let merged: u32 = t.stages().iter().map(|_| 2).sum();
            let odd = u32::from(t.has_odd_stage());
            assert_eq!(merged + odd, n.trailing_zeros());
        }
    }

    #[test]
    fn inverse_direction_is_the_conjugate() {
        let t = table_for(32);
        for k in 0..32 {
            let f = t.w(k, false);
            let i = t.w(k, true);
            assert_eq!(f.re, i.re);
            assert_eq!(f.im, -i.im);
        }
    }

    #[test]
    fn cache_shares_one_table_per_length() {
        let a = table_for(512);
        let b = table_for(512);
        assert!(Arc::ptr_eq(&a, &b), "same length must share one table");
        let c = table_for(256);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
