//! Table-driven complex FFT engine (the local compute of G-FFT).
//!
//! The butterflies run on a **split-complex** (structure-of-arrays)
//! workspace: the interleaved `Complex` caller data is deinterleaved
//! into separate `re`/`im` planes, transformed, and reinterleaved. With
//! plane-separated `f64` streams the merged radix-2^2 inner loops are
//! plain contiguous array arithmetic — no shuffles — so they compile to
//! packed FMA under `-C target-cpu=native`. Every twiddle is a
//! sequential load from a per-stage pack in the shared
//! [`twiddle`](super::twiddle) table — no trig and no recurrence in any
//! butterfly loop.
//!
//! Large transforms are limited by how many times the passes sweep the
//! array, so the engine minimises full-size sweeps instead of striding:
//!
//! * the bit-reverse permutation is fused with the deinterleave into a
//!   single **COBRA-tiled** sweep (32x32 tiles staged through an
//!   L1-resident buffer, so both the gather and the scatter side move
//!   whole cache lines);
//! * the merged radix-2^2 stages are paired into fused **radix-16
//!   macro passes**: two merged stages applied back to back while the
//!   sixteen butterfly legs are in registers, halving the number of
//!   full-array sweeps;
//! * the pass schedule is **hierarchical**: every stage small enough to
//!   fit an L1 block runs block by block while the block is cache-hot,
//!   the next band runs over L2-resident blocks, and only the last few
//!   stages sweep the full array.
//!
//! The DIT/DIF butterfly passes are also exported stand-alone
//! ([`dit_in_place`], [`dif_in_place`]): the distributed FFT runs DIF
//! locally after its cross-rank stages, and verifies with the DIT
//! mirror. Both use the same hierarchical schedule.

use std::cell::RefCell;
use std::ops::{Add, Mul, Sub};

use super::twiddle::{table_for, Stage, TwiddleTable};

/// A double-precision complex number.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im*i`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// Default complex elements per L1-resident block: every stage whose
/// butterfly block (`4h`) fits runs block by block while the block is
/// hot. Two `f64` planes of 1024 elements are 16 KiB, comfortably
/// inside L1d alongside the small-stage twiddle packs. Overridable per
/// host via the tuning table.
pub const L1_BLOCK_DEFAULT: usize = 1024;

/// Default complex elements per L2-resident block for the middle band
/// of stages (plane footprint 512 KiB plus streamed twiddle packs).
pub const L2_BLOCK_DEFAULT: usize = 1 << 15;

/// Block schedule for a length-`n` transform: tuned `(l1, l2)` block
/// sizes clamped to powers of two no larger than `n` with `l1 <= l2`
/// (the tuning layer sanitises; this guards a hand-edited table, and
/// the power-of-two clamp keeps every `chunks_exact` block exact).
fn fft_blocks(n: usize) -> (usize, usize) {
    let t = smp::tuned_now();
    let pow2 = |b: usize| {
        if b.is_power_of_two() {
            b
        } else {
            b.next_power_of_two() / 2
        }
    };
    let l1 = pow2(t.fft_l1_block.max(4)).min(n);
    let l2 = pow2(t.fft_l2_block.max(4)).min(n).max(l1);
    (l1, l2)
}

/// Tile bits of the COBRA bit-reverse: 2^5 x 2^5 tiles staged through
/// an L1 buffer. Sizes below 2^(2*COBRA_T) use the plain permutation.
const COBRA_T: u32 = 5;

/// Smallest stage `h` eligible for radix-16 macro pairing. Below this
/// the macro pass's `k` loop is too narrow to vectorize (the unrolled
/// 16-leg body defeats SLP), while the plain merged passes on these
/// L1-resident blocks are already compute-bound and cheap.
const MACRO_MIN_H: usize = 16;

/// Largest stage `h` eligible for radix-16 macro pairing. At `h >= 512`
/// the sixteen legs sit `8h` bytes apart — a power-of-two multiple of
/// 4 KiB — so they all map to the same L1 set and evict each other
/// (sixteen ways needed, twelve present); those stages run as single
/// merged passes instead.
const MACRO_MAX_H: usize = 256;

/// In-place iterative FFT (decimation in time, natural-order output).
/// `inverse` computes the unscaled inverse transform (divide by `n`
/// afterwards to invert exactly). Length must be a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    let table = table_for(n);
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let (re, im) = s.planes(n);
        if n.trailing_zeros() >= 2 * COBRA_T {
            cobra_split(data, re, im);
        } else {
            deinterleave(data, re, im);
            soa_bit_reverse(re, im);
        }
        soa_dit(re, im, &table, inverse);
        interleave(data, re, im);
    });
}

/// Bit-reversal permutation. The engine fuses the permutation into its
/// tiled gather; the tests use this standalone copy to express the
/// kernel's semantics independently.
#[cfg(test)]
fn bit_reverse(data: &mut [Complex]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// DIT butterfly passes on *bit-reverse permuted* input, producing
/// natural order: the second half of [`fft`], exported because the
/// distributed FFT's inverse mirror runs it on data that is already in
/// bit-reversed layout.
pub fn dit_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    let table = table_for(n);
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let (re, im) = s.planes(n);
        deinterleave(data, re, im);
        soa_dit(re, im, &table, inverse);
        interleave(data, re, im);
    });
}

/// DIF butterfly passes on natural-order input, producing bit-reversed
/// order: the local stages of the distributed FFT.
pub fn dif_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    let table = table_for(n);
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let (re, im) = s.planes(n);
        deinterleave(data, re, im);
        soa_dif(re, im, &table, inverse);
        interleave(data, re, im);
    });
}

/// In-place bit-reversal permutation of a split-complex pair (plain
/// pairwise swaps; only used below the COBRA size floor).
fn soa_bit_reverse(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
}

#[inline(always)]
fn brev(x: usize, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        x.reverse_bits() >> (usize::BITS - bits)
    }
}

/// Fused deinterleave + bit-reverse in one tiled sweep (the COBRA
/// scheme). Indices split as `i = x·2^(b-t) | a·2^t | y` with `t`-bit
/// `x`, `y`; a 32x32 tile holding every `(x, y)` combination for one
/// middle index `a` is staged through an L1 buffer, so the reads are 32
/// sequentially-advancing streams of whole cache lines and the writes
/// land as contiguous 32-element runs at `brev(y)·2^(b-t) | brev(a)·2^t`.
/// The row permutation `x -> brev(x)` is applied for free while filling
/// the tile.
fn cobra_split(data: &[Complex], re: &mut [f64], im: &mut [f64]) {
    let n = data.len();
    let b = n.trailing_zeros();
    debug_assert!(b >= 2 * COBRA_T);
    let t = COBRA_T;
    let mid = b - 2 * t;
    let tsz = 1usize << t;
    let mut bre = [0.0f64; 1 << (2 * COBRA_T)];
    let mut bim = [0.0f64; 1 << (2 * COBRA_T)];
    for a in 0..1usize << mid {
        let arev = brev(a, mid);
        for x in 0..tsz {
            let row = brev(x, t) * tsz;
            let src = &data[(x << (b - t)) | (a << t)..][..tsz];
            for (y, c) in src.iter().enumerate() {
                bre[row + y] = c.re;
                bim[row + y] = c.im;
            }
        }
        for y in 0..tsz {
            let dst = (brev(y, t) << (b - t)) | (arev << t);
            let dr = &mut re[dst..dst + tsz];
            let di = &mut im[dst..dst + tsz];
            for x2 in 0..tsz {
                dr[x2] = bre[x2 * tsz + y];
                di[x2] = bim[x2 * tsz + y];
            }
        }
    }
}

// ----------------------------------------------------------------------
// Split-complex workspace
// ----------------------------------------------------------------------

/// Grow-only split-complex scratch, one per thread. Buffers never
/// shrink, so steady-state transforms of a repeated size perform no
/// allocation.
#[derive(Default)]
struct FftScratch {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl FftScratch {
    fn planes(&mut self, n: usize) -> (&mut [f64], &mut [f64]) {
        if self.re.len() < n {
            self.re.resize(n, 0.0);
            self.im.resize(n, 0.0);
        }
        (&mut self.re[..n], &mut self.im[..n])
    }
}

thread_local! {
    static SCRATCH: RefCell<FftScratch> = RefCell::new(FftScratch::default());
}

fn deinterleave(data: &[Complex], re: &mut [f64], im: &mut [f64]) {
    for ((c, r), i) in data.iter().zip(re.iter_mut()).zip(im.iter_mut()) {
        *r = c.re;
        *i = c.im;
    }
}

fn interleave(data: &mut [Complex], re: &[f64], im: &[f64]) {
    for ((c, r), i) in data.iter_mut().zip(re.iter()).zip(im.iter()) {
        c.re = *r;
        c.im = *i;
    }
}

// ----------------------------------------------------------------------
// Split-complex butterfly passes
// ----------------------------------------------------------------------

fn soa_dit(re: &mut [f64], im: &mut [f64], table: &TwiddleTable, inverse: bool) {
    if inverse {
        soa_dit_passes::<true>(re, im, table);
    } else {
        soa_dit_passes::<false>(re, im, table);
    }
}

fn soa_dif(re: &mut [f64], im: &mut [f64], table: &TwiddleTable, inverse: bool) {
    if inverse {
        soa_dif_passes::<true>(re, im, table);
    } else {
        soa_dif_passes::<false>(re, im, table);
    }
}

#[inline(always)]
fn split4(x: &mut [f64], h: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
    let (a, x) = x.split_at_mut(h);
    let (b, x) = x.split_at_mut(h);
    let (c, d) = x.split_at_mut(h);
    (a, b, c, d)
}

/// The twiddle-free radix-2 stage pairing adjacent elements (the DIT
/// opener / DIF closer for odd `log2 n`).
fn soa_adjacent(re: &mut [f64], im: &mut [f64]) {
    for (r, i) in re.chunks_exact_mut(2).zip(im.chunks_exact_mut(2)) {
        let (ar, br) = (r[0], r[1]);
        r[0] = ar + br;
        r[1] = ar - br;
        let (ai, bi) = (i[0], i[1]);
        i[0] = ai + bi;
        i[1] = ai - bi;
    }
}

/// The `h = 1` merged stage: a radix-4 butterfly on adjacent elements
/// whose twiddles are exactly `1` and `-i`, so it is pure add/sub (plus
/// the sign-folded `-i` rotation) on contiguous 4-element chunks — no
/// loads from the pack, and the chunk loop vectorizes across blocks.
fn soa_quad_dit<const INV: bool>(re: &mut [f64], im: &mut [f64]) {
    let s = if INV { -1.0 } else { 1.0 };
    for (r, i) in re.chunks_exact_mut(4).zip(im.chunks_exact_mut(4)) {
        let a0r = r[0] + r[1];
        let a0i = i[0] + i[1];
        let a1r = r[0] - r[1];
        let a1i = i[0] - i[1];
        let a2r = r[2] + r[3];
        let a2i = i[2] + i[3];
        let a3r = r[2] - r[3];
        let a3i = i[2] - i[3];
        // (a3r, a3i) * (-i * sign): forward -i is (a3i, -a3r).
        let cr = s * a3i;
        let ci = -s * a3r;
        r[0] = a0r + a2r;
        r[1] = a1r + cr;
        r[2] = a0r - a2r;
        r[3] = a1r - cr;
        i[0] = a0i + a2i;
        i[1] = a1i + ci;
        i[2] = a0i - a2i;
        i[3] = a1i - ci;
    }
}

/// DIF mirror of [`soa_quad_dit`] (spans `4` then `2`, same exact
/// twiddles, so also multiply-free).
fn soa_quad_dif<const INV: bool>(re: &mut [f64], im: &mut [f64]) {
    let s = if INV { -1.0 } else { 1.0 };
    for (r, i) in re.chunks_exact_mut(4).zip(im.chunks_exact_mut(4)) {
        let t0r = r[0] + r[2];
        let t0i = i[0] + i[2];
        let d0r = r[0] - r[2];
        let d0i = i[0] - i[2];
        let t1r = r[1] + r[3];
        let t1i = i[1] + i[3];
        let d1r = r[1] - r[3];
        let d1i = i[1] - i[3];
        // (d1r, d1i) * (-i * sign).
        let t3r = s * d1i;
        let t3i = -s * d1r;
        r[0] = t0r + t1r;
        r[1] = t0r - t1r;
        r[2] = d0r + t3r;
        r[3] = d0r - t3r;
        i[0] = t0i + t1i;
        i[1] = t0i - t1i;
        i[2] = d0i + t3i;
        i[3] = d0i - t3i;
    }
}

/// One merged radix-2^2 DIT butterfly on four complex legs at distance
/// `h`: halves at distance `h` take `W_{2h}^k`, halves at distance `2h`
/// take `W_{4h}^k` (and `-i W_{4h}^k` via an exact rotation). Every
/// complex product is two mul + two `mul_add`, so after the callers'
/// loops vectorize the codegen is packed FMA.
#[inline(always)]
fn bf4_dit<const INV: bool>(
    pr: [f64; 4],
    pi: [f64; 4],
    w1r: f64,
    w1i: f64,
    w2r: f64,
    w2i: f64,
) -> ([f64; 4], [f64; 4]) {
    let s = if INV { -1.0 } else { 1.0 };
    let w1is = s * w1i;
    let w2is = s * w2i;
    let w2rs = s * w2r;
    let v0r = f64::mul_add(pi[1], -w1is, pr[1] * w1r);
    let v0i = f64::mul_add(pi[1], w1r, pr[1] * w1is);
    let v1r = f64::mul_add(pi[3], -w1is, pr[3] * w1r);
    let v1i = f64::mul_add(pi[3], w1r, pr[3] * w1is);
    let a0r = pr[0] + v0r;
    let a0i = pi[0] + v0i;
    let a1r = pr[0] - v0r;
    let a1i = pi[0] - v0i;
    let a2r = pr[2] + v1r;
    let a2i = pi[2] + v1i;
    let a3r = pr[2] - v1r;
    let a3i = pi[2] - v1i;
    let br = f64::mul_add(a2i, -w2is, a2r * w2r);
    let bi = f64::mul_add(a2i, w2r, a2r * w2is);
    let cr = f64::mul_add(a3i, w2rs, a3r * w2i);
    let ci = f64::mul_add(a3r, -w2rs, a3i * w2i);
    (
        [a0r + br, a1r + cr, a0r - br, a1r - cr],
        [a0i + bi, a1i + ci, a0i - bi, a1i - ci],
    )
}

/// One merged radix-2^2 DIF butterfly, the mirror of [`bf4_dit`]:
/// spans `4h` first (`W_{4h}^k`), then `2h` (`W_{2h}^k`).
#[inline(always)]
fn bf4_dif<const INV: bool>(
    pr: [f64; 4],
    pi: [f64; 4],
    w1r: f64,
    w1i: f64,
    w2r: f64,
    w2i: f64,
) -> ([f64; 4], [f64; 4]) {
    let s = if INV { -1.0 } else { 1.0 };
    let w1is = s * w1i;
    let w2is = s * w2i;
    let w2rs = s * w2r;
    let t0r = pr[0] + pr[2];
    let t0i = pi[0] + pi[2];
    let d0r = pr[0] - pr[2];
    let d0i = pi[0] - pi[2];
    let t2r = f64::mul_add(d0i, -w2is, d0r * w2r);
    let t2i = f64::mul_add(d0i, w2r, d0r * w2is);
    let t1r = pr[1] + pr[3];
    let t1i = pi[1] + pi[3];
    let d1r = pr[1] - pr[3];
    let d1i = pi[1] - pi[3];
    let t3r = f64::mul_add(d1i, w2rs, d1r * w2i);
    let t3i = f64::mul_add(d1r, -w2rs, d1i * w2i);
    let e0r = t0r - t1r;
    let e0i = t0i - t1i;
    let e1r = t2r - t3r;
    let e1i = t2i - t3i;
    (
        [
            t0r + t1r,
            f64::mul_add(e0i, -w1is, e0r * w1r),
            t2r + t3r,
            f64::mul_add(e1i, -w1is, e1r * w1r),
        ],
        [
            t0i + t1i,
            f64::mul_add(e0i, w1r, e0r * w1is),
            t2i + t3i,
            f64::mul_add(e1i, w1r, e1r * w1is),
        ],
    )
}

/// One vectorizable row of merged radix-2^2 DIT butterflies: four
/// disjoint equal-length legs combined element by element with
/// sequential twiddle loads. Eight data slices plus four twiddle
/// slices keep the pointer count low enough for LLVM's alias analysis,
/// so the loop compiles to packed FMA.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dit_row<const INV: bool>(
    (r0, r1, r2, r3): (&mut [f64], &mut [f64], &mut [f64], &mut [f64]),
    (i0, i1, i2, i3): (&mut [f64], &mut [f64], &mut [f64], &mut [f64]),
    w1r: &[f64],
    w1i: &[f64],
    w2r: &[f64],
    w2i: &[f64],
) {
    for k in 0..r0.len() {
        let (or, oi) = bf4_dit::<INV>(
            [r0[k], r1[k], r2[k], r3[k]],
            [i0[k], i1[k], i2[k], i3[k]],
            w1r[k],
            w1i[k],
            w2r[k],
            w2i[k],
        );
        r0[k] = or[0];
        r1[k] = or[1];
        r2[k] = or[2];
        r3[k] = or[3];
        i0[k] = oi[0];
        i1[k] = oi[1];
        i2[k] = oi[2];
        i3[k] = oi[3];
    }
}

/// DIF mirror of [`dit_row`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dif_row<const INV: bool>(
    (r0, r1, r2, r3): (&mut [f64], &mut [f64], &mut [f64], &mut [f64]),
    (i0, i1, i2, i3): (&mut [f64], &mut [f64], &mut [f64], &mut [f64]),
    w1r: &[f64],
    w1i: &[f64],
    w2r: &[f64],
    w2i: &[f64],
) {
    for k in 0..r0.len() {
        let (or, oi) = bf4_dif::<INV>(
            [r0[k], r1[k], r2[k], r3[k]],
            [i0[k], i1[k], i2[k], i3[k]],
            w1r[k],
            w1i[k],
            w2r[k],
            w2i[k],
        );
        r0[k] = or[0];
        r1[k] = or[1];
        r2[k] = or[2];
        r3[k] = or[3];
        i0[k] = oi[0];
        i1[k] = oi[1];
        i2[k] = oi[2];
        i3[k] = oi[3];
    }
}

/// Single merged radix-2^2 DIT pass over `re`/`im` for one stage
/// (`h = 1` routes to the multiply-free quad stage).
fn merged_dit<const INV: bool>(re: &mut [f64], im: &mut [f64], stage: &Stage) {
    let h = stage.h;
    if h == 1 {
        soa_quad_dit::<INV>(re, im);
        return;
    }
    let w1r = &stage.w1re[..h];
    let w1i = &stage.w1im[..h];
    let w2r = &stage.w2re[..h];
    let w2i = &stage.w2im[..h];
    for (rb, ib) in re.chunks_exact_mut(4 * h).zip(im.chunks_exact_mut(4 * h)) {
        dit_row::<INV>(split4(rb, h), split4(ib, h), w1r, w1i, w2r, w2i);
    }
}

/// Single merged radix-2^2 DIF pass over `re`/`im` for one stage
/// (`h = 1` routes to the multiply-free quad stage).
fn merged_dif<const INV: bool>(re: &mut [f64], im: &mut [f64], stage: &Stage) {
    let h = stage.h;
    if h == 1 {
        soa_quad_dif::<INV>(re, im);
        return;
    }
    let w1r = &stage.w1re[..h];
    let w1i = &stage.w1im[..h];
    let w2r = &stage.w2re[..h];
    let w2i = &stage.w2im[..h];
    for (rb, ib) in re.chunks_exact_mut(4 * h).zip(im.chunks_exact_mut(4 * h)) {
        dif_row::<INV>(split4(rb, h), split4(ib, h), w1r, w1i, w2r, w2i);
    }
}

/// Fused radix-16 DIT macro pass: two consecutive merged stages
/// (`sa` at distance `h`, `sb` at `4h`) applied back to back while all
/// sixteen butterfly legs are in registers, so the pair costs one sweep
/// over the array instead of two. Layer A runs `sa`'s butterfly inside
/// each quarter of a `16h` block; layer B runs `sb`'s butterfly across
/// the quarters at pack offsets `q*h + k`. Only used for `h >=`
/// [`MACRO_MIN_H`], where the `k` loop is wide enough to vectorize.
fn macro16_dit<const INV: bool>(re: &mut [f64], im: &mut [f64], sa: &Stage, sb: &Stage) {
    debug_assert_eq!(sb.h, 4 * sa.h, "macro pass needs consecutive stages");
    let h = sa.h;
    let wa1r = &sa.w1re[..h];
    let wa1i = &sa.w1im[..h];
    let wa2r = &sa.w2re[..h];
    let wa2i = &sa.w2im[..h];
    let wb1r = &sb.w1re[..4 * h];
    let wb1i = &sb.w1im[..4 * h];
    let wb2r = &sb.w2re[..4 * h];
    let wb2i = &sb.w2im[..4 * h];
    // Flat indexing off one base slice per plane (leg (c, q) lives at
    // offset (4c + q) * h): a single pointer pair keeps the 32 streams
    // analyzable, so the k loop vectorizes.
    for (rb, ib) in re.chunks_exact_mut(16 * h).zip(im.chunks_exact_mut(16 * h)) {
        for k in 0..h {
            let mut vr = [[0.0f64; 4]; 4];
            let mut vi = [[0.0f64; 4]; 4];
            // Layer A: sa's butterfly on each quarter's four rows.
            for c in 0..4 {
                let base = 4 * c * h + k;
                let (or, oi) = bf4_dit::<INV>(
                    [rb[base], rb[base + h], rb[base + 2 * h], rb[base + 3 * h]],
                    [ib[base], ib[base + h], ib[base + 2 * h], ib[base + 3 * h]],
                    wa1r[k],
                    wa1i[k],
                    wa2r[k],
                    wa2i[k],
                );
                vr[c] = or;
                vi[c] = oi;
            }
            // Layer B: sb's butterfly across quarters, pack index q*h+k.
            for q in 0..4 {
                let tw = q * h + k;
                let (or, oi) = bf4_dit::<INV>(
                    [vr[0][q], vr[1][q], vr[2][q], vr[3][q]],
                    [vi[0][q], vi[1][q], vi[2][q], vi[3][q]],
                    wb1r[tw],
                    wb1i[tw],
                    wb2r[tw],
                    wb2i[tw],
                );
                for c in 0..4 {
                    rb[(4 * c + q) * h + k] = or[c];
                    ib[(4 * c + q) * h + k] = oi[c];
                }
            }
        }
    }
}

/// Fused radix-16 DIF macro pass, the mirror of [`macro16_dit`]:
/// layer B (`sb`, spans `16h`/`8h`) runs across the quarters first,
/// then layer A (`sa`) inside each quarter.
fn macro16_dif<const INV: bool>(re: &mut [f64], im: &mut [f64], sa: &Stage, sb: &Stage) {
    debug_assert_eq!(sb.h, 4 * sa.h, "macro pass needs consecutive stages");
    let h = sa.h;
    let wa1r = &sa.w1re[..h];
    let wa1i = &sa.w1im[..h];
    let wa2r = &sa.w2re[..h];
    let wa2i = &sa.w2im[..h];
    let wb1r = &sb.w1re[..4 * h];
    let wb1i = &sb.w1im[..4 * h];
    let wb2r = &sb.w2re[..4 * h];
    let wb2i = &sb.w2im[..4 * h];
    for (rb, ib) in re.chunks_exact_mut(16 * h).zip(im.chunks_exact_mut(16 * h)) {
        for k in 0..h {
            let mut vr = [[0.0f64; 4]; 4];
            let mut vi = [[0.0f64; 4]; 4];
            // Layer B first: sb's butterfly across quarters.
            for q in 0..4 {
                let base = q * h + k;
                let (or, oi) = bf4_dif::<INV>(
                    [
                        rb[base],
                        rb[base + 4 * h],
                        rb[base + 8 * h],
                        rb[base + 12 * h],
                    ],
                    [
                        ib[base],
                        ib[base + 4 * h],
                        ib[base + 8 * h],
                        ib[base + 12 * h],
                    ],
                    wb1r[base],
                    wb1i[base],
                    wb2r[base],
                    wb2i[base],
                );
                for c in 0..4 {
                    vr[c][q] = or[c];
                    vi[c][q] = oi[c];
                }
            }
            // Layer A: sa's butterfly inside each quarter.
            for c in 0..4 {
                let (or, oi) = bf4_dif::<INV>(vr[c], vi[c], wa1r[k], wa1i[k], wa2r[k], wa2i[k]);
                for q in 0..4 {
                    rb[(4 * c + q) * h + k] = or[q];
                    ib[(4 * c + q) * h + k] = oi[q];
                }
            }
        }
    }
}

/// Tile width (in butterfly indices `k`) of the staged wide passes: 16
/// legs x 64 `f64` is an 8 KiB buffer per plane, and every gathered leg
/// is a contiguous 512-byte run, so the gather/scatter moves whole
/// cache lines on sixteen concurrently-advancing streams.
const STAGE2_KT: usize = 64;

/// Tile width of the triple staged pass: 64 legs x 32 `f64` keeps the
/// pair of plane buffers at 2 x 16 KiB, still L1-resident.
const STAGE3_KT: usize = 32;

/// Two consecutive wide stages (`sb.h == 4 * sa.h`, `h` beyond
/// [`MACRO_MAX_H`]) applied in one sweep: for each tile of `STAGE2_KT`
/// butterfly indices the sixteen legs are gathered into a contiguous
/// L1 buffer, both butterfly layers run on the buffer (unit-stride,
/// alias-free, so they vectorize), and the legs scatter back. Memory
/// traffic is one read and one write of the array for two stages, and
/// the gathered legs never collide in L1 the way the direct `8h`-byte
/// power-of-two strides do.
fn staged2_dit<const INV: bool>(re: &mut [f64], im: &mut [f64], sa: &Stage, sb: &Stage) {
    let h = sa.h;
    debug_assert_eq!(sb.h, 4 * h, "staged pass needs consecutive stages");
    debug_assert_eq!(h % STAGE2_KT, 0, "wide stage not tileable");
    const KT: usize = STAGE2_KT;
    let mut br = [0.0f64; 16 * KT];
    let mut bi = [0.0f64; 16 * KT];
    for (rb, ib) in re.chunks_exact_mut(16 * h).zip(im.chunks_exact_mut(16 * h)) {
        for kt in (0..h).step_by(KT) {
            for r in 0..16 {
                br[r * KT..(r + 1) * KT].copy_from_slice(&rb[r * h + kt..][..KT]);
                bi[r * KT..(r + 1) * KT].copy_from_slice(&ib[r * h + kt..][..KT]);
            }
            // Layer A: sa's butterfly on rows {4c .. 4c+3} (contiguous
            // in the buffer), pack index k.
            for (cr, ci) in br.chunks_exact_mut(4 * KT).zip(bi.chunks_exact_mut(4 * KT)) {
                dit_row::<INV>(
                    split4(cr, KT),
                    split4(ci, KT),
                    &sa.w1re[kt..kt + KT],
                    &sa.w1im[kt..kt + KT],
                    &sa.w2re[kt..kt + KT],
                    &sa.w2im[kt..kt + KT],
                );
            }
            // Layer B: sb's butterfly on rows {q, 4+q, 8+q, 12+q}, pack
            // index q*h + k.
            {
                let (q0, q1, q2, q3) = split4(&mut br, 4 * KT);
                let (p0, p1, p2, p3) = split4(&mut bi, 4 * KT);
                for q in 0..4 {
                    let b0 = q * KT;
                    let tw = q * h + kt;
                    dit_row::<INV>(
                        (
                            &mut q0[b0..b0 + KT],
                            &mut q1[b0..b0 + KT],
                            &mut q2[b0..b0 + KT],
                            &mut q3[b0..b0 + KT],
                        ),
                        (
                            &mut p0[b0..b0 + KT],
                            &mut p1[b0..b0 + KT],
                            &mut p2[b0..b0 + KT],
                            &mut p3[b0..b0 + KT],
                        ),
                        &sb.w1re[tw..tw + KT],
                        &sb.w1im[tw..tw + KT],
                        &sb.w2re[tw..tw + KT],
                        &sb.w2im[tw..tw + KT],
                    );
                }
            }
            for r in 0..16 {
                rb[r * h + kt..][..KT].copy_from_slice(&br[r * KT..(r + 1) * KT]);
                ib[r * h + kt..][..KT].copy_from_slice(&bi[r * KT..(r + 1) * KT]);
            }
        }
    }
}

/// DIF mirror of [`staged2_dit`]: layer B first, then layer A.
fn staged2_dif<const INV: bool>(re: &mut [f64], im: &mut [f64], sa: &Stage, sb: &Stage) {
    let h = sa.h;
    debug_assert_eq!(sb.h, 4 * h, "staged pass needs consecutive stages");
    debug_assert_eq!(h % STAGE2_KT, 0, "wide stage not tileable");
    const KT: usize = STAGE2_KT;
    let mut br = [0.0f64; 16 * KT];
    let mut bi = [0.0f64; 16 * KT];
    for (rb, ib) in re.chunks_exact_mut(16 * h).zip(im.chunks_exact_mut(16 * h)) {
        for kt in (0..h).step_by(KT) {
            for r in 0..16 {
                br[r * KT..(r + 1) * KT].copy_from_slice(&rb[r * h + kt..][..KT]);
                bi[r * KT..(r + 1) * KT].copy_from_slice(&ib[r * h + kt..][..KT]);
            }
            // Layer B first (mirror of the DIT order).
            {
                let (q0, q1, q2, q3) = split4(&mut br, 4 * KT);
                let (p0, p1, p2, p3) = split4(&mut bi, 4 * KT);
                for q in 0..4 {
                    let b0 = q * KT;
                    let tw = q * h + kt;
                    dif_row::<INV>(
                        (
                            &mut q0[b0..b0 + KT],
                            &mut q1[b0..b0 + KT],
                            &mut q2[b0..b0 + KT],
                            &mut q3[b0..b0 + KT],
                        ),
                        (
                            &mut p0[b0..b0 + KT],
                            &mut p1[b0..b0 + KT],
                            &mut p2[b0..b0 + KT],
                            &mut p3[b0..b0 + KT],
                        ),
                        &sb.w1re[tw..tw + KT],
                        &sb.w1im[tw..tw + KT],
                        &sb.w2re[tw..tw + KT],
                        &sb.w2im[tw..tw + KT],
                    );
                }
            }
            for (cr, ci) in br.chunks_exact_mut(4 * KT).zip(bi.chunks_exact_mut(4 * KT)) {
                dif_row::<INV>(
                    split4(cr, KT),
                    split4(ci, KT),
                    &sa.w1re[kt..kt + KT],
                    &sa.w1im[kt..kt + KT],
                    &sa.w2re[kt..kt + KT],
                    &sa.w2im[kt..kt + KT],
                );
            }
            for r in 0..16 {
                rb[r * h + kt..][..KT].copy_from_slice(&br[r * KT..(r + 1) * KT]);
                ib[r * h + kt..][..KT].copy_from_slice(&bi[r * KT..(r + 1) * KT]);
            }
        }
    }
}

/// Three consecutive wide stages in one sweep (radix-64 staging): the
/// 64 legs of a `64h` block gather into a 2 x 16 KiB L1 buffer, the
/// three butterfly layers run there, and the legs scatter back — one
/// read and one write of the array for three stages.
fn staged3_dit<const INV: bool>(
    re: &mut [f64],
    im: &mut [f64],
    sa: &Stage,
    sb: &Stage,
    sc: &Stage,
) {
    let h = sa.h;
    debug_assert_eq!(sb.h, 4 * h, "staged pass needs consecutive stages");
    debug_assert_eq!(sc.h, 16 * h, "staged pass needs consecutive stages");
    debug_assert_eq!(h % STAGE3_KT, 0, "wide stage not tileable");
    const KT: usize = STAGE3_KT;
    let mut br = [0.0f64; 64 * KT];
    let mut bi = [0.0f64; 64 * KT];
    for (rb, ib) in re.chunks_exact_mut(64 * h).zip(im.chunks_exact_mut(64 * h)) {
        for kt in (0..h).step_by(KT) {
            for r in 0..64 {
                br[r * KT..(r + 1) * KT].copy_from_slice(&rb[r * h + kt..][..KT]);
                bi[r * KT..(r + 1) * KT].copy_from_slice(&ib[r * h + kt..][..KT]);
            }
            // Layer A: rows {4a .. 4a+3} (contiguous), pack index k.
            for (cr, ci) in br.chunks_exact_mut(4 * KT).zip(bi.chunks_exact_mut(4 * KT)) {
                dit_row::<INV>(
                    split4(cr, KT),
                    split4(ci, KT),
                    &sa.w1re[kt..kt + KT],
                    &sa.w1im[kt..kt + KT],
                    &sa.w2re[kt..kt + KT],
                    &sa.w2im[kt..kt + KT],
                );
            }
            // Layer B: rows {16b+q, 16b+4+q, 16b+8+q, 16b+12+q}, pack
            // index q*h + k, within each 16-row super-block.
            for (sr, si) in br
                .chunks_exact_mut(16 * KT)
                .zip(bi.chunks_exact_mut(16 * KT))
            {
                let (q0, q1, q2, q3) = split4(sr, 4 * KT);
                let (p0, p1, p2, p3) = split4(si, 4 * KT);
                for q in 0..4 {
                    let b0 = q * KT;
                    let tw = q * h + kt;
                    dit_row::<INV>(
                        (
                            &mut q0[b0..b0 + KT],
                            &mut q1[b0..b0 + KT],
                            &mut q2[b0..b0 + KT],
                            &mut q3[b0..b0 + KT],
                        ),
                        (
                            &mut p0[b0..b0 + KT],
                            &mut p1[b0..b0 + KT],
                            &mut p2[b0..b0 + KT],
                            &mut p3[b0..b0 + KT],
                        ),
                        &sb.w1re[tw..tw + KT],
                        &sb.w1im[tw..tw + KT],
                        &sb.w2re[tw..tw + KT],
                        &sb.w2im[tw..tw + KT],
                    );
                }
            }
            // Layer C: rows {s, 16+s, 32+s, 48+s}, pack index s*h + k.
            {
                let (q0, q1, q2, q3) = split4(&mut br, 16 * KT);
                let (p0, p1, p2, p3) = split4(&mut bi, 16 * KT);
                for s in 0..16 {
                    let b0 = s * KT;
                    let tw = s * h + kt;
                    dit_row::<INV>(
                        (
                            &mut q0[b0..b0 + KT],
                            &mut q1[b0..b0 + KT],
                            &mut q2[b0..b0 + KT],
                            &mut q3[b0..b0 + KT],
                        ),
                        (
                            &mut p0[b0..b0 + KT],
                            &mut p1[b0..b0 + KT],
                            &mut p2[b0..b0 + KT],
                            &mut p3[b0..b0 + KT],
                        ),
                        &sc.w1re[tw..tw + KT],
                        &sc.w1im[tw..tw + KT],
                        &sc.w2re[tw..tw + KT],
                        &sc.w2im[tw..tw + KT],
                    );
                }
            }
            for r in 0..64 {
                rb[r * h + kt..][..KT].copy_from_slice(&br[r * KT..(r + 1) * KT]);
                ib[r * h + kt..][..KT].copy_from_slice(&bi[r * KT..(r + 1) * KT]);
            }
        }
    }
}

/// DIF mirror of [`staged3_dit`]: layers C, B, A.
fn staged3_dif<const INV: bool>(
    re: &mut [f64],
    im: &mut [f64],
    sa: &Stage,
    sb: &Stage,
    sc: &Stage,
) {
    let h = sa.h;
    debug_assert_eq!(sb.h, 4 * h, "staged pass needs consecutive stages");
    debug_assert_eq!(sc.h, 16 * h, "staged pass needs consecutive stages");
    debug_assert_eq!(h % STAGE3_KT, 0, "wide stage not tileable");
    const KT: usize = STAGE3_KT;
    let mut br = [0.0f64; 64 * KT];
    let mut bi = [0.0f64; 64 * KT];
    for (rb, ib) in re.chunks_exact_mut(64 * h).zip(im.chunks_exact_mut(64 * h)) {
        for kt in (0..h).step_by(KT) {
            for r in 0..64 {
                br[r * KT..(r + 1) * KT].copy_from_slice(&rb[r * h + kt..][..KT]);
                bi[r * KT..(r + 1) * KT].copy_from_slice(&ib[r * h + kt..][..KT]);
            }
            // Layer C first (mirror of the DIT order).
            {
                let (q0, q1, q2, q3) = split4(&mut br, 16 * KT);
                let (p0, p1, p2, p3) = split4(&mut bi, 16 * KT);
                for s in 0..16 {
                    let b0 = s * KT;
                    let tw = s * h + kt;
                    dif_row::<INV>(
                        (
                            &mut q0[b0..b0 + KT],
                            &mut q1[b0..b0 + KT],
                            &mut q2[b0..b0 + KT],
                            &mut q3[b0..b0 + KT],
                        ),
                        (
                            &mut p0[b0..b0 + KT],
                            &mut p1[b0..b0 + KT],
                            &mut p2[b0..b0 + KT],
                            &mut p3[b0..b0 + KT],
                        ),
                        &sc.w1re[tw..tw + KT],
                        &sc.w1im[tw..tw + KT],
                        &sc.w2re[tw..tw + KT],
                        &sc.w2im[tw..tw + KT],
                    );
                }
            }
            for (sr, si) in br
                .chunks_exact_mut(16 * KT)
                .zip(bi.chunks_exact_mut(16 * KT))
            {
                let (q0, q1, q2, q3) = split4(sr, 4 * KT);
                let (p0, p1, p2, p3) = split4(si, 4 * KT);
                for q in 0..4 {
                    let b0 = q * KT;
                    let tw = q * h + kt;
                    dif_row::<INV>(
                        (
                            &mut q0[b0..b0 + KT],
                            &mut q1[b0..b0 + KT],
                            &mut q2[b0..b0 + KT],
                            &mut q3[b0..b0 + KT],
                        ),
                        (
                            &mut p0[b0..b0 + KT],
                            &mut p1[b0..b0 + KT],
                            &mut p2[b0..b0 + KT],
                            &mut p3[b0..b0 + KT],
                        ),
                        &sb.w1re[tw..tw + KT],
                        &sb.w1im[tw..tw + KT],
                        &sb.w2re[tw..tw + KT],
                        &sb.w2im[tw..tw + KT],
                    );
                }
            }
            for (cr, ci) in br.chunks_exact_mut(4 * KT).zip(bi.chunks_exact_mut(4 * KT)) {
                dif_row::<INV>(
                    split4(cr, KT),
                    split4(ci, KT),
                    &sa.w1re[kt..kt + KT],
                    &sa.w1im[kt..kt + KT],
                    &sa.w2re[kt..kt + KT],
                    &sa.w2im[kt..kt + KT],
                );
            }
            for r in 0..64 {
                rb[r * h + kt..][..KT].copy_from_slice(&br[r * KT..(r + 1) * KT]);
                ib[r * h + kt..][..KT].copy_from_slice(&bi[r * KT..(r + 1) * KT]);
            }
        }
    }
}

/// Runs the wide tail of a DIT band (stages beyond [`MACRO_MAX_H`]),
/// grouping consecutive stages into staged triple/pair sweeps so `m`
/// stages cost `ceil(m/3) .. ceil(m/2)` array sweeps instead of `m`.
fn wide_dit<const INV: bool>(re: &mut [f64], im: &mut [f64], stages: &[Stage]) {
    let mut i = 0;
    let m = stages.len();
    while m - i > 4 {
        staged3_dit::<INV>(re, im, &stages[i], &stages[i + 1], &stages[i + 2]);
        i += 3;
    }
    match m - i {
        4 => {
            staged2_dit::<INV>(re, im, &stages[i], &stages[i + 1]);
            staged2_dit::<INV>(re, im, &stages[i + 2], &stages[i + 3]);
        }
        3 => staged3_dit::<INV>(re, im, &stages[i], &stages[i + 1], &stages[i + 2]),
        2 => staged2_dit::<INV>(re, im, &stages[i], &stages[i + 1]),
        1 => merged_dit::<INV>(re, im, &stages[i]),
        _ => {}
    }
}

/// Mirror of [`wide_dit`]: the same grouping executed in reverse with
/// the DIF staged passes.
fn wide_dif<const INV: bool>(re: &mut [f64], im: &mut [f64], stages: &[Stage]) {
    // Recompute the DIT grouping boundaries.
    let m = stages.len();
    let mut head = 0;
    while m - head > 4 {
        head += 3;
    }
    match m - head {
        4 => {
            staged2_dif::<INV>(re, im, &stages[head + 2], &stages[head + 3]);
            staged2_dif::<INV>(re, im, &stages[head], &stages[head + 1]);
        }
        3 => staged3_dif::<INV>(re, im, &stages[head], &stages[head + 1], &stages[head + 2]),
        2 => staged2_dif::<INV>(re, im, &stages[head], &stages[head + 1]),
        1 => merged_dif::<INV>(re, im, &stages[head]),
        _ => {}
    }
    let mut i = head;
    while i >= 3 {
        staged3_dif::<INV>(re, im, &stages[i - 3], &stages[i - 2], &stages[i - 1]);
        i -= 3;
    }
}

/// Runs a band of consecutive merged DIT stages: narrow stages
/// (`h < MACRO_MIN_H`) as plain merged passes, neighbours between
/// [`MACRO_MIN_H`] and [`MACRO_MAX_H`] paired into in-register radix-16
/// macro passes, and the wide tail grouped into staged L1-tile sweeps.
fn dit_band<const INV: bool>(re: &mut [f64], im: &mut [f64], stages: &[Stage]) {
    let mut i = 0;
    while i < stages.len() && stages[i].h < MACRO_MIN_H {
        merged_dit::<INV>(re, im, &stages[i]);
        i += 1;
    }
    while i + 1 < stages.len() && stages[i].h <= MACRO_MAX_H {
        macro16_dit::<INV>(re, im, &stages[i], &stages[i + 1]);
        i += 2;
    }
    if i + 1 < stages.len() {
        wide_dit::<INV>(re, im, &stages[i..]);
    } else if i < stages.len() {
        merged_dit::<INV>(re, im, &stages[i]);
    }
}

/// Mirror of [`dit_band`] for DIF order: the same grouping run in
/// reverse — unpaired largest stage first, macro pairs descending, then
/// the narrow merged stages descending.
fn dif_band<const INV: bool>(re: &mut [f64], im: &mut [f64], stages: &[Stage]) {
    // Recompute the DIT grouping (pairs occupy fw..pe in steps of two),
    // then run it in reverse.
    let fw = stages.partition_point(|s| s.h < MACRO_MIN_H);
    let mut pe = fw;
    while pe + 1 < stages.len() && stages[pe].h <= MACRO_MAX_H {
        pe += 2;
    }
    if pe + 1 < stages.len() {
        wide_dif::<INV>(re, im, &stages[pe..]);
    } else if pe < stages.len() {
        merged_dif::<INV>(re, im, &stages[pe]);
    }
    let mut i = pe;
    while i >= fw + 2 {
        macro16_dif::<INV>(re, im, &stages[i - 2], &stages[i - 1]);
        i -= 2;
    }
    for s in stages[..fw].iter().rev() {
        merged_dif::<INV>(re, im, s);
    }
}

/// Hierarchical DIT schedule: the L1 band (every stage whose `4h`
/// block fits an L1 block) runs block by block while the block is
/// cache-hot, the L2 band runs over L2-resident blocks, and only the
/// top band sweeps the full array — with macro pairing, a 2^20
/// transform touches the full working set just three times after the
/// bit-reverse instead of ten.
fn soa_dit_passes<const INV: bool>(re: &mut [f64], im: &mut [f64], table: &TwiddleTable) {
    let n = re.len();
    let stages = table.stages();
    let (l1b, l2b) = fft_blocks(n);
    let l1 = stages.partition_point(|s| 4 * s.h <= l1b);
    let l2 = stages.partition_point(|s| 4 * s.h <= l2b);
    let dit_block = |rb: &mut [f64], ib: &mut [f64]| {
        for (r1, i1) in rb.chunks_exact_mut(l1b).zip(ib.chunks_exact_mut(l1b)) {
            if table.has_odd_stage() {
                soa_adjacent(r1, i1);
            }
            dit_band::<INV>(r1, i1, &stages[..l1]);
        }
        dit_band::<INV>(rb, ib, &stages[l1..l2]);
    };
    let pool = smp::Pool::current();
    if pool.size() > 1 && n / l2b >= 2 {
        // The L2 blocks are disjoint and all butterflies in stages
        // below `l2` stay inside one block, so the blocks fan out over
        // the pool with bitwise-identical results.
        let mut parts: Vec<(&mut [f64], &mut [f64])> = re
            .chunks_exact_mut(l2b)
            .zip(im.chunks_exact_mut(l2b))
            .collect();
        pool.run_parts(&mut parts, |_, part| {
            dit_block(&mut part.0[..], &mut part.1[..]);
        });
    } else {
        for (rb, ib) in re.chunks_exact_mut(l2b).zip(im.chunks_exact_mut(l2b)) {
            dit_block(rb, ib);
        }
    }
    dit_band::<INV>(re, im, &stages[l2..]);
}

/// Hierarchical DIF schedule, the mirror of [`soa_dit_passes`]: top
/// band first, then L2 blocks, then L1 blocks finishing with the
/// adjacent stage.
fn soa_dif_passes<const INV: bool>(re: &mut [f64], im: &mut [f64], table: &TwiddleTable) {
    let n = re.len();
    let stages = table.stages();
    let (l1b, l2b) = fft_blocks(n);
    let l1 = stages.partition_point(|s| 4 * s.h <= l1b);
    let l2 = stages.partition_point(|s| 4 * s.h <= l2b);
    dif_band::<INV>(re, im, &stages[l2..]);
    let dif_block = |rb: &mut [f64], ib: &mut [f64]| {
        dif_band::<INV>(rb, ib, &stages[l1..l2]);
        for (r1, i1) in rb.chunks_exact_mut(l1b).zip(ib.chunks_exact_mut(l1b)) {
            dif_band::<INV>(r1, i1, &stages[..l1]);
            if table.has_odd_stage() {
                soa_adjacent(r1, i1);
            }
        }
    };
    let pool = smp::Pool::current();
    if pool.size() > 1 && n / l2b >= 2 {
        let mut parts: Vec<(&mut [f64], &mut [f64])> = re
            .chunks_exact_mut(l2b)
            .zip(im.chunks_exact_mut(l2b))
            .collect();
        pool.run_parts(&mut parts, |_, part| {
            dif_block(&mut part.0[..], &mut part.1[..]);
        });
    } else {
        for (rb, ib) in re.chunks_exact_mut(l2b).zip(im.chunks_exact_mut(l2b)) {
            dif_block(rb, ib);
        }
    }
}

/// Floating-point operations of one radix-2 FFT of length `n`
/// (HPCC's 5 n log2 n convention).
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// Naive O(n^2) DFT for validation.
pub fn dft_reference(data: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &x) in data.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + x * Complex::cis(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new((t * 0.7).sin() + 0.3, (t * 1.3).cos() * 0.5)
            })
            .collect()
    }

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x = signal(n);
            let expect = dft_reference(&x, false);
            let mut got = x.clone();
            fft(&mut got, false);
            for (g, e) in got.iter().zip(&expect) {
                assert!(close(*g, *e, 1e-8 * n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let n = 1024;
        let x = signal(n);
        let mut y = x.clone();
        fft(&mut y, false);
        fft(&mut y, true);
        for (g, e) in y.iter().zip(&x) {
            let scaled = Complex::new(g.re / n as f64, g.im / n as f64);
            assert!(close(scaled, *e, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 512;
        let x = signal(n);
        let mut y = x.clone();
        fft(&mut y, false);
        let ex: f64 = x.iter().map(|c| c.abs() * c.abs()).sum();
        let ey: f64 = y.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-8 * ex);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 16;
        let mut x = vec![Complex::default(); n];
        x[0] = Complex::new(1.0, 0.0);
        fft(&mut x, false);
        for v in &x {
            assert!(close(*v, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = signal(12);
        fft(&mut x, false);
    }

    /// The COBRA-tiled fused bit-reverse must be exactly the plain
    /// pairwise-swap permutation: `fft` (COBRA path) and `bit_reverse`
    /// followed by the shared DIT passes run identical arithmetic, so
    /// the outputs agree bit for bit. Covers even/odd log2 n and middle
    /// widths 0..=7, both directions.
    #[test]
    fn cobra_permutation_matches_plain_bit_reverse() {
        for bits in [10u32, 11, 12, 13, 16, 17] {
            let n = 1usize << bits;
            let x = signal(n);
            for inverse in [false, true] {
                let mut via_plain = x.clone();
                bit_reverse(&mut via_plain);
                dit_in_place(&mut via_plain, inverse);
                let mut via_cobra = x.clone();
                fft(&mut via_cobra, inverse);
                assert_eq!(via_plain, via_cobra, "bits={bits} inverse={inverse}");
            }
        }
    }

    /// Past-the-cache sizes checked against the analytic transform of a
    /// tone mixture: a sum of complex exponentials at power-of-two-free
    /// frequencies maps to isolated spikes of height `amp * n`, which
    /// validates every output position (any permutation or butterfly
    /// error smears the spikes).
    #[test]
    fn large_sizes_match_analytic_tones() {
        for bits in [16u32, 17, 18] {
            let n = 1usize << bits;
            let tones: &[(usize, f64)] = &[(3, 1.0), (n / 5, 0.5), (n / 3, 0.25), (n - 7, 0.125)];
            let mut x = vec![Complex::default(); n];
            for (j, v) in x.iter_mut().enumerate() {
                for &(f, amp) in tones {
                    let theta = 2.0 * std::f64::consts::PI * (f * j % n) as f64 / n as f64;
                    *v = *v + Complex::new(amp * theta.cos(), amp * theta.sin());
                }
            }
            fft(&mut x, false);
            let tol = 1e-7 * n as f64;
            for (k, v) in x.iter().enumerate() {
                let expect = tones
                    .iter()
                    .find(|&&(f, _)| f == k)
                    .map_or(Complex::default(), |&(_, amp)| {
                        Complex::new(amp * n as f64, 0.0)
                    });
                assert!(
                    close(*v, expect, tol),
                    "bits={bits} k={k}: {v:?} vs {expect:?}"
                );
            }
        }
    }

    /// DIF to bit-reversed order, then DIT back to natural order, is the
    /// identity times n — the exact pipeline the distributed FFT and its
    /// verification mirror run.
    #[test]
    fn dif_then_inverse_dit_roundtrips() {
        for n in [2usize, 8, 64, 1024, 4096, 1 << 17] {
            let x = signal(n);
            let mut y = x.clone();
            dif_in_place(&mut y, false);
            dit_in_place(&mut y, true);
            for (g, e) in y.iter().zip(&x) {
                let scaled = Complex::new(g.re / n as f64, g.im / n as f64);
                assert!(close(scaled, *e, 1e-12), "n={n}");
            }
        }
    }

    /// Tables make the transform exact to rounding: the seed kernel's
    /// recurrence drifted at ~1e-9 by n=4096; the table kernel must hold
    /// a 1e-10 round-trip bound with margin.
    #[test]
    fn table_twiddles_hold_tight_roundtrip_error() {
        let n = 4096;
        let x = signal(n);
        let mut y = x.clone();
        fft(&mut y, false);
        fft(&mut y, true);
        let mut worst = 0.0f64;
        for (g, e) in y.iter().zip(&x) {
            let scaled = Complex::new(g.re / n as f64, g.im / n as f64);
            worst = worst.max((scaled - *e).abs());
        }
        assert!(worst < 1e-12, "round-trip error {worst}");
    }

    /// Threaded L2-block schedule: a transform spanning several L2
    /// blocks run under a multi-worker pool is bitwise identical to the
    /// serial schedule — every butterfly below the top band stays
    /// inside one disjoint block.
    #[test]
    fn pooled_fft_matches_serial_bitwise() {
        let n = 4 * L2_BLOCK_DEFAULT; // four L2 blocks to fan out
        let run = |threads: usize, inverse: bool| {
            let _pool = smp::AmbientGuard::install(threads);
            let mut x = signal(n);
            fft(&mut x, inverse);
            x
        };
        for inverse in [false, true] {
            let serial = run(1, inverse);
            for threads in [2, 3] {
                let pooled = run(threads, inverse);
                for (p, s) in pooled.iter().zip(&serial) {
                    assert_eq!(
                        (p.re, p.im),
                        (s.re, s.im),
                        "inverse={inverse} threads={threads}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite: the table-driven FFT matches the naive DFT on
        /// random signals across random power-of-two lengths.
        #[test]
        fn random_signals_match_reference_dft(log2_n in 0u32..10, seed in 0u64..(1u64 << 48)) {
            let n = 1usize << log2_n;
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                    / (1u64 << 53) as f64
                    - 0.5
            };
            let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let expect = dft_reference(&x, false);
            let mut got = x.clone();
            fft(&mut got, false);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!(
                    close(*g, *e, 1e-9 * (n as f64).max(1.0)),
                    "n={} {:?} vs {:?}", n, g, e
                );
            }
        }
    }
}
