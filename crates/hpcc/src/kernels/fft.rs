//! Radix-2 complex FFT kernel (the local compute of G-FFT).

use std::ops::{Add, Mul, Sub};

/// A double-precision complex number.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im*i`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT (decimation in time).
/// `inverse` computes the unscaled inverse transform (divide by `n`
/// afterwards to invert exactly). Length must be a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Floating-point operations of one radix-2 FFT of length `n`
/// (HPCC's 5 n log2 n convention).
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// Naive O(n^2) DFT for validation.
pub fn dft_reference(data: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &x) in data.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + x * Complex::cis(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new((t * 0.7).sin() + 0.3, (t * 1.3).cos() * 0.5)
            })
            .collect()
    }

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x = signal(n);
            let expect = dft_reference(&x, false);
            let mut got = x.clone();
            fft(&mut got, false);
            for (g, e) in got.iter().zip(&expect) {
                assert!(close(*g, *e, 1e-8 * n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let n = 1024;
        let x = signal(n);
        let mut y = x.clone();
        fft(&mut y, false);
        fft(&mut y, true);
        for (g, e) in y.iter().zip(&x) {
            let scaled = Complex::new(g.re / n as f64, g.im / n as f64);
            assert!(close(scaled, *e, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 512;
        let x = signal(n);
        let mut y = x.clone();
        fft(&mut y, false);
        let ex: f64 = x.iter().map(|c| c.abs() * c.abs()).sum();
        let ey: f64 = y.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-8 * ex);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 16;
        let mut x = vec![Complex::default(); n];
        x[0] = Complex::new(1.0, 0.0);
        fft(&mut x, false);
        for v in &x {
            assert!(close(*v, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = signal(12);
        fft(&mut x, false);
    }
}
