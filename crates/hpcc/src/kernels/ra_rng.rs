//! The RandomAccess update-stream generator, ported from the HPCC
//! reference implementation ("Random access rules — GUPS").
//!
//! The sequence is `x_{k+1} = (x_k << 1) XOR (msb(x_k) ? POLY : 0)` with
//! `POLY = 7` — multiplication by 2 in GF(2^64) modulo
//! `x^64 + x^2 + x + 1`. [`starts`] jumps to an arbitrary position in
//! O(log n) by square-and-multiply, exactly as `HPCC_starts` does, so
//! every rank can generate its slice of the global update stream
//! independently.

/// The GF(2) reduction polynomial's low bits (x^2 + x + 1).
pub const POLY: u64 = 0x7;

/// Period of the sequence (as in the HPCC reference code).
pub const PERIOD: i64 = 1_317_624_576_693_539_401;

/// One step of the update-stream recurrence.
#[inline]
pub fn step(x: u64) -> u64 {
    (x << 1) ^ (if (x as i64) < 0 { POLY } else { 0 })
}

/// The `n`-th value of the stream (the value a fresh stream yields after
/// `n` steps from the canonical start). Direct port of `HPCC_starts`.
pub fn starts(n: i64) -> u64 {
    let mut n = n;
    while n < 0 {
        n += PERIOD;
    }
    while n > PERIOD {
        n -= PERIOD;
    }
    if n == 0 {
        return 0x1;
    }

    // m2[j] = x^(2^j) squaring table, built by stepping twice per entry.
    let mut m2 = [0u64; 64];
    let mut temp = 0x1u64;
    for m in m2.iter_mut() {
        *m = temp;
        temp = step(step(temp));
    }

    let mut i = 62;
    while i >= 0 && (n >> i) & 1 == 0 {
        i -= 1;
    }

    let mut ran = 0x2u64;
    while i > 0 {
        // Square ran in GF(2^64): substitute each set bit j by x^(2j).
        let mut temp = 0u64;
        for (j, m) in m2.iter().enumerate() {
            if (ran >> j) & 1 == 1 {
                temp ^= m;
            }
        }
        ran = temp;
        i -= 1;
        if (n >> i) & 1 == 1 {
            ran = step(ran);
        }
    }
    ran
}

/// An iterator over the update stream starting at position `start`.
pub struct UpdateStream {
    state: u64,
}

impl UpdateStream {
    /// Stream positioned to yield the `start`-th, `start+1`-th, ... values.
    pub fn at(start: i64) -> UpdateStream {
        UpdateStream {
            state: starts(start),
        }
    }
}

impl Iterator for UpdateStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.state = step(self.state);
        Some(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_matches_sequential_stepping() {
        let mut x = 0x1u64;
        for n in 1..2000i64 {
            x = step(x);
            assert_eq!(starts(n), x, "position {n}");
        }
    }

    #[test]
    fn starts_zero_is_seed() {
        assert_eq!(starts(0), 1);
        assert_eq!(starts(1), 2);
    }

    #[test]
    fn far_jump_consistency() {
        // starts(a+b) must equal stepping b times from starts(a).
        let a = 1_000_000i64;
        let b = 137i64;
        let mut x = starts(a);
        for _ in 0..b {
            x = step(x);
        }
        assert_eq!(x, starts(a + b));
    }

    #[test]
    fn stream_iterator_matches_starts() {
        let vals: Vec<u64> = UpdateStream::at(500).take(5).collect();
        for (k, v) in vals.iter().enumerate() {
            assert_eq!(*v, starts(501 + k as i64));
        }
    }

    #[test]
    fn negative_positions_wrap() {
        assert_eq!(starts(-PERIOD), starts(0));
    }

    #[test]
    fn values_look_uniform_deep_in_the_stream() {
        // The first steps walk through small powers of x, so sample far
        // from the origin where the sequence is well mixed.
        let mut hi = 0usize;
        let mut lo = 0usize;
        for v in UpdateStream::at(1_000_000_000).take(4096) {
            hi += (v >> 63) as usize;
            lo += (v & 1) as usize;
        }
        assert!((1600..2500).contains(&hi), "msb set {hi}/4096 times");
        assert!((1600..2500).contains(&lo), "lsb set {lo}/4096 times");
    }
}
