//! The STREAM kernels (McCalpin): sustainable memory bandwidth via four
//! simple vector operations. Backs the EP-STREAM benchmark, "a synthetic
//! benchmark program that measures sustainable memory bandwidth (in GB/s)
//! and the corresponding computation rate for simple vector kernels".

/// One STREAM kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 16 bytes/iteration.
    Copy,
    /// `b[i] = s * c[i]` — 16 bytes/iteration.
    Scale,
    /// `c[i] = a[i] + b[i]` — 24 bytes/iteration.
    Add,
    /// `a[i] = b[i] + s * c[i]` — 24 bytes/iteration.
    Triad,
}

impl StreamKernel {
    /// All four kernels in STREAM's canonical order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// Bytes moved per element (STREAM's counting convention: one read
    /// plus one write per operand actually touched).
    pub fn bytes_per_element(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }
}

/// Working arrays for the STREAM kernels.
pub struct StreamArrays {
    /// Operand/destination vectors.
    pub a: Vec<f64>,
    /// Operand/destination vectors.
    pub b: Vec<f64>,
    /// Operand/destination vectors.
    pub c: Vec<f64>,
}

impl StreamArrays {
    /// Allocates and initialises the canonical STREAM starting state
    /// (a = 1, b = 2, c = 0).
    pub fn new(len: usize) -> StreamArrays {
        StreamArrays {
            a: vec![1.0; len],
            b: vec![2.0; len],
            c: vec![0.0; len],
        }
    }

    /// Runs one kernel over the arrays (scalar s = 3.0, as in STREAM).
    pub fn run(&mut self, kernel: StreamKernel) {
        const S: f64 = 3.0;
        match kernel {
            StreamKernel::Copy => {
                for (c, a) in self.c.iter_mut().zip(&self.a) {
                    *c = *a;
                }
            }
            StreamKernel::Scale => {
                for (b, c) in self.b.iter_mut().zip(&self.c) {
                    *b = S * *c;
                }
            }
            StreamKernel::Add => {
                for ((c, a), b) in self.c.iter_mut().zip(&self.a).zip(&self.b) {
                    *c = *a + *b;
                }
            }
            StreamKernel::Triad => {
                for ((a, b), c) in self.a.iter_mut().zip(&self.b).zip(&self.c) {
                    *a = *b + S * *c;
                }
            }
        }
    }

    /// STREAM's built-in solution check after running the canonical
    /// sequence copy, scale, add, triad `iters` times.
    pub fn verify(&self, iters: usize) -> Result<(), String> {
        let (mut ea, mut eb, mut ec) = (1.0f64, 2.0f64, 0.0f64);
        for _ in 0..iters {
            ec = ea;
            eb = 3.0 * ec;
            ec = ea + eb;
            ea = eb + 3.0 * ec;
        }
        for (name, arr, expect) in [("a", &self.a, ea), ("b", &self.b, eb), ("c", &self.c, ec)] {
            for (i, v) in arr.iter().enumerate() {
                if (v - expect).abs() > 1e-8 * expect.abs().max(1.0) {
                    return Err(format!("array {name}[{i}] = {v}, expected {expect}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sequence_verifies() {
        let mut s = StreamArrays::new(1000);
        for _ in 0..3 {
            for k in StreamKernel::ALL {
                s.run(k);
            }
        }
        s.verify(3).unwrap();
    }

    #[test]
    fn verify_catches_corruption() {
        let mut s = StreamArrays::new(100);
        for k in StreamKernel::ALL {
            s.run(k);
        }
        s.c[42] += 1.0;
        assert!(s.verify(1).unwrap_err().contains("c[42]"));
    }

    #[test]
    fn byte_counts_match_stream_conventions() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
    }
}
