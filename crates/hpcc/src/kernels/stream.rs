//! The STREAM kernels (McCalpin): sustainable memory bandwidth via four
//! simple vector operations. Backs the EP-STREAM benchmark, "a synthetic
//! benchmark program that measures sustainable memory bandwidth (in GB/s)
//! and the corresponding computation rate for simple vector kernels".
//!
//! Sweeps fan out over the ambient [`smp::Pool`]: the arrays are cut
//! into per-worker contiguous bands (window-aligned, so every band
//! keeps the vectorised `chunks_exact` fast path) and each worker
//! streams its own band. The kernels are element-wise over disjoint
//! indices, so the threaded sweep is bitwise identical to serial.

/// Below this array length a threaded sweep costs more in fork-join
/// overhead than it saves; run serial regardless of pool size.
const SPLIT_MIN_LEN: usize = 1 << 15;

/// Window width the kernels iterate by: `chunks_exact` blocks of this
/// many `f64`s give LLVM a constant trip count per window, which is what
/// makes the autovectorization of all four loops reliable (one 64-byte
/// window = a full cache line).
pub const STREAM_LANES: usize = 8;

/// One STREAM kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 16 bytes/iteration.
    Copy,
    /// `b[i] = s * c[i]` — 16 bytes/iteration.
    Scale,
    /// `c[i] = a[i] + b[i]` — 24 bytes/iteration.
    Add,
    /// `a[i] = b[i] + s * c[i]` — 24 bytes/iteration.
    Triad,
}

impl StreamKernel {
    /// All four kernels in STREAM's canonical order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// Bytes moved per element (STREAM's counting convention: one read
    /// plus one write per operand actually touched).
    pub fn bytes_per_element(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }
}

/// Working arrays for the STREAM kernels.
pub struct StreamArrays {
    /// Operand/destination vectors.
    pub a: Vec<f64>,
    /// Operand/destination vectors.
    pub b: Vec<f64>,
    /// Operand/destination vectors.
    pub c: Vec<f64>,
}

impl StreamArrays {
    /// Allocates and initialises the canonical STREAM starting state
    /// (a = 1, b = 2, c = 0).
    pub fn new(len: usize) -> StreamArrays {
        StreamArrays {
            a: vec![1.0; len],
            b: vec![2.0; len],
            c: vec![0.0; len],
        }
    }

    /// Runs one kernel over the arrays (scalar s = 3.0, as in STREAM).
    ///
    /// Each kernel walks fixed-width `chunks_exact` windows: the constant
    /// trip count per window lets LLVM drop the bounds checks and emit
    /// straight packed loads/stores, where the fused iterator chains left
    /// vectorization at the mercy of alias analysis. The sub-window tail
    /// (at most `STREAM_LANES - 1` elements) runs scalar. Large sweeps
    /// band out over the ambient worker pool.
    pub fn run(&mut self, kernel: StreamKernel) {
        let pool = smp::Pool::current();
        match kernel {
            StreamKernel::Copy => banded2(&pool, &mut self.c, &self.a, copy_band),
            StreamKernel::Scale => banded2(&pool, &mut self.b, &self.c, scale_band),
            StreamKernel::Add => banded3(&pool, &mut self.c, &self.a, &self.b, add_band),
            StreamKernel::Triad => banded3(&pool, &mut self.a, &self.b, &self.c, triad_band),
        }
    }

    /// STREAM's built-in solution check after running the canonical
    /// sequence copy, scale, add, triad `iters` times.
    pub fn verify(&self, iters: usize) -> Result<(), String> {
        let (mut ea, mut eb, mut ec) = (1.0f64, 2.0f64, 0.0f64);
        for _ in 0..iters {
            ec = ea;
            eb = 3.0 * ec;
            ec = ea + eb;
            ea = eb + 3.0 * ec;
        }
        for (name, arr, expect) in [("a", &self.a, ea), ("b", &self.b, eb), ("c", &self.c, ec)] {
            for (i, v) in arr.iter().enumerate() {
                if (v - expect).abs() > 1e-8 * expect.abs().max(1.0) {
                    return Err(format!("array {name}[{i}] = {v}, expected {expect}"));
                }
            }
        }
        Ok(())
    }
}

/// STREAM scalar, as in the reference implementation.
const S: f64 = 3.0;

/// `dst[i] = src[i]` over one band.
fn copy_band(dst: &mut [f64], src: &[f64]) {
    let mut s = src.chunks_exact(STREAM_LANES);
    let mut d = dst.chunks_exact_mut(STREAM_LANES);
    for (d, s) in (&mut d).zip(&mut s) {
        d.copy_from_slice(s);
    }
    for (d, s) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d = *s;
    }
}

/// `dst[i] = S * src[i]` over one band.
fn scale_band(dst: &mut [f64], src: &[f64]) {
    let mut s = src.chunks_exact(STREAM_LANES);
    let mut d = dst.chunks_exact_mut(STREAM_LANES);
    for (d, s) in (&mut d).zip(&mut s) {
        for j in 0..STREAM_LANES {
            d[j] = S * s[j];
        }
    }
    for (d, s) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d = S * *s;
    }
}

/// `dst[i] = s1[i] + s2[i]` over one band.
fn add_band(dst: &mut [f64], s1: &[f64], s2: &[f64]) {
    let mut x = s1.chunks_exact(STREAM_LANES);
    let mut y = s2.chunks_exact(STREAM_LANES);
    let mut d = dst.chunks_exact_mut(STREAM_LANES);
    for ((d, x), y) in (&mut d).zip(&mut x).zip(&mut y) {
        for j in 0..STREAM_LANES {
            d[j] = x[j] + y[j];
        }
    }
    for ((d, x), y) in d
        .into_remainder()
        .iter_mut()
        .zip(x.remainder())
        .zip(y.remainder())
    {
        *d = *x + *y;
    }
}

/// `dst[i] = s1[i] + S * s2[i]` over one band.
fn triad_band(dst: &mut [f64], s1: &[f64], s2: &[f64]) {
    let mut x = s1.chunks_exact(STREAM_LANES);
    let mut y = s2.chunks_exact(STREAM_LANES);
    let mut d = dst.chunks_exact_mut(STREAM_LANES);
    for ((d, x), y) in (&mut d).zip(&mut x).zip(&mut y) {
        for j in 0..STREAM_LANES {
            d[j] = x[j] + S * y[j];
        }
    }
    for ((d, x), y) in d
        .into_remainder()
        .iter_mut()
        .zip(x.remainder())
        .zip(y.remainder())
    {
        *d = *x + S * *y;
    }
}

/// Runs a two-operand kernel over window-aligned per-worker bands.
fn banded2(pool: &smp::Pool, dst: &mut [f64], src: &[f64], f: fn(&mut [f64], &[f64])) {
    if pool.size() <= 1 || dst.len() < SPLIT_MIN_LEN {
        return f(dst, src);
    }
    let ranges = smp::pool::chunk_ranges(dst.len(), pool.size(), STREAM_LANES);
    let mut parts: Vec<(&mut [f64], &[f64])> = Vec::with_capacity(ranges.len());
    let mut rest = dst;
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        rest = tail;
        parts.push((head, &src[r.clone()]));
    }
    pool.run_parts(&mut parts, |_, part| f(&mut part.0[..], part.1));
}

/// Runs a three-operand kernel over window-aligned per-worker bands.
fn banded3(
    pool: &smp::Pool,
    dst: &mut [f64],
    s1: &[f64],
    s2: &[f64],
    f: fn(&mut [f64], &[f64], &[f64]),
) {
    if pool.size() <= 1 || dst.len() < SPLIT_MIN_LEN {
        return f(dst, s1, s2);
    }
    let ranges = smp::pool::chunk_ranges(dst.len(), pool.size(), STREAM_LANES);
    let mut parts: Vec<(&mut [f64], &[f64], &[f64])> = Vec::with_capacity(ranges.len());
    let mut rest = dst;
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        rest = tail;
        parts.push((head, &s1[r.clone()], &s2[r.clone()]));
    }
    pool.run_parts(&mut parts, |_, part| f(&mut part.0[..], part.1, part.2));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sequence_verifies() {
        let mut s = StreamArrays::new(1000);
        for _ in 0..3 {
            for k in StreamKernel::ALL {
                s.run(k);
            }
        }
        s.verify(3).unwrap();
    }

    #[test]
    fn verify_catches_corruption() {
        let mut s = StreamArrays::new(100);
        for k in StreamKernel::ALL {
            s.run(k);
        }
        s.c[42] += 1.0;
        assert!(s.verify(1).unwrap_err().contains("c[42]"));
    }

    /// Lengths that are not a multiple of the window width must still be
    /// fully processed (the `chunks_exact` remainder path).
    #[test]
    fn ragged_lengths_cover_the_tail() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 1003] {
            let mut s = StreamArrays::new(len);
            for _ in 0..2 {
                for k in StreamKernel::ALL {
                    s.run(k);
                }
            }
            s.verify(2).unwrap_or_else(|e| panic!("len={len}: {e}"));
        }
    }

    /// Threaded sweeps (array above the split threshold, pool > 1) are
    /// bitwise identical to serial: the bands are disjoint and the
    /// kernels element-wise.
    #[test]
    fn pooled_sweep_matches_serial_bitwise() {
        let len = SPLIT_MIN_LEN + 13; // ragged tail crosses band + window edges
        let run_all = |threads: usize| {
            let _pool = smp::AmbientGuard::install(threads);
            let mut s = StreamArrays::new(len);
            for _ in 0..2 {
                for k in StreamKernel::ALL {
                    s.run(k);
                }
            }
            (s.a, s.b, s.c)
        };
        let serial = run_all(1);
        for threads in [2, 3, 5] {
            let pooled = run_all(threads);
            assert_eq!(pooled.0, serial.0, "{threads} threads: a drifted");
            assert_eq!(pooled.1, serial.1, "{threads} threads: b drifted");
            assert_eq!(pooled.2, serial.2, "{threads} threads: c drifted");
        }
    }

    #[test]
    fn byte_counts_match_stream_conventions() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
    }
}
