//! The STREAM kernels (McCalpin): sustainable memory bandwidth via four
//! simple vector operations. Backs the EP-STREAM benchmark, "a synthetic
//! benchmark program that measures sustainable memory bandwidth (in GB/s)
//! and the corresponding computation rate for simple vector kernels".

/// Window width the kernels iterate by: `chunks_exact` blocks of this
/// many `f64`s give LLVM a constant trip count per window, which is what
/// makes the autovectorization of all four loops reliable (one 64-byte
/// window = a full cache line).
pub const STREAM_LANES: usize = 8;

/// One STREAM kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 16 bytes/iteration.
    Copy,
    /// `b[i] = s * c[i]` — 16 bytes/iteration.
    Scale,
    /// `c[i] = a[i] + b[i]` — 24 bytes/iteration.
    Add,
    /// `a[i] = b[i] + s * c[i]` — 24 bytes/iteration.
    Triad,
}

impl StreamKernel {
    /// All four kernels in STREAM's canonical order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// Bytes moved per element (STREAM's counting convention: one read
    /// plus one write per operand actually touched).
    pub fn bytes_per_element(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }
}

/// Working arrays for the STREAM kernels.
pub struct StreamArrays {
    /// Operand/destination vectors.
    pub a: Vec<f64>,
    /// Operand/destination vectors.
    pub b: Vec<f64>,
    /// Operand/destination vectors.
    pub c: Vec<f64>,
}

impl StreamArrays {
    /// Allocates and initialises the canonical STREAM starting state
    /// (a = 1, b = 2, c = 0).
    pub fn new(len: usize) -> StreamArrays {
        StreamArrays {
            a: vec![1.0; len],
            b: vec![2.0; len],
            c: vec![0.0; len],
        }
    }

    /// Runs one kernel over the arrays (scalar s = 3.0, as in STREAM).
    ///
    /// Each kernel walks fixed-width `chunks_exact` windows: the constant
    /// trip count per window lets LLVM drop the bounds checks and emit
    /// straight packed loads/stores, where the fused iterator chains left
    /// vectorization at the mercy of alias analysis. The sub-window tail
    /// (at most `STREAM_LANES - 1` elements) runs scalar.
    pub fn run(&mut self, kernel: StreamKernel) {
        const S: f64 = 3.0;
        match kernel {
            StreamKernel::Copy => {
                let mut a = self.a.chunks_exact(STREAM_LANES);
                let mut c = self.c.chunks_exact_mut(STREAM_LANES);
                for (c, a) in (&mut c).zip(&mut a) {
                    c.copy_from_slice(a);
                }
                for (c, a) in c.into_remainder().iter_mut().zip(a.remainder()) {
                    *c = *a;
                }
            }
            StreamKernel::Scale => {
                let mut c = self.c.chunks_exact(STREAM_LANES);
                let mut b = self.b.chunks_exact_mut(STREAM_LANES);
                for (b, c) in (&mut b).zip(&mut c) {
                    for j in 0..STREAM_LANES {
                        b[j] = S * c[j];
                    }
                }
                for (b, c) in b.into_remainder().iter_mut().zip(c.remainder()) {
                    *b = S * *c;
                }
            }
            StreamKernel::Add => {
                let mut a = self.a.chunks_exact(STREAM_LANES);
                let mut b = self.b.chunks_exact(STREAM_LANES);
                let mut c = self.c.chunks_exact_mut(STREAM_LANES);
                for ((c, a), b) in (&mut c).zip(&mut a).zip(&mut b) {
                    for j in 0..STREAM_LANES {
                        c[j] = a[j] + b[j];
                    }
                }
                for ((c, a), b) in c
                    .into_remainder()
                    .iter_mut()
                    .zip(a.remainder())
                    .zip(b.remainder())
                {
                    *c = *a + *b;
                }
            }
            StreamKernel::Triad => {
                let mut b = self.b.chunks_exact(STREAM_LANES);
                let mut c = self.c.chunks_exact(STREAM_LANES);
                let mut a = self.a.chunks_exact_mut(STREAM_LANES);
                for ((a, b), c) in (&mut a).zip(&mut b).zip(&mut c) {
                    for j in 0..STREAM_LANES {
                        a[j] = b[j] + S * c[j];
                    }
                }
                for ((a, b), c) in a
                    .into_remainder()
                    .iter_mut()
                    .zip(b.remainder())
                    .zip(c.remainder())
                {
                    *a = *b + S * *c;
                }
            }
        }
    }

    /// STREAM's built-in solution check after running the canonical
    /// sequence copy, scale, add, triad `iters` times.
    pub fn verify(&self, iters: usize) -> Result<(), String> {
        let (mut ea, mut eb, mut ec) = (1.0f64, 2.0f64, 0.0f64);
        for _ in 0..iters {
            ec = ea;
            eb = 3.0 * ec;
            ec = ea + eb;
            ea = eb + 3.0 * ec;
        }
        for (name, arr, expect) in [("a", &self.a, ea), ("b", &self.b, eb), ("c", &self.c, ec)] {
            for (i, v) in arr.iter().enumerate() {
                if (v - expect).abs() > 1e-8 * expect.abs().max(1.0) {
                    return Err(format!("array {name}[{i}] = {v}, expected {expect}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sequence_verifies() {
        let mut s = StreamArrays::new(1000);
        for _ in 0..3 {
            for k in StreamKernel::ALL {
                s.run(k);
            }
        }
        s.verify(3).unwrap();
    }

    #[test]
    fn verify_catches_corruption() {
        let mut s = StreamArrays::new(100);
        for k in StreamKernel::ALL {
            s.run(k);
        }
        s.c[42] += 1.0;
        assert!(s.verify(1).unwrap_err().contains("c[42]"));
    }

    /// Lengths that are not a multiple of the window width must still be
    /// fully processed (the `chunks_exact` remainder path).
    #[test]
    fn ragged_lengths_cover_the_tail() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 1003] {
            let mut s = StreamArrays::new(len);
            for _ in 0..2 {
                for k in StreamKernel::ALL {
                    s.run(k);
                }
            }
            s.verify(2).unwrap_or_else(|e| panic!("len={len}: {e}"));
        }
    }

    #[test]
    fn byte_counts_match_stream_conventions() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
    }
}
