//! G-HPL: the High Performance LINPACK benchmark — solving a dense linear
//! system by right-looking LU factorisation with partial pivoting,
//! distributed over `mp` ranks.
//!
//! Distribution: 1-D block-cyclic by *column blocks* of width `nb` (block
//! `j` lives on rank `j mod p`), with every rank holding full columns.
//! Each iteration the owner factors the panel locally, broadcasts the
//! factored panel plus pivot indices, and every rank applies the row
//! interchanges and the rank-`nb` trailing update to its own columns —
//! the same phase structure as HPL's `pfact / bcast / update` pipeline.
//! The O(N^2) triangular solve is performed on rank 0 after a gather (the
//! factorisation dominates at 2/3 N^3 flops).

// Index-heavy numeric code: explicit indices mirror the maths.
#![allow(clippy::needless_range_loop)]

use mp::Comm;

use crate::kernels::dgemm::gemm_update;

/// Problem configuration.
#[derive(Clone, Copy, Debug)]
pub struct HplConfig {
    /// Matrix order.
    pub n: usize,
    /// Panel (column block) width.
    pub nb: usize,
    /// Panel lookahead: the owner of panel `k+1` factors it as soon as
    /// its columns are updated, before finishing the rest of its
    /// trailing update for panel `k` — overlapping the next factor with
    /// everyone else's update. The arithmetic per element is identical,
    /// only the schedule changes.
    pub lookahead: bool,
}

impl Default for HplConfig {
    fn default() -> HplConfig {
        let t = smp::tuned_now();
        HplConfig {
            n: 512,
            nb: t.hpl_nb.max(1),
            lookahead: t.hpl_lookahead,
        }
    }
}

/// Benchmark outcome.
#[derive(Clone, Copy, Debug)]
pub struct HplResult {
    /// Matrix order solved.
    pub n: usize,
    /// Sustained Gflop/s (2/3 N^3 + 2 N^2 over the measured time).
    pub gflops: f64,
    /// Wall time of factorisation + solve, seconds.
    pub time_s: f64,
    /// Scaled residual `||Ax-b||_inf / (eps (||A|| ||x|| + ||b||) N)`.
    pub residual: f64,
    /// Whether the residual passes HPL's threshold (16.0).
    pub passed: bool,
}

/// Deterministic matrix element in [-0.5, 0.5) (every rank generates its
/// own columns without communication).
pub fn matrix_element(i: usize, j: usize) -> f64 {
    let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// Deterministic right-hand-side element.
pub fn rhs_element(i: usize) -> f64 {
    matrix_element(i, usize::MAX / 2)
}

/// Column-block owner under 1-D block-cyclic distribution.
fn owner_of_block(block: usize, p: usize) -> usize {
    block % p
}

/// The list of global column indices rank `r` owns for an `n x n` matrix.
fn owned_columns(n: usize, nb: usize, p: usize, r: usize) -> Vec<usize> {
    let mut cols = Vec::new();
    let nblocks = n.div_ceil(nb);
    for b in (0..nblocks).filter(|b| owner_of_block(*b, p) == r) {
        for j in b * nb..((b + 1) * nb).min(n) {
            cols.push(j);
        }
    }
    cols
}

/// Local storage: the rank's owned columns, column-major, each of length n.
struct LocalPanel {
    n: usize,
    cols: Vec<usize>,
    data: Vec<f64>,
}

impl LocalPanel {
    fn generate(n: usize, nb: usize, p: usize, r: usize) -> LocalPanel {
        let cols = owned_columns(n, nb, p, r);
        let mut data = vec![0.0; cols.len() * n];
        for (lc, &gc) in cols.iter().enumerate() {
            for i in 0..n {
                data[lc * n + i] = matrix_element(i, gc);
            }
        }
        LocalPanel { n, cols, data }
    }

    fn col(&self, lc: usize) -> &[f64] {
        &self.data[lc * self.n..(lc + 1) * self.n]
    }

    fn col_mut(&mut self, lc: usize) -> &mut [f64] {
        &mut self.data[lc * self.n..(lc + 1) * self.n]
    }

    /// Local index of global column `gc`, if owned.
    fn local_of(&self, gc: usize) -> Option<usize> {
        self.cols.binary_search(&gc).ok()
    }
}

/// Factors the panel `[k0, k1)` in place (partial pivoting, column
/// scaling, in-panel elimination) and returns the broadcast payload:
/// `kw` pivot rows followed by the factored panel columns (rows
/// `k0..n` each). Caller guarantees the panel columns are fully
/// updated through iteration `k0/nb - 1`.
fn factor_panel(local: &mut LocalPanel, k0: usize, k1: usize) -> Vec<f64> {
    let n = local.n;
    let kw = k1 - k0;
    let mut payload = vec![0.0f64; kw + kw * (n - k0)];
    let lc0 = local.local_of(k0).expect("owner holds the panel");
    for j in 0..kw {
        let gj = k0 + j;
        // Pivot search in column j of the panel, rows gj..n.
        let (mut piv, mut best) = (gj, 0.0f64);
        for r in gj..n {
            let v = local.col(lc0 + j)[r].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        assert!(best > 0.0, "HPL hit an exactly singular pivot");
        // Swap within the panel columns only; other columns follow
        // after the broadcast.
        if piv != gj {
            for lc in lc0..lc0 + kw {
                local.data.swap(lc * n + gj, lc * n + piv);
            }
        }
        payload[j] = piv as f64;
        // Scale L column and eliminate within the panel.
        let pv = local.col(lc0 + j)[gj];
        for r in gj + 1..n {
            local.col_mut(lc0 + j)[r] /= pv;
        }
        for c in j + 1..kw {
            let mult = local.col(lc0 + c)[gj];
            if mult != 0.0 {
                let (lcol, ccol) = {
                    // Split borrows: copy the L column slice.
                    let l: Vec<f64> = local.col(lc0 + j)[gj + 1..n].to_vec();
                    (l, local.col_mut(lc0 + c))
                };
                for (r, lv) in (gj + 1..n).zip(lcol.iter()) {
                    ccol[r] -= mult * lv;
                }
            }
        }
    }
    for j in 0..kw {
        let src = &local.col(lc0 + j)[k0..n];
        payload[kw + j * (n - k0)..kw + (j + 1) * (n - k0)].copy_from_slice(src);
    }
    payload
}

/// Runs G-HPL on `comm`. All ranks receive the same result.
pub fn run(comm: &Comm, cfg: &HplConfig) -> HplResult {
    mp::block_on(run_async(comm, cfg))
}

/// Awaitable mirror of [`run`], for cooperative rank tasks.
pub async fn run_async(comm: &Comm, cfg: &HplConfig) -> HplResult {
    let (n, nb) = (cfg.n, cfg.nb);
    assert!(n > 0 && nb > 0, "HPL needs positive n and nb");
    let p = comm.size();
    let me = comm.rank();

    let mut local = LocalPanel::generate(n, nb, p, me);
    let nblocks = n.div_ceil(nb);
    let mut pivots: Vec<usize> = Vec::with_capacity(n);
    // Lookahead pipeline: the payload for panel `kb` factored one
    // iteration early (owner rank only, `None` elsewhere and when
    // lookahead is off).
    let mut pending: Option<Vec<f64>> = None;

    comm.barrier_async().await;
    let clock = harness::Stopwatch::start();

    for kb in 0..nblocks {
        let k0 = kb * nb;
        let k1 = ((kb + 1) * nb).min(n);
        let kw = k1 - k0;
        let owner = owner_of_block(kb, p);

        // --- Panel factorisation (owner) + broadcast --------------------
        // Payload: kw pivot rows followed by the factored panel columns
        // (rows k0..n each). With lookahead the owner factored this
        // panel during the previous iteration's trailing update.
        let mut payload = match pending.take() {
            Some(ready) => ready,
            None => {
                if me == owner {
                    factor_panel(&mut local, k0, k1)
                } else {
                    vec![0.0f64; kw + kw * (n - k0)]
                }
            }
        };
        comm.bcast_async(&mut payload, owner).await;

        let panel_pivots: Vec<usize> = payload[..kw].iter().map(|&v| v as usize).collect();
        let panel = &payload[kw..];
        let pcol = |j: usize| -> &[f64] { &panel[j * (n - k0)..(j + 1) * (n - k0)] };

        // --- Apply row interchanges to all non-panel columns ------------
        for (j, &piv) in panel_pivots.iter().enumerate() {
            let gj = k0 + j;
            if piv != gj {
                // Panel columns were swapped at the owner already.
                let nloc = local.n;
                for (lc, &gc) in local.cols.iter().enumerate() {
                    let in_panel = me == owner && (k0..k1).contains(&gc);
                    if !in_panel {
                        local.data.swap(lc * nloc + gj, lc * nloc + piv);
                    }
                }
            }
            pivots.push(piv);
        }

        // --- Trailing update on my columns right of the panel -----------
        // Columns are sorted, so everything right of the panel is the
        // contiguous suffix starting at the first owned gc >= k1 (panel
        // columns have gc < k1 and are skipped along with finished ones).
        let lc_start = local.cols.partition_point(|&gc| gc < k1);
        let ntrail = local.cols.len() - lc_start;
        if ntrail > 0 {
            // U12 = L11^{-1} A12: small unit-lower triangular solve on
            // the kw panel rows of each trailing column.
            for lc in lc_start..local.cols.len() {
                let col = local.col_mut(lc);
                for j in 0..kw {
                    let ujk = col[k0 + j];
                    if ujk != 0.0 {
                        let l = pcol(j);
                        for jj in j + 1..kw {
                            col[k0 + jj] -= l[jj] * ujk;
                        }
                    }
                }
            }
            if k1 < n {
                // A22 -= L21 * U12 as a rectangular GEMM. U12 (the kw
                // panel rows of the trailing columns) is copied out
                // because it aliases the update target's backing store.
                // Its rows live above row k1, so neither the GEMM nor a
                // lookahead factor invalidates it.
                let mut u12 = vec![0.0f64; kw * ntrail];
                for t in 0..ntrail {
                    for p in 0..kw {
                        u12[p * ntrail + t] = local.data[(lc_start + t) * n + k0 + p];
                    }
                }
                // Lookahead: if I own the next panel, its columns are my
                // first `w` trailing columns (block-cyclic keeps them
                // sorted first). Update just those, factor the panel
                // early, then finish the rest of the update — the next
                // iteration broadcasts the stashed payload immediately
                // while this iteration's big GEMM overlapped the factor
                // on every other rank.
                let next_k1 = (k1 + nb).min(n);
                let w = if cfg.lookahead && me == owner_of_block(kb + 1, p) {
                    local.cols[lc_start..].partition_point(|&gc| gc < next_k1)
                } else {
                    0
                };
                // L21 lives in the broadcast panel: rows k1..n of the kw
                // factored columns (column stride n - k0).
                let l21 = &panel[k1 - k0..];
                if w > 0 {
                    gemm_update(
                        n - k1,
                        w,
                        kw,
                        -1.0,
                        l21,
                        1,
                        n - k0,
                        &u12,
                        ntrail,
                        1,
                        &mut local.data[lc_start * n + k1..],
                        1,
                        n,
                    );
                    pending = Some(factor_panel(&mut local, k1, next_k1));
                }
                if ntrail > w {
                    gemm_update(
                        n - k1,
                        ntrail - w,
                        kw,
                        -1.0,
                        l21,
                        1,
                        n - k0,
                        &u12[w..],
                        ntrail,
                        1,
                        &mut local.data[(lc_start + w) * n + k1..],
                        1,
                        n,
                    );
                }
            }
        }
    }

    // --- Gather the factors to rank 0 and solve -------------------------
    let x = solve_on_root(comm, &local, &pivots, n, nb).await;
    let time_s = clock.elapsed_secs();

    // --- Verification on rank 0, result broadcast ----------------------
    let mut stats = [0.0f64; 2]; // residual, time (rank 0's)
    if me == 0 {
        stats[0] = scaled_residual(n, &x);
        stats[1] = time_s;
    }
    comm.bcast_async(&mut stats, 0).await;

    let flops = 2.0 / 3.0 * (n as f64).powi(3) + 2.0 * (n as f64).powi(2);
    HplResult {
        n,
        gflops: flops / stats[1] / 1e9,
        time_s: stats[1],
        residual: stats[0],
        passed: stats[0] < 16.0,
    }
}

/// Gathers the factored columns to rank 0 and performs the P L U solve.
/// Returns x on rank 0 (empty elsewhere).
async fn solve_on_root(
    comm: &Comm,
    local: &LocalPanel,
    pivots: &[usize],
    n: usize,
    nb: usize,
) -> Vec<f64> {
    let p = comm.size();
    let me = comm.rank();
    const TAG: mp::Tag = 17;

    if me != 0 {
        comm.send(&local.data, 0, TAG);
        return Vec::new();
    }

    let mut full = vec![0.0f64; n * n]; // column-major
    let place = |full: &mut [f64], cols: &[usize], data: &[f64]| {
        for (lc, &gc) in cols.iter().enumerate() {
            full[gc * n..(gc + 1) * n].copy_from_slice(&data[lc * n..(lc + 1) * n]);
        }
    };
    place(&mut full, &local.cols, &local.data);
    for r in 1..p {
        let cols = owned_columns(n, nb, p, r);
        let mut data = vec![0.0f64; cols.len() * n];
        comm.recv_async(&mut data, r, TAG).await;
        place(&mut full, &cols, &data);
    }

    // b with the recorded row interchanges applied.
    let mut b: Vec<f64> = (0..n).map(rhs_element).collect();
    for (j, &piv) in pivots.iter().enumerate() {
        b.swap(j, piv);
    }
    // Forward substitution (L unit lower), then back substitution (U).
    for j in 0..n {
        let yj = b[j];
        if yj != 0.0 {
            let col = &full[j * n..(j + 1) * n];
            for r in j + 1..n {
                b[r] -= col[r] * yj;
            }
        }
    }
    for j in (0..n).rev() {
        let col = &full[j * n..(j + 1) * n];
        b[j] /= col[j];
        let xj = b[j];
        for r in 0..j {
            b[r] -= full[j * n + r] * xj;
        }
    }
    b
}

/// HPL's scaled residual for the solution `x` against the regenerated
/// system.
pub(crate) fn scaled_residual(n: usize, x: &[f64]) -> f64 {
    let mut r_inf = 0.0f64;
    let mut a_inf = 0.0f64;
    let mut b_inf = 0.0f64;
    for i in 0..n {
        let mut ax = 0.0;
        let mut arow = 0.0;
        for j in 0..n {
            let a = matrix_element(i, j);
            ax += a * x[j];
            arow += a.abs();
        }
        let b = rhs_element(i);
        r_inf = r_inf.max((ax - b).abs());
        a_inf = a_inf.max(arow);
        b_inf = b_inf.max(b.abs());
    }
    let x_inf = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    r_inf / (f64::EPSILON * (a_inf * x_inf + b_inf) * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_accurately_various_shapes() {
        for (p, n, nb) in [(1, 64, 8), (2, 64, 8), (3, 65, 8), (4, 96, 16), (5, 50, 7)] {
            let results = mp::run(p, |comm| {
                run(
                    comm,
                    &HplConfig {
                        n,
                        nb,
                        ..HplConfig::default()
                    },
                )
            });
            for res in &results {
                assert!(
                    res.passed,
                    "p={p} n={n} nb={nb}: residual {} too large",
                    res.residual
                );
                assert!(res.gflops > 0.0);
            }
        }
    }

    #[test]
    fn residual_equivalent_across_block_sizes() {
        // nb is a performance knob, not a numerics knob: 8 (many small
        // panels), 17 (odd — ragged edges in every trailing update) and
        // 32 must all solve the same system to the same quality.
        let residuals: Vec<f64> = [8usize, 17, 32]
            .iter()
            .map(|&nb| {
                let r = mp::run(2, move |comm| {
                    run(
                        comm,
                        &HplConfig {
                            n: 128,
                            nb,
                            ..HplConfig::default()
                        },
                    )
                })[0];
                assert!(r.passed, "nb={nb}: residual {}", r.residual);
                r.residual
            })
            .collect();
        let max = residuals.iter().cloned().fold(f64::MIN, f64::max);
        let min = residuals.iter().cloned().fold(f64::MAX, f64::min);
        // Summation order differs with the blocking, so demand the same
        // order of magnitude rather than bitwise equality.
        assert!(
            max < 8.0 * min.max(1e-6),
            "residuals diverge across nb: {residuals:?}"
        );
    }

    #[test]
    fn all_ranks_agree_on_the_result() {
        let results = mp::run(4, |comm| {
            run(
                comm,
                &HplConfig {
                    n: 48,
                    nb: 6,
                    ..HplConfig::default()
                },
            )
        });
        for r in &results[1..] {
            assert_eq!(r.residual, results[0].residual);
            assert_eq!(r.time_s, results[0].time_s);
        }
    }

    #[test]
    fn block_cyclic_mapping_partitions_columns() {
        let (n, nb, p) = (100, 8, 3);
        let mut seen = vec![false; n];
        for r in 0..p {
            for c in owned_columns(n, nb, p, r) {
                assert!(!seen[c], "column {c} owned twice");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn matrix_elements_are_deterministic_and_spread() {
        assert_eq!(matrix_element(3, 5), matrix_element(3, 5));
        assert_ne!(matrix_element(3, 5), matrix_element(5, 3));
        let vals: Vec<f64> = (0..100).map(|i| matrix_element(i, i)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.2, "mean {mean} suspiciously biased");
    }
}
