//! Corrupt / stale tuning tables must never feed the kernels garbage:
//! the transparent loader warns on stderr and falls back to the
//! built-in defaults.
//!
//! One test function: `smp::tuned()` latches once per process, so the
//! bad table must be installed before the first access in this binary.

use smp::tune::{TuneError, TuneTable, Tuned};

#[test]
fn stale_or_corrupt_table_falls_back_to_defaults() {
    let dir = std::env::temp_dir().join("hpcb-tune-fallback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("table-{}", std::process::id()));

    // A stale-version table is rejected by the parser outright...
    std::fs::write(&path, "hpcbench-tune-v0\nhost k\nend\n").unwrap();
    assert!(matches!(TuneTable::load(&path), Err(TuneError::Stale(_))));
    // ...and so is a structurally corrupt current-version one.
    std::fs::write(&path, "hpcbench-tune-v1\nhost k\nthreads banana\nend\n").unwrap();
    assert!(matches!(TuneTable::load(&path), Err(TuneError::Parse(_))));

    // The process-wide loader pointed at the corrupt table serves the
    // built-in defaults instead of half-applied garbage.
    std::env::set_var("HPCB_TUNE_FILE", &path);
    for k in [
        "HPCB_THREADS",
        "HPCB_DGEMM_MC",
        "HPCB_DGEMM_NC",
        "HPCB_DGEMM_KC",
        "HPCB_FFT_L1",
        "HPCB_FFT_L2",
        "HPCB_HPL_NB",
        "HPCB_HPL_LOOKAHEAD",
    ] {
        std::env::remove_var(k);
    }
    assert_eq!(*smp::tuned(), Tuned::default());
    assert_eq!(smp::tuned_now(), Tuned::default());

    std::fs::remove_file(&path).ok();
}
