//! Lookahead is a schedule, not an algorithm: factoring panel `k+1`
//! during panel `k`'s trailing update performs the exact same
//! floating-point operations on the exact same values, so the solve
//! must come out identical — not merely "close" — with lookahead on
//! and off, for every panel width.

use hpcc::hpl::{self, HplConfig};
use hpcc::hpl2d::{self, Hpl2dConfig};

/// 1-D HPL: residuals with and without lookahead are identical across
/// the nb sweep (8 = many small panels, 17 = ragged edges everywhere,
/// 32 = panel equals the default block).
#[test]
fn hpl_1d_residual_equivalent_across_nb_sweep() {
    for nb in [8usize, 17, 32] {
        let run_with = |lookahead: bool| {
            mp::run(3, move |comm| {
                hpl::run(
                    comm,
                    &HplConfig {
                        n: 96,
                        nb,
                        lookahead,
                    },
                )
            })[0]
        };
        let with = run_with(true);
        let without = run_with(false);
        assert!(with.passed && without.passed, "nb={nb} failed verification");
        assert_eq!(
            with.residual, without.residual,
            "nb={nb}: lookahead changed the arithmetic"
        );
    }
}

/// 2-D HPL: same equivalence on a 2x2 grid, where the lookahead factor
/// is itself a collective over one process column.
#[test]
fn hpl_2d_residual_equivalent_across_nb_sweep() {
    for nb in [8usize, 17, 32] {
        let run_with = |lookahead: bool| {
            mp::run(4, move |comm| {
                hpl2d::run(
                    comm,
                    &Hpl2dConfig {
                        n: 96,
                        nb,
                        p_rows: 2,
                        lookahead,
                    },
                )
            })[0]
        };
        let with = run_with(true);
        let without = run_with(false);
        assert!(with.passed && without.passed, "nb={nb} failed verification");
        assert_eq!(
            with.residual, without.residual,
            "nb={nb}: lookahead changed the arithmetic"
        );
    }
}

/// Lookahead composes with the single-rank degenerate case (the rank
/// owns every panel, so it is always one factor ahead of itself).
#[test]
fn single_rank_lookahead_is_stable() {
    for (n, nb) in [(64, 8), (50, 7)] {
        let with = mp::run(1, move |comm| {
            hpl::run(
                comm,
                &HplConfig {
                    n,
                    nb,
                    lookahead: true,
                },
            )
        })[0];
        let without = mp::run(1, move |comm| {
            hpl::run(
                comm,
                &HplConfig {
                    n,
                    nb,
                    lookahead: false,
                },
            )
        })[0];
        assert!(with.passed && without.passed);
        assert_eq!(with.residual, without.residual, "n={n} nb={nb}");
    }
}
