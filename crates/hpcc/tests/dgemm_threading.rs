//! Threaded DGEMM determinism: the pool-split packed GEMM must be
//! **bitwise identical** to the single-thread result for every thread
//! count, shape, and layout. The split partitions C along M or N while
//! per-element summation order depends only on the KC depth blocking,
//! so not a single ULP of drift is tolerated here — `==`, not epsilon.

use hpcc::kernels::dgemm::{gemm_update, MR, NR};
use proptest::prelude::*;

fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Runs `gemm_update` under an ambient pool of `threads` workers.
#[allow(clippy::too_many_arguments)]
fn run_with_threads(
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    strides_a: (usize, usize),
    b: &[f64],
    strides_b: (usize, usize),
    c0: &[f64],
    strides_c: (usize, usize),
) -> Vec<f64> {
    let _pool = smp::AmbientGuard::install(threads);
    let mut c = c0.to_vec();
    gemm_update(
        m,
        n,
        k,
        alpha,
        a,
        strides_a.0,
        strides_a.1,
        b,
        strides_b.0,
        strides_b.1,
        &mut c,
        strides_c.0,
        strides_c.1,
    );
    c
}

/// Row-major C forces the M-split path, column-major C the N-split
/// path; both must be bitwise equal to the serial run at every thread
/// count, including counts that exceed the band count.
#[test]
fn both_split_paths_match_serial_bitwise() {
    // Big enough to clear the serial-fallback volume threshold.
    let (m, n, k) = (96, 80, 48);
    let a = fill(m * k, 11);
    let b = fill(k * n, 22);
    let c0 = fill(m * n, 33);

    // Row-major everywhere: M-split.
    let serial_rm = run_with_threads(1, m, n, k, -1.0, &a, (k, 1), &b, (n, 1), &c0, (n, 1));
    // Column-major everywhere (the HPL trailing-update shape): N-split.
    let serial_cm = run_with_threads(1, m, n, k, -1.0, &a, (1, m), &b, (1, k), &c0, (1, m));

    for threads in [2, 3, 4, 7, 64] {
        let rm = run_with_threads(threads, m, n, k, -1.0, &a, (k, 1), &b, (n, 1), &c0, (n, 1));
        assert_eq!(
            rm, serial_rm,
            "row-major M-split drifted at {threads} threads"
        );
        let cm = run_with_threads(threads, m, n, k, -1.0, &a, (1, m), &b, (1, k), &c0, (1, m));
        assert_eq!(
            cm, serial_cm,
            "column-major N-split drifted at {threads} threads"
        );
    }
}

/// Shapes too small to thread still honour the ambient pool without
/// drifting (they take the serial fallback inline).
#[test]
fn tiny_shapes_are_stable_under_pool() {
    let (m, n, k) = (MR + 3, NR + 5, 9);
    let a = fill(m * k, 5);
    let b = fill(k * n, 6);
    let c0 = fill(m * n, 7);
    let serial = run_with_threads(1, m, n, k, 1.0, &a, (k, 1), &b, (n, 1), &c0, (n, 1));
    let pooled = run_with_threads(4, m, n, k, 1.0, &a, (k, 1), &b, (n, 1), &c0, (n, 1));
    assert_eq!(pooled, serial);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: random shapes (straddling the macro-block and
    /// split-volume boundaries), random layouts, random alpha — the
    /// threaded result equals the single-thread result bit for bit at
    /// every thread count.
    #[test]
    fn threaded_gemm_is_bitwise_deterministic(
        m in 1usize..140,
        n in 1usize..140,
        k in 1usize..96,
        seed in 0u64..(1u64 << 48),
        row_major_c in prop::bool::ANY,
        threads in 2usize..6,
    ) {
        let alpha = if seed % 3 == 0 { -1.0 } else { 1.0 };
        let a = fill(m * k, seed ^ 0xA);
        let b = fill(k * n, seed ^ 0xB);
        let c0 = fill(m * n, seed ^ 0xC);
        let (sa, sb) = ((k, 1), (n, 1));
        let sc = if row_major_c { (n, 1) } else { (1, m) };
        let serial = run_with_threads(1, m, n, k, alpha, &a, sa, &b, sb, &c0, sc);
        let pooled = run_with_threads(threads, m, n, k, alpha, &a, sa, &b, sb, &c0, sc);
        prop_assert_eq!(pooled, serial);
    }
}
