//! Autotuner round-trip: persist a tuning table, reload it in a fresh
//! process (this test binary), and observe the kernels picking the
//! tuned parameters up transparently through `smp::tuned`.
//!
//! Everything lives in ONE test function: `smp::tuned()` latches once
//! per process, so the table and `HPCB_TUNE_FILE` must be in place
//! before the first access anywhere in this binary.

use hpcc::kernels::dgemm::dgemm;
use smp::tune::{TuneTable, Tuned};

fn distinctive() -> Tuned {
    Tuned {
        threads: 2,
        dgemm_mc: 40,
        dgemm_nc: 72,
        dgemm_kc: 48,
        fft_l1_block: 512,
        fft_l2_block: 1 << 14,
        hpl_nb: 24,
        hpl_lookahead: false,
    }
}

#[test]
fn persisted_table_reloads_and_reaches_the_kernels() {
    // Persist a table holding distinctive (non-default) parameters for
    // THIS host's topology key.
    let dir = std::env::temp_dir().join("hpcb-tune-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("table-{}", std::process::id()));
    let host = smp::topo::host_key();
    let mut table = TuneTable::new();
    table.set(&host, distinctive());
    table.store(&path).unwrap();

    // A fresh load (as another process would do) sees the same entry.
    let reloaded = TuneTable::load(&path).unwrap();
    assert_eq!(reloaded.get(&host), Some(distinctive().sanitized()));

    // Point the transparent loader at the table BEFORE the process-wide
    // `tuned()` latch fires, then confirm the kernels' view matches the
    // persisted entry, not the built-in defaults.
    std::env::set_var("HPCB_TUNE_FILE", &path);
    for k in [
        "HPCB_THREADS",
        "HPCB_DGEMM_MC",
        "HPCB_DGEMM_NC",
        "HPCB_DGEMM_KC",
        "HPCB_FFT_L1",
        "HPCB_FFT_L2",
        "HPCB_HPL_NB",
        "HPCB_HPL_LOOKAHEAD",
    ] {
        std::env::remove_var(k);
    }
    let seen = *smp::tuned();
    assert_eq!(seen, distinctive().sanitized());
    assert_ne!(seen, Tuned::default(), "defaults would mask the reload");
    // The trial-aware accessor the kernels actually call serves the
    // same entry when no trial is installed.
    assert_eq!(smp::tuned_now(), seen);

    // The DGEMM macro-loops now run under mc=40 / nc=72 / kc=48; the
    // result must still be the correct product.
    let n = 96;
    let a: Vec<f64> = (0..n * n)
        .map(|i| ((i * 7 + 3) % 13) as f64 - 6.0)
        .collect();
    let b: Vec<f64> = (0..n * n)
        .map(|i| ((i * 5 + 1) % 11) as f64 - 5.0)
        .collect();
    let mut c = vec![0.0f64; n * n];
    dgemm(n, &a, &b, &mut c);
    let mut reference = vec![0.0f64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                reference[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    for (got, want) in c.iter().zip(&reference) {
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "{got} vs {want}"
        );
    }

    std::fs::remove_file(&path).ok();
}
