//! A minimal, API-compatible subset of the `parking_lot` crate built on
//! `std::sync`, so the workspace builds without network access to
//! crates.io. Matches parking_lot semantics where they differ from std:
//! no lock poisoning (a panicking thread does not wedge the lock for
//! everyone else), `lock()`/`read()`/`write()` return guards directly,
//! and `Condvar::wait*` re-lock the caller's guard in place.

// Vendored stand-in: item docs live with the real crate's API.
#![allow(missing_docs)]
use std::sync;
use std::time::Duration;

/// Mutual exclusion primitive (`parking_lot::Mutex` subset).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so `Condvar` can temporarily take the
/// underlying std guard during a wait and restore it afterwards; the
/// option is `Some` at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present before wait");
        let g = self
            .inner
            .wait(g)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present before wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

/// Reader-writer lock (`parking_lot::RwLock` subset).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 0);
    }
}
