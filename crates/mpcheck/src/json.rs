//! A minimal hand-written JSON parser, mirroring the workspace's
//! serde-free emitters (`mpcheck-report-v2`, `hpcbench-schedule-v1`).
//!
//! The workspace bans external dependencies, so the documents this crate
//! *emits* by hand it must also *parse* by hand: schedule files fed back
//! through `--replay`, and report round-trips in tests. The parser is a
//! straightforward recursive-descent over the JSON grammar; numbers are
//! kept as `f64` (every integer the schemas emit fits losslessly).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers in our schemas fit `f64` losslessly).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is not preserved (our schemas never rely
    /// on it).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The numeric payload as `usize`, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Our emitters only escape control characters;
                            // surrogate pairs never occur, so reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, true, null], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn resolves_escapes() {
        let v = parse(r#""q\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("q\"\\A\u{e9}"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_usize(), Some(7));
    }
}
