//! The structured finding report: classes, findings, and the
//! `mpcheck-report-v1` JSON rendering (serde-free, mirroring the
//! harness's `hpcbench-record-v1` emitter).

use std::fmt::Write as _;

/// The misuse classes the analyses diagnose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingClass {
    /// A wait-for cycle (or global stall) among blocked ranks.
    Deadlock,
    /// Ranks disagreed on the collective call sequence: different
    /// operation at the same call index, or mismatched root/shape.
    CollectiveDivergence,
    /// Messages still queued unmatched at finalize whose receiver did
    /// receive on that (comm, tag) — a count mismatch.
    UnmatchedSend,
    /// Messages queued at finalize on a (comm, tag) the receiver never
    /// received on at all — the tag (or communicator) leaked.
    TagLeak,
    /// A wildcard receive whose match depended on arrival order — two or
    /// more candidate lanes were nonempty at match time, or matching
    /// diverged across perturbed schedules.
    WildcardRace,
    /// A rank panicked for a reason other than deadlock poisoning.
    RankPanic,
}

impl FindingClass {
    /// Stable identifier used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::Deadlock => "deadlock",
            FindingClass::CollectiveDivergence => "collective-divergence",
            FindingClass::UnmatchedSend => "unmatched-send",
            FindingClass::TagLeak => "tag-leak",
            FindingClass::WildcardRace => "wildcard-race",
            FindingClass::RankPanic => "rank-panic",
        }
    }
}

impl std::fmt::Display for FindingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnosed problem.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The misuse class.
    pub class: FindingClass,
    /// World ranks involved (cycle members, diverging ranks, ...).
    pub ranks: Vec<usize>,
    /// One-line description.
    pub summary: String,
    /// Multi-line evidence (cycle listing, per-rank call sites,
    /// pending-message inventory).
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ranks: Vec<String> = self.ranks.iter().map(|r| r.to_string()).collect();
        write!(
            f,
            "[{}] ranks {{{}}}: {}",
            self.class,
            ranks.join(", "),
            self.summary
        )?;
        for line in self.detail.lines() {
            write!(f, "\n    {line}")?;
        }
        Ok(())
    }
}

/// The outcome of a check: every finding across all analyzed runs, plus
/// run accounting.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Deduplicated findings across all runs/seeds, in detection order.
    pub findings: Vec<Finding>,
    /// Instrumented runs analyzed.
    pub runs: usize,
    /// Perturbation seeds exercised (deduplicated, in order).
    pub seeds: Vec<u64>,
    /// Total events recorded across all runs and ranks.
    pub events: u64,
    /// Total events dropped to ring-buffer overflow.
    pub dropped: u64,
}

impl Report {
    /// Whether the check found nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as an `mpcheck-report-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"mpcheck-report-v1\",\n");
        let _ = writeln!(out, "  \"runs\": {},", self.runs);
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(out, "  \"seeds\": [{}],", seeds.join(", "));
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        out.push_str("  \"findings\": [\n");
        for (i, finding) in self.findings.iter().enumerate() {
            let ranks: Vec<String> = finding.ranks.iter().map(|r| r.to_string()).collect();
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"class\": \"{}\", \"ranks\": [{}], \"summary\": {}, \"detail\": {}}}{comma}",
                finding.class.name(),
                ranks.join(", "),
                json_string(&finding.summary),
                json_string(&finding.detail),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "mpcheck: {} finding(s) over {} run(s) ({} events, {} dropped)",
            self.findings.len(),
            self.runs,
            self.events,
            self.dropped
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_json_is_wellformed() {
        let report = Report {
            findings: vec![Finding {
                class: FindingClass::Deadlock,
                ranks: vec![0, 1],
                summary: "cycle 0 -> 1 -> 0".into(),
                detail: "rank 0: blocked\nrank 1: blocked".into(),
            }],
            runs: 3,
            seeds: vec![0, 1, 2],
            events: 42,
            dropped: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mpcheck-report-v1\""));
        assert!(json.contains("\"class\": \"deadlock\""));
        assert!(json.contains("\"ranks\": [0, 1]"));
        assert!(json.contains("\\n"), "newlines must be escaped");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(!report.clean());
        assert!(Report::default().clean());
    }

    #[test]
    fn display_renders_class_and_ranks() {
        let finding = Finding {
            class: FindingClass::WildcardRace,
            ranks: vec![2],
            summary: "arrival-order dependent match".into(),
            detail: String::new(),
        };
        let text = finding.to_string();
        assert!(text.contains("[wildcard-race]"));
        assert!(text.contains("ranks {2}"));
    }
}
