//! The structured finding report: classes, findings, and the
//! `mpcheck-report-v2` JSON rendering (serde-free, mirroring the
//! harness's `hpcbench-record-v1` emitter).
//!
//! v2 extends v1 with schedule-exploration accounting
//! ([`ScheduleStats`]), per-finding seed attribution, and embedded
//! replayable counterexamples, and adds a parser ([`Report::from_json`])
//! so reports round-trip losslessly.

use std::fmt::Write as _;

use crate::json::{self, Value};

/// Schema identifier written into every report document.
pub const REPORT_SCHEMA: &str = "mpcheck-report-v2";

/// The misuse classes the analyses diagnose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingClass {
    /// A wait-for cycle (or global stall) among blocked ranks.
    Deadlock,
    /// Ranks disagreed on the collective call sequence: different
    /// operation at the same call index, or mismatched root/shape.
    CollectiveDivergence,
    /// Messages still queued unmatched at finalize whose receiver did
    /// receive on that (comm, tag) — a count mismatch.
    UnmatchedSend,
    /// Messages queued at finalize on a (comm, tag) the receiver never
    /// received on at all — the tag (or communicator) leaked.
    TagLeak,
    /// A wildcard receive whose match depended on arrival order — two or
    /// more candidate lanes were nonempty at match time, or matching
    /// diverged across perturbed or explored schedules.
    WildcardRace,
    /// A rank panicked for a reason other than deadlock poisoning.
    RankPanic,
}

impl FindingClass {
    /// Stable identifier used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::Deadlock => "deadlock",
            FindingClass::CollectiveDivergence => "collective-divergence",
            FindingClass::UnmatchedSend => "unmatched-send",
            FindingClass::TagLeak => "tag-leak",
            FindingClass::WildcardRace => "wildcard-race",
            FindingClass::RankPanic => "rank-panic",
        }
    }

    /// Inverse of [`FindingClass::name`].
    pub fn from_name(name: &str) -> Option<FindingClass> {
        match name {
            "deadlock" => Some(FindingClass::Deadlock),
            "collective-divergence" => Some(FindingClass::CollectiveDivergence),
            "unmatched-send" => Some(FindingClass::UnmatchedSend),
            "tag-leak" => Some(FindingClass::TagLeak),
            "wildcard-race" => Some(FindingClass::WildcardRace),
            "rank-panic" => Some(FindingClass::RankPanic),
            _ => None,
        }
    }
}

impl std::fmt::Display for FindingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnosed problem.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The misuse class.
    pub class: FindingClass,
    /// World ranks involved (cycle members, diverging ranks, ...).
    pub ranks: Vec<usize>,
    /// One-line description. Deliberately free of seed and schedule
    /// numbers so that rediscoveries of the same bug across seeds or
    /// schedules deduplicate; the run that surfaced it is in [`seed`]
    /// and [`counterexample`](Finding::counterexample).
    pub summary: String,
    /// Multi-line evidence (cycle listing, per-rank call sites,
    /// pending-message inventory).
    pub detail: String,
    /// The perturbation seed of the run that first surfaced this
    /// finding, when it came from a seeded run.
    pub seed: Option<u64>,
    /// A replayable `hpcbench-schedule-v1` document reproducing the
    /// finding, when it came from the schedule explorer.
    pub counterexample: Option<String>,
}

impl Finding {
    /// A finding with only the required fields set.
    pub fn new(class: FindingClass, ranks: Vec<usize>, summary: String, detail: String) -> Finding {
        Finding {
            class,
            ranks,
            summary,
            detail,
            seed: None,
            counterexample: None,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ranks: Vec<String> = self.ranks.iter().map(|r| r.to_string()).collect();
        write!(
            f,
            "[{}] ranks {{{}}}: {}",
            self.class,
            ranks.join(", "),
            self.summary
        )?;
        if let Some(seed) = self.seed {
            write!(f, " (seed {seed})")?;
        }
        if self.counterexample.is_some() {
            write!(f, " [replayable]")?;
        }
        for line in self.detail.lines() {
            write!(f, "\n    {line}")?;
        }
        Ok(())
    }
}

/// Schedule-exploration accounting, present when the report came from
/// the DPOR explorer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Complete schedules executed.
    pub visited: u64,
    /// Alternative branches that existed but were provably redundant
    /// (persistent-set / sleep-set pruning) and were never run.
    pub pruned: u64,
    /// Branches skipped by the bounded-preemption fallback.
    pub bounded_skips: u64,
    /// Whether the schedule space was explored exhaustively (no budget
    /// exhaustion, no bound skips).
    pub exhaustive: bool,
}

/// The outcome of a check: every finding across all analyzed runs, plus
/// run accounting.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Deduplicated findings across all runs/seeds, in detection order.
    pub findings: Vec<Finding>,
    /// Instrumented runs analyzed.
    pub runs: usize,
    /// Perturbation seeds exercised (deduplicated, in order).
    pub seeds: Vec<u64>,
    /// Total events recorded across all runs and ranks.
    pub events: u64,
    /// Total events dropped to ring-buffer overflow.
    pub dropped: u64,
    /// Exploration accounting, when the explorer produced this report.
    pub schedules: Option<ScheduleStats>,
}

impl Report {
    /// Whether the check found nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as an `mpcheck-report-v2` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"schema\": \"{REPORT_SCHEMA}\",");
        let _ = writeln!(out, "  \"runs\": {},", self.runs);
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(out, "  \"seeds\": [{}],", seeds.join(", "));
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        match &self.schedules {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  \"schedules\": {{\"visited\": {}, \"pruned\": {}, \
                     \"bounded_skips\": {}, \"exhaustive\": {}}},",
                    s.visited, s.pruned, s.bounded_skips, s.exhaustive
                );
            }
            None => out.push_str("  \"schedules\": null,\n"),
        }
        out.push_str("  \"findings\": [\n");
        for (i, finding) in self.findings.iter().enumerate() {
            let ranks: Vec<String> = finding.ranks.iter().map(|r| r.to_string()).collect();
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let seed = match finding.seed {
                Some(s) => s.to_string(),
                None => "null".into(),
            };
            let cx = match &finding.counterexample {
                Some(c) => json_string(c),
                None => "null".into(),
            };
            let _ = writeln!(
                out,
                "    {{\"class\": \"{}\", \"ranks\": [{}], \"summary\": {}, \
                 \"detail\": {}, \"seed\": {seed}, \"counterexample\": {cx}}}{comma}",
                finding.class.name(),
                ranks.join(", "),
                json_string(&finding.summary),
                json_string(&finding.detail),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses an `mpcheck-report-v2` document.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = json::parse(text)?;
        match v.get("schema").and_then(Value::as_str) {
            Some(REPORT_SCHEMA) => {}
            other => return Err(format!("not a {REPORT_SCHEMA} document: {other:?}")),
        }
        let mut report = Report {
            runs: v
                .get("runs")
                .and_then(Value::as_usize)
                .ok_or("bad \"runs\"")?,
            events: v
                .get("events")
                .and_then(Value::as_u64)
                .ok_or("bad \"events\"")?,
            dropped: v
                .get("dropped")
                .and_then(Value::as_u64)
                .ok_or("bad \"dropped\"")?,
            ..Report::default()
        };
        for s in v
            .get("seeds")
            .and_then(Value::as_arr)
            .ok_or("bad \"seeds\"")?
        {
            report.seeds.push(s.as_u64().ok_or("bad seed entry")?);
        }
        match v.get("schedules") {
            None | Some(Value::Null) => {}
            Some(s) => {
                report.schedules = Some(ScheduleStats {
                    visited: s
                        .get("visited")
                        .and_then(Value::as_u64)
                        .ok_or("bad visited")?,
                    pruned: s
                        .get("pruned")
                        .and_then(Value::as_u64)
                        .ok_or("bad pruned")?,
                    bounded_skips: s
                        .get("bounded_skips")
                        .and_then(Value::as_u64)
                        .ok_or("bad bounded_skips")?,
                    exhaustive: s
                        .get("exhaustive")
                        .and_then(Value::as_bool)
                        .ok_or("bad exhaustive")?,
                });
            }
        }
        for (i, f) in v
            .get("findings")
            .and_then(Value::as_arr)
            .ok_or("bad \"findings\"")?
            .iter()
            .enumerate()
        {
            let class = f
                .get("class")
                .and_then(Value::as_str)
                .and_then(FindingClass::from_name)
                .ok_or_else(|| format!("finding {i}: bad \"class\""))?;
            let mut ranks = Vec::new();
            for r in f
                .get("ranks")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("finding {i}: bad \"ranks\""))?
            {
                ranks.push(
                    r.as_usize()
                        .ok_or_else(|| format!("finding {i}: bad rank"))?,
                );
            }
            report.findings.push(Finding {
                class,
                ranks,
                summary: f
                    .get("summary")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("finding {i}: bad \"summary\""))?
                    .to_string(),
                detail: f
                    .get("detail")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("finding {i}: bad \"detail\""))?
                    .to_string(),
                seed: match f.get("seed") {
                    None | Some(Value::Null) => None,
                    Some(s) => Some(s.as_u64().ok_or_else(|| format!("finding {i}: bad seed"))?),
                },
                counterexample: match f.get("counterexample") {
                    None | Some(Value::Null) => None,
                    Some(c) => Some(
                        c.as_str()
                            .ok_or_else(|| format!("finding {i}: bad counterexample"))?
                            .to_string(),
                    ),
                },
            });
        }
        Ok(report)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "mpcheck: {} finding(s) over {} run(s) ({} events, {} dropped)",
            self.findings.len(),
            self.runs,
            self.events,
            self.dropped
        )?;
        if let Some(s) = &self.schedules {
            writeln!(
                f,
                "  schedules: {} visited, {} pruned, {} bound-skipped, {}",
                s.visited,
                s.pruned,
                s.bounded_skips,
                if s.exhaustive {
                    "exhaustive"
                } else {
                    "budget-limited"
                }
            )?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    class: FindingClass::Deadlock,
                    ranks: vec![0, 1],
                    summary: "cycle 0 -> 1 -> 0".into(),
                    detail: "rank 0: blocked\nrank 1: blocked".into(),
                    seed: Some(2),
                    counterexample: Some(
                        "{\"schema\": \"hpcbench-schedule-v1\", \"target\": \"t\", \
                         \"world\": 2, \"decisions\": []}"
                            .into(),
                    ),
                },
                Finding::new(
                    FindingClass::TagLeak,
                    vec![1, 0],
                    "tag 0x5 leaked".into(),
                    String::new(),
                ),
            ],
            runs: 3,
            seeds: vec![0, 1, 2],
            events: 42,
            dropped: 0,
            schedules: Some(ScheduleStats {
                visited: 7,
                pruned: 3,
                bounded_skips: 0,
                exhaustive: true,
            }),
        }
    }

    #[test]
    fn report_json_is_wellformed() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mpcheck-report-v2\""));
        assert!(json.contains("\"class\": \"deadlock\""));
        assert!(json.contains("\"ranks\": [0, 1]"));
        assert!(json.contains("\"seed\": 2"));
        assert!(json.contains("\"visited\": 7"));
        assert!(json.contains("\\n"), "newlines must be escaped");
        assert!(!report.clean());
        assert!(Report::default().clean());
    }

    #[test]
    fn report_round_trips_through_json_with_display_equality() {
        let report = sample();
        let back = Report::from_json(&report.to_json()).expect("parse back");
        assert_eq!(report.to_string(), back.to_string());
        assert_eq!(back.to_json(), report.to_json());
        assert_eq!(back.schedules, report.schedules);
        assert_eq!(
            back.findings[0].counterexample,
            report.findings[0].counterexample
        );
        // A schedule-free report round-trips too.
        let plain = Report {
            schedules: None,
            ..sample()
        };
        let back = Report::from_json(&plain.to_json()).expect("parse back");
        assert_eq!(plain.to_string(), back.to_string());
        assert!(back.schedules.is_none());
    }

    #[test]
    fn from_json_rejects_v1_documents() {
        let v1 = "{\"schema\": \"mpcheck-report-v1\", \"runs\": 0}";
        assert!(Report::from_json(v1).is_err());
    }

    #[test]
    fn display_renders_class_ranks_and_attribution() {
        let finding = Finding {
            class: FindingClass::WildcardRace,
            ranks: vec![2],
            summary: "arrival-order dependent match".into(),
            detail: String::new(),
            seed: Some(1),
            counterexample: Some("{}".into()),
        };
        let text = finding.to_string();
        assert!(text.contains("[wildcard-race]"));
        assert!(text.contains("ranks {2}"));
        assert!(text.contains("(seed 1)"));
        assert!(text.contains("[replayable]"));
    }

    #[test]
    fn class_names_round_trip() {
        for class in [
            FindingClass::Deadlock,
            FindingClass::CollectiveDivergence,
            FindingClass::UnmatchedSend,
            FindingClass::TagLeak,
            FindingClass::WildcardRace,
            FindingClass::RankPanic,
        ] {
            assert_eq!(FindingClass::from_name(class.name()), Some(class));
        }
        assert_eq!(FindingClass::from_name("nope"), None);
    }
}
