//! The misuse gallery: small, self-contained SPMD programs with known
//! bugs (and one clean control), as async bodies the schedule explorer
//! can enumerate.
//!
//! Each entry mirrors a pattern from the integration-test gallery in
//! `tests/mpcheck_detects.rs`, but as a registry the `mpcheck explore`
//! CLI and the CI job can run by name: the explorer must find every
//! expected finding class exhaustively — by enumerating schedules, not
//! by sampling random seeds — and must find nothing in the control.

use std::future::Future;
use std::pin::Pin;

use crate::explore::{explore, ExploreOptions};
use crate::report::{FindingClass, Report};

/// An async SPMD rank body.
pub type Body = fn(mp::Comm) -> Pin<Box<dyn Future<Output = ()>>>;

/// One gallery program.
pub struct GalleryEntry {
    /// Registry name (used as the schedule target `gallery:<name>`).
    pub name: &'static str,
    /// World size the program needs.
    pub world: usize,
    /// The finding class the explorer must produce (`None` for the
    /// clean control, which must stay clean under every schedule).
    pub expect: Option<FindingClass>,
    /// The rank body.
    pub body: Body,
}

impl GalleryEntry {
    /// The schedule-file target label for this entry.
    pub fn target(&self) -> String {
        format!("gallery:{}", self.name)
    }

    /// Explores this entry's schedule space.
    pub fn explore(&self, opts: &ExploreOptions) -> Report {
        explore(self.world, &self.target(), opts, self.body)
    }
}

/// Head-to-head blocking receives: sends are eager in `mp`, so the
/// classic send/send deadlock manifests as recv/recv. Deadlocks under
/// every schedule.
fn recv_cycle_2(comm: mp::Comm) -> Pin<Box<dyn Future<Output = ()>>> {
    Box::pin(async move {
        let peer = comm.size() - 1 - comm.rank();
        let mut buf = [0u8];
        comm.recv_async(&mut buf, peer, 9).await;
        comm.send(&buf, peer, 9);
    })
}

/// A three-rank receive ring: every rank first receives from its
/// successor, so nobody ever reaches its send.
fn recv_cycle_3(comm: mp::Comm) -> Pin<Box<dyn Future<Output = ()>>> {
    Box::pin(async move {
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        let mut buf = [0u8];
        comm.recv_async(&mut buf, next, 7).await;
        comm.send(&buf, prev, 7);
    })
}

/// Two live senders racing into wildcard receives on rank 0. The
/// pinned tag-99 receives first guarantee both tag-1 messages are
/// queued, so every schedule sees ≥ 2 candidate lanes, and different
/// wildcard picks yield different match orders.
fn wildcard_race(comm: mp::Comm) -> Pin<Box<dyn Future<Output = ()>>> {
    Box::pin(async move {
        if comm.rank() == 0 {
            let mut sync = [0u8; 1];
            comm.recv_async(&mut sync, 1, 99).await;
            comm.recv_async(&mut sync, 2, 99).await;
            let _ = comm.recv_any_async::<u64>(None, Some(1)).await;
            let _ = comm.recv_any_async::<u64>(None, Some(1)).await;
        } else {
            comm.send(&[comm.rank() as u64], 0, 1);
            comm.send(&[1u8], 0, 99);
        }
    })
}

/// Ranks disagree on a broadcast root: rank 1 names itself root while
/// the others name rank 0.
fn bcast_root_mismatch(comm: mp::Comm) -> Pin<Box<dyn Future<Output = ()>>> {
    Box::pin(async move {
        let root = usize::from(comm.rank() == 1);
        let mut buf = [42u64];
        comm.bcast_async(&mut buf, root).await;
    })
}

/// A message sent on a tag its receiver never receives on.
fn tag_leak(comm: mp::Comm) -> Pin<Box<dyn Future<Output = ()>>> {
    Box::pin(async move {
        if comm.rank() == 0 {
            comm.send(&[1u8], 1, 5);
        }
        comm.barrier_async().await;
    })
}

/// The clean control: a correct allreduce + barrier. The explorer must
/// find nothing under any interleaving.
fn clean_allreduce(comm: mp::Comm) -> Pin<Box<dyn Future<Output = ()>>> {
    Box::pin(async move {
        let mut x = [comm.rank() as u64 + 1];
        comm.allreduce_async(&mut x, mp::Op::Sum).await;
        assert_eq!(x[0], (1..=comm.size() as u64).sum::<u64>());
        comm.barrier_async().await;
    })
}

/// The registry, in the order the CLI and CI run it.
pub fn entries() -> Vec<GalleryEntry> {
    vec![
        GalleryEntry {
            name: "recv-cycle-2",
            world: 2,
            expect: Some(FindingClass::Deadlock),
            body: recv_cycle_2,
        },
        GalleryEntry {
            name: "recv-cycle-3",
            world: 3,
            expect: Some(FindingClass::Deadlock),
            body: recv_cycle_3,
        },
        GalleryEntry {
            name: "wildcard-race",
            world: 3,
            expect: Some(FindingClass::WildcardRace),
            body: wildcard_race,
        },
        GalleryEntry {
            name: "bcast-root-mismatch",
            world: 3,
            expect: Some(FindingClass::CollectiveDivergence),
            body: bcast_root_mismatch,
        },
        GalleryEntry {
            name: "tag-leak",
            world: 2,
            expect: Some(FindingClass::TagLeak),
            body: tag_leak,
        },
        GalleryEntry {
            name: "clean-allreduce",
            world: 4,
            expect: None,
            body: clean_allreduce,
        },
    ]
}

/// Looks up a gallery entry by name or by schedule target label.
pub fn find(name: &str) -> Option<GalleryEntry> {
    let bare = name.strip_prefix("gallery:").unwrap_or(name);
    entries().into_iter().find(|e| e.name == bare)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    fn opts() -> ExploreOptions {
        ExploreOptions {
            max_schedules: 64,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn explorer_finds_the_two_rank_recv_cycle_exhaustively() {
        let entry = find("recv-cycle-2").unwrap();
        let report = entry.explore(&opts());
        let stats = report.schedules.expect("explorer reports stats");
        assert!(stats.exhaustive, "tiny space must be fully explored");
        assert!(stats.visited >= 1);
        let finding = report
            .findings
            .iter()
            .find(|f| f.class == FindingClass::Deadlock)
            .expect("deadlock finding");
        assert_eq!(finding.ranks, vec![0, 1]);
        let cx = finding.counterexample.as_deref().expect("replayable");
        assert!(Schedule::from_json(cx).is_ok());
    }

    #[test]
    fn explorer_finds_the_three_rank_recv_ring_exhaustively() {
        let entry = find("recv-cycle-3").unwrap();
        let report = entry.explore(&opts());
        assert!(report.schedules.unwrap().exhaustive);
        let finding = report
            .findings
            .iter()
            .find(|f| f.class == FindingClass::Deadlock)
            .expect("deadlock finding");
        let mut ranks = finding.ranks.clone();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn explorer_enumerates_the_wildcard_race_without_seeds() {
        let entry = find("wildcard-race").unwrap();
        let report = entry.explore(&opts());
        let stats = report.schedules.expect("stats");
        assert!(stats.exhaustive, "race space must be fully explored");
        assert!(
            stats.visited >= 2,
            "both wildcard matches must be enumerated (visited {})",
            stats.visited
        );
        assert_eq!(report.seeds, vec![0], "no random seeds in the loop");
        let finding = report
            .findings
            .iter()
            .find(|f| f.class == FindingClass::WildcardRace)
            .expect("wildcard-race finding");
        assert_eq!(finding.ranks, vec![0]);
        assert!(finding.counterexample.is_some());
        // The cross-schedule divergence (not just the candidate-count
        // heuristic) must surface: different picks matched different
        // source orders.
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.class == FindingClass::WildcardRace
                    && f.summary.contains("differs across explored interleavings")),
            "expected a cross-schedule divergence finding:\n{report}"
        );
    }

    #[test]
    fn explorer_finds_collective_divergence_and_tag_leak() {
        let report = find("bcast-root-mismatch").unwrap().explore(&opts());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.class == FindingClass::CollectiveDivergence),
            "expected collective divergence:\n{report}"
        );
        let report = find("tag-leak").unwrap().explore(&opts());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.class == FindingClass::TagLeak),
            "expected tag leak:\n{report}"
        );
    }

    #[test]
    fn clean_control_stays_clean_under_every_schedule() {
        let entry = find("clean-allreduce").unwrap();
        let report = entry.explore(&ExploreOptions {
            max_schedules: 128,
            ..ExploreOptions::default()
        });
        assert!(report.clean(), "unexpected findings:\n{report}");
        let stats = report.schedules.unwrap();
        assert!(stats.visited >= 1);
    }

    #[test]
    fn counterexample_replays_to_the_same_finding() {
        let entry = find("wildcard-race").unwrap();
        let report = entry.explore(&opts());
        let finding = report
            .findings
            .iter()
            .find(|f| f.class == FindingClass::WildcardRace)
            .expect("wildcard-race finding");
        let schedule =
            Schedule::from_json(finding.counterexample.as_deref().unwrap()).expect("parses");
        assert_eq!(schedule.target, "gallery:wildcard-race");
        assert_eq!(schedule.world, 3);
        let body = entry.body;
        let replayed = crate::explore::replay(&schedule, crate::Settings::default(), move |comm| {
            body(comm)
        })
        .expect("replays without divergence");
        assert!(
            replayed
                .findings
                .iter()
                .any(|f| f.class == FindingClass::WildcardRace && f.ranks == finding.ranks),
            "replay must reproduce the finding:\n{replayed}"
        );
    }

    #[test]
    fn preemption_bound_zero_still_explores_wildcards() {
        let entry = find("wildcard-race").unwrap();
        let report = entry.explore(&ExploreOptions {
            max_schedules: 64,
            preemption_bound: Some(0),
            ..ExploreOptions::default()
        });
        // Wildcard branching is not a preemption: the race is still
        // fully enumerated under a zero bound.
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.class == FindingClass::WildcardRace),
            "expected wildcard race under bound 0:\n{report}"
        );
        assert!(report.schedules.unwrap().visited >= 2);
    }

    #[test]
    fn registry_lookup_accepts_target_labels() {
        assert!(find("gallery:recv-cycle-2").is_some());
        assert!(find("recv-cycle-2").is_some());
        assert!(find("no-such-entry").is_none());
        assert_eq!(entries().len(), 6);
    }
}
