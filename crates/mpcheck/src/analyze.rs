//! The post-run trace lint pass: turns one instrumented run's
//! [`RunLog`] into findings.

use std::collections::BTreeMap;

use mp::check::{Event, RunLog};

use crate::report::{Finding, FindingClass};

/// Analyzes one run log, returning every finding it supports on its own.
/// (Cross-seed comparisons live in [`crate::check`], which sees all runs.)
pub fn analyze(log: &RunLog) -> Vec<Finding> {
    let mut findings = Vec::new();
    deadlock(log, &mut findings);
    collective_divergence(log, &mut findings);
    leftovers(log, &mut findings);
    wildcard_races(log, &mut findings);
    findings
}

/// Maps the detector's diagnosis onto a finding.
fn deadlock(log: &RunLog, findings: &mut Vec<Finding>) {
    let Some(d) = &log.deadlock else { return };
    let (ranks, summary) = match &d.cycle {
        Some(cycle) => {
            let mut path: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
            path.push(cycle[0].to_string());
            (
                cycle.clone(),
                format!("wait-for cycle {}", path.join(" -> ")),
            )
        }
        None => (
            d.waits.iter().map(|w| w.rank).collect(),
            format!(
                "global stall: {} blocked rank(s), no sender can run",
                d.waits.len()
            ),
        ),
    };
    findings.push(Finding::new(
        FindingClass::Deadlock,
        ranks,
        summary,
        d.to_string(),
    ));
}

/// One rank's view of one collective call site.
struct Call {
    rank: usize,
    op: &'static str,
    root: Option<usize>,
    shape: Option<u64>,
}

impl Call {
    fn describe(&self) -> String {
        let mut s = format!("rank {}: {}", self.rank, self.op);
        if let Some(root) = self.root {
            s.push_str(&format!(" root={root}"));
        }
        if let Some(shape) = self.shape {
            s.push_str(&format!(" bytes={shape}"));
        }
        s
    }

    /// Whether two ranks' views of the same call index conflict. Roots
    /// and shapes compare only when both sides recorded one (vector
    /// variants record none — their counts legitimately differ).
    fn conflicts(&self, other: &Call) -> bool {
        self.op != other.op
            || (self.root.is_some() && other.root.is_some() && self.root != other.root)
            || (self.shape.is_some() && other.shape.is_some() && self.shape != other.shape)
    }
}

/// Flags call-sequence divergence: at each (comm, call index), every
/// participating rank must have entered the same operation with the same
/// root and payload shape. On clean, drop-free runs, also flags ranks
/// disagreeing on how many collectives ran on a communicator.
fn collective_divergence(log: &RunLog, findings: &mut Vec<Finding>) {
    let mut sites: BTreeMap<(u32, u32), Vec<Call>> = BTreeMap::new();
    let mut counts: BTreeMap<u32, BTreeMap<usize, usize>> = BTreeMap::new();
    for (rank, events) in log.events.iter().enumerate() {
        for e in events {
            if let Event::CollBegin {
                comm,
                index,
                op,
                root,
                shape,
            } = e
            {
                sites.entry((*comm, *index)).or_default().push(Call {
                    rank,
                    op,
                    root: *root,
                    shape: *shape,
                });
                *counts.entry(*comm).or_default().entry(rank).or_insert(0) += 1;
            }
        }
    }
    for ((comm, index), calls) in &sites {
        let reference = &calls[0];
        let diverging: Vec<&Call> = calls[1..]
            .iter()
            .filter(|c| c.conflicts(reference))
            .collect();
        if diverging.is_empty() {
            continue;
        }
        let mut ranks = vec![reference.rank];
        ranks.extend(diverging.iter().map(|c| c.rank));
        let detail = calls
            .iter()
            .map(Call::describe)
            .collect::<Vec<_>>()
            .join("\n");
        findings.push(Finding::new(
            FindingClass::CollectiveDivergence,
            ranks,
            format!(
                "collective call #{index} on comm {comm:#x} diverges: {} vs {}",
                reference.describe(),
                diverging[0].describe()
            ),
            detail,
        ));
    }
    // Call-count divergence is only conclusive when the run completed and
    // no events were dropped; on a deadlocked run truncated sequences are
    // a symptom, not a second bug.
    if log.deadlock.is_none() && log.dropped.iter().all(|&d| d == 0) {
        for (comm, per_rank) in &counts {
            let min = per_rank.values().min().copied().unwrap_or(0);
            let max = per_rank.values().max().copied().unwrap_or(0);
            if min == max {
                continue;
            }
            let ranks: Vec<usize> = per_rank.keys().copied().collect();
            let detail = per_rank
                .iter()
                .map(|(rank, count)| format!("rank {rank}: {count} collective call(s)"))
                .collect::<Vec<_>>()
                .join("\n");
            findings.push(Finding::new(
                FindingClass::CollectiveDivergence,
                ranks,
                format!(
                    "ranks disagree on the number of collective calls on comm {comm:#x} \
                     ({min} vs {max})"
                ),
                detail,
            ));
        }
    }
}

/// Classifies messages still queued at finalize: a lane whose receiver
/// never received on that (comm, tag) is a tag/comm leak; one whose
/// receiver did is a send/receive count mismatch. Skipped entirely on
/// deadlocked runs, where leftovers are a symptom of the deadlock.
fn leftovers(log: &RunLog, findings: &mut Vec<Finding>) {
    if log.deadlock.is_some() {
        return;
    }
    for lane in &log.leftover {
        let receiver_used_tag = log.events.get(lane.dst).is_some_and(|events| {
            events.iter().any(|e| {
                matches!(e, Event::Recv { comm, tag, .. }
                         if *comm == lane.comm && *tag == lane.tag)
            })
        });
        let (class, what) = if receiver_used_tag {
            (FindingClass::UnmatchedSend, "more sends than receives")
        } else {
            (
                FindingClass::TagLeak,
                "receiver never received on this (comm, tag)",
            )
        };
        findings.push(Finding::new(
            class,
            vec![lane.src, lane.dst],
            format!(
                "{} message(s) from rank {} to rank {} (comm {:#x}, tag {:#x}) \
                 unmatched at finalize: {what}",
                lane.queued, lane.src, lane.dst, lane.comm, lane.tag
            ),
            lane.to_string(),
        ));
    }
}

/// Flags wildcard receives whose match depended on arrival order: two or
/// more candidate lanes were nonempty at match time. Aggregated per rank.
fn wildcard_races(log: &RunLog, findings: &mut Vec<Finding>) {
    for (rank, events) in log.events.iter().enumerate() {
        let mut racy = 0usize;
        let mut max_candidates = 0u32;
        let mut example = None;
        for e in events {
            if let Event::Recv {
                wildcard: true,
                candidates,
                src,
                comm,
                tag,
                ..
            } = e
            {
                if *candidates >= 2 {
                    racy += 1;
                    max_candidates = max_candidates.max(*candidates);
                    if example.is_none() {
                        example = Some(format!(
                            "matched src {src} (comm {comm:#x}, tag {tag:#x}) \
                             with {candidates} candidate lanes nonempty"
                        ));
                    }
                }
            }
        }
        if racy > 0 {
            findings.push(Finding::new(
                FindingClass::WildcardRace,
                vec![rank],
                format!(
                    "{racy} wildcard receive(s) on rank {rank} matched by arrival \
                     order (up to {max_candidates} candidate lanes)"
                ),
                example.unwrap_or_default(),
            ));
        }
    }
}

/// Drops findings identical in (class, ranks, summary), keeping first
/// occurrences in order. Multi-seed sweeps rediscover the same bug once
/// per seed; the report should state it once.
pub fn dedup(findings: &mut Vec<Finding>) {
    let mut seen: Vec<(FindingClass, Vec<usize>, String)> = Vec::new();
    findings.retain(|f| {
        let key = (f.class, f.ranks.clone(), f.summary.clone());
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp::check::{run_checked, Settings};

    #[test]
    fn clean_program_yields_no_findings() {
        let checked = run_checked(4, Settings::default(), |comm| {
            let mut x = [1u64];
            comm.allreduce(&mut x, mp::Op::Sum);
            comm.barrier();
        });
        assert!(analyze(&checked.log).is_empty());
    }

    #[test]
    fn dedup_keeps_first_occurrence() {
        let f = |summary: &str| {
            Finding::new(
                FindingClass::TagLeak,
                vec![0, 1],
                summary.into(),
                String::new(),
            )
        };
        let mut findings = vec![f("a"), f("b"), f("a")];
        dedup(&mut findings);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].summary, "a");
        assert_eq!(findings[1].summary, "b");
    }

    #[test]
    fn unmatched_send_vs_tag_leak_classification() {
        // Tag 5 is never received on rank 1 -> leak; tag 6 is received
        // once but sent twice -> unmatched send.
        let checked = run_checked(2, Settings::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u8], 1, 5);
                comm.send(&[2u8], 1, 6);
                comm.send(&[3u8], 1, 6);
            } else {
                let mut buf = [0u8];
                comm.recv(&mut buf, 0, 6);
            }
            comm.barrier();
        });
        let findings = analyze(&checked.log);
        assert!(findings
            .iter()
            .any(|f| f.class == FindingClass::TagLeak && f.summary.contains("tag 0x5")));
        assert!(findings
            .iter()
            .any(|f| f.class == FindingClass::UnmatchedSend && f.summary.contains("tag 0x6")));
    }
}
