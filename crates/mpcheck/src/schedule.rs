//! Replayable counterexample schedules: the `hpcbench-schedule-v1`
//! trace format.
//!
//! The explorer ([`crate::explore`]) records every scheduling decision a
//! run makes — ready-set picks and wildcard-receive matches — as a flat
//! decision list. Serialized, that list is a complete, machine-checkable
//! recipe for reproducing the run: feed it back through `--replay` and
//! the [`Guided`](crate::explore) controller re-makes exactly the same
//! choices, deterministically, with no random seeds involved.

use std::fmt::Write as _;

use crate::json::{self, Value};

/// Schema identifier written into every schedule file.
pub const SCHEDULE_SCHEMA: &str = "hpcbench-schedule-v1";

/// Which kind of choice point a decision resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// A ready-set pick: ≥ 2 runnable ranks were queued and the
    /// controller chose which one to poll next. `rank` is the chosen
    /// rank.
    Ready,
    /// A wildcard-receive match: ≥ 2 queued lanes satisfied the filter
    /// and the controller chose which message to match. `rank` is the
    /// receiving rank.
    Wildcard,
}

impl DecisionKind {
    /// Stable identifier used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Ready => "ready",
            DecisionKind::Wildcard => "wildcard",
        }
    }

    /// Inverse of [`DecisionKind::name`].
    pub fn from_name(name: &str) -> Option<DecisionKind> {
        match name {
            "ready" => Some(DecisionKind::Ready),
            "wildcard" => Some(DecisionKind::Wildcard),
            _ => None,
        }
    }
}

/// One resolved choice point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// What kind of choice this was.
    pub kind: DecisionKind,
    /// For [`DecisionKind::Ready`], the rank that was scheduled; for
    /// [`DecisionKind::Wildcard`], the rank whose receive was matched.
    pub rank: usize,
    /// How many alternatives existed (always ≥ 2 — trivial choice
    /// points are not decisions).
    pub alts: usize,
    /// The alternative taken, `0 ≤ pick < alts`. Pick 0 is always the
    /// FIFO / oldest-first default.
    pub pick: usize,
}

/// A complete recorded schedule for one run of one target program.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schedule {
    /// What was run (gallery entry or workload label).
    pub target: String,
    /// World size of the (first) `mp` world the run created.
    pub world: usize,
    /// Every choice point the run hit, in execution order.
    pub decisions: Vec<Decision>,
}

impl Schedule {
    /// Renders the schedule as an `hpcbench-schedule-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEDULE_SCHEMA}\",");
        let _ = writeln!(
            out,
            "  \"target\": {},",
            crate::report::json_string(&self.target)
        );
        let _ = writeln!(out, "  \"world\": {},", self.world);
        out.push_str("  \"decisions\": [\n");
        for (i, d) in self.decisions.iter().enumerate() {
            let comma = if i + 1 < self.decisions.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"kind\": \"{}\", \"rank\": {}, \"alts\": {}, \"pick\": {}}}{comma}",
                d.kind.name(),
                d.rank,
                d.alts,
                d.pick,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses an `hpcbench-schedule-v1` document.
    pub fn from_json(text: &str) -> Result<Schedule, String> {
        let v = json::parse(text)?;
        match v.get("schema").and_then(Value::as_str) {
            Some(SCHEDULE_SCHEMA) => {}
            other => return Err(format!("not a {SCHEDULE_SCHEMA} document: {other:?}")),
        }
        let target = v
            .get("target")
            .and_then(Value::as_str)
            .ok_or("missing \"target\"")?
            .to_string();
        let world = v
            .get("world")
            .and_then(Value::as_usize)
            .ok_or("missing \"world\"")?;
        let mut decisions = Vec::new();
        for (i, d) in v
            .get("decisions")
            .and_then(Value::as_arr)
            .ok_or("missing \"decisions\"")?
            .iter()
            .enumerate()
        {
            let kind = d
                .get("kind")
                .and_then(Value::as_str)
                .and_then(DecisionKind::from_name)
                .ok_or_else(|| format!("decision {i}: bad \"kind\""))?;
            let rank = d
                .get("rank")
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("decision {i}: bad \"rank\""))?;
            let alts = d
                .get("alts")
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("decision {i}: bad \"alts\""))?;
            let pick = d
                .get("pick")
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("decision {i}: bad \"pick\""))?;
            if pick >= alts {
                return Err(format!(
                    "decision {i}: pick {pick} out of range (alts {alts})"
                ));
            }
            decisions.push(Decision {
                kind,
                rank,
                alts,
                pick,
            });
        }
        Ok(Schedule {
            target,
            world,
            decisions,
        })
    }

    /// The bare pick list, the script a [`Guided`](crate::explore)
    /// controller follows.
    pub fn picks(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.pick).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            target: "gallery:wildcard-race".into(),
            world: 3,
            decisions: vec![
                Decision {
                    kind: DecisionKind::Ready,
                    rank: 1,
                    alts: 2,
                    pick: 1,
                },
                Decision {
                    kind: DecisionKind::Wildcard,
                    rank: 0,
                    alts: 2,
                    pick: 0,
                },
            ],
        }
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let s = sample();
        let text = s.to_json();
        assert!(text.contains("\"schema\": \"hpcbench-schedule-v1\""));
        let back = Schedule::from_json(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.picks(), vec![1, 0]);
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_bad_picks() {
        assert!(Schedule::from_json("{\"schema\": \"other\"}").is_err());
        let mut text = sample().to_json();
        text = text.replace("\"pick\": 1", "\"pick\": 7");
        assert!(Schedule::from_json(&text).is_err());
    }

    #[test]
    fn empty_decision_list_is_valid() {
        let s = Schedule {
            target: "t".into(),
            world: 2,
            decisions: Vec::new(),
        };
        assert_eq!(Schedule::from_json(&s.to_json()).unwrap(), s);
    }
}
