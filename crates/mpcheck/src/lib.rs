//! mpcheck — deadlock, race, and MPI-misuse analysis for the `mp`
//! message-passing runtime.
//!
//! Three cooperating analyses, built on the instrumentation in
//! [`mp::check`]:
//!
//! 1. **Wait-for-graph deadlock detection.** Every blocking point in the
//!    runtime (mailbox receives, rendezvous posts, and through them every
//!    collective phase) publishes a per-rank wait edge. A detector thread
//!    runs cycle detection over the resulting graph and reports the
//!    actual cycle — the ranks, the operations they block on, the
//!    collective call sites, and the pending-message inventory per
//!    mailbox lane — instead of hanging until a wall-clock timeout.
//! 2. **Communication-trace lints.** Each rank records its events into a
//!    bounded ring; [`analyze`] replays the merged trace after the run
//!    and flags unmatched sends at finalize, collective call-sequence
//!    divergence (operation order, root, payload-shape mismatches),
//!    tag/comm leaks, and wildcard-receive races.
//! 3. **Schedule perturbation.** [`check`] reruns the program under a
//!    sweep of deterministic perturbation seeds (seed 0 = unperturbed)
//!    and cross-compares wildcard matching between schedules, surfacing
//!    order-dependent behavior a single lucky schedule would hide.
//!
//! Findings render as human-readable text ([`Report`]'s `Display`) and as
//! an `mpcheck-report-v2` JSON document ([`Report::to_json`]).
//!
//! Three entry points:
//!
//! - [`check`] — run a closure as an SPMD program under the full
//!   multi-seed sweep and get a [`Report`] back. This is what the misuse
//!   gallery tests use.
//! - [`Session`] — install scoped instrumentation on the current thread
//!   so existing code paths that call [`mp::run`] (the harness's plan
//!   executor, bench binaries) are checked without changing their
//!   signatures. This is what `campaign --check` uses.
//! - [`explore`] — *enumerate* the schedule space instead of sampling
//!   it: a DPOR explorer over the cooperative scheduler that drives
//!   every ready-set pick and wildcard match as an explicit decision,
//!   prunes equivalent interleavings, and emits replayable
//!   `hpcbench-schedule-v1` counterexamples ([`Schedule`]). This is what
//!   `campaign --explore` and the `mpcheck explore` CLI use.

mod analyze;
pub mod explore;
pub mod gallery;
pub mod json;
mod report;
mod schedule;

pub use analyze::analyze;
pub use explore::{
    classify_panic, explore, explore_with, replay, replay_with, ExploreOptions, Guided, RunOutcome,
};
pub use mp::check::Settings;
pub use report::{Finding, FindingClass, Report, ScheduleStats, REPORT_SCHEMA};
pub use schedule::{Decision, DecisionKind, Schedule, SCHEDULE_SCHEMA};

use std::sync::{Arc, Mutex};

use mp::check::{install_scoped, Event, RunLog, ScopedCheck, ScopedGuard};

/// Options for a multi-seed [`check`] sweep.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Perturbation seeds to run, in order (duplicates are skipped).
    /// Seed 0 runs unperturbed.
    pub seeds: Vec<u64>,
    /// Base settings; each run uses `settings.with_seed(seed)`.
    pub settings: Settings,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            seeds: vec![0, 1, 2],
            settings: Settings::default(),
        }
    }
}

impl CheckOptions {
    /// Reads overrides from the environment: `MPCHECK_SEEDS` (comma-
    /// separated list) and `MPCHECK_RING` (per-rank event ring capacity).
    pub fn from_env() -> CheckOptions {
        let mut opts = CheckOptions::default();
        if let Ok(raw) = std::env::var("MPCHECK_SEEDS") {
            let seeds: Vec<u64> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .collect();
            if !seeds.is_empty() {
                opts.seeds = seeds;
            }
        }
        if let Ok(raw) = std::env::var("MPCHECK_RING") {
            if let Ok(cap) = raw.trim().parse() {
                opts.settings.ring_capacity = cap;
            }
        }
        opts
    }
}

/// Per-rank sequence of sources matched by wildcard receives, used to
/// compare matching between seeds and between explored schedules.
pub(crate) fn wildcard_orders(log: &RunLog) -> Vec<Vec<usize>> {
    log.events
        .iter()
        .map(|events| {
            events
                .iter()
                .filter_map(|e| match e {
                    Event::Recv {
                        wildcard: true,
                        src,
                        ..
                    } => Some(*src),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

/// Runs `f` as an `n`-rank SPMD program once per seed in `opts.seeds`,
/// analyzing every run and cross-comparing wildcard matching between
/// schedules. Deadlocks are diagnosed, not hung on; rank panics become
/// [`FindingClass::RankPanic`] findings.
pub fn check<R, F>(n: usize, opts: &CheckOptions, f: F) -> Report
where
    R: Send,
    F: Fn(&mp::Comm) -> R + Send + Sync,
{
    let mut report = Report::default();
    // (seed, per-rank wildcard match order) for runs that completed
    // cleanly — deadlocked or panicked runs have truncated traces whose
    // order differences are symptoms, not independent races.
    let mut orders: Vec<(u64, Vec<Vec<usize>>)> = Vec::new();
    for &seed in &opts.seeds {
        if report.seeds.contains(&seed) {
            continue;
        }
        let checked = mp::check::run_checked(n, opts.settings.with_seed(seed), &f);
        report.runs += 1;
        report.seeds.push(seed);
        report.events += checked
            .log
            .events
            .iter()
            .map(|v| v.len() as u64)
            .sum::<u64>();
        report.dropped += checked.log.dropped.iter().sum::<u64>();
        for (rank, msg) in &checked.panics {
            // The summary is deliberately seed-free so the same panic
            // rediscovered under every seed dedupes to one finding; the
            // seed that surfaced it is in the `seed` field.
            report.findings.push(Finding {
                seed: Some(seed),
                ..Finding::new(
                    FindingClass::RankPanic,
                    vec![*rank],
                    format!("rank {rank} panicked"),
                    format!("seed {seed}: {msg}"),
                )
            });
        }
        let clean = checked.log.deadlock.is_none() && checked.panics.is_empty();
        report
            .findings
            .extend(analyze(&checked.log).into_iter().map(|mut f| {
                f.seed = Some(seed);
                f
            }));
        if clean {
            orders.push((seed, wildcard_orders(&checked.log)));
        }
    }
    if let Some(((first_seed, first), rest)) = orders.split_first() {
        for (seed, other) in rest {
            for rank in 0..n {
                if other.get(rank) != first.get(rank) {
                    // Seed numbers stay out of the summary: every seed
                    // pair that disagrees is the same underlying race,
                    // and must dedupe to one finding per rank.
                    report.findings.push(Finding {
                        seed: Some(*seed),
                        ..Finding::new(
                            FindingClass::WildcardRace,
                            vec![rank],
                            format!(
                                "wildcard matching on rank {rank} depends on the schedule: \
                                 matched source order differs between perturbation seeds"
                            ),
                            format!(
                                "seed {first_seed}: matched sources {:?}\n\
                                 seed {seed}: matched sources {:?}",
                                first.get(rank).map(Vec::as_slice).unwrap_or(&[]),
                                other.get(rank).map(Vec::as_slice).unwrap_or(&[]),
                            ),
                        )
                    });
                }
            }
        }
    }
    analyze::dedup(&mut report.findings);
    report
}

/// Scoped instrumentation for code that calls [`mp::run`] internally
/// (the harness plan executor, bench binaries).
///
/// Between [`Session::begin`] and [`Session::finish`], every `mp::run` on
/// the *current thread* runs instrumented; each run's log is analyzed as
/// it completes and the findings accumulate into one [`Report`]. A
/// detected deadlock still panics out of `mp::run` (with the full
/// diagnosis as the panic message) — a deadlocked benchmark cannot
/// meaningfully continue — but the diagnosis is also in the report held
/// by the session's accumulator up to that point.
pub struct Session {
    acc: Arc<Mutex<Report>>,
    guard: ScopedGuard,
}

impl Session {
    /// Installs instrumentation on the current thread.
    pub fn begin(settings: Settings) -> Session {
        let acc = Arc::new(Mutex::new(Report::default()));
        let sink = Arc::clone(&acc);
        let guard = install_scoped(ScopedCheck {
            settings,
            sink: Arc::new(move |log: RunLog| {
                let mut report = sink.lock().unwrap();
                report.runs += 1;
                if !report.seeds.contains(&log.seed) {
                    report.seeds.push(log.seed);
                }
                report.events += log.events.iter().map(|v| v.len() as u64).sum::<u64>();
                report.dropped += log.dropped.iter().sum::<u64>();
                // Every finding records the seed of the run that
                // produced it, not just runs that failed outright.
                report
                    .findings
                    .extend(analyze(&log).into_iter().map(|mut f| {
                        f.seed = Some(log.seed);
                        f
                    }));
            }),
        });
        Session { acc, guard }
    }

    /// Uninstalls the instrumentation and returns the accumulated,
    /// deduplicated report.
    pub fn finish(self) -> Report {
        let Session { acc, guard } = self;
        drop(guard);
        let mut report = acc.lock().unwrap().clone();
        analyze::dedup(&mut report.findings);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fast() -> Settings {
        Settings {
            poll: Duration::from_millis(2),
            ..Settings::default()
        }
    }

    #[test]
    fn multi_seed_sweep_on_clean_program_is_clean() {
        let opts = CheckOptions::default();
        let report = check(4, &opts, |comm| {
            let mut x = [comm.rank() as u64];
            comm.allreduce(&mut x, mp::Op::Sum);
            assert_eq!(x[0], 6);
        });
        assert!(report.clean(), "unexpected findings:\n{report}");
        assert_eq!(report.runs, 3);
        assert_eq!(report.seeds, vec![0, 1, 2]);
        assert!(report.events > 0);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn deadlock_is_diagnosed_with_cycle_members() {
        let opts = CheckOptions {
            seeds: vec![0],
            settings: fast(),
        };
        // Head-to-head blocking receives: sends are eager in mp, so the
        // classic send/send deadlock manifests as recv/recv.
        let report = check(2, &opts, |comm| {
            let peer = comm.size() - 1 - comm.rank();
            let mut buf = [0u8];
            comm.recv(&mut buf, peer, 9);
            comm.send(&buf, peer, 9);
        });
        let deadlock = report
            .findings
            .iter()
            .find(|f| f.class == FindingClass::Deadlock)
            .expect("deadlock finding");
        assert_eq!(deadlock.ranks, vec![0, 1]);
    }

    #[test]
    fn rank_panic_is_reported_not_swallowed() {
        let opts = CheckOptions {
            seeds: vec![0],
            settings: fast(),
        };
        let report = check(2, &opts, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            comm.barrier();
        });
        // Rank 0 blocks in a barrier rank 1 never reaches -> both a panic
        // finding and a stall diagnosis are acceptable; the panic one is
        // mandatory.
        assert!(report
            .findings
            .iter()
            .any(|f| f.class == FindingClass::RankPanic && f.ranks == vec![1]));
    }

    #[test]
    fn session_accumulates_scoped_runs() {
        let session = Session::begin(Settings::default());
        let sums = mp::run(3, |comm| {
            let mut x = [1u64];
            comm.allreduce(&mut x, mp::Op::Sum);
            x[0]
        });
        assert_eq!(sums, vec![3, 3, 3]);
        let report = session.finish();
        assert!(report.clean(), "unexpected findings:\n{report}");
        assert_eq!(report.runs, 1);
        assert!(report.events > 0);
    }

    #[test]
    fn findings_carry_the_seed_that_produced_them() {
        let opts = CheckOptions {
            seeds: vec![0],
            settings: fast(),
        };
        let report = check(2, &opts, |comm| {
            let peer = comm.size() - 1 - comm.rank();
            let mut buf = [0u8];
            comm.recv(&mut buf, peer, 9);
            comm.send(&buf, peer, 9);
        });
        let deadlock = report
            .findings
            .iter()
            .find(|f| f.class == FindingClass::Deadlock)
            .expect("deadlock finding");
        assert_eq!(
            deadlock.seed,
            Some(0),
            "the seed is recorded on the finding, not only on failures"
        );
    }

    #[test]
    fn cross_seed_rediscoveries_dedupe_to_one_finding() {
        // Regression: summaries used to embed the seed pair ("between
        // seeds 0 and 2"), so a race rediscovered under every seed
        // produced one finding per seed pair instead of one finding.
        let opts = CheckOptions {
            seeds: vec![0, 1, 2, 3],
            settings: fast(),
        };
        let report = check(3, &opts, |comm| {
            if comm.rank() == 0 {
                let mut sync = [0u64];
                comm.recv(&mut sync, 1, 99);
                comm.recv(&mut sync, 2, 99);
                let _ = comm.recv_any::<u64>(None, Some(1));
                let _ = comm.recv_any::<u64>(None, Some(1));
            } else {
                comm.send(&[comm.rank() as u64], 0, 1);
                comm.send(&[1u64], 0, 99);
            }
            comm.barrier();
        });
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.class == FindingClass::WildcardRace),
            "the race is found:\n{report}"
        );
        for f in &report.findings {
            assert!(f.seed.is_some(), "every finding is seed-attributed: {f}");
            for s in 0..4 {
                assert!(
                    !f.summary.contains(&format!("seed {s}"))
                        && !f.summary.contains(&format!("seeds {s}")),
                    "summaries stay free of seed numbers so rediscoveries dedupe: {}",
                    f.summary
                );
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for f in &report.findings {
            assert!(
                seen.insert((f.class, f.ranks.clone(), f.summary.clone())),
                "cross-seed rediscovery was not deduplicated: {f}"
            );
        }
    }

    #[test]
    fn options_from_env_fall_back_to_defaults() {
        // Not setting the variables must yield the defaults.
        let opts = CheckOptions::from_env();
        assert_eq!(opts.seeds, vec![0, 1, 2]);
        assert_eq!(opts.settings.ring_capacity, 1 << 16);
    }
}
