//! Systematic schedule-space exploration: a DPOR explorer over the
//! cooperative scheduler.
//!
//! Where [`crate::check`] samples a handful of perturbed schedules, this
//! module *enumerates* them. The [`Guided`] controller implements
//! [`mp::ScheduleController`], so every ready-set pick and every
//! wildcard-receive match in a cooperative run becomes a recorded,
//! scriptable decision. The driver ([`explore_with`]) re-runs the target
//! program depth-first over the decision tree, using dynamic
//! partial-order reduction to skip interleavings that are provably
//! equivalent to ones already visited:
//!
//! - **Persistent sets**: a ready-decision's alternatives are explored
//!   only when a race demands it — two steps of different ranks touching
//!   the same mailbox, unordered by happens-before (vector clocks over
//!   program order plus matched send→receive edges). Everything else is
//!   pruned.
//! - **Sleep sets**: alternatives whose subtree has already been
//!   explored are never re-added, so rediscovered races cost nothing.
//! - **Bounded-preemption fallback**: an optional cap on
//!   controller-injected preemptions (non-FIFO ready picks that pull the
//!   schedule away from a still-runnable rank) keeps huge spaces
//!   tractable; skipped branches are counted and the report is marked
//!   non-exhaustive.
//!
//! Wildcard matches are always fully branched — matching a different
//! message is semantically distinct by definition, never equivalent.
//!
//! Every new finding carries a replayable `hpcbench-schedule-v1`
//! counterexample ([`crate::Schedule`]); [`replay_with`] re-executes one
//! deterministically, with no random seeds anywhere in the loop.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::future::Future;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};

use mp::check::{Event, RunLog, Settings, POISON_MARK};
use mp::{ScheduleController, WildcardCandidate};

use crate::report::{Finding, FindingClass, Report, ScheduleStats};
use crate::schedule::{Decision, DecisionKind, Schedule};
use crate::{analyze, wildcard_orders};

/// Live exploration count, consulted by the process-wide panic hook.
static EXPLORING: AtomicUsize = AtomicUsize::new(0);
/// One-time installation of the poison-silencing hook wrapper.
static HOOK: Once = Once::new();

/// Scoped stderr silencer for the deadlock-poison unwinds the explorer
/// provokes on purpose: visiting a deadlocking schedule space panics
/// once per schedule, and the default hook would print a diagnosis (and
/// backtrace) for every one. While at least one exploration is live,
/// panics whose payload is the poison diagnosis are swallowed; every
/// other panic still reaches the previously installed hook.
struct PoisonSilence;

impl PoisonSilence {
    fn new() -> PoisonSilence {
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if EXPLORING.load(Ordering::Relaxed) > 0 {
                    let payload = info.payload();
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied());
                    if msg.is_some_and(|m| m.starts_with(POISON_MARK)) {
                        return;
                    }
                }
                prev(info);
            }));
        });
        EXPLORING.fetch_add(1, Ordering::Relaxed);
        PoisonSilence
    }
}

impl Drop for PoisonSilence {
    fn drop(&mut self) {
        EXPLORING.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Options for a schedule-space exploration.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Maximum number of complete schedules to execute. Hitting the
    /// budget marks the report non-exhaustive.
    pub max_schedules: usize,
    /// Maximum controller-injected preemptions per schedule (`None` =
    /// unbounded). A preemption is a non-FIFO ready pick that moves the
    /// schedule away from a rank that was still runnable. Skipped
    /// branches are counted in [`ScheduleStats::bounded_skips`].
    pub preemption_bound: Option<usize>,
    /// Base run settings (perturbation is forced off: the explorer
    /// replaces it).
    pub settings: Settings,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            max_schedules: 256,
            preemption_bound: None,
            settings: Settings::default(),
        }
    }
}

/// What one scripted run produced: every `mp` world's log (a target may
/// create several), plus any rank panics.
pub struct RunOutcome {
    /// One log per instrumented world, in creation order.
    pub logs: Vec<RunLog>,
    /// `(rank, message)` for ranks that panicked (deadlock poison
    /// unwinds excluded).
    pub panics: Vec<(usize, String)>,
}

/// Splits a caught panic payload into the explorer's terms: `None` for
/// a deadlock poison unwind (the diagnosis is already in the run log),
/// `Some((rank, msg))` for a genuine rank panic re-thrown by the coop
/// engine as `"rank N panicked: ..."`.
pub fn classify_panic(msg: &str) -> Option<(usize, String)> {
    if msg.starts_with(POISON_MARK) {
        return None;
    }
    let rest = msg.strip_prefix("rank ")?;
    let (rank, tail) = rest.split_once(" panicked: ")?;
    Some((rank.parse().ok()?, tail.to_string()))
}

/// One recorded decision, with the context the DPOR analysis needs.
#[derive(Clone, Debug)]
struct DecisionRec {
    kind: DecisionKind,
    /// Chosen rank (ready) or receiving rank (wildcard).
    rank: usize,
    alts: usize,
    pick: usize,
    /// Ready-set snapshot (ready decisions only).
    ready: Vec<usize>,
    /// `steps.len()` at decision time: for a ready decision, the index
    /// of the step it schedules.
    at_step: usize,
}

/// One scheduler step (one poll of one rank's task) and its mailbox
/// footprint.
#[derive(Clone, Debug, Default)]
struct StepRec {
    rank: usize,
    /// World segment (increments per `mp` world the target creates;
    /// steps in different worlds never race).
    world: usize,
    /// Mailbox indices this step touched (sends into, matches out of,
    /// receive postings).
    touched: BTreeSet<usize>,
    /// `(receiver, src, comm, tag)` per receive matched during this
    /// step, for happens-before send→receive pairing.
    recvs: Vec<(usize, usize, u32, u32)>,
    /// `(sender, dst, comm, tag)` per send issued during this step.
    sends: Vec<(usize, usize, u32, u32)>,
}

#[derive(Default)]
struct GuidedState {
    script: Vec<usize>,
    decisions: Vec<DecisionRec>,
    steps: Vec<StepRec>,
    /// Current world segment; `note_world` increments it, so the first
    /// world's steps carry segment 1.
    world: usize,
    /// Size of the first world (what the schedule file records).
    world_n: usize,
    strict: bool,
    diverged: Option<String>,
}

/// The scripted controller: follows a pick list over the choice points
/// a run hits (FIFO default beyond the script) and records the complete
/// decision and step trace for the DPOR analysis.
pub struct Guided {
    state: Mutex<GuidedState>,
}

impl Guided {
    /// A lenient controller for exploration: beyond (or outside) the
    /// script it takes the FIFO default.
    pub fn scripted(script: Vec<usize>) -> Guided {
        Guided {
            state: Mutex::new(GuidedState {
                script,
                ..GuidedState::default()
            }),
        }
    }

    /// A strict controller for replay: any divergence from the script
    /// (different alternative count, pick out of range, or leftover
    /// decisions) is recorded and reported by [`replay_with`].
    pub fn replaying(script: Vec<usize>) -> Guided {
        Guided {
            state: Mutex::new(GuidedState {
                script,
                strict: true,
                ..GuidedState::default()
            }),
        }
    }

    /// The decision trace of the completed run, as schedule decisions.
    pub fn trace(&self) -> Vec<Decision> {
        self.state
            .lock()
            .unwrap()
            .decisions
            .iter()
            .map(|d| Decision {
                kind: d.kind,
                rank: d.rank,
                alts: d.alts,
                pick: d.pick,
            })
            .collect()
    }

    /// World size of the first world the run created (0 if none).
    pub fn world_size(&self) -> usize {
        self.state.lock().unwrap().world_n
    }

    /// The divergence message, if a strict replay went off-script.
    pub fn divergence(&self) -> Option<String> {
        self.state.lock().unwrap().diverged.clone()
    }

    fn snapshot(&self) -> (Vec<DecisionRec>, Vec<StepRec>) {
        let st = self.state.lock().unwrap();
        (st.decisions.clone(), st.steps.clone())
    }

    fn decide(&self, kind: DecisionKind, rank: usize, alts: usize, ready: Vec<usize>) -> usize {
        let mut st = self.state.lock().unwrap();
        let index = st.decisions.len();
        let mut pick = st.script.get(index).copied().unwrap_or(0);
        if pick >= alts {
            let note = format!(
                "decision {index}: scripted pick {pick} out of range ({alts} alternatives)"
            );
            if st.strict && st.diverged.is_none() {
                st.diverged = Some(note);
            }
            pick = 0;
        }
        if st.strict && index >= st.script.len() && st.diverged.is_none() {
            st.diverged = Some(format!(
                "decision {index}: run has more choice points than the schedule"
            ));
        }
        let at_step = st.steps.len();
        st.decisions.push(DecisionRec {
            kind,
            rank,
            alts,
            pick,
            ready,
            at_step,
        });
        pick
    }
}

impl ScheduleController for Guided {
    fn pick_ready(&self, ready: &[usize]) -> usize {
        let pick = self.decide(DecisionKind::Ready, 0, ready.len(), ready.to_vec());
        let mut st = self.state.lock().unwrap();
        let last = st.decisions.last_mut().expect("just pushed");
        last.rank = ready[pick];
        drop(st);
        pick
    }

    fn pick_wildcard(&self, rank: usize, candidates: &[WildcardCandidate]) -> usize {
        self.decide(DecisionKind::Wildcard, rank, candidates.len(), Vec::new())
    }

    fn note_step(&self, rank: usize) {
        let mut st = self.state.lock().unwrap();
        let world = st.world;
        st.steps.push(StepRec {
            rank,
            world,
            ..StepRec::default()
        });
    }

    fn note_event(&self, rank: usize, event: &Event) {
        let mut st = self.state.lock().unwrap();
        let Some(step) = st.steps.last_mut() else {
            return;
        };
        match event {
            Event::Send { dst, comm, tag, .. } => {
                step.touched.insert(*dst);
                step.sends.push((rank, *dst, *comm, *tag));
            }
            Event::Recv { src, comm, tag, .. } => {
                // `rank` is the receiver even when the match fires
                // during the sender's poll (an eager send completing a
                // posted receive).
                step.touched.insert(rank);
                step.recvs.push((rank, *src, *comm, *tag));
            }
            _ => {}
        }
    }

    fn note_touch(&self, rank: usize) {
        let mut st = self.state.lock().unwrap();
        if let Some(step) = st.steps.last_mut() {
            step.touched.insert(rank);
        }
    }

    fn note_world(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        st.world += 1;
        if st.world_n == 0 {
            st.world_n = n;
        }
    }
}

/// One node of the schedule tree under DFS.
struct Node {
    kind: DecisionKind,
    alts: usize,
    /// Ready-set snapshot (ready nodes).
    ready: Vec<usize>,
    /// Rank that was running immediately before this decision, for
    /// preemption counting.
    prev_rank: Option<usize>,
    /// Pick on the current path.
    taken: usize,
    /// Picks whose subtree is fully explored (the sleep set: never
    /// re-entered, however many races re-demand them).
    tried: BTreeSet<usize>,
    /// Picks that must be explored (the persistent set).
    backtrack: BTreeSet<usize>,
}

impl Node {
    /// Whether taking `pick` here preempts: a non-FIFO choice that
    /// moves the schedule away from a still-runnable previous rank.
    fn preempts(&self, pick: usize) -> bool {
        self.kind == DecisionKind::Ready
            && pick != 0
            && self
                .prev_rank
                .is_some_and(|p| self.ready.contains(&p) && self.ready.get(pick) != Some(&p))
    }
}

/// Explores the schedule space of an arbitrary runner. `run_one` must
/// execute the target program once under the given controller (via
/// [`mp::run_controlled_coop`] or [`mp::install_explore`]) and return
/// what it logged; the driver re-invokes it once per schedule.
pub fn explore_with<F>(label: &str, opts: &ExploreOptions, mut run_one: F) -> Report
where
    F: FnMut(Arc<Guided>) -> RunOutcome,
{
    let _quiet = PoisonSilence::new();
    let mut report = Report {
        schedules: Some(ScheduleStats {
            exhaustive: true,
            ..ScheduleStats::default()
        }),
        ..Report::default()
    };
    let mut path: Vec<Node> = Vec::new();
    let mut seen: BTreeSet<(FindingClass, Vec<usize>, String)> = BTreeSet::new();
    // Wildcard match orders of the first clean schedule, for
    // cross-schedule divergence detection: (orders per world per rank).
    let mut reference_orders: Option<Vec<Vec<Vec<usize>>>> = None;
    loop {
        let stats = report.schedules.as_mut().expect("set above");
        if stats.visited >= opts.max_schedules as u64 {
            stats.exhaustive = false;
            break;
        }
        let script: Vec<usize> = path.iter().map(|n| n.taken).collect();
        let guided = Arc::new(Guided::scripted(script));
        let outcome = run_one(Arc::clone(&guided));
        let (decisions, steps) = guided.snapshot();
        let stats = report.schedules.as_mut().expect("set above");
        stats.visited += 1;
        report.runs += 1;
        for log in &outcome.logs {
            report.events += log.events.iter().map(|v| v.len() as u64).sum::<u64>();
            report.dropped += log.dropped.iter().sum::<u64>();
            if !report.seeds.contains(&log.seed) {
                report.seeds.push(log.seed);
            }
        }
        // The coop engine is deterministic, so a scripted prefix must
        // reproduce the same choice points; guard against a target that
        // breaks that (e.g. one consulting ambient state) by dropping
        // stale nodes rather than mis-attributing races to them.
        if decisions.len() < path.len() {
            path.truncate(decisions.len());
        }
        // Extend the path with the fresh suffix of this run's decisions.
        for rec in decisions.iter().skip(path.len()) {
            let prev_rank = rec
                .at_step
                .checked_sub(1)
                .and_then(|i| steps.get(i))
                .map(|s| s.rank);
            let mut backtrack = BTreeSet::new();
            match rec.kind {
                // Ready alternatives wait for a race to demand them.
                DecisionKind::Ready => {
                    backtrack.insert(rec.pick);
                }
                // Matching a different message is always semantically
                // distinct: branch every wildcard alternative.
                DecisionKind::Wildcard => {
                    backtrack.extend(0..rec.alts);
                }
            }
            path.push(Node {
                kind: rec.kind,
                alts: rec.alts,
                ready: rec.ready.clone(),
                prev_rank,
                taken: rec.pick,
                tried: BTreeSet::new(),
                backtrack,
            });
        }
        // This schedule, replayable.
        let schedule = Schedule {
            target: label.to_string(),
            world: guided.world_size(),
            decisions: guided.trace(),
        };
        // Findings of this run; new ones ship the counterexample.
        let mut run_findings = Vec::new();
        for log in &outcome.logs {
            run_findings.extend(analyze::analyze(log));
        }
        for (rank, msg) in &outcome.panics {
            run_findings.push(Finding::new(
                FindingClass::RankPanic,
                vec![*rank],
                format!("rank {rank} panicked"),
                msg.clone(),
            ));
        }
        let clean =
            outcome.panics.is_empty() && outcome.logs.iter().all(|log| log.deadlock.is_none());
        if clean {
            let orders: Vec<Vec<Vec<usize>>> = outcome.logs.iter().map(wildcard_orders).collect();
            match &reference_orders {
                None => reference_orders = Some(orders),
                Some(reference) => {
                    for (w, (ours, theirs)) in orders.iter().zip(reference).enumerate() {
                        for rank in 0..ours.len().max(theirs.len()) {
                            let a = theirs.get(rank).map(Vec::as_slice).unwrap_or(&[]);
                            let b = ours.get(rank).map(Vec::as_slice).unwrap_or(&[]);
                            if a != b {
                                run_findings.push(Finding::new(
                                    FindingClass::WildcardRace,
                                    vec![rank],
                                    format!(
                                        "wildcard matching on rank {rank} depends on the \
                                         schedule: matched source order differs across \
                                         explored interleavings"
                                    ),
                                    format!(
                                        "world {w}: one interleaving matched sources {a:?}, \
                                         another matched {b:?}"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        for mut finding in run_findings {
            let key = (
                finding.class,
                finding.ranks.clone(),
                finding.summary.clone(),
            );
            if seen.insert(key) {
                finding.counterexample = Some(schedule.to_json());
                report.findings.push(finding);
            }
        }
        // DPOR race analysis: add backtrack picks the races demand.
        add_backtracks(&mut path, &decisions, &steps);
        // Retire the leaf and advance to the next unexplored branch.
        let mut advanced = false;
        while let Some(d) = path.len().checked_sub(1) {
            let taken = path[d].taken;
            path[d].tried.insert(taken);
            let next = loop {
                let candidate = path[d]
                    .backtrack
                    .iter()
                    .copied()
                    .find(|p| !path[d].tried.contains(p));
                let Some(p) = candidate else { break None };
                let bound_ok = match opts.preemption_bound {
                    None => true,
                    Some(bound) => {
                        let inherited: usize = path[..d]
                            .iter()
                            .map(|n| usize::from(n.preempts(n.taken)))
                            .sum();
                        inherited + usize::from(path[d].preempts(p)) <= bound
                    }
                };
                if bound_ok {
                    break Some(p);
                }
                path[d].tried.insert(p);
                let stats = report.schedules.as_mut().expect("set above");
                stats.bounded_skips += 1;
                stats.exhaustive = false;
            };
            if let Some(p) = next {
                path[d].taken = p;
                path.truncate(d + 1);
                advanced = true;
                break;
            }
            let node = path.pop().expect("nonempty");
            let stats = report.schedules.as_mut().expect("set above");
            stats.pruned += (node.alts - node.tried.len()) as u64;
        }
        if !advanced {
            break;
        }
    }
    crate::analyze::dedup(&mut report.findings);
    report
}

/// Explores an async SPMD closure (the gallery entry point): runs it
/// under [`mp::run_controlled_coop`] once per schedule.
pub fn explore<R, F, Fut>(n: usize, label: &str, opts: &ExploreOptions, f: F) -> Report
where
    F: Fn(mp::Comm) -> Fut,
    Fut: Future<Output = R>,
{
    explore_with(label, opts, |guided| {
        let checked = mp::run_controlled_coop(n, opts.settings.clone(), guided, &f);
        RunOutcome {
            logs: vec![checked.log],
            panics: checked.panics,
        }
    })
}

/// Replays one recorded schedule through an arbitrary runner, strictly:
/// the run must hit exactly the recorded choice points. Returns the
/// findings of that single run (counterexamples re-attached), or an
/// error describing the divergence.
pub fn replay_with<F>(schedule: &Schedule, mut run_one: F) -> Result<Report, String>
where
    F: FnMut(Arc<Guided>) -> RunOutcome,
{
    let _quiet = PoisonSilence::new();
    let guided = Arc::new(Guided::replaying(schedule.picks()));
    let outcome = run_one(Arc::clone(&guided));
    if let Some(divergence) = guided.divergence() {
        return Err(format!(
            "schedule for {:?} did not replay: {divergence}",
            schedule.target
        ));
    }
    let replayed = guided.trace();
    if replayed.len() < schedule.decisions.len() {
        return Err(format!(
            "schedule for {:?} did not replay: run hit {} choice point(s), schedule has {}",
            schedule.target,
            replayed.len(),
            schedule.decisions.len()
        ));
    }
    let mut report = Report {
        runs: 1,
        ..Report::default()
    };
    for log in &outcome.logs {
        report.events += log.events.iter().map(|v| v.len() as u64).sum::<u64>();
        report.dropped += log.dropped.iter().sum::<u64>();
        if !report.seeds.contains(&log.seed) {
            report.seeds.push(log.seed);
        }
        report.findings.extend(analyze::analyze(log));
    }
    for (rank, msg) in &outcome.panics {
        report.findings.push(Finding::new(
            FindingClass::RankPanic,
            vec![*rank],
            format!("rank {rank} panicked"),
            msg.clone(),
        ));
    }
    for finding in &mut report.findings {
        finding.counterexample = Some(schedule.to_json());
    }
    crate::analyze::dedup(&mut report.findings);
    Ok(report)
}

/// Replays one recorded schedule against an async SPMD closure.
pub fn replay<R, F, Fut>(schedule: &Schedule, settings: Settings, f: F) -> Result<Report, String>
where
    F: Fn(mp::Comm) -> Fut,
    Fut: Future<Output = R>,
{
    let n = schedule.world;
    replay_with(schedule, |guided| {
        let checked = mp::run_controlled_coop(n, settings.clone(), guided, &f);
        RunOutcome {
            logs: vec![checked.log],
            panics: checked.panics,
        }
    })
}

/// The DPOR core: finds racing step pairs in the just-executed trace
/// and adds the alternatives that would reorder them to the governing
/// decisions' backtrack sets.
fn add_backtracks(path: &mut [Node], decisions: &[DecisionRec], steps: &[StepRec]) {
    // Ready decision governing each step (the decision whose pick
    // scheduled it), and the latest decision at-or-before each step.
    let mut decision_at: BTreeMap<usize, usize> = BTreeMap::new();
    for (d, rec) in decisions.iter().enumerate() {
        if rec.kind == DecisionKind::Ready {
            decision_at.insert(rec.at_step, d);
        }
    }
    let clocks = vector_clocks(steps);
    for j in 0..steps.len() {
        for i in 0..j {
            if steps[i].world != steps[j].world
                || steps[i].rank == steps[j].rank
                || steps[i].touched.is_disjoint(&steps[j].touched)
            {
                continue;
            }
            // Happens-before check: step i is ordered before j when j's
            // clock has seen i's tick on i's rank.
            let hb = clocks[j]
                .get(steps[i].rank)
                .is_some_and(|&seen| seen >= clocks[i][steps[i].rank]);
            if hb {
                continue;
            }
            // A race: try scheduling j's rank at (or before) step i.
            let target = match decision_at.get(&i) {
                Some(&d) => Some((d, true)),
                // No choice point exactly at i: back off to the latest
                // earlier one and branch it fully (conservative).
                None => decision_at.range(..i).next_back().map(|(_, &d)| (d, false)),
            };
            let Some((d, exact)) = target else { continue };
            let node = &mut path[d];
            let alt = if exact {
                node.ready.iter().position(|&r| r == steps[j].rank)
            } else {
                None
            };
            match alt {
                Some(pos) => {
                    node.backtrack.insert(pos);
                }
                None => {
                    node.backtrack.extend(0..node.alts);
                }
            }
        }
    }
}

/// Per-step vector clocks over program order (per rank, per world) plus
/// matched send→receive edges, paired per lane in FIFO order.
fn vector_clocks(steps: &[StepRec]) -> Vec<Vec<u64>> {
    let n = steps.iter().map(|s| s.rank + 1).max().unwrap_or(0);
    // Current clock per (world, rank).
    let mut current: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
    // Unmatched send steps per (world, sender, receiver, comm, tag).
    let mut lanes: BTreeMap<(usize, usize, usize, u32, u32), VecDeque<usize>> = BTreeMap::new();
    let mut clocks = Vec::with_capacity(steps.len());
    for (j, step) in steps.iter().enumerate() {
        let mut clock = current
            .get(&(step.world, step.rank))
            .cloned()
            .unwrap_or_else(|| vec![0; n]);
        for &(receiver, src, comm, tag) in &step.recvs {
            let lane = (step.world, src, receiver, comm, tag);
            if let Some(sender_step) = lanes.get_mut(&lane).and_then(VecDeque::pop_front) {
                let sent: &Vec<u64> = &clocks[sender_step];
                for (c, s) in clock.iter_mut().zip(sent) {
                    *c = (*c).max(*s);
                }
            }
        }
        clock[step.rank] += 1;
        for &(sender, dst, comm, tag) in &step.sends {
            lanes
                .entry((step.world, sender, dst, comm, tag))
                .or_default()
                .push_back(j);
        }
        current.insert((step.world, step.rank), clock.clone());
        clocks.push(clock);
    }
    clocks
}
