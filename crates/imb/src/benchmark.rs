//! The IMB 2.3 benchmark catalogue used in the paper: two single-transfer
//! benchmarks, two parallel-transfer benchmarks and the collective
//! benchmarks of Figs. 6-15.

use std::fmt;

use harness::{MetricKind, Mode, Record, Stats, Suite};

/// An Intel MPI Benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Single transfer: strict ping-pong between two processes.
    PingPong,
    /// Single transfer: ping-pong "obstructed by oncoming messages".
    PingPing,
    /// Parallel transfer: periodic chain, send right / receive left.
    Sendrecv,
    /// Parallel transfer: exchange with both chain neighbours.
    Exchange,
    /// Collective: `MPI_Barrier`.
    Barrier,
    /// Collective: `MPI_Bcast`.
    Bcast,
    /// Collective: `MPI_Allgather`.
    Allgather,
    /// Collective: `MPI_Allgatherv`.
    Allgatherv,
    /// Collective: `MPI_Alltoall`.
    Alltoall,
    /// Collective: `MPI_Reduce`.
    Reduce,
    /// Collective: `MPI_Allreduce`.
    Allreduce,
    /// Collective: `MPI_Reduce_scatter`.
    ReduceScatter,
}

/// IMB benchmark classification (paper Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Single Transfer Benchmarks: one message between two processes.
    SingleTransfer,
    /// Parallel Transfer Benchmarks: concurrent pattern activity.
    ParallelTransfer,
    /// Collective Benchmarks: all processes participate.
    Collective,
}

impl Benchmark {
    /// All benchmarks, in the paper's presentation order (the "11 MPI
    /// communication functions", plus PingPing which IMB bundles with
    /// PingPong as the second single-transfer case).
    pub const ALL: [Benchmark; 12] = [
        Benchmark::PingPong,
        Benchmark::PingPing,
        Benchmark::Sendrecv,
        Benchmark::Exchange,
        Benchmark::Barrier,
        Benchmark::Bcast,
        Benchmark::Allgather,
        Benchmark::Allgatherv,
        Benchmark::Alltoall,
        Benchmark::Reduce,
        Benchmark::Allreduce,
        Benchmark::ReduceScatter,
    ];

    /// The benchmark's IMB class.
    pub fn class(self) -> Class {
        match self {
            Benchmark::PingPong | Benchmark::PingPing => Class::SingleTransfer,
            Benchmark::Sendrecv | Benchmark::Exchange => Class::ParallelTransfer,
            _ => Class::Collective,
        }
    }

    /// What the paper's figure for this benchmark plots.
    pub fn metric(self) -> MetricKind {
        match self {
            Benchmark::PingPong
            | Benchmark::PingPing
            | Benchmark::Sendrecv
            | Benchmark::Exchange => MetricKind::BandwidthMBs,
            _ => MetricKind::TimeUs,
        }
    }

    /// Whether the benchmark takes a message size (Barrier does not).
    pub fn sized(self) -> bool {
        self != Benchmark::Barrier
    }

    /// Minimum number of processes.
    pub fn min_procs(self) -> usize {
        match self.class() {
            Class::SingleTransfer => 2,
            _ => 1,
        }
    }

    /// IMB's bandwidth accounting: payload multiplier per reported byte
    /// (PingPong 1x, Sendrecv 2x, Exchange 4x).
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            Benchmark::PingPong | Benchmark::PingPing => 1.0,
            Benchmark::Sendrecv => 2.0,
            Benchmark::Exchange => 4.0,
            _ => 0.0,
        }
    }

    /// The benchmark's IMB name (also the [`Record::benchmark`] identity).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::PingPong => "PingPong",
            Benchmark::PingPing => "PingPing",
            Benchmark::Sendrecv => "Sendrecv",
            Benchmark::Exchange => "Exchange",
            Benchmark::Barrier => "Barrier",
            Benchmark::Bcast => "Bcast",
            Benchmark::Allgather => "Allgather",
            Benchmark::Allgatherv => "Allgatherv",
            Benchmark::Alltoall => "Alltoall",
            Benchmark::Reduce => "Reduce",
            Benchmark::Allreduce => "Allreduce",
            Benchmark::ReduceScatter => "Reduce_scatter",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// IMB's bandwidth accounting for one call time: the transferred payload
/// (times the benchmark's factor) over the one-way time, in MB/s.
/// PingPong's reported time is the full round trip, so IMB halves it.
pub(crate) fn bandwidth_mbs_from_secs(benchmark: Benchmark, bytes: u64, t_secs: f64) -> f64 {
    let t_one_way = if benchmark == Benchmark::PingPong {
        t_secs / 2.0
    } else {
        t_secs
    };
    benchmark.bandwidth_factor().max(1.0) * bytes as f64 / t_one_way / 1e6
}

/// Builds the unified [`Record`] for one IMB measurement: the headline
/// value is the max-rank time for time-metric benchmarks and the IMB
/// bandwidth (computed from the max-rank time) for transfer benchmarks.
pub(crate) fn record(
    benchmark: Benchmark,
    mode: Mode,
    machine: &'static str,
    procs: usize,
    bytes: u64,
    stats: Stats,
) -> Record {
    let metric = benchmark.metric();
    let value = match metric {
        MetricKind::BandwidthMBs => bandwidth_mbs_from_secs(benchmark, bytes, stats.t_max_us / 1e6),
        _ => stats.t_max_us,
    };
    Record {
        benchmark: benchmark.name(),
        suite: Suite::Imb,
        mode,
        machine,
        procs,
        threads: 1,
        bytes: benchmark.sized().then_some(bytes),
        metric,
        value,
        stats,
        passed: true,
    }
}

/// IMB's standard message-size grid: 0, 1, 2, 4, ..., 4194304 bytes.
pub fn standard_sizes() -> Vec<u64> {
    let mut v = vec![0u64];
    let mut s = 1u64;
    while s <= 4 * 1024 * 1024 {
        v.push(s);
        s <<= 1;
    }
    v
}

/// IMB's repetition-count rule: 1000 iterations, scaled down for large
/// messages to bound total time. Delegates to the harness policy so the
/// rule has one definition.
pub fn default_repetitions(bytes: u64) -> usize {
    harness::RepetitionPolicy::Imb.repetitions(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_the_paper() {
        assert_eq!(Benchmark::ALL.len(), 12);
        let collectives = Benchmark::ALL
            .iter()
            .filter(|b| b.class() == Class::Collective)
            .count();
        assert_eq!(collectives, 8, "Figs. 6-12 and 15");
    }

    #[test]
    fn metrics_match_figures() {
        // Figs. 13-14 plot MB/s; Figs. 6-12 and 15 plot us/call.
        assert_eq!(Benchmark::Sendrecv.metric(), MetricKind::BandwidthMBs);
        assert_eq!(Benchmark::Exchange.metric(), MetricKind::BandwidthMBs);
        assert_eq!(Benchmark::Alltoall.metric(), MetricKind::TimeUs);
        assert_eq!(Benchmark::Barrier.metric(), MetricKind::TimeUs);
    }

    #[test]
    fn size_grid_is_imb_standard() {
        let sizes = standard_sizes();
        assert_eq!(sizes[0], 0);
        assert_eq!(sizes[1], 1);
        assert_eq!(*sizes.last().unwrap(), 4 * 1024 * 1024);
        assert_eq!(sizes.len(), 24);
    }

    #[test]
    fn repetition_rule_decreases() {
        assert_eq!(default_repetitions(1024), 1000);
        assert!(default_repetitions(1 << 20) < default_repetitions(1 << 14));
        assert_eq!(default_repetitions(4 << 20), 20);
    }

    #[test]
    fn bandwidth_factors() {
        assert_eq!(Benchmark::Exchange.bandwidth_factor(), 4.0);
        assert_eq!(Benchmark::Sendrecv.bandwidth_factor(), 2.0);
        assert_eq!(Benchmark::PingPong.bandwidth_factor(), 1.0);
    }

    #[test]
    fn record_identity_uses_imb_names() {
        let r = record(
            Benchmark::ReduceScatter,
            Mode::Native,
            "host",
            4,
            1024,
            Stats::deterministic(2.0),
        );
        assert_eq!(r.benchmark, "Reduce_scatter");
        assert_eq!(r.bytes, Some(1024));
        assert_eq!(r.value, 2.0);
        let b = record(
            Benchmark::Barrier,
            Mode::Native,
            "host",
            4,
            0,
            Stats::deterministic(2.0),
        );
        assert_eq!(b.bytes, None, "Barrier is unsized");
    }
}
