//! The IMB 2.3 benchmark catalogue used in the paper: two single-transfer
//! benchmarks, two parallel-transfer benchmarks and the collective
//! benchmarks of Figs. 6-15.

use std::fmt;

/// An Intel MPI Benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Single transfer: strict ping-pong between two processes.
    PingPong,
    /// Single transfer: ping-pong "obstructed by oncoming messages".
    PingPing,
    /// Parallel transfer: periodic chain, send right / receive left.
    Sendrecv,
    /// Parallel transfer: exchange with both chain neighbours.
    Exchange,
    /// Collective: `MPI_Barrier`.
    Barrier,
    /// Collective: `MPI_Bcast`.
    Bcast,
    /// Collective: `MPI_Allgather`.
    Allgather,
    /// Collective: `MPI_Allgatherv`.
    Allgatherv,
    /// Collective: `MPI_Alltoall`.
    Alltoall,
    /// Collective: `MPI_Reduce`.
    Reduce,
    /// Collective: `MPI_Allreduce`.
    Allreduce,
    /// Collective: `MPI_Reduce_scatter`.
    ReduceScatter,
}

/// IMB benchmark classification (paper Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Single Transfer Benchmarks: one message between two processes.
    SingleTransfer,
    /// Parallel Transfer Benchmarks: concurrent pattern activity.
    ParallelTransfer,
    /// Collective Benchmarks: all processes participate.
    Collective,
}

/// What the benchmark reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Time per call in microseconds (the smaller the better).
    TimeUs,
    /// Bandwidth in MB/s.
    Bandwidth,
}

impl Benchmark {
    /// All benchmarks, in the paper's presentation order (the "11 MPI
    /// communication functions", plus PingPing which IMB bundles with
    /// PingPong as the second single-transfer case).
    pub const ALL: [Benchmark; 12] = [
        Benchmark::PingPong,
        Benchmark::PingPing,
        Benchmark::Sendrecv,
        Benchmark::Exchange,
        Benchmark::Barrier,
        Benchmark::Bcast,
        Benchmark::Allgather,
        Benchmark::Allgatherv,
        Benchmark::Alltoall,
        Benchmark::Reduce,
        Benchmark::Allreduce,
        Benchmark::ReduceScatter,
    ];

    /// The benchmark's IMB class.
    pub fn class(self) -> Class {
        match self {
            Benchmark::PingPong | Benchmark::PingPing => Class::SingleTransfer,
            Benchmark::Sendrecv | Benchmark::Exchange => Class::ParallelTransfer,
            _ => Class::Collective,
        }
    }

    /// What the paper's figure for this benchmark plots.
    pub fn metric(self) -> Metric {
        match self {
            Benchmark::PingPong
            | Benchmark::PingPing
            | Benchmark::Sendrecv
            | Benchmark::Exchange => Metric::Bandwidth,
            _ => Metric::TimeUs,
        }
    }

    /// Whether the benchmark takes a message size (Barrier does not).
    pub fn sized(self) -> bool {
        self != Benchmark::Barrier
    }

    /// Minimum number of processes.
    pub fn min_procs(self) -> usize {
        match self.class() {
            Class::SingleTransfer => 2,
            _ => 1,
        }
    }

    /// IMB's bandwidth accounting: payload multiplier per reported byte
    /// (PingPong 1x, Sendrecv 2x, Exchange 4x).
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            Benchmark::PingPong | Benchmark::PingPing => 1.0,
            Benchmark::Sendrecv => 2.0,
            Benchmark::Exchange => 4.0,
            _ => 0.0,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Benchmark::PingPong => "PingPong",
            Benchmark::PingPing => "PingPing",
            Benchmark::Sendrecv => "Sendrecv",
            Benchmark::Exchange => "Exchange",
            Benchmark::Barrier => "Barrier",
            Benchmark::Bcast => "Bcast",
            Benchmark::Allgather => "Allgather",
            Benchmark::Allgatherv => "Allgatherv",
            Benchmark::Alltoall => "Alltoall",
            Benchmark::Reduce => "Reduce",
            Benchmark::Allreduce => "Allreduce",
            Benchmark::ReduceScatter => "Reduce_scatter",
        };
        f.write_str(name)
    }
}

/// IMB's standard message-size grid: 0, 1, 2, 4, ..., 4194304 bytes.
pub fn standard_sizes() -> Vec<u64> {
    let mut v = vec![0u64];
    let mut s = 1u64;
    while s <= 4 * 1024 * 1024 {
        v.push(s);
        s <<= 1;
    }
    v
}

/// IMB's repetition-count rule: 1000 iterations, scaled down for large
/// messages to bound total time.
pub fn default_repetitions(bytes: u64) -> usize {
    match bytes {
        0..=4096 => 1000,
        4097..=65536 => 640,
        65537..=1048576 => 80,
        _ => 20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_the_paper() {
        assert_eq!(Benchmark::ALL.len(), 12);
        let collectives = Benchmark::ALL
            .iter()
            .filter(|b| b.class() == Class::Collective)
            .count();
        assert_eq!(collectives, 8, "Figs. 6-12 and 15");
    }

    #[test]
    fn metrics_match_figures() {
        // Figs. 13-14 plot MB/s; Figs. 6-12 and 15 plot us/call.
        assert_eq!(Benchmark::Sendrecv.metric(), Metric::Bandwidth);
        assert_eq!(Benchmark::Exchange.metric(), Metric::Bandwidth);
        assert_eq!(Benchmark::Alltoall.metric(), Metric::TimeUs);
        assert_eq!(Benchmark::Barrier.metric(), Metric::TimeUs);
    }

    #[test]
    fn size_grid_is_imb_standard() {
        let sizes = standard_sizes();
        assert_eq!(sizes[0], 0);
        assert_eq!(sizes[1], 1);
        assert_eq!(*sizes.last().unwrap(), 4 * 1024 * 1024);
        assert_eq!(sizes.len(), 24);
    }

    #[test]
    fn repetition_rule_decreases() {
        assert_eq!(default_repetitions(1024), 1000);
        assert!(default_repetitions(1 << 20) < default_repetitions(1 << 14));
        assert_eq!(default_repetitions(4 << 20), 20);
    }

    #[test]
    fn bandwidth_factors() {
        assert_eq!(Benchmark::Exchange.bandwidth_factor(), 4.0);
        assert_eq!(Benchmark::Sendrecv.bandwidth_factor(), 2.0);
        assert_eq!(Benchmark::PingPong.bandwidth_factor(), 1.0);
    }
}
