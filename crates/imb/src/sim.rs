//! Simulated IMB measurements: the same benchmarks priced on a
//! [`machines::Machine`] model via the schedule generators. This is what
//! regenerates Figs. 6-15.

use harness::{MetricKind, Mode, Record, Stats, Suite};
use machines::{ClusterSim, Machine};
use mp::sched;
use simnet::Schedule;

use crate::benchmark::{bandwidth_mbs_from_secs, Benchmark};

/// The communication schedule of one benchmark invocation.
pub fn schedule_for(benchmark: Benchmark, procs: usize, bytes: u64) -> Schedule {
    match benchmark {
        Benchmark::PingPong => sched::p2p::ping_pong(bytes),
        Benchmark::PingPing => sched::p2p::ping_ping(bytes),
        Benchmark::Sendrecv => sched::p2p::sendrecv(procs, bytes),
        Benchmark::Exchange => sched::p2p::exchange(procs, bytes),
        Benchmark::Barrier => sched::barrier::auto(procs),
        Benchmark::Bcast => sched::bcast::auto(procs, 0, bytes),
        Benchmark::Allgather => sched::allgather::auto(procs, bytes),
        Benchmark::Allgatherv => sched::allgatherv::auto(&vec![bytes; procs]),
        Benchmark::Alltoall => sched::alltoall::auto(procs, bytes),
        Benchmark::Reduce => sched::reduce::auto(procs, 0, bytes, 8),
        Benchmark::Allreduce => sched::allreduce::auto(procs, bytes, 8),
        Benchmark::ReduceScatter => {
            // Mirror the native run exactly (see `imb::native`): the
            // X-byte vector is split as f64 words, `words / p` each with
            // the remainder spread over the leading ranks, and
            // `Comm::reduce_scatter` always dispatches to the pairwise
            // algorithm for per-rank counts.
            let words = bytes / 8;
            let p = procs as u64;
            let counts_bytes: Vec<u64> = (0..p)
                .map(|i| (words / p + u64::from(i < words % p)) * 8)
                .collect();
            sched::reduce_scatter::pairwise(&counts_bytes)
        }
    }
}

/// Prices one benchmark invocation on `machine` at `procs` ranks.
/// Returns a [`Record`] in the same shape as a native run (per-call
/// time; min = avg = max since the model is deterministic).
pub fn simulate(machine: &Machine, benchmark: Benchmark, procs: usize, bytes: u64) -> Record {
    assert!(
        procs >= benchmark.min_procs(),
        "{benchmark} needs more ranks"
    );
    // Single-transfer benchmarks only ever involve the first two ranks.
    let sched_procs = match benchmark.class() {
        crate::benchmark::Class::SingleTransfer => 2,
        _ => procs,
    };
    let sim = ClusterSim::new(machine, sched_procs);
    let schedule = schedule_for(benchmark, sched_procs, bytes);
    // IMB reports the average over many iterations; the cold first pass
    // over-counts start-up skew, so measure the steady-state (marginal)
    // cost of a second pass after a warm-up.
    let warm = sim.run(&schedule);
    let t = sim.run(&schedule) - warm;
    let t_us = t.as_us();

    // The headline bandwidth is computed from `t.as_secs()` directly (not
    // the us-scaled stats) so the figure CSVs stay bit-identical with the
    // pre-harness outputs.
    let metric = benchmark.metric();
    let value = match metric {
        MetricKind::BandwidthMBs => bandwidth_mbs_from_secs(benchmark, bytes, t.as_secs()),
        _ => t_us,
    };

    Record {
        benchmark: benchmark.name(),
        suite: Suite::Imb,
        mode: Mode::Simulated,
        machine: machine.name,
        procs,
        threads: 1,
        bytes: benchmark.sized().then_some(bytes),
        metric,
        value,
        stats: Stats::deterministic(t_us),
        passed: true,
    }
}

/// The paper's processor-count grid for the IMB figures: powers of two
/// from 2 up to the installation's size (576 rather than 512 for the NEC
/// SX-8, as in the paper's runs).
pub fn proc_grid(machine: &Machine) -> Vec<usize> {
    let mut grid = Vec::new();
    let mut p = 2;
    while p <= machine.max_cpus && p <= 512 {
        grid.push(p);
        p *= 2;
    }
    if machine.max_cpus == 576 {
        grid.push(576);
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use machines::systems::*;
    use simnet::units::MIB;

    #[test]
    fn every_benchmark_simulates_on_every_machine() {
        for m in all_variants() {
            for b in Benchmark::ALL {
                let p = 8.min(m.max_cpus);
                let meas = simulate(&m, b, p, 4096);
                assert!(meas.t_max_us() > 0.0, "{b} on {}", m.name);
            }
        }
    }

    #[test]
    fn fig7_allreduce_vector_systems_win_at_1mb() {
        // "Both vector systems are clearly the winner, with NEC SX-8
        // superior to Cray X1" (Fig. 7); worst is the Opteron/Myrinet.
        let p = 16;
        let sx8 = simulate(&nec_sx8(), Benchmark::Allreduce, p, MIB).t_max_us();
        let x1 = simulate(&cray_x1_msp(), Benchmark::Allreduce, p, MIB).t_max_us();
        let opteron = simulate(&cray_opteron(), Benchmark::Allreduce, p, MIB).t_max_us();
        let xeon = simulate(&dell_xeon(), Benchmark::Allreduce, p, MIB).t_max_us();
        assert!(sx8 < x1, "SX-8 {sx8} !< X1 {x1}");
        assert!(x1 < xeon, "X1 {x1} !< Xeon {xeon}");
        assert!(xeon < opteron, "Xeon {xeon} !< Opteron {opteron}");
    }

    #[test]
    fn fig12_alltoall_ordering_at_1mb() {
        // Fig. 12: NEC SX-8 > Cray X1 > SGI Altix BX2 > Dell Xeon >
        // Cray Opteron (time: smaller is better in that order).
        let p = 16;
        let t = |m: &machines::Machine| simulate(m, Benchmark::Alltoall, p, MIB).t_max_us();
        let sx8 = t(&nec_sx8());
        let x1 = t(&cray_x1_msp());
        let bx2 = t(&altix_bx2());
        let xeon = t(&dell_xeon());
        let opt = t(&cray_opteron());
        assert!(
            sx8 < x1 && x1 < bx2 && bx2 < xeon && xeon < opt,
            "ordering violated: sx8={sx8} x1={x1} bx2={bx2} xeon={xeon} opt={opt}"
        );
    }

    #[test]
    fn fig13_sendrecv_two_proc_anchors() {
        // Paper: SX-8 47.4 GB/s, Cray X1 (SSP) 7.6 GB/s at 2 processes.
        let sx8 = simulate(&nec_sx8(), Benchmark::Sendrecv, 2, MIB)
            .bandwidth_mbs()
            .unwrap();
        assert!((sx8 - 47_400.0).abs() / 47_400.0 < 0.2, "SX-8 {sx8} MB/s");
        let x1 = simulate(&cray_x1_ssp(), Benchmark::Sendrecv, 2, MIB)
            .bandwidth_mbs()
            .unwrap();
        assert!((x1 - 7_600.0).abs() / 7_600.0 < 0.25, "X1 SSP {x1} MB/s");
    }

    #[test]
    fn fig6_barrier_grows_with_procs() {
        let m = dell_xeon();
        let t8 = simulate(&m, Benchmark::Barrier, 8, 0).t_max_us();
        let t128 = simulate(&m, Benchmark::Barrier, 128, 0).t_max_us();
        assert!(t128 > t8);
    }

    #[test]
    fn proc_grid_respects_installation_sizes() {
        assert_eq!(proc_grid(&cray_opteron()), vec![2, 4, 8, 16, 32, 64, 128]);
        let sx8 = proc_grid(&nec_sx8());
        assert_eq!(*sx8.last().unwrap(), 576);
        assert!(proc_grid(&altix_bx2()).contains(&512));
    }
}
