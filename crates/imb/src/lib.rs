//! `imb` — the Intel MPI Benchmarks (IMB 2.3) subset evaluated in the
//! paper: PingPong, PingPing, Sendrecv, Exchange, Barrier, Bcast,
//! Allgather, Allgatherv, Alltoall, Reduce, Allreduce and Reduce_scatter.
//!
//! Each benchmark runs *natively* on the [`mp`] runtime
//! ([`native::run_native`], IMB timing conventions: warm-up, synchronised
//! timed loop, min/avg/max over ranks, root rotation) and is *simulated*
//! against any [`machines::Machine`] model ([`sim::simulate`]) to
//! regenerate the paper's Figs. 6-15. Every mode returns the workspace's
//! unified [`harness::Record`].
//!
//! ```
//! use imb::{Benchmark, native};
//!
//! let m = native::run_native(Benchmark::Allreduce, 4, 4096, 5);
//! assert!(m.t_max_us() > 0.0);
//! ```

pub mod benchmark;
pub mod ext;
pub mod native;
pub mod sim;
pub mod virtual_run;

pub use benchmark::{default_repetitions, standard_sizes, Benchmark, Class};
pub use ext::{ExtBenchmark, ExtMeasurement, SyncScheme};
pub use harness::{MetricKind, Mode, Record, Stats};
pub use native::{run_native, run_native_with};
pub use virtual_run::{run_virtual, run_virtual_with, run_virtual_with_threads};
