//! IMB-EXT: the one-sided (MPI-2 RMA) benchmarks — the study the paper's
//! conclusion announces as future work ("one-sided (GET/PUT) MPI
//! communication functions with three synchronization schemes").
//!
//! Mirrors IMB-EXT's structure: `Unidir_Put`/`Unidir_Get` (one origin,
//! passive partner), `Bidir_Put`/`Bidir_Get` (both ranks acting as
//! origins simultaneously) and `Accumulate`, each timed over a chosen
//! synchronisation scheme.

use std::fmt;

use harness::Runner;
use mp::{Comm, Op, Window};

/// An IMB-EXT benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExtBenchmark {
    /// One rank puts to a passive partner.
    UnidirPut,
    /// One rank gets from a passive partner.
    UnidirGet,
    /// Both ranks put simultaneously.
    BidirPut,
    /// Both ranks get simultaneously.
    BidirGet,
    /// MPI_Accumulate (sum) into the partner's window.
    Accumulate,
}

impl ExtBenchmark {
    /// All IMB-EXT benchmarks.
    pub const ALL: [ExtBenchmark; 5] = [
        ExtBenchmark::UnidirPut,
        ExtBenchmark::UnidirGet,
        ExtBenchmark::BidirPut,
        ExtBenchmark::BidirGet,
        ExtBenchmark::Accumulate,
    ];
}

impl fmt::Display for ExtBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExtBenchmark::UnidirPut => "Unidir_Put",
            ExtBenchmark::UnidirGet => "Unidir_Get",
            ExtBenchmark::BidirPut => "Bidir_Put",
            ExtBenchmark::BidirGet => "Bidir_Get",
            ExtBenchmark::Accumulate => "Accumulate",
        })
    }
}

/// The three MPI-2 synchronisation schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SyncScheme {
    /// Collective `MPI_Win_fence` epochs.
    Fence,
    /// Post-start-complete-wait (generalised active target).
    Pscw,
    /// Passive-target lock/unlock.
    Lock,
}

impl SyncScheme {
    /// All three schemes, in the order the paper lists them.
    pub const ALL: [SyncScheme; 3] = [SyncScheme::Fence, SyncScheme::Pscw, SyncScheme::Lock];
}

impl fmt::Display for SyncScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyncScheme::Fence => "fence",
            SyncScheme::Pscw => "pscw",
            SyncScheme::Lock => "lock",
        })
    }
}

/// One IMB-EXT measurement.
#[derive(Clone, Copy, Debug)]
pub struct ExtMeasurement {
    /// Which benchmark.
    pub benchmark: ExtBenchmark,
    /// Which synchronisation scheme.
    pub scheme: SyncScheme,
    /// Message bytes per epoch.
    pub bytes: u64,
    /// Time per epoch (max over ranks), microseconds.
    pub t_us: f64,
    /// Achieved bandwidth, MB/s (payload bytes over epoch time).
    pub mbs: f64,
}

/// Runs one IMB-EXT benchmark on ranks 0 and 1 of `comm` (other ranks
/// participate in the collective window operations only).
pub fn run_on(
    comm: &Comm,
    benchmark: ExtBenchmark,
    scheme: SyncScheme,
    bytes: u64,
    iters: usize,
) -> ExtMeasurement {
    assert!(comm.size() >= 2, "IMB-EXT needs at least two ranks");
    let words = (bytes / 8).max(1) as usize;
    let win = Window::create::<f64>(comm, words);
    let me = comm.rank();
    let data = vec![1.25f64; words];

    // One epoch of the chosen scheme around the access.
    let epoch = |win: &Window, origin_active: bool| {
        match scheme {
            SyncScheme::Fence => {
                if origin_active {
                    access(win, benchmark, me, &data);
                }
                win.fence();
            }
            SyncScheme::Pscw => {
                // Symmetric epoch (works for unidirectional and
                // bidirectional benchmarks): expose first (non-blocking
                // post), then open the access epoch, access, and close
                // both sides.
                let partner = 1 - me;
                win.post(&[partner]);
                win.start(&[partner]);
                if origin_active {
                    access(win, benchmark, me, &data);
                }
                win.complete(&[partner]);
                win.wait(&[partner]);
            }
            SyncScheme::Lock => {
                if origin_active {
                    let partner = 1 - me;
                    let _guard = win.lock(partner);
                    access(win, benchmark, me, &data);
                }
            }
        }
    };
    fn access(win: &Window, benchmark: ExtBenchmark, me: usize, data: &[f64]) {
        let partner = 1 - me;
        match benchmark {
            ExtBenchmark::UnidirPut | ExtBenchmark::BidirPut => win.put(data, partner, 0),
            ExtBenchmark::UnidirGet | ExtBenchmark::BidirGet => {
                let mut tmp = vec![0.0f64; data.len()];
                win.get(&mut tmp, partner, 0);
            }
            ExtBenchmark::Accumulate => win.accumulate(data, partner, 0, Op::Sum),
        }
    }

    let active = match benchmark {
        ExtBenchmark::BidirPut | ExtBenchmark::BidirGet => me < 2,
        _ => me == 0,
    };
    let participant = me < 2;

    // Warm up, synchronise, time — the harness runner's IMB convention.
    let per_call_us = Runner::fixed(iters).time_collective(comm, iters, |_| {
        if participant || scheme == SyncScheme::Fence {
            epoch(&win, active && participant);
        }
    });
    let t = per_call_us / 1e6;

    let mut reduced = [if participant { t } else { 0.0 }];
    comm.allreduce(&mut reduced, Op::Max);
    let t = reduced[0];
    ExtMeasurement {
        benchmark,
        scheme,
        bytes,
        t_us: t * 1e6,
        mbs: bytes as f64 / t / 1e6,
    }
}

/// Spawns a fresh 2-rank world and runs one IMB-EXT measurement.
pub fn run_native(
    benchmark: ExtBenchmark,
    scheme: SyncScheme,
    bytes: u64,
    iters: usize,
) -> ExtMeasurement {
    mp::run(2, |comm| run_on(comm, benchmark, scheme, bytes, iters))[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_under_every_scheme() {
        for b in ExtBenchmark::ALL {
            for s in SyncScheme::ALL {
                let m = run_native(b, s, 4096, 3);
                assert!(m.t_us > 0.0, "{b}/{s}");
                assert!(m.mbs > 0.0, "{b}/{s}");
            }
        }
    }

    #[test]
    fn put_actually_transfers_data() {
        mp::run(2, |comm| {
            let win = Window::create::<f64>(comm, 8);
            win.fence();
            if comm.rank() == 0 {
                win.put(&[9.5; 8], 1, 0);
            }
            win.fence();
            if comm.rank() == 1 {
                let mut got = [0.0f64; 8];
                win.get(&mut got, 1, 0);
                assert_eq!(got, [9.5; 8]);
            }
        });
    }

    #[test]
    fn larger_messages_take_longer() {
        let small = run_native(ExtBenchmark::UnidirPut, SyncScheme::Fence, 1 << 10, 10);
        let large = run_native(ExtBenchmark::UnidirPut, SyncScheme::Fence, 1 << 22, 3);
        assert!(large.t_us > small.t_us, "{large:?} vs {small:?}");
    }

    #[test]
    fn schemes_have_distinct_overheads() {
        // Lock (no partner round trips) should not be slower than PSCW
        // (two sync message pairs per epoch) at tiny sizes... on a real
        // network; in-process both are cheap, so just assert they all
        // complete and report sane numbers.
        for s in SyncScheme::ALL {
            let m = run_native(ExtBenchmark::UnidirPut, s, 8, 50);
            assert!(m.t_us.is_finite() && m.t_us > 0.0);
        }
    }
}

/// Builds the 2-rank communication schedule of one EXT epoch (access +
/// synchronisation) for the fabric simulator. One-sided accesses are
/// RDMA-like single transfers; `get` costs a small request plus the data
/// response; synchronisation contributes the zero-byte handshakes of the
/// chosen scheme.
pub fn schedule_for(benchmark: ExtBenchmark, scheme: SyncScheme, bytes: u64) -> simnet::Schedule {
    use simnet::{Round, Transfer};
    let mut s = simnet::Schedule::new(2);

    // Epoch-opening synchronisation.
    match scheme {
        SyncScheme::Fence => {
            // Dissemination barrier over two ranks: one exchange.
            s.push(Round::of(vec![
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 0,
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes: 0,
                },
            ]));
        }
        SyncScheme::Pscw => {
            // post: target -> origin.
            s.push(Round::of(vec![Transfer {
                src: 1,
                dst: 0,
                bytes: 0,
            }]));
        }
        SyncScheme::Lock => {
            // Lock acquisition round trip.
            s.push(Round::of(vec![Transfer {
                src: 0,
                dst: 1,
                bytes: 0,
            }]));
            s.push(Round::of(vec![Transfer {
                src: 1,
                dst: 0,
                bytes: 0,
            }]));
        }
    }

    // The access(es).
    match benchmark {
        ExtBenchmark::UnidirPut => {
            s.push(Round::of(vec![Transfer {
                src: 0,
                dst: 1,
                bytes,
            }]));
        }
        ExtBenchmark::UnidirGet => {
            s.push(Round::of(vec![Transfer {
                src: 0,
                dst: 1,
                bytes: 8,
            }]));
            s.push(Round::of(vec![Transfer {
                src: 1,
                dst: 0,
                bytes,
            }]));
        }
        ExtBenchmark::BidirPut => {
            s.push(Round::of(vec![
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes,
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes,
                },
            ]));
        }
        ExtBenchmark::BidirGet => {
            s.push(Round::of(vec![
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 8,
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes: 8,
                },
            ]));
            s.push(Round::of(vec![
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes,
                },
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes,
                },
            ]));
        }
        ExtBenchmark::Accumulate => {
            s.push(simnet::Round {
                transfers: vec![Transfer {
                    src: 0,
                    dst: 1,
                    bytes,
                }],
                work: vec![simnet::LocalWork { rank: 1, bytes }],
            });
        }
    }

    // Epoch-closing synchronisation.
    match scheme {
        SyncScheme::Fence => {
            s.push(Round::of(vec![
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 0,
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes: 0,
                },
            ]));
        }
        SyncScheme::Pscw => {
            // complete: origin -> target.
            s.push(Round::of(vec![Transfer {
                src: 0,
                dst: 1,
                bytes: 0,
            }]));
        }
        SyncScheme::Lock => {
            // Unlock notification.
            s.push(Round::of(vec![Transfer {
                src: 0,
                dst: 1,
                bytes: 0,
            }]));
        }
    }
    s
}

/// Prices one EXT epoch on a machine model. The two ranks land on
/// distinct nodes (inter-node RMA, the interesting case).
pub fn simulate(
    machine: &machines::Machine,
    benchmark: ExtBenchmark,
    scheme: SyncScheme,
    bytes: u64,
) -> ExtMeasurement {
    // Place the two ranks on different nodes by simulating one rank per
    // node: a 2-rank cluster on a machine with cpus >= 2 per node would
    // be intra-node, so spread with a stride-sized world.
    let stride = machine.node.cpus;
    let world = stride + 1; // ranks 0 and `stride` are on nodes 0 and 1
    let sim = machines::ClusterSim::new(machine, world.min(machine.max_cpus));
    let base = schedule_for(benchmark, scheme, bytes);
    // Re-target rank 1 -> rank `stride` when the machine packs >= 2 CPUs
    // per node (keeps the schedule inter-node).
    let mut sched = simnet::Schedule::new(sim.nranks());
    let map = |r: usize| {
        if r == 0 {
            0
        } else {
            stride.min(sim.nranks() - 1)
        }
    };
    for round in &base.rounds {
        sched.push(simnet::Round {
            transfers: round
                .transfers
                .iter()
                .map(|t| simnet::Transfer {
                    src: map(t.src),
                    dst: map(t.dst),
                    bytes: t.bytes,
                })
                .collect(),
            work: round
                .work
                .iter()
                .map(|w| simnet::LocalWork {
                    rank: map(w.rank),
                    bytes: w.bytes,
                })
                .collect(),
        });
    }
    let warm = sim.run(&sched);
    let t = (sim.run(&sched) - warm).as_secs();
    ExtMeasurement {
        benchmark,
        scheme,
        bytes,
        t_us: t * 1e6,
        mbs: bytes as f64 / t / 1e6,
    }
}

#[cfg(test)]
mod sim_tests {
    use super::*;

    #[test]
    fn schedules_validate_for_all_combinations() {
        for b in ExtBenchmark::ALL {
            for s in SyncScheme::ALL {
                let sched = schedule_for(b, s, 1 << 20);
                sched.validate().unwrap();
                assert!(sched.total_bytes() >= 1 << 20, "{b}/{s}");
            }
        }
    }

    #[test]
    fn get_costs_more_than_put() {
        // A get is a round trip; a put is one way.
        let m = machines::systems::dell_xeon();
        let put = simulate(&m, ExtBenchmark::UnidirPut, SyncScheme::Lock, 1 << 20);
        let get = simulate(&m, ExtBenchmark::UnidirGet, SyncScheme::Lock, 1 << 20);
        assert!(get.t_us > put.t_us);
    }

    #[test]
    fn lock_pays_the_acquisition_round_trip() {
        // Passive-target lock adds a full request/grant round trip that
        // the active-target schemes do not need at tiny sizes.
        let m = machines::systems::nec_sx8();
        let pscw = simulate(&m, ExtBenchmark::UnidirPut, SyncScheme::Pscw, 8);
        let lock = simulate(&m, ExtBenchmark::UnidirPut, SyncScheme::Lock, 8);
        assert!(lock.t_us > pscw.t_us, "{} vs {}", lock.t_us, pscw.t_us);
    }

    #[test]
    fn every_machine_prices_ext_epochs() {
        for m in machines::systems::all_variants() {
            let e = simulate(&m, ExtBenchmark::BidirPut, SyncScheme::Pscw, 65536);
            assert!(e.t_us > 0.0 && e.mbs > 0.0, "{}", m.name);
        }
    }
}
