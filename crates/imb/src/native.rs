//! Native execution of the IMB benchmarks on the `mp` runtime, following
//! IMB's measurement conventions via the shared [`harness::Runner`]:
//! warm-up, barrier-synchronised timed loop, per-rank average with
//! min/avg/max reported across ranks, and root rotation for rooted
//! collectives. Results come back as unified [`Record`]s.

use harness::{Mode, Record, Runner};
use mp::{Comm, Op};

use crate::benchmark::{record, Benchmark};

/// Runs one benchmark natively over a fresh `procs`-rank world with an
/// explicit iteration count.
pub fn run_native(benchmark: Benchmark, procs: usize, bytes: u64, iters: usize) -> Record {
    assert!(iters > 0, "need at least one iteration");
    run_native_with(benchmark, procs, bytes, &Runner::fixed(iters))
}

/// Runs one benchmark natively over a fresh `procs`-rank world, with the
/// iteration count chosen by `runner`'s repetition policy.
pub fn run_native_with(benchmark: Benchmark, procs: usize, bytes: u64, runner: &Runner) -> Record {
    assert!(
        procs >= benchmark.min_procs(),
        "{benchmark} needs more ranks"
    );
    let runner = *runner;
    let results = mp::run(procs, move |comm| {
        run_on_with(comm, benchmark, bytes, &runner)
    });
    results[0]
}

/// Runs one benchmark on an existing communicator with an explicit
/// iteration count. Collective across the communicator; every rank
/// returns the same record.
pub fn run_on(comm: &Comm, benchmark: Benchmark, bytes: u64, iters: usize) -> Record {
    assert!(iters > 0, "need at least one iteration");
    run_on_with(comm, benchmark, bytes, &Runner::fixed(iters))
}

/// Runs one benchmark on an existing communicator, with the iteration
/// count chosen by `runner`'s repetition policy (IMB's 1000/640/80/20
/// rule under [`Runner::standard`], scaled down under [`Runner::smoke`]).
pub fn run_on_with(comm: &Comm, benchmark: Benchmark, bytes: u64, runner: &Runner) -> Record {
    let iters = runner.repetitions(benchmark.sized().then_some(bytes));
    let mut state = BenchState::new(comm, benchmark, bytes);
    let per_call = runner.time_collective(comm, iters, |it| state.iterate(comm, it));
    let participated = state.participates(comm);
    let stats = Runner::rank_stats(comm, per_call, participated, iters);
    record(benchmark, Mode::Native, "host", comm.size(), bytes, stats)
}

/// Builds the preallocated state for one benchmark (shared with the
/// virtual-execution mode).
pub(crate) fn bench_state(comm: &Comm, benchmark: Benchmark, bytes: u64) -> BenchState {
    BenchState::new(comm, benchmark, bytes)
}

/// Runs one iteration of a benchmark (shared with virtual execution).
pub(crate) fn bench_iterate(state: &mut BenchState, comm: &Comm, iter: usize) {
    state.iterate(comm, iter);
}

/// Awaitable mirror of [`bench_iterate`], for cooperative rank tasks.
pub(crate) async fn bench_iterate_async(state: &mut BenchState, comm: &Comm, iter: usize) {
    state.iterate_async(comm, iter).await;
}

/// Preallocated buffers + the per-iteration body for one benchmark.
pub(crate) struct BenchState {
    benchmark: Benchmark,
    bytes: usize,
    sbuf: Vec<u8>,
    rbuf: Vec<u8>,
    fsend: Vec<f64>,
    frecv: Vec<f64>,
    counts: Vec<usize>,
}

impl BenchState {
    fn new(comm: &Comm, benchmark: Benchmark, bytes: u64) -> BenchState {
        let n = comm.size();
        let bytes = bytes as usize;
        let words = bytes / 8;
        let (sbuf, rbuf, fsend, frecv, counts) = match benchmark {
            Benchmark::PingPong | Benchmark::PingPing => {
                (vec![1u8; bytes], vec![0u8; bytes], vec![], vec![], vec![])
            }
            Benchmark::Sendrecv | Benchmark::Exchange => {
                (vec![1u8; bytes], vec![0u8; bytes], vec![], vec![], vec![])
            }
            Benchmark::Barrier => (vec![], vec![], vec![], vec![], vec![]),
            Benchmark::Bcast => (vec![1u8; bytes], vec![], vec![], vec![], vec![]),
            Benchmark::Allgather | Benchmark::Allgatherv => (
                vec![1u8; bytes],
                vec![0u8; bytes * n],
                vec![],
                vec![],
                vec![bytes; n],
            ),
            Benchmark::Alltoall => (
                vec![1u8; bytes * n],
                vec![0u8; bytes * n],
                vec![],
                vec![],
                vec![],
            ),
            Benchmark::Reduce | Benchmark::Allreduce => (
                vec![],
                vec![],
                vec![0.5f64; words],
                vec![0.0f64; words],
                vec![],
            ),
            Benchmark::ReduceScatter => {
                // X bytes reduced, X/N scattered; distribute remainders.
                let counts: Vec<usize> = (0..n)
                    .map(|i| words / n + usize::from(i < words % n))
                    .collect();
                let mine = counts[comm.rank()];
                (
                    vec![],
                    vec![],
                    vec![0.5f64; words],
                    vec![0.0f64; mine],
                    counts,
                )
            }
        };
        BenchState {
            benchmark,
            bytes,
            sbuf,
            rbuf,
            fsend,
            frecv,
            counts,
        }
    }

    /// Whether this rank takes part (single-transfer benchmarks only use
    /// the first two ranks; everything else is communicator-wide).
    fn participates(&self, comm: &Comm) -> bool {
        match self.benchmark {
            Benchmark::PingPong | Benchmark::PingPing => comm.rank() < 2,
            _ => true,
        }
    }

    fn iterate(&mut self, comm: &Comm, iter: usize) {
        mp::block_on(self.iterate_async(comm, iter));
    }

    async fn iterate_async(&mut self, comm: &Comm, iter: usize) {
        let n = comm.size();
        let me = comm.rank();
        const TAG: mp::Tag = 40;
        match self.benchmark {
            // The transfer benchmarks move opaque `MPI_BYTE` buffers, so
            // they use the raw byte path: one payload copy on the send
            // side, ownership transfer on the receive side.
            Benchmark::PingPong => {
                if me == 0 {
                    comm.send_raw(&self.sbuf, 1, TAG);
                    comm.recv_raw_async(&mut self.rbuf, 1, TAG).await;
                } else if me == 1 {
                    comm.recv_raw_async(&mut self.rbuf, 0, TAG).await;
                    comm.send_raw(&self.sbuf, 0, TAG);
                }
            }
            Benchmark::PingPing => {
                if me < 2 {
                    let peer = 1 - me;
                    comm.send_raw(&self.sbuf, peer, TAG);
                    comm.recv_raw_async(&mut self.rbuf, peer, TAG).await;
                }
            }
            Benchmark::Sendrecv => {
                let right = (me + 1) % n;
                let left = (me + n - 1) % n;
                comm.send_raw(&self.sbuf, right, TAG);
                comm.recv_raw_async(&mut self.rbuf, left, TAG).await;
            }
            Benchmark::Exchange => {
                // IMB semantics: both receives are pre-posted before the
                // sends, so incoming payloads match the posted-receive
                // table directly instead of queueing.
                let right = (me + 1) % n;
                let left = (me + n - 1) % n;
                let from_left = comm.irecv(left, TAG);
                let from_right = comm.irecv(right, TAG);
                comm.isend(&self.sbuf, left, TAG);
                comm.isend(&self.sbuf, right, TAG);
                from_left.wait_async(comm, &mut self.rbuf).await;
                from_right.wait_async(comm, &mut self.rbuf).await;
            }
            Benchmark::Barrier => comm.barrier_async().await,
            Benchmark::Bcast => comm.bcast_async(&mut self.sbuf, iter % n).await,
            Benchmark::Allgather => comm.allgather_async(&self.sbuf, &mut self.rbuf).await,
            Benchmark::Allgatherv => {
                comm.allgatherv_async(&self.sbuf, &mut self.rbuf, &self.counts)
                    .await
            }
            Benchmark::Alltoall => comm.alltoall_async(&self.sbuf, &mut self.rbuf).await,
            Benchmark::Reduce => {
                let root = iter % n;
                let recv = (me == root).then_some(self.frecv.as_mut_slice());
                comm.reduce_async(&self.fsend, recv, root, Op::Sum).await;
            }
            Benchmark::Allreduce => {
                self.frecv.copy_from_slice(&self.fsend);
                comm.allreduce_async(&mut self.frecv, Op::Sum).await;
            }
            Benchmark::ReduceScatter => {
                comm.reduce_scatter_async(&self.fsend, &mut self.frecv, &self.counts, Op::Sum)
                    .await;
            }
        }
        let _ = self.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;
    use harness::MetricKind;

    #[test]
    fn every_benchmark_runs_natively() {
        for b in Benchmark::ALL {
            let p = b.min_procs().max(4);
            let m = run_native(b, p, 4096, 3);
            assert!(m.t_max_us() > 0.0, "{b}: zero time");
            assert!(m.stats.is_ordered(), "{b}");
            assert_eq!(m.procs, p);
            assert_eq!(m.mode, Mode::Native);
            assert_eq!(m.benchmark, b.name());
            match b.metric() {
                MetricKind::BandwidthMBs => assert!(m.bandwidth_mbs().unwrap() > 0.0, "{b}"),
                _ => assert!(m.bandwidth_mbs().is_none(), "{b}"),
            }
        }
    }

    #[test]
    fn zero_byte_messages_work() {
        for b in [Benchmark::PingPong, Benchmark::Bcast, Benchmark::Alltoall] {
            let m = run_native(b, 2, 0, 2);
            assert!(m.t_max_us() >= 0.0);
        }
    }

    #[test]
    fn reduce_scatter_with_indivisible_sizes() {
        // 100 words over 3 ranks: counts 34/33/33.
        let m = run_native(Benchmark::ReduceScatter, 3, 800, 2);
        assert!(m.t_max_us() > 0.0);
    }

    #[test]
    fn barrier_ignores_message_size() {
        let m = run_native(Benchmark::Barrier, 4, 0, 5);
        assert!(m.t_max_us() > 0.0);
        assert_eq!(m.bytes, None);
    }

    #[test]
    fn pingpong_only_times_first_two_ranks() {
        let m = run_native(Benchmark::PingPong, 4, 1024, 3);
        assert!(m.t_min_us() > 0.0, "idle ranks must not drag the min to 0");
    }

    #[test]
    fn runner_policy_sets_the_iteration_count() {
        let m = run_native_with(Benchmark::Bcast, 2, 4 << 20, &Runner::smoke());
        assert_eq!(m.stats.repetitions, 3, "smoke rule at 4 MiB");
    }
}
