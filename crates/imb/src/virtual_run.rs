//! Virtual execution of the IMB benchmarks: the *real* benchmark code
//! (same per-iteration bodies as [`crate::native`]) running on a
//! modelled machine via [`mp::run_virtual`], timed by virtual clocks.
//!
//! This is the third mode beside native timing and schedule-replay
//! simulation; integration tests cross-validate it against
//! [`crate::sim::simulate`], closing the loop between "what the program
//! does" and "what the model prices".

use machines::{Machine, SharedClusterNet};

use crate::benchmark::{Benchmark, Metric};
use crate::native::Measurement;

/// Runs `benchmark` on `procs` ranks of the modelled `machine`,
/// executing the real benchmark code under virtual time.
pub fn run_virtual(
    machine: &Machine,
    benchmark: Benchmark,
    procs: usize,
    bytes: u64,
    iters: usize,
) -> Measurement {
    assert!(
        procs >= benchmark.min_procs(),
        "{benchmark} needs more ranks"
    );
    assert!(iters > 0);
    let net = SharedClusterNet::new(machine, procs);
    let (per_rank, _clocks) = mp::run_virtual(procs, Box::new(net), |comm| {
        let mut state = crate::native::bench_state(comm, benchmark, bytes);
        // Warm-up pass, then align clocks and time the loop virtually.
        crate::native::bench_iterate(&mut state, comm, 0);
        let t0 = comm.v_sync();
        for it in 0..iters {
            crate::native::bench_iterate(&mut state, comm, it);
        }
        let t1 = comm.v_sync();
        (t1 - t0).as_us() / iters as f64
    });
    let t_max = per_rank.iter().copied().fold(0.0, f64::max);
    let t_min = per_rank.iter().copied().fold(f64::INFINITY, f64::min);
    let t_avg = per_rank.iter().sum::<f64>() / per_rank.len() as f64;

    let bandwidth = match benchmark.metric() {
        Metric::Bandwidth => {
            let t_one_way = if benchmark == Benchmark::PingPong {
                t_max / 2.0
            } else {
                t_max
            } / 1e6;
            Some(benchmark.bandwidth_factor().max(1.0) * bytes as f64 / t_one_way / 1e6)
        }
        Metric::TimeUs => None,
    };
    Measurement {
        benchmark,
        procs,
        bytes,
        iterations: iters,
        t_min_us: t_min,
        t_avg_us: t_avg,
        t_max_us: t_max,
        bandwidth_mbs: bandwidth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machines::systems::{dell_xeon, nec_sx8};

    #[test]
    fn every_benchmark_runs_virtually() {
        let m = dell_xeon();
        for b in Benchmark::ALL {
            let p = b.min_procs().max(4);
            let meas = run_virtual(&m, b, p, 8192, 2);
            assert!(meas.t_max_us > 0.0, "{b}");
        }
    }

    #[test]
    fn virtual_times_reflect_the_machine_not_the_host() {
        // The same program on a 10x-faster fabric must report a smaller
        // virtual time, regardless of host speed.
        let sx8 = run_virtual(&nec_sx8(), Benchmark::Allreduce, 8, 1 << 20, 2);
        let xeon = run_virtual(&dell_xeon(), Benchmark::Allreduce, 8, 1 << 20, 2);
        assert!(
            sx8.t_max_us < xeon.t_max_us / 2.0,
            "SX-8 {} vs Xeon {}",
            sx8.t_max_us,
            xeon.t_max_us
        );
    }

    #[test]
    fn virtual_execution_tracks_schedule_simulation() {
        // The executed program and its generated schedule price within a
        // small factor of each other (they share the same pricing model;
        // differences come from cold-start and thread interleaving).
        let m = dell_xeon();
        for b in [Benchmark::Allreduce, Benchmark::Alltoall, Benchmark::Bcast] {
            let executed = run_virtual(&m, b, 8, 1 << 20, 3).t_max_us;
            let scheduled = crate::sim::simulate(&m, b, 8, 1 << 20).t_max_us;
            let ratio = executed / scheduled;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{b}: executed {executed} vs scheduled {scheduled} (ratio {ratio})"
            );
        }
    }
}
