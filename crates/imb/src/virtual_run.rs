//! Virtual execution of the IMB benchmarks: the *real* benchmark code
//! (same per-iteration bodies as [`crate::native`]) running on a
//! modelled machine via [`mp::run_virtual_coop`], timed by virtual
//! clocks. Each rank is a resumable cooperative task, not an OS
//! thread, so virtual worlds scale to tens of thousands of ranks; the
//! thread-backed engine survives as [`run_virtual_with_threads`] and
//! the parity tests assert both produce byte-identical records.
//!
//! This is the third mode beside native timing and schedule-replay
//! simulation; integration tests cross-validate it against
//! [`crate::sim::simulate`], closing the loop between "what the program
//! does" and "what the model prices".

use harness::{Mode, Record, Runner, Stats};
use machines::{Machine, SharedClusterNet};

use crate::benchmark::{record, Benchmark};

/// Runs `benchmark` on `procs` ranks of the modelled `machine` with an
/// explicit iteration count.
pub fn run_virtual(
    machine: &Machine,
    benchmark: Benchmark,
    procs: usize,
    bytes: u64,
    iters: usize,
) -> Record {
    assert!(iters > 0);
    run_virtual_with(machine, benchmark, procs, bytes, &Runner::fixed(iters))
}

/// Runs `benchmark` on `procs` ranks of the modelled `machine`,
/// executing the real benchmark code under virtual time, with the
/// iteration count chosen by `runner`'s repetition policy.
///
/// Ranks are cooperative tasks on [`mp::run_virtual_coop`], so world
/// sizes are bounded by memory rather than by OS threads.
pub fn run_virtual_with(
    machine: &Machine,
    benchmark: Benchmark,
    procs: usize,
    bytes: u64,
    runner: &Runner,
) -> Record {
    run_virtual_engine(machine, benchmark, procs, bytes, runner, true).0
}

/// Thread-backed variant of [`run_virtual_with`]: one OS thread per
/// rank, serialized by the run-queue baton. Kept as the reference
/// engine for the cooperative/threaded parity tests; prefer
/// [`run_virtual_with`] for real sweeps.
pub fn run_virtual_with_threads(
    machine: &Machine,
    benchmark: Benchmark,
    procs: usize,
    bytes: u64,
    runner: &Runner,
) -> Record {
    run_virtual_engine(machine, benchmark, procs, bytes, runner, false).0
}

/// Runs one benchmark under virtual time on the chosen engine and
/// returns the record together with the per-rank final virtual clocks —
/// the differential hook behind the cooperative/threaded parity tests.
pub fn run_virtual_clocked(
    machine: &Machine,
    benchmark: Benchmark,
    procs: usize,
    bytes: u64,
    runner: &Runner,
    cooperative: bool,
) -> (Record, Vec<simnet::Time>) {
    run_virtual_engine(machine, benchmark, procs, bytes, runner, cooperative)
}

fn run_virtual_engine(
    machine: &Machine,
    benchmark: Benchmark,
    procs: usize,
    bytes: u64,
    runner: &Runner,
    coop: bool,
) -> (Record, Vec<simnet::Time>) {
    assert!(
        procs >= benchmark.min_procs(),
        "{benchmark} needs more ranks"
    );
    let iters = runner.repetitions(benchmark.sized().then_some(bytes));
    let warmup = runner.warmup.max(1);
    let net = SharedClusterNet::new(machine, procs);
    let (per_rank, clocks) = if coop {
        mp::run_virtual_coop(procs, Box::new(net), move |comm| async move {
            let mut state = crate::native::bench_state(&comm, benchmark, bytes);
            // Warm-up pass(es), then align clocks and time the loop
            // virtually.
            for w in 0..warmup {
                crate::native::bench_iterate_async(&mut state, &comm, w).await;
            }
            let t0 = comm.v_sync_async().await;
            for it in 0..iters {
                crate::native::bench_iterate_async(&mut state, &comm, it).await;
            }
            let t1 = comm.v_sync_async().await;
            (t1 - t0).as_us() / iters as f64
        })
    } else {
        mp::run_virtual(procs, Box::new(net), move |comm| {
            let mut state = crate::native::bench_state(comm, benchmark, bytes);
            for w in 0..warmup {
                crate::native::bench_iterate(&mut state, comm, w);
            }
            let t0 = comm.v_sync();
            for it in 0..iters {
                crate::native::bench_iterate(&mut state, comm, it);
            }
            let t1 = comm.v_sync();
            (t1 - t0).as_us() / iters as f64
        })
    };
    let stats = Stats::across(&per_rank, iters);
    let rec = record(benchmark, Mode::Virtual, machine.name, procs, bytes, stats);
    (rec, clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use machines::systems::{dell_xeon, nec_sx8};

    #[test]
    fn every_benchmark_runs_virtually() {
        let m = dell_xeon();
        for b in Benchmark::ALL {
            let p = b.min_procs().max(4);
            let meas = run_virtual(&m, b, p, 8192, 2);
            assert!(meas.t_max_us() > 0.0, "{b}");
            assert_eq!(meas.mode, Mode::Virtual);
            assert_eq!(meas.machine, m.name);
        }
    }

    #[test]
    fn virtual_times_reflect_the_machine_not_the_host() {
        // The same program on a 10x-faster fabric must report a smaller
        // virtual time, regardless of host speed.
        let sx8 = run_virtual(&nec_sx8(), Benchmark::Allreduce, 8, 1 << 20, 2);
        let xeon = run_virtual(&dell_xeon(), Benchmark::Allreduce, 8, 1 << 20, 2);
        assert!(
            sx8.t_max_us() < xeon.t_max_us() / 2.0,
            "SX-8 {} vs Xeon {}",
            sx8.t_max_us(),
            xeon.t_max_us()
        );
    }

    #[test]
    fn virtual_execution_tracks_schedule_simulation() {
        // The executed program and its generated schedule price within a
        // small factor of each other (they share the same pricing model;
        // differences come from cold-start and thread interleaving).
        let m = dell_xeon();
        for b in [Benchmark::Allreduce, Benchmark::Alltoall, Benchmark::Bcast] {
            let executed = run_virtual(&m, b, 8, 1 << 20, 3).t_max_us();
            let scheduled = crate::sim::simulate(&m, b, 8, 1 << 20).t_max_us();
            let ratio = executed / scheduled;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{b}: executed {executed} vs scheduled {scheduled} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn virtual_pingpong_and_barrier_run_at_4096_ranks() {
        // High-rank smoke: 4096 cooperative ranks on the exascale
        // model — far past the host's thread budget, cheap as tasks.
        let m = machines::systems::exascale_cluster();
        for b in [Benchmark::PingPong, Benchmark::Barrier] {
            let rec = run_virtual(&m, b, 4096, 256, 1);
            assert!(rec.t_max_us() > 0.0, "{b}");
            assert_eq!(rec.procs, 4096);
            assert_eq!(rec.mode, Mode::Virtual);
        }
    }

    #[test]
    #[ignore = "release-scale: 65536 ranks; run with --ignored --release"]
    fn virtual_pingpong_runs_at_65536_ranks() {
        let m = machines::systems::exascale_cluster();
        let rec = run_virtual(&m, Benchmark::PingPong, 65_536, 256, 1);
        assert!(rec.t_max_us() > 0.0);
        assert_eq!(rec.procs, 65_536);
    }

    #[test]
    #[ignore = "release-scale: 65536 ranks; run with --ignored --release"]
    fn virtual_barrier_runs_at_65536_ranks() {
        let m = machines::systems::exascale_cluster();
        let rec = run_virtual(&m, Benchmark::Barrier, 65_536, 0, 1);
        assert!(rec.t_max_us() > 0.0);
        assert_eq!(rec.procs, 65_536);
    }

    #[test]
    fn native_and_virtual_records_share_identity() {
        let native = crate::native::run_native(Benchmark::PingPong, 2, 1024, 2);
        let virt = run_virtual(&dell_xeon(), Benchmark::PingPong, 2, 1024, 2);
        assert_eq!(native.identity(), virt.identity());
        assert_ne!(native.mode, virt.mode);
    }
}
