//! Regression tests for the hybrid-SMP pool mode guard: worker-pool
//! sizing must follow the execution mode, and cooperative / virtual
//! worlds must never fan out (a 4096-rank coop world spawning even one
//! worker per rank would oversubscribe the host by three orders of
//! magnitude).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serialises the tests that touch the process-wide thread override —
/// the test harness runs tests concurrently, and the override is global.
static PROCESS_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Every rank of a 4096-rank cooperative world must observe an ambient
/// pool of exactly 1 — even under a process-wide `--threads`-style
/// override — so kernels called from coop tasks run inline and never
/// spawn.
#[test]
fn coop_world_pins_pool_to_one_at_4096_ranks() {
    let _lock = PROCESS_OVERRIDE_LOCK.lock().unwrap();
    smp::pool::set_process_threads(8);
    let violations = AtomicUsize::new(0);
    let sizes = mp::run_coop(4096, |comm| {
        let violations = &violations;
        async move {
            let size = smp::Pool::current().size();
            if size != 1 {
                violations.fetch_add(1, Ordering::Relaxed);
            }
            // Exercise a real pool region from inside the coop task: it
            // must run inline on the executor thread.
            let mut parts = [0u32; 3];
            smp::Pool::current().run_parts(&mut parts, |i, p| *p = i as u32);
            let _ = comm.rank();
            size
        }
    });
    smp::pool::set_process_threads(0);
    assert_eq!(violations.load(Ordering::Relaxed), 0);
    assert_eq!(sizes.len(), 4096);
    assert!(sizes.iter().all(|&s| s == 1));
}

/// The baton-serialised virtual engine (legacy thread-backed path) gets
/// the same serial guard.
#[test]
fn virtual_world_pins_pool_to_one() {
    let machine = machines_stub();
    let (sizes, _clocks) = mp::run_virtual(8, machine, |comm| {
        let _ = comm.rank();
        smp::Pool::current().size()
    });
    assert!(sizes.iter().all(|&s| s == 1), "{sizes:?}");
}

/// Native ranks share the host cores evenly: with `n` ranks on a host
/// of `c` cores each rank gets `max(1, c / n)` workers (no
/// oversubscription when every rank's pool fans out at once).
#[test]
fn native_ranks_share_cores_evenly() {
    let _lock = PROCESS_OVERRIDE_LOCK.lock().unwrap();
    let cores = smp::topo::detect().online_cpus;
    for n in [1usize, 2, 4] {
        let sizes = mp::run(n, |comm| {
            let _ = comm.rank();
            smp::Pool::current().size()
        });
        for s in sizes {
            assert!(
                s >= 1 && s <= (cores / n).max(1).max(smp::tuned().threads),
                "n={n}: pool size {s} oversubscribes {cores} cores"
            );
        }
    }
}

/// Zero-latency stand-in network: enough to drive the baton engine.
fn machines_stub() -> Box<dyn mp::VirtualNet> {
    struct Net;
    impl mp::VirtualNet for Net {
        fn p2p(
            &self,
            _src: usize,
            _dst: usize,
            _bytes: u64,
            ready: simnet::Time,
        ) -> simnet::schedule::P2pCost {
            simnet::schedule::P2pCost {
                sender_done: ready,
                arrival: ready,
            }
        }
        fn compute(&self, _flops: f64, _eff: f64) -> simnet::Time {
            simnet::Time::ZERO
        }
        fn stream(&self, _bytes: f64) -> simnet::Time {
            simnet::Time::ZERO
        }
    }
    Box::new(Net)
}
