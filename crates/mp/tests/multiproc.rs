//! End-to-end multi-process worlds: the test binary re-execs itself as
//! the worker fleet.
//!
//! Each driver test launches `nprocs` copies of this very binary (via
//! [`mp::transport::launcher::Launcher`]) filtered down to the single
//! [`worker_entry`] test, with `MP_TEST_CASE` selecting the worker body.
//! The workers install the session from the environment, run the same
//! `mp::run` calls, and assert their resident ranks' results; the driver
//! asserts fleet success (or, for the deadlock case, the diagnosis).

use std::time::Duration;

use mp::transport::launcher::{FleetOutcome, Launcher};
use mp::transport::Backend;

/// Message sizes for the ping-pong sweep, in `u64` words: empty, tiny,
/// eager, and past the 32 KiB rendezvous threshold (which multi-process
/// sends must fall back from, eagerly, without corruption).
const PINGPONG_WORDS: &[usize] = &[0, 1, 128, 8192];

fn fleet(case: &str, backend: Backend, world: usize, nprocs: usize) -> Launcher {
    let exe = std::env::current_exe().expect("test binary path");
    Launcher::new(backend, world, nprocs, exe)
        .arg("worker_entry")
        .arg("--exact")
        .arg("--nocapture")
        .env("MP_TEST_CASE", case)
        .timeout(Duration::from_secs(120))
}

fn all_output(outcome: &FleetOutcome) -> String {
    outcome
        .procs
        .iter()
        .map(|p| format!("{}{}", p.stdout, p.stderr))
        .collect()
}

// ---------------------------------------------------------------------
// Worker bodies
// ---------------------------------------------------------------------

fn w_pingpong() {
    let results = mp::run(2, |comm| {
        let me = comm.rank();
        let mut moved = 0u64;
        for (t, &len) in PINGPONG_WORDS.iter().enumerate() {
            let tag = t as u32;
            if me == 0 {
                let data: Vec<u64> = (0..len as u64).map(|i| i * 3 + tag as u64).collect();
                comm.send(&data, 1, tag);
                let mut back = vec![0u64; len];
                comm.recv(&mut back, 1, tag);
                let want: Vec<u64> = data.iter().map(|x| x + 1).collect();
                assert_eq!(back, want, "echo at {len} words");
            } else {
                let mut buf = vec![0u64; len];
                comm.recv(&mut buf, 0, tag);
                for x in &mut buf {
                    *x += 1;
                }
                comm.send(&buf, 0, tag);
            }
            moved += len as u64;
        }
        moved
    });
    // One rank per process: exactly one resident result.
    assert_eq!(results, vec![PINGPONG_WORDS.iter().sum::<usize>() as u64]);
}

fn w_collectives() {
    let results = mp::run(4, |comm| {
        let n = comm.size() as u64;
        let r = comm.rank() as u64;
        let mut x = [r + 1];
        comm.allreduce(&mut x, mp::Op::Sum);
        assert_eq!(x[0], n * (n + 1) / 2);
        let mut b = [0u64; 3];
        if comm.rank() == 2 {
            b = [7, 8, 9];
        }
        comm.bcast(&mut b, 2);
        assert_eq!(b, [7, 8, 9]);
        let mut all = vec![0u64; n as usize];
        comm.allgather(&[r * r], &mut all);
        assert_eq!(all, vec![0, 1, 4, 9]);
        let send: Vec<u64> = (0..n).map(|d| r * 100 + d).collect();
        let mut recv = vec![0u64; n as usize];
        comm.alltoall(&send, &mut recv);
        let want: Vec<u64> = (0..n).map(|s| s * 100 + r).collect();
        assert_eq!(recv, want);
        comm.barrier();
        x[0]
    });
    for v in results {
        assert_eq!(v, 10);
    }
}

fn w_wildcard() {
    mp::run(4, |comm| {
        if comm.rank() == 0 {
            // Any-source receives must deliver exactly one message per
            // sender: the multiset of sources is {1, 2, 3}.
            let mut srcs = Vec::new();
            for _ in 1..4 {
                let (data, src, tag) = comm.recv_any::<u64>(None, Some(5));
                assert_eq!(tag, 5);
                assert_eq!(data, vec![src as u64 * 11]);
                srcs.push(src);
            }
            srcs.sort_unstable();
            assert_eq!(srcs, vec![1, 2, 3]);
        } else {
            comm.send(&[comm.rank() as u64 * 11], 0, 5);
        }
    });
}

fn w_epochs() {
    // Sequential epochs of one session: the flush barrier must keep the
    // worlds cleanly separated even though both use the same tags.
    for epoch in 0..3u64 {
        let results = mp::run(2, |comm| {
            let me = comm.rank();
            let peer = 1 - me;
            let mut got = [0u64];
            comm.sendrecv(&[me as u64 + epoch * 10], peer, &mut got, peer, 3);
            assert_eq!(got[0], peer as u64 + epoch * 10);
            got[0]
        });
        assert_eq!(results.len(), 1);
    }
}

fn w_resident_results() {
    // Under MP_RANK_PROCS=0,1,0,1 proc 0 hosts ranks {0, 2} and proc 1
    // hosts {1, 3}; run() returns exactly the resident results, in
    // ascending rank order.
    let me: usize = std::env::var("MP_PROC").unwrap().parse().unwrap();
    let results = mp::run(4, |comm| {
        let mut x = [comm.rank() as u64];
        comm.allreduce(&mut x, mp::Op::Max);
        assert_eq!(x[0], 3);
        comm.rank() as u64 * 10
    });
    let want = if me == 0 { vec![0, 20] } else { vec![10, 30] };
    assert_eq!(results, want);
}

fn w_deadlock() {
    // Head-to-head receives across processes: rank 0 (proc 0) waits on
    // rank 1 (proc 1) and vice versa. The cross-process detector must
    // assemble the cycle and poison both sides.
    mp::run(2, |comm| {
        let peer = 1 - comm.rank();
        let mut buf = [0u8];
        comm.recv(&mut buf, peer, 1);
    });
}

/// Dispatch point for worker processes. Under a normal `cargo test` run
/// (no `MP_TEST_CASE`), this is a no-op.
#[test]
fn worker_entry() {
    let Ok(case) = std::env::var("MP_TEST_CASE") else {
        return;
    };
    let proc = mp::transport::init_from_env().expect("worker requires a session environment");
    assert!(proc.nprocs() >= 1 && proc.index() < proc.nprocs());
    match case.as_str() {
        "pingpong" => w_pingpong(),
        "collectives" => w_collectives(),
        "wildcard" => w_wildcard(),
        "epochs" => w_epochs(),
        "resident_results" => w_resident_results(),
        "deadlock" => w_deadlock(),
        other => panic!("unknown MP_TEST_CASE {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Drivers: shm
// ---------------------------------------------------------------------

#[test]
fn shm_pingpong_across_sizes() {
    fleet("pingpong", Backend::Shm, 2, 2).run();
}

#[test]
fn shm_collectives_two_procs_four_ranks() {
    fleet("collectives", Backend::Shm, 4, 2).run();
}

#[test]
fn shm_wildcard_multiset() {
    fleet("wildcard", Backend::Shm, 4, 2).run();
}

#[test]
fn shm_sequential_epochs() {
    fleet("epochs", Backend::Shm, 2, 2).run();
}

#[test]
fn shm_round_robin_rank_mapping() {
    fleet("resident_results", Backend::Shm, 4, 2)
        .rank_procs(vec![0, 1, 0, 1])
        .run();
}

#[test]
fn shm_recv_cycle_is_diagnosed_across_processes() {
    let outcome = fleet("deadlock", Backend::Shm, 2, 2).spawn().wait();
    assert!(!outcome.success(), "a deadlocked fleet must not succeed");
    assert!(
        !outcome.timed_out,
        "the detector must fire well before the fleet deadline"
    );
    let output = all_output(&outcome);
    assert!(
        output.contains("wait-for cycle: 0 -> 1 -> 0")
            || output.contains("wait-for cycle: 1 -> 0 -> 1"),
        "diagnosis must name the cross-process cycle; got:\n{output}"
    );
    assert!(output.contains("blocked in receive"), "waits listed");
}

#[test]
fn shm_four_procs() {
    fleet("collectives", Backend::Shm, 4, 4).run();
}

// ---------------------------------------------------------------------
// Drivers: tcp (loopback)
// ---------------------------------------------------------------------

#[test]
fn tcp_pingpong_loopback() {
    fleet("pingpong", Backend::Tcp, 2, 2).run();
}

#[test]
fn tcp_collectives_and_barrier_loopback() {
    fleet("collectives", Backend::Tcp, 4, 2).run();
}

#[test]
fn tcp_sendrecv_epochs_loopback() {
    fleet("epochs", Backend::Tcp, 2, 2).run();
}

#[test]
fn tcp_wildcard_multiset_loopback() {
    fleet("wildcard", Backend::Tcp, 4, 2).run();
}
