//! Per-rank incoming-message queues with MPI-style (source, tag) matching.
//!
//! The mailbox is *indexed*: messages live in per-`(source, comm, tag)`
//! lanes (hash-addressed, FIFO within a lane — MPI's non-overtaking
//! guarantee by construction) and every message carries a global arrival
//! sequence number, so wildcard receives fall back to a scan over lane
//! fronts in true arrival order. Blocked receivers register in a
//! posted-receive table; a matching send hands its message directly to the
//! oldest matching posted receive and wakes *that receiver only* (each
//! posted receive owns its condvar), replacing the previous linear rescans
//! of one shared queue under `notify_all` thundering-herd wakeups.
//!
//! Posted receives may also carry a destination byte buffer sized to the
//! expected message: a large send that finds such a posted receive encodes
//! its payload straight into that buffer — the rendezvous fast path (see
//! [`rendezvous_send`](Mailbox::rendezvous_send)).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::check::{Event, Inspector, LaneInfo, WaitOn};
use crate::coop::{ScheduleController, WildcardCandidate};
use crate::datatype::Word;
use crate::msg::{Match, Message};
use crate::payload::Payload;

/// Wake interval of instrumented waits: short enough that a detector
/// poison is noticed promptly, long enough to stay off the hot path.
const INSTRUMENTED_WAIT_SLICE: Duration = Duration::from_millis(25);

/// Default for how long a blocking receive waits before declaring a
/// deadlock: generous in production builds, short under `cfg(test)` so a
/// deadlocked test fails in seconds instead of hanging CI for five
/// minutes per rank.
#[cfg(not(test))]
const DEFAULT_DEADLOCK_TIMEOUT_SECS: u64 = 300;
#[cfg(test)]
const DEFAULT_DEADLOCK_TIMEOUT_SECS: u64 = 20;

/// How long a blocking receive waits before declaring a deadlock.
///
/// A correct SPMD program never waits this long for an in-process message;
/// the timeout converts silent hangs into actionable panics. Overridable
/// via the `MP_DEADLOCK_TIMEOUT_SECS` environment variable, which is read
/// on *every* wait (not cached into a process-wide static): tests and
/// long-running drivers may legitimately adjust the timeout between runs,
/// and a stale first-read value would silently win. Unparsable values
/// fall back to the default.
pub(crate) fn deadlock_timeout() -> Duration {
    let secs = std::env::var("MP_DEADLOCK_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_DEADLOCK_TIMEOUT_SECS);
    Duration::from_secs(secs)
}

/// Lane address: (global source rank, packed comm id + tag).
type LaneKey = (usize, u64);

/// A queued message stamped with its global arrival order.
pub(crate) struct Arrived {
    seq: u64,
    msg: Message,
}

/// Hand-off cell owned by one posted receive. The sender fills it while
/// holding the mailbox lock and wakes exactly this receiver.
pub(crate) struct Handoff {
    state: Mutex<HandoffState>,
    ready: Condvar,
}

#[derive(Default)]
struct HandoffState {
    /// The matched message, once a sender delivers it.
    arrived: Option<Arrived>,
    /// A rendezvous buffer returned unused (the message arrived through
    /// the eager path instead); the receiver recycles it.
    spare: Option<Vec<u8>>,
    /// Waker of a cooperative task (or baton-serialised thread) blocked
    /// on this slot; the sender takes and fires it on fill.
    waker: Option<Waker>,
}

impl Handoff {
    fn new() -> Arc<Handoff> {
        Arc::new(Handoff {
            state: Mutex::new(HandoffState::default()),
            ready: Condvar::new(),
        })
    }

    /// Whether a sender has filled this slot (the deadlock detector
    /// probes this to rule out a wake already in flight).
    pub(crate) fn has_arrived(&self) -> bool {
        self.state.lock().arrived.is_some()
    }
}

/// One entry in the posted-receive table.
struct PostedRecv {
    id: u64,
    filter: Match,
    /// Rendezvous destination: a buffer of exactly the expected encoded
    /// size that a matching large send writes into directly.
    buf: Option<Vec<u8>>,
    slot: Arc<Handoff>,
}

#[derive(Default)]
struct Inner {
    /// Per-(source, comm+tag) FIFO lanes of unexpected messages.
    lanes: HashMap<LaneKey, VecDeque<Arrived>>,
    /// Global arrival counter (stamps wildcard ordering).
    seq: u64,
    /// Queued message count across all lanes.
    queued: usize,
    /// Posted receives in posting order (the MPI matching order).
    posted: Vec<PostedRecv>,
    next_posted_id: u64,
}

impl Inner {
    /// Removes and returns the oldest queued message matching `filter`,
    /// together with the number of distinct nonempty lanes that matched:
    /// O(1) lane pop for exact filters (candidates = 1), arrival-ordered
    /// scan over lane fronts for wildcards. A wildcard match with two or
    /// more candidate lanes depended on arrival order — the race the
    /// trace lint flags, and the choice point a schedule controller
    /// (`ctl` = controller + receiving rank) enumerates instead of
    /// always taking the oldest.
    fn take_queued(
        &mut self,
        filter: Match,
        ctl: Option<(&Arc<dyn ScheduleController>, usize)>,
    ) -> Option<(Arrived, u32)> {
        let (key, candidates): (LaneKey, u32) = if filter.is_exact() {
            let src = filter.src.expect("exact filter");
            let tag = filter.tag.expect("exact filter");
            let key = (src, crate::msg::pack_tag(filter.comm_id, tag));
            if !self.lanes.contains_key(&key) {
                return None;
            }
            (key, 1)
        } else if let Some((ctl, rank)) = ctl {
            // Controlled wildcard: materialise every matching lane front
            // in arrival order and let the controller pick. Index 0 (the
            // oldest) reproduces the default engine behaviour.
            let mut fronts: Vec<(u64, LaneKey)> = Vec::new();
            for ((src, full_tag), q) in &self.lanes {
                let Some(front) = q.front() else { continue };
                if !filter.accepts_parts(*src, *full_tag) {
                    continue;
                }
                fronts.push((front.seq, (*src, *full_tag)));
            }
            if fronts.is_empty() {
                return None;
            }
            fronts.sort_unstable_by_key(|&(seq, _)| seq);
            let idx = if fronts.len() >= 2 {
                let cands: Vec<WildcardCandidate> = fronts
                    .iter()
                    .map(|&(seq, (src, full_tag))| WildcardCandidate {
                        src,
                        comm: (full_tag >> 32) as u32,
                        tag: (full_tag & 0xFFFF_FFFF) as u32,
                        seq,
                    })
                    .collect();
                let pick = ctl.pick_wildcard(rank, &cands);
                assert!(
                    pick < cands.len(),
                    "controller wildcard pick {pick} out of range ({} candidates)",
                    cands.len()
                );
                pick
            } else {
                0
            };
            (fronts[idx].1, fronts.len() as u32)
        } else {
            // Wildcard: the oldest matching message overall is the oldest
            // among matching lanes' fronts (lanes are FIFO).
            let mut candidates = 0u32;
            let mut best: Option<(LaneKey, u64)> = None;
            for ((src, full_tag), q) in &self.lanes {
                let Some(front) = q.front() else { continue };
                if !filter.accepts_parts(*src, *full_tag) {
                    continue;
                }
                candidates += 1;
                let older = match best {
                    None => true,
                    Some((_, seq)) => front.seq < seq,
                };
                if older {
                    best = Some(((*src, *full_tag), front.seq));
                }
            }
            (best?.0, candidates)
        };
        match self.lanes.entry(key) {
            Entry::Occupied(mut lane) => {
                let arrived = lane.get_mut().pop_front()?;
                if lane.get().is_empty() {
                    lane.remove();
                }
                self.queued -= 1;
                Some((arrived, candidates))
            }
            Entry::Vacant(_) => None,
        }
    }

    /// Reinserts a previously-matched message at the front of its lane;
    /// its original arrival stamp keeps wildcard ordering exact. Only
    /// valid for a message that was the oldest match of its filter (which
    /// every [`take_queued`](Inner::take_queued)/hand-off result is).
    fn requeue_front(&mut self, arrived: Arrived) {
        let key = (arrived.msg.src, arrived.msg.full_tag);
        self.lanes.entry(key).or_default().push_front(arrived);
        self.queued += 1;
    }

    /// Registers a posted receive and returns its table id.
    fn register(&mut self, filter: Match, buf: Option<Vec<u8>>, slot: Arc<Handoff>) -> u64 {
        let id = self.next_posted_id;
        self.next_posted_id += 1;
        self.posted.push(PostedRecv {
            id,
            filter,
            buf,
            slot,
        });
        id
    }

    /// Removes a posted receive by id; false if a sender already matched
    /// (and therefore filled) it.
    fn deregister(&mut self, id: u64) -> bool {
        match self.posted.iter().position(|p| p.id == id) {
            Some(idx) => {
                self.posted.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Delivers `arrived` to the oldest matching posted receive, if any.
    /// Must be called before lane insertion so posted receives match in
    /// MPI order. Fills the hand-off (returning any unused rendezvous
    /// buffer with it) and wakes exactly that receiver.
    fn try_handoff(&mut self, arrived: Arrived) -> Result<(), Arrived> {
        let Some(idx) = self
            .posted
            .iter()
            .position(|p| p.filter.accepts(&arrived.msg))
        else {
            return Err(arrived);
        };
        let p = self.posted.remove(idx);
        let mut st = p.slot.state.lock();
        st.arrived = Some(arrived);
        st.spare = p.buf;
        let waker = st.waker.take();
        drop(st);
        if let Some(w) = waker {
            w.wake();
        }
        p.slot.ready.notify_one();
        Ok(())
    }

    fn enqueue(&mut self, msg: Message) {
        self.seq += 1;
        let arrived = Arrived { seq: self.seq, msg };
        if let Err(arrived) = self.try_handoff(arrived) {
            let key = (arrived.msg.src, arrived.msg.full_tag);
            self.lanes.entry(key).or_default().push_back(arrived);
            self.queued += 1;
        }
    }
}

/// A rank's incoming-message queue (see the module docs).
pub(crate) struct Mailbox {
    inner: Mutex<Inner>,
    /// The owning rank (0 for standalone test mailboxes).
    rank: usize,
    /// Instrumentation registry of a checked run, if any.
    inspector: Option<Arc<Inspector>>,
    /// Schedule controller of a controlled run, if any: picks wildcard
    /// matches and learns about posted receives.
    controller: Option<Arc<dyn ScheduleController>>,
}

/// A registered nonblocking receive: either the message was already
/// queued (taken immediately, arrival stamp kept so cancellation can
/// restore it exactly, candidate-lane count alongside), or a table entry
/// now waits for it. Opaque to callers; resolve with
/// [`Mailbox::complete`] or [`Mailbox::cancel`].
pub(crate) enum PostedHandle {
    Ready(Arrived, u32),
    Pending(Ticket),
}

/// Claim ticket for a pending posted receive.
pub(crate) struct Ticket {
    id: u64,
    slot: Arc<Handoff>,
}

impl Mailbox {
    /// A standalone uninstrumented mailbox (unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new() -> Mailbox {
        Mailbox::with_instrumentation(0, None, None)
    }

    /// A mailbox owned by `rank`, instrumented when `inspector` is set
    /// and schedule-controlled when `controller` is set.
    pub fn with_instrumentation(
        rank: usize,
        inspector: Option<Arc<Inspector>>,
        controller: Option<Arc<dyn ScheduleController>>,
    ) -> Mailbox {
        Mailbox {
            inner: Mutex::new(Inner::default()),
            rank,
            inspector,
            controller,
        }
    }

    /// The controller choice-point context of this mailbox, if any.
    fn ctl(&self) -> Option<(&Arc<dyn ScheduleController>, usize)> {
        self.controller.as_ref().map(|c| (c, self.rank))
    }

    /// Tells the controller this rank registered a posted receive — a
    /// mailbox effect a schedule explorer must treat as a dependency
    /// even before any message matches it.
    fn note_touch(&self) {
        if let Some(ctl) = &self.controller {
            ctl.note_touch(self.rank);
        }
    }

    /// The queued-but-unmatched messages per lane (deadlock diagnoses and
    /// the finalize leftover inventory), in deterministic order.
    pub fn inventory(&self) -> Vec<LaneInfo> {
        let inner = self.inner.lock();
        let mut out: Vec<LaneInfo> = inner
            .lanes
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|((src, full_tag), q)| LaneInfo {
                dst: self.rank,
                src: *src,
                comm: (full_tag >> 32) as u32,
                tag: (full_tag & 0xFFFF_FFFF) as u32,
                queued: q.len(),
                bytes: q.iter().map(|a| a.msg.data.len()).sum(),
            })
            .collect();
        out.sort_by_key(|l| (l.src, l.comm, l.tag));
        out
    }

    /// Records a matched receive into the event ring, if instrumented.
    fn record_recv(&self, arrived: &Arrived, filter: Match, candidates: u32) {
        if let Some(insp) = &self.inspector {
            insp.record(
                self.rank,
                Event::Recv {
                    src: arrived.msg.src,
                    comm: (arrived.msg.full_tag >> 32) as u32,
                    tag: (arrived.msg.full_tag & 0xFFFF_FFFF) as u32,
                    bytes: arrived.msg.data.len(),
                    wildcard: !filter.is_exact(),
                    candidates,
                },
            );
        }
    }

    /// Delivers a message (called from the sending rank's thread): direct
    /// hand-off to the oldest matching posted receive, else lane-enqueue.
    pub fn push(&self, msg: Message) {
        self.inner.lock().enqueue(msg);
    }

    /// Rendezvous fast path for large typed sends: if the oldest posted
    /// receive matching `(src, full_tag)` carries a destination buffer of
    /// exactly `words.len() * T::SIZE` bytes, encode `words` straight into
    /// it — one copy, no intermediate allocation — and wake that receiver.
    /// Returns false (and performs nothing) when no such posted receive
    /// exists; the caller then falls back to the eager path.
    ///
    /// Ordering safety: a matching posted receive exists only if no queued
    /// message matched its filter at post time, and any later matching
    /// arrival would itself have been handed to it — so the table entry
    /// found here cannot be overtaking queued traffic.
    pub fn rendezvous_send<T: Word>(
        &self,
        src: usize,
        full_tag: u64,
        words: &[T],
        arrival: Option<simnet::Time>,
    ) -> bool {
        let bytes = words.len() * T::SIZE;
        let mut inner = self.inner.lock();
        // The *oldest* matching entry is the one MPI matching would pick;
        // if it cannot take a rendezvous delivery we must not skip past it.
        let Some(idx) = inner
            .posted
            .iter()
            .position(|p| p.filter.accepts_parts(src, full_tag))
        else {
            return false;
        };
        if inner.posted[idx].buf.as_ref().map(Vec::len) != Some(bytes) {
            return false;
        }
        let p = inner.posted.remove(idx);
        let mut buf = p.buf.expect("checked above");
        T::encode_slice(words, &mut buf);
        inner.seq += 1;
        let arrived = Arrived {
            seq: inner.seq,
            msg: Message {
                src,
                full_tag,
                data: Payload::from_vec(buf),
                arrival,
            },
        };
        let mut st = p.slot.state.lock();
        st.arrived = Some(arrived);
        let waker = st.waker.take();
        drop(st);
        if let Some(w) = waker {
            w.wake();
        }
        p.slot.ready.notify_one();
        true
    }

    /// Registers a nonblocking receive: takes an already-queued match
    /// immediately, otherwise enters the posted-receive table so a future
    /// send (including a rendezvous send, when the caller supplies `buf`)
    /// can complete it before the receiver waits.
    pub fn post(&self, filter: Match, buf: Option<Vec<u8>>) -> PostedHandle {
        let mut inner = self.inner.lock();
        if let Some((arrived, candidates)) = inner.take_queued(filter, self.ctl()) {
            return PostedHandle::Ready(arrived, candidates);
        }
        let slot = Handoff::new();
        let id = inner.register(filter, buf, Arc::clone(&slot));
        drop(inner);
        self.note_touch();
        PostedHandle::Pending(Ticket { id, slot })
    }

    /// Cancels a posted receive. Any message it already matched is put
    /// back at the front of its lane with its original arrival stamp, as
    /// if the receive had never been posted.
    pub fn cancel(&self, handle: PostedHandle) {
        match handle {
            PostedHandle::Ready(arrived, _) => self.inner.lock().requeue_front(arrived),
            PostedHandle::Pending(ticket) => self.cancel_ticket(ticket),
        }
    }

    /// Blocks until the posted receive behind `ticket` is matched.
    /// `filter` is only used for wait registration and the deadlock
    /// diagnostic.
    ///
    /// Instrumented runs publish a wait edge first, then park in short
    /// slices, checking the detector's poison flag on every wake: a
    /// diagnosed deadlock unwinds this rank with the diagnosis instead of
    /// waiting out the wall-clock timeout, which is demoted to a backstop.
    pub fn wait_ticket(&self, ticket: Ticket, filter: Match) -> (Message, Option<Vec<u8>>) {
        assert!(
            !crate::coop::in_coop(),
            "mp: synchronous receive inside a cooperative task; use the async receive API"
        );
        if let Some((baton, rank)) = crate::coop::current_baton() {
            return self.wait_ticket_baton(ticket, filter, &baton, rank);
        }
        let Ticket { id, slot } = ticket;
        if let Some(insp) = &self.inspector {
            insp.begin_wait(
                self.rank,
                WaitOn::Recv {
                    comm: filter.comm_id,
                    src: filter.src,
                    tag: filter.tag,
                },
                Some(Arc::clone(&slot)),
            );
        }
        let mut waited = Duration::ZERO;
        let mut st = slot.state.lock();
        loop {
            if let Some(arrived) = st.arrived.take() {
                let spare = st.spare.take();
                drop(st);
                if let Some(insp) = &self.inspector {
                    insp.end_wait(self.rank);
                }
                // A handed-off message is the only candidate by
                // construction: had another queued message matched the
                // filter, it would have been taken at post time.
                self.record_recv(&arrived, filter, 1);
                return (arrived.msg, spare);
            }
            if let Some(insp) = &self.inspector {
                if let Some(diagnosis) = insp.poisoned() {
                    drop(st);
                    self.inner.lock().deregister(id);
                    panic!("{}{diagnosis}", crate::check::POISON_MARK);
                }
            }
            let timeout = deadlock_timeout();
            let slice = if self.inspector.is_some() {
                INSTRUMENTED_WAIT_SLICE.min(timeout)
            } else {
                timeout
            };
            if slot.ready.wait_for(&mut st, slice).timed_out() {
                waited += slice;
                if waited < timeout {
                    continue;
                }
                drop(st);
                let mut inner = self.inner.lock();
                if inner.deregister(id) {
                    // Still unmatched after the timeout: declare deadlock.
                    let queued = inner.queued;
                    drop(inner);
                    let mut lanes = String::new();
                    for lane in self.inventory() {
                        lanes.push_str("\n  ");
                        lanes.push_str(&lane.to_string());
                    }
                    panic!(
                        "mp: rank {} waited {}s for a message matching {filter:?}; \
                         likely deadlock ({} unmatched messages queued{}{}). Tune via \
                         MP_DEADLOCK_TIMEOUT_SECS.",
                        self.rank,
                        timeout.as_secs(),
                        queued,
                        if lanes.is_empty() { "" } else { ":" },
                        lanes,
                    );
                }
                // A sender matched us concurrently with the timeout; the
                // fill happened under the mailbox lock we just held, so
                // the hand-off is complete.
                drop(inner);
                st = slot.state.lock();
            }
        }
    }

    /// Baton-serialised wait: instead of parking on the hand-off condvar
    /// (which would wedge the whole serialised world — no other rank
    /// thread may run until this one yields), install a queue waker and
    /// hand the baton over. Re-granted only after a sender fills the
    /// slot and fires the waker; no lost wakeup is possible because the
    /// fill happens under the slot lock and no peer thread runs between
    /// the waker install and the baton hand-over.
    fn wait_ticket_baton(
        &self,
        ticket: Ticket,
        filter: Match,
        baton: &Arc<crate::coop::Baton>,
        rank: usize,
    ) -> (Message, Option<Vec<u8>>) {
        let Ticket { id: _, slot } = ticket;
        loop {
            let mut st = slot.state.lock();
            if let Some(arrived) = st.arrived.take() {
                let spare = st.spare.take();
                drop(st);
                self.record_recv(&arrived, filter, 1);
                return (arrived.msg, spare);
            }
            st.waker = Some(baton.waker_for(rank));
            drop(st);
            baton.block_current(rank);
        }
    }

    /// Removes and returns the oldest message matching `filter`, waiting
    /// until one arrives; also posts `buf` as a rendezvous destination
    /// while waiting (see [`rendezvous_send`](Mailbox::rendezvous_send)).
    /// Returns the message and, if the rendezvous buffer went unused, the
    /// buffer itself for recycling. On a rank thread the wait parks the
    /// thread; inside a cooperative task it is a yield point.
    pub async fn recv_posting_async(
        &self,
        filter: Match,
        buf: Option<Vec<u8>>,
    ) -> (Message, Option<Vec<u8>>) {
        let mut inner = self.inner.lock();
        if let Some((arrived, candidates)) = inner.take_queued(filter, self.ctl()) {
            drop(inner);
            self.record_recv(&arrived, filter, candidates);
            return (arrived.msg, buf);
        }
        let slot = Handoff::new();
        let id = inner.register(filter, buf, Arc::clone(&slot));
        drop(inner);
        self.note_touch();
        let ticket = Ticket { id, slot };
        if crate::coop::in_coop() {
            TicketWait::new(self, ticket, filter).await
        } else {
            self.wait_ticket(ticket, filter)
        }
    }

    /// Removes and returns the oldest message matching `filter`, waiting
    /// until one arrives. FIFO per (source, tag) pair (non-overtaking);
    /// wildcard filters match in global arrival order.
    pub async fn recv_async(&self, filter: Match) -> Message {
        self.recv_posting_async(filter, None).await.0
    }

    /// Blocking [`recv_async`](Mailbox::recv_async), for thread-based
    /// unit tests.
    #[cfg(test)]
    pub fn recv(&self, filter: Match) -> Message {
        crate::coop::block_on(self.recv_async(filter))
    }

    /// Blocking [`recv_posting_async`](Mailbox::recv_posting_async), for
    /// thread-based unit tests.
    #[cfg(test)]
    pub fn recv_posting(&self, filter: Match, buf: Option<Vec<u8>>) -> (Message, Option<Vec<u8>>) {
        crate::coop::block_on(self.recv_posting_async(filter, buf))
    }

    /// Resolves a posted receive: immediate for an already-matched one,
    /// waiting until a sender matches it otherwise.
    pub async fn complete_async(
        &self,
        handle: PostedHandle,
        filter: Match,
    ) -> (Message, Option<Vec<u8>>) {
        match handle {
            PostedHandle::Ready(arrived, candidates) => {
                self.record_recv(&arrived, filter, candidates);
                (arrived.msg, None)
            }
            PostedHandle::Pending(ticket) => {
                if crate::coop::in_coop() {
                    TicketWait::new(self, ticket, filter).await
                } else {
                    self.wait_ticket(ticket, filter)
                }
            }
        }
    }

    /// Cancels a pending posted receive. If a sender matched it in the
    /// meantime, the message is put back at the front of its lane (its
    /// original arrival stamp preserved), exactly as if it had never been
    /// matched.
    pub fn cancel_ticket(&self, ticket: Ticket) {
        let Ticket { id, slot } = ticket;
        let mut inner = self.inner.lock();
        if inner.deregister(id) {
            return;
        }
        let mut st = slot.state.lock();
        if let Some(arrived) = st.arrived.take() {
            drop(st);
            inner.requeue_front(arrived);
        }
    }

    /// Non-blocking variant: removes the oldest matching message if present.
    /// Exercised by tests and kept for `iprobe`-style extensions.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn try_recv(&self, filter: Match) -> Option<Message> {
        let taken = self.inner.lock().take_queued(filter, self.ctl());
        taken.map(|(arrived, candidates)| {
            self.record_recv(&arrived, filter, candidates);
            arrived.msg
        })
    }

    /// Number of queued (unmatched) messages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn pending(&self) -> usize {
        self.inner.lock().queued
    }
}

/// The cooperative executor's blocking point: a future that resolves
/// when the posted receive behind `ticket` is matched. Each poll checks
/// the detector poison first and publishes the wait edge *before*
/// probing the slot (the same lock order `check::diagnose` uses —
/// rank-state, then slot — so the two can never deadlock each other),
/// then either takes the arrival or parks its waker in the slot.
/// Dropping an unresolved wait cancels the posting, requeueing any
/// message it had already matched.
struct TicketWait<'a> {
    mailbox: &'a Mailbox,
    ticket: Option<Ticket>,
    filter: Match,
    registered_wait: bool,
}

impl<'a> TicketWait<'a> {
    fn new(mailbox: &'a Mailbox, ticket: Ticket, filter: Match) -> TicketWait<'a> {
        TicketWait {
            mailbox,
            ticket: Some(ticket),
            filter,
            registered_wait: false,
        }
    }
}

impl Future for TicketWait<'_> {
    type Output = (Message, Option<Vec<u8>>);

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(insp) = &this.mailbox.inspector {
            if let Some(diagnosis) = insp.poisoned() {
                let Ticket { id, .. } = this.ticket.take().expect("polled after completion");
                this.mailbox.inner.lock().deregister(id);
                panic!("{}{diagnosis}", crate::check::POISON_MARK);
            }
            if !this.registered_wait {
                let ticket = this.ticket.as_ref().expect("polled after completion");
                insp.begin_wait(
                    this.mailbox.rank,
                    WaitOn::Recv {
                        comm: this.filter.comm_id,
                        src: this.filter.src,
                        tag: this.filter.tag,
                    },
                    Some(Arc::clone(&ticket.slot)),
                );
                this.registered_wait = true;
            }
        }
        let ticket = this.ticket.as_ref().expect("polled after completion");
        let mut st = ticket.slot.state.lock();
        if let Some(arrived) = st.arrived.take() {
            let spare = st.spare.take();
            drop(st);
            if this.registered_wait {
                if let Some(insp) = &this.mailbox.inspector {
                    insp.end_wait(this.mailbox.rank);
                }
            }
            // Hand-offs have exactly one candidate by construction (see
            // wait_ticket).
            this.mailbox.record_recv(&arrived, this.filter, 1);
            this.ticket = None;
            return Poll::Ready((arrived.msg, spare));
        }
        st.waker = Some(cx.waker().clone());
        drop(st);
        Poll::Pending
    }
}

impl Drop for TicketWait<'_> {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket.take() {
            if self.registered_wait {
                if let Some(insp) = &self.mailbox.inspector {
                    insp.end_wait(self.mailbox.rank);
                }
            }
            self.mailbox.cancel_ticket(ticket);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::pack_tag;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn msg(src: usize, tag: u32, data: Vec<u8>) -> Message {
        Message {
            src,
            full_tag: pack_tag(0, tag),
            data: Payload::from_vec(data),
            arrival: None,
        }
    }

    fn exact(src: usize, tag: u32) -> Match {
        Match {
            comm_id: 0,
            src: Some(src),
            tag: Some(tag),
        }
    }

    fn any() -> Match {
        Match {
            comm_id: 0,
            src: None,
            tag: None,
        }
    }

    #[test]
    fn fifo_within_matching_pair() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, vec![1]));
        mb.push(msg(1, 5, vec![2]));
        assert_eq!(mb.recv(exact(1, 5)).data.as_slice(), &[1]);
        assert_eq!(mb.recv(exact(1, 5)).data.as_slice(), &[2]);
    }

    #[test]
    fn matching_skips_non_matching_messages() {
        let mb = Mailbox::new();
        mb.push(msg(2, 9, vec![9]));
        mb.push(msg(1, 5, vec![5]));
        assert_eq!(mb.recv(exact(1, 5)).data.as_slice(), &[5]);
        assert_eq!(mb.pending(), 1);
        assert_eq!(mb.recv(exact(2, 9)).data.as_slice(), &[9]);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mb = Mailbox::new();
        assert!(mb.try_recv(exact(0, 0)).is_none());
        mb.push(msg(0, 0, vec![]));
        assert!(mb.try_recv(exact(0, 0)).is_some());
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.recv(exact(3, 1)).data.into_vec());
        std::thread::sleep(Duration::from_millis(20));
        mb.push(msg(3, 1, vec![42]));
        assert_eq!(t.join().unwrap(), vec![42]);
    }

    #[test]
    fn deadlock_timeout_tracks_env_changes() {
        // Regression: the timeout used to be read once into a process-wide
        // OnceLock, so the *second* override below was silently ignored.
        let original = std::env::var("MP_DEADLOCK_TIMEOUT_SECS").ok();
        std::env::set_var("MP_DEADLOCK_TIMEOUT_SECS", "123");
        assert_eq!(super::deadlock_timeout().as_secs(), 123);
        std::env::set_var("MP_DEADLOCK_TIMEOUT_SECS", "77");
        assert_eq!(super::deadlock_timeout().as_secs(), 77);
        std::env::remove_var("MP_DEADLOCK_TIMEOUT_SECS");
        assert_eq!(super::deadlock_timeout().as_secs(), 20, "cfg(test) default");
        match original {
            Some(v) => std::env::set_var("MP_DEADLOCK_TIMEOUT_SECS", v),
            None => std::env::remove_var("MP_DEADLOCK_TIMEOUT_SECS"),
        }
    }

    #[test]
    fn wildcard_candidates_counted_for_race_detection() {
        use crate::check::{Event, Inspector, Settings};
        let insp = Arc::new(Inspector::new(1, Settings::default()));
        let mb = Mailbox::with_instrumentation(0, Some(Arc::clone(&insp)), None);
        mb.push(msg(1, 5, vec![1]));
        mb.push(msg(2, 6, vec![2]));
        assert_eq!(mb.recv(any()).src, 1, "oldest arrival wins");
        assert_eq!(mb.recv(any()).src, 2);
        let (events, _) = insp.drain_events();
        assert!(
            matches!(
                events[0][0],
                Event::Recv {
                    wildcard: true,
                    candidates: 2,
                    ..
                }
            ),
            "first wildcard receive had two candidate lanes: {:?}",
            events[0][0]
        );
        assert!(matches!(
            events[0][1],
            Event::Recv {
                wildcard: true,
                candidates: 1,
                ..
            }
        ));
    }

    #[test]
    fn wildcard_receive_takes_first_arrival() {
        let mb = Mailbox::new();
        mb.push(msg(7, 3, vec![7]));
        mb.push(msg(8, 4, vec![8]));
        assert_eq!(mb.recv(any()).src, 7);
        assert_eq!(mb.recv(any()).src, 8);
    }

    #[test]
    fn wildcard_arrival_order_across_lanes() {
        let mb = Mailbox::new();
        // Interleave three lanes; wildcard receives must replay exactly
        // the arrival order regardless of lane hashing.
        let order = [(4, 1), (2, 9), (4, 1), (9, 9), (2, 9), (4, 2)];
        for (i, (src, tag)) in order.iter().enumerate() {
            mb.push(msg(*src, *tag, vec![i as u8]));
        }
        for (i, (src, tag)) in order.iter().enumerate() {
            let m = mb.recv(any());
            assert_eq!(m.src, *src);
            assert_eq!((m.full_tag & 0xFFFF_FFFF) as u32, *tag);
            assert_eq!(m.data.as_slice(), &[i as u8]);
        }
    }

    #[test]
    fn posted_receive_gets_direct_handoff() {
        let mb = Mailbox::new();
        let PostedHandle::Pending(ticket) = mb.post(exact(1, 7), None) else {
            panic!("nothing queued yet");
        };
        mb.push(msg(1, 7, vec![3]));
        assert_eq!(mb.pending(), 0, "message must go to the posted receive");
        let (m, spare) = mb.wait_ticket(ticket, exact(1, 7));
        assert_eq!(m.data.as_slice(), &[3]);
        assert!(spare.is_none());
    }

    #[test]
    fn post_takes_already_queued_message() {
        let mb = Mailbox::new();
        mb.push(msg(1, 7, vec![4]));
        match mb.post(exact(1, 7), None) {
            PostedHandle::Ready(a, candidates) => {
                assert_eq!(a.msg.data.as_slice(), &[4]);
                assert_eq!(candidates, 1);
            }
            PostedHandle::Pending(_) => panic!("should match the queued message"),
        }
    }

    #[test]
    fn cancelling_a_ready_posted_receive_restores_order() {
        let mb = Mailbox::new();
        mb.push(msg(1, 7, vec![1]));
        mb.push(msg(1, 7, vec![2]));
        let handle = mb.post(exact(1, 7), None);
        assert!(matches!(handle, PostedHandle::Ready(..)));
        mb.cancel(handle);
        assert_eq!(mb.recv(exact(1, 7)).data.as_slice(), &[1]);
        assert_eq!(mb.recv(exact(1, 7)).data.as_slice(), &[2]);
    }

    #[test]
    fn posted_receives_match_in_posting_order() {
        let mb = Mailbox::new();
        let PostedHandle::Pending(t1) = mb.post(exact(1, 7), None) else {
            panic!()
        };
        let PostedHandle::Pending(t2) = mb.post(exact(1, 7), None) else {
            panic!()
        };
        mb.push(msg(1, 7, vec![1]));
        mb.push(msg(1, 7, vec![2]));
        assert_eq!(mb.wait_ticket(t1, exact(1, 7)).0.data.as_slice(), &[1]);
        assert_eq!(mb.wait_ticket(t2, exact(1, 7)).0.data.as_slice(), &[2]);
    }

    #[test]
    fn cancelled_posted_receive_requeues_its_message() {
        let mb = Mailbox::new();
        let PostedHandle::Pending(ticket) = mb.post(any(), None) else {
            panic!()
        };
        mb.push(msg(5, 1, vec![10]));
        mb.push(msg(5, 1, vec![11]));
        assert_eq!(mb.pending(), 1, "first message went to the posted receive");
        mb.cancel_ticket(ticket);
        assert_eq!(mb.pending(), 2);
        // Order restored: the handed-off message is back at the front.
        assert_eq!(mb.recv(exact(5, 1)).data.as_slice(), &[10]);
        assert_eq!(mb.recv(exact(5, 1)).data.as_slice(), &[11]);
    }

    #[test]
    fn rendezvous_send_fills_posted_buffer() {
        let mb = Mailbox::new();
        let PostedHandle::Pending(ticket) = mb.post(exact(2, 4), Some(vec![0u8; 8])) else {
            panic!()
        };
        let words = [0x0102_0304_0506_0708u64];
        assert!(mb.rendezvous_send(2, pack_tag(0, 4), &words, None));
        let (m, spare) = mb.wait_ticket(ticket, exact(2, 4));
        assert!(spare.is_none(), "buffer was consumed by the rendezvous");
        assert_eq!(m.data.as_slice(), &[8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn rendezvous_send_refuses_without_matching_posted_buffer() {
        let mb = Mailbox::new();
        // No posted receive at all.
        assert!(!mb.rendezvous_send(2, pack_tag(0, 4), &[1u64], None));
        // Posted receive without a buffer.
        let PostedHandle::Pending(t1) = mb.post(exact(2, 4), None) else {
            panic!()
        };
        assert!(!mb.rendezvous_send(2, pack_tag(0, 4), &[1u64], None));
        // Eager delivery still reaches it, returning no spare.
        mb.push(msg(2, 4, vec![1]));
        let (m, spare) = mb.wait_ticket(t1, exact(2, 4));
        assert_eq!(m.data.as_slice(), &[1]);
        assert!(spare.is_none());
        // Posted buffer of the wrong size: rendezvous declines.
        let PostedHandle::Pending(t2) = mb.post(exact(2, 4), Some(vec![0u8; 4])) else {
            panic!()
        };
        assert!(!mb.rendezvous_send(2, pack_tag(0, 4), &[1u64], None));
        mb.push(msg(2, 4, vec![9; 8]));
        let (m, spare) = mb.wait_ticket(t2, exact(2, 4));
        assert_eq!(m.data.len(), 8);
        assert_eq!(spare, Some(vec![0u8; 4]), "unused buffer comes back");
    }

    #[test]
    fn eager_delivery_returns_spare_rendezvous_buffer() {
        let mb = Mailbox::new();
        let (m, spare) = {
            let mb = &mb;
            std::thread::scope(|s| {
                let h = s.spawn(move || mb.recv_posting(exact(1, 2), Some(vec![0u8; 16])));
                std::thread::sleep(Duration::from_millis(20));
                mb.push(msg(1, 2, vec![5; 4]));
                h.join().unwrap()
            })
        };
        assert_eq!(m.data.as_slice(), &[5; 4]);
        assert_eq!(spare, Some(vec![0u8; 16]));
    }

    /// Reference model: the legacy single linear-scan queue the indexed
    /// mailbox replaced. Matching takes the first (oldest) message in
    /// arrival order satisfying the filter.
    #[derive(Default)]
    struct LinearModel {
        queue: Vec<(usize, u64, Vec<u8>)>,
    }

    impl LinearModel {
        fn push(&mut self, src: usize, tag: u32, data: Vec<u8>) {
            self.queue.push((src, pack_tag(0, tag), data));
        }
        fn try_recv(&mut self, filter: Match) -> Option<(usize, u64, Vec<u8>)> {
            let pos = self
                .queue
                .iter()
                .position(|(src, full_tag, _)| filter.accepts_parts(*src, *full_tag))?;
            Some(self.queue.remove(pos))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The indexed mailbox is observationally equivalent to the legacy
        /// linear scan: same matched envelope and payload for every
        /// interleaving of pushes with exact, half-wildcard and full
        /// wildcard receives — FIFO per (src, tag), non-overtaking,
        /// wildcard receives in global arrival order.
        #[test]
        fn indexed_mailbox_matches_linear_scan_semantics(
            ops in prop::collection::vec((0u8..6, 0usize..3, 0u32..3), 1..120),
        ) {
            let mb = Mailbox::new();
            let mut model = LinearModel::default();
            let mut payload = 0u8;
            for (kind, src, tag) in ops {
                match kind {
                    // Push: both sides enqueue the same message.
                    0..=2 => {
                        payload = payload.wrapping_add(1);
                        mb.push(msg(src, tag, vec![payload]));
                        model.push(src, tag, vec![payload]);
                    }
                    // Exact receive.
                    3 => {
                        let f = exact(src, tag);
                        let got = mb.try_recv(f);
                        let want = model.try_recv(f);
                        prop_assert_eq!(got.is_some(), want.is_some());
                        if let (Some(g), Some(w)) = (got, want) {
                            prop_assert_eq!(g.src, w.0);
                            prop_assert_eq!(g.full_tag, w.1);
                            prop_assert_eq!(g.data.as_slice(), &w.2[..]);
                        }
                    }
                    // Wildcard source (tag pinned).
                    4 => {
                        let f = Match { comm_id: 0, src: None, tag: Some(tag) };
                        let got = mb.try_recv(f);
                        let want = model.try_recv(f);
                        prop_assert_eq!(got.is_some(), want.is_some());
                        if let (Some(g), Some(w)) = (got, want) {
                            prop_assert_eq!(g.src, w.0);
                            prop_assert_eq!(g.full_tag, w.1);
                            prop_assert_eq!(g.data.as_slice(), &w.2[..]);
                        }
                    }
                    // Full wildcard.
                    _ => {
                        let got = mb.try_recv(any());
                        let want = model.try_recv(any());
                        prop_assert_eq!(got.is_some(), want.is_some());
                        if let (Some(g), Some(w)) = (got, want) {
                            prop_assert_eq!(g.src, w.0);
                            prop_assert_eq!(g.full_tag, w.1);
                            prop_assert_eq!(g.data.as_slice(), &w.2[..]);
                        }
                    }
                }
            }
            // Drain both completely; remainders must agree.
            loop {
                let got = mb.try_recv(any());
                let want = model.try_recv(any());
                prop_assert_eq!(got.is_some(), want.is_some());
                match (got, want) {
                    (Some(g), Some(w)) => {
                        prop_assert_eq!(g.src, w.0);
                        prop_assert_eq!(g.full_tag, w.1);
                        prop_assert_eq!(g.data.as_slice(), &w.2[..]);
                    }
                    _ => break,
                }
            }
        }
    }
}
