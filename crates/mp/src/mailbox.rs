//! Per-rank unexpected-message queues with MPI-style (source, tag) matching.

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::msg::{Match, Message};

/// Default for how long a blocking receive waits before declaring a
/// deadlock: generous in production builds, short under `cfg(test)` so a
/// deadlocked test fails in seconds instead of hanging CI for five
/// minutes per rank.
#[cfg(not(test))]
const DEFAULT_DEADLOCK_TIMEOUT_SECS: u64 = 300;
#[cfg(test)]
const DEFAULT_DEADLOCK_TIMEOUT_SECS: u64 = 20;

/// How long a blocking receive waits before declaring a deadlock.
///
/// A correct SPMD program never waits this long for an in-process message;
/// the timeout converts silent hangs into actionable panics. Overridable
/// via the `MP_DEADLOCK_TIMEOUT_SECS` environment variable (read once,
/// then cached); unparsable values fall back to the default.
fn deadlock_timeout() -> Duration {
    use std::sync::OnceLock;
    static TIMEOUT_SECS: OnceLock<u64> = OnceLock::new();
    let secs = *TIMEOUT_SECS.get_or_init(|| {
        std::env::var("MP_DEADLOCK_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_DEADLOCK_TIMEOUT_SECS)
    });
    Duration::from_secs(secs)
}

/// A rank's incoming-message queue.
#[derive(Default)]
pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    arrived: Condvar,
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Delivers a message (called from the sending rank's thread).
    pub fn push(&self, msg: Message) {
        let mut q = self.queue.lock();
        q.push_back(msg);
        // notify_all: several receives with different filters may be blocked
        // (e.g. wildcard receives in tests); all must re-scan.
        self.arrived.notify_all();
    }

    /// Removes and returns the first message matching `filter`, blocking
    /// until one arrives. FIFO per (source, tag) pair, preserving MPI's
    /// non-overtaking guarantee.
    pub fn recv(&self, filter: Match) -> Message {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|m| filter.accepts(m)) {
                return q.remove(pos).expect("position just found");
            }
            let timeout = deadlock_timeout();
            let timed_out = self.arrived.wait_for(&mut q, timeout).timed_out();
            if timed_out {
                panic!(
                    "mp: receive waited {}s for a message matching {filter:?}; \
                     likely deadlock ({} unmatched messages queued). Tune via \
                     MP_DEADLOCK_TIMEOUT_SECS.",
                    timeout.as_secs(),
                    q.len(),
                );
            }
        }
    }

    /// Non-blocking variant: removes the first matching message if present.
    /// Exercised by tests and kept for `iprobe`-style extensions.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn try_recv(&self, filter: Match) -> Option<Message> {
        let mut q = self.queue.lock();
        let pos = q.iter().position(|m| filter.accepts(m))?;
        q.remove(pos)
    }

    /// Number of queued (unmatched) messages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::pack_tag;
    use std::sync::Arc;

    fn msg(src: usize, tag: u32, data: Vec<u8>) -> Message {
        Message {
            src,
            full_tag: pack_tag(0, tag),
            data,
            arrival: None,
        }
    }

    fn exact(src: usize, tag: u32) -> Match {
        Match {
            comm_id: 0,
            src: Some(src),
            tag: Some(tag),
        }
    }

    #[test]
    fn fifo_within_matching_pair() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, vec![1]));
        mb.push(msg(1, 5, vec![2]));
        assert_eq!(mb.recv(exact(1, 5)).data, vec![1]);
        assert_eq!(mb.recv(exact(1, 5)).data, vec![2]);
    }

    #[test]
    fn matching_skips_non_matching_messages() {
        let mb = Mailbox::new();
        mb.push(msg(2, 9, vec![9]));
        mb.push(msg(1, 5, vec![5]));
        assert_eq!(mb.recv(exact(1, 5)).data, vec![5]);
        assert_eq!(mb.pending(), 1);
        assert_eq!(mb.recv(exact(2, 9)).data, vec![9]);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mb = Mailbox::new();
        assert!(mb.try_recv(exact(0, 0)).is_none());
        mb.push(msg(0, 0, vec![]));
        assert!(mb.try_recv(exact(0, 0)).is_some());
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.recv(exact(3, 1)).data);
        std::thread::sleep(Duration::from_millis(20));
        mb.push(msg(3, 1, vec![42]));
        assert_eq!(t.join().unwrap(), vec![42]);
    }

    #[test]
    fn deadlock_timeout_honours_env_or_test_default() {
        // Under cfg(test) the default is 20 s; an MP_DEADLOCK_TIMEOUT_SECS
        // override (read once at first use) takes precedence.
        let expect = std::env::var("MP_DEADLOCK_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        assert_eq!(super::deadlock_timeout().as_secs(), expect);
    }

    #[test]
    fn wildcard_receive_takes_first_arrival() {
        let mb = Mailbox::new();
        mb.push(msg(7, 3, vec![7]));
        mb.push(msg(8, 4, vec![8]));
        let any = Match {
            comm_id: 0,
            src: None,
            tag: None,
        };
        assert_eq!(mb.recv(any).src, 7);
        assert_eq!(mb.recv(any).src, 8);
    }
}
