//! High-level collective methods on [`Comm`], dispatching to the
//! auto-selected algorithms in [`crate::coll`].
//!
//! Each method opens an instrumented collective scope (no-op on unchecked
//! runs): the operation name, root (global rank) and — for operations
//! whose payload shape must agree across ranks — the per-rank byte count
//! are recorded, so the `mpcheck` trace lint can flag call-sequence
//! divergence and root/shape mismatches. Vector variants record no shape
//! (their per-rank counts legitimately differ).

use crate::coll;
use crate::comm::Comm;
use crate::datatype::Word;
use crate::reduce::{Numeric, Op};

/// Byte size of a typed buffer, for collective shape recording.
fn shape_of<T: Word>(buf: &[T]) -> Option<u64> {
    Some((buf.len() * T::SIZE) as u64)
}

impl Comm {
    /// Synchronises all ranks (`MPI_Barrier`).
    pub fn barrier(&self) {
        let _scope = self.coll_scope("barrier", None, Some(0));
        coll::barrier::auto(self);
    }

    /// Broadcasts `buf` from `root` to every rank (`MPI_Bcast`).
    pub fn bcast<T: Word>(&self, buf: &mut [T], root: usize) {
        let _scope = self.coll_scope("bcast", Some(root), shape_of(buf));
        coll::bcast::auto(self, buf, root);
    }

    /// Gathers one equal block per rank to `root` (`MPI_Gather`).
    /// `recv` must be `Some` (of length `n * send.len()`) exactly at the root.
    pub fn gather<T: Word>(&self, send: &[T], recv: Option<&mut [T]>, root: usize) {
        let _scope = self.coll_scope("gather", Some(root), shape_of(send));
        coll::gather::auto(self, send, recv, root);
    }

    /// Scatters equal blocks from `root` (`MPI_Scatter`).
    /// `send` must be `Some` (of length `n * recv.len()`) exactly at the root.
    pub fn scatter<T: Word>(&self, send: Option<&[T]>, recv: &mut [T], root: usize) {
        let _scope = self.coll_scope("scatter", Some(root), shape_of(recv));
        coll::scatter::auto(self, send, recv, root);
    }

    /// Gathers one equal block per rank to every rank (`MPI_Allgather`).
    pub fn allgather<T: Word>(&self, send: &[T], recv: &mut [T]) {
        let _scope = self.coll_scope("allgather", None, shape_of(send));
        coll::allgather::auto(self, send, recv);
    }

    /// Vector allgather with per-rank counts (`MPI_Allgatherv`).
    pub fn allgatherv<T: Word>(&self, send: &[T], recv: &mut [T], counts: &[usize]) {
        let _scope = self.coll_scope("allgatherv", None, None);
        coll::allgatherv::auto(self, send, recv, counts);
    }

    /// Personalised all-to-all exchange (`MPI_Alltoall`): block `d` of
    /// `send` goes to rank `d`; block `s` of `recv` arrives from rank `s`.
    pub fn alltoall<T: Word>(&self, send: &[T], recv: &mut [T]) {
        let _scope = self.coll_scope("alltoall", None, shape_of(send));
        coll::alltoall::auto(self, send, recv);
    }

    /// Reduces element-wise to `root` (`MPI_Reduce`).
    /// `recv` must be `Some` exactly at the root.
    pub fn reduce<T: Numeric>(&self, send: &[T], recv: Option<&mut [T]>, root: usize, op: Op) {
        let _scope = self.coll_scope("reduce", Some(root), shape_of(send));
        coll::reduce::auto(self, send, recv, root, op);
    }

    /// Reduces element-wise, result on every rank (`MPI_Allreduce`).
    /// Operates in place on `buf`.
    pub fn allreduce<T: Numeric>(&self, buf: &mut [T], op: Op) {
        let _scope = self.coll_scope("allreduce", None, shape_of(buf));
        coll::allreduce::auto(self, buf, op);
    }

    /// Reduce + scatter of equal blocks (`MPI_Reduce_scatter_block`):
    /// `send` holds `n` blocks of `recv.len()`; `recv` gets this rank's
    /// fully-reduced block.
    pub fn reduce_scatter_block<T: Numeric>(&self, send: &[T], recv: &mut [T], op: Op) {
        let _scope = self.coll_scope("reduce_scatter_block", None, shape_of(recv));
        coll::reduce_scatter::block_auto(self, send, recv, op);
    }

    /// Reduce + scatter with per-rank counts (`MPI_Reduce_scatter`).
    pub fn reduce_scatter<T: Numeric>(&self, send: &[T], recv: &mut [T], counts: &[usize], op: Op) {
        let _scope = self.coll_scope("reduce_scatter", None, None);
        coll::reduce_scatter::auto(self, send, recv, counts, op);
    }

    /// Inclusive prefix reduction (`MPI_Scan`), in place.
    pub fn scan<T: Numeric>(&self, buf: &mut [T], op: Op) {
        let _scope = self.coll_scope("scan", None, shape_of(buf));
        coll::scan::auto(self, buf, op);
    }

    /// Exclusive prefix reduction (`MPI_Exscan`), in place; rank 0 gets
    /// the operation's identity.
    pub fn exscan<T: Numeric>(&self, buf: &mut [T], op: Op) {
        let _scope = self.coll_scope("exscan", None, shape_of(buf));
        coll::scan::exscan(self, buf, op);
    }

    /// Vector all-to-all with per-pair counts (`MPI_Alltoallv`).
    pub fn alltoallv<T: Word>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv: &mut [T],
        recv_counts: &[usize],
    ) {
        let _scope = self.coll_scope("alltoallv", None, None);
        coll::alltoallv::auto(self, send, send_counts, recv, recv_counts);
    }

    /// Vector gather with per-rank counts (`MPI_Gatherv`).
    pub fn gatherv<T: Word>(
        &self,
        send: &[T],
        recv: Option<&mut [T]>,
        counts: &[usize],
        root: usize,
    ) {
        let _scope = self.coll_scope("gatherv", Some(root), None);
        coll::gatherv::gatherv(self, send, recv, counts, root);
    }

    /// Vector scatter with per-rank counts (`MPI_Scatterv`).
    pub fn scatterv<T: Word>(
        &self,
        send: Option<&[T]>,
        recv: &mut [T],
        counts: &[usize],
        root: usize,
    ) {
        let _scope = self.coll_scope("scatterv", Some(root), None);
        coll::gatherv::scatterv(self, send, recv, counts, root);
    }
}

/// Awaitable mirrors of the collective methods, for workloads running as
/// cooperative tasks (see [`crate::run_coop`] and friends). Inside a
/// cooperative task the blocking methods above panic; these suspend the
/// task at each internal receive instead. On real threads they behave
/// identically to their blocking counterparts.
impl Comm {
    /// Awaitable [`barrier`](Comm::barrier).
    pub async fn barrier_async(&self) {
        let _scope = self.coll_scope("barrier", None, Some(0));
        coll::barrier::auto_async(self).await;
    }

    /// Awaitable [`bcast`](Comm::bcast).
    pub async fn bcast_async<T: Word>(&self, buf: &mut [T], root: usize) {
        let _scope = self.coll_scope("bcast", Some(root), shape_of(buf));
        coll::bcast::auto_async(self, buf, root).await;
    }

    /// Awaitable [`gather`](Comm::gather).
    pub async fn gather_async<T: Word>(&self, send: &[T], recv: Option<&mut [T]>, root: usize) {
        let _scope = self.coll_scope("gather", Some(root), shape_of(send));
        coll::gather::auto_async(self, send, recv, root).await;
    }

    /// Awaitable [`scatter`](Comm::scatter).
    pub async fn scatter_async<T: Word>(&self, send: Option<&[T]>, recv: &mut [T], root: usize) {
        let _scope = self.coll_scope("scatter", Some(root), shape_of(recv));
        coll::scatter::auto_async(self, send, recv, root).await;
    }

    /// Awaitable [`allgather`](Comm::allgather).
    pub async fn allgather_async<T: Word>(&self, send: &[T], recv: &mut [T]) {
        let _scope = self.coll_scope("allgather", None, shape_of(send));
        coll::allgather::auto_async(self, send, recv).await;
    }

    /// Awaitable [`allgatherv`](Comm::allgatherv).
    pub async fn allgatherv_async<T: Word>(&self, send: &[T], recv: &mut [T], counts: &[usize]) {
        let _scope = self.coll_scope("allgatherv", None, None);
        coll::allgatherv::auto_async(self, send, recv, counts).await;
    }

    /// Awaitable [`alltoall`](Comm::alltoall).
    pub async fn alltoall_async<T: Word>(&self, send: &[T], recv: &mut [T]) {
        let _scope = self.coll_scope("alltoall", None, shape_of(send));
        coll::alltoall::auto_async(self, send, recv).await;
    }

    /// Awaitable [`reduce`](Comm::reduce).
    pub async fn reduce_async<T: Numeric>(
        &self,
        send: &[T],
        recv: Option<&mut [T]>,
        root: usize,
        op: Op,
    ) {
        let _scope = self.coll_scope("reduce", Some(root), shape_of(send));
        coll::reduce::auto_async(self, send, recv, root, op).await;
    }

    /// Awaitable [`allreduce`](Comm::allreduce).
    pub async fn allreduce_async<T: Numeric>(&self, buf: &mut [T], op: Op) {
        let _scope = self.coll_scope("allreduce", None, shape_of(buf));
        coll::allreduce::auto_async(self, buf, op).await;
    }

    /// Awaitable [`reduce_scatter_block`](Comm::reduce_scatter_block).
    pub async fn reduce_scatter_block_async<T: Numeric>(&self, send: &[T], recv: &mut [T], op: Op) {
        let _scope = self.coll_scope("reduce_scatter_block", None, shape_of(recv));
        coll::reduce_scatter::block_auto_async(self, send, recv, op).await;
    }

    /// Awaitable [`reduce_scatter`](Comm::reduce_scatter).
    pub async fn reduce_scatter_async<T: Numeric>(
        &self,
        send: &[T],
        recv: &mut [T],
        counts: &[usize],
        op: Op,
    ) {
        let _scope = self.coll_scope("reduce_scatter", None, None);
        coll::reduce_scatter::auto_async(self, send, recv, counts, op).await;
    }

    /// Awaitable [`scan`](Comm::scan).
    pub async fn scan_async<T: Numeric>(&self, buf: &mut [T], op: Op) {
        let _scope = self.coll_scope("scan", None, shape_of(buf));
        coll::scan::auto_async(self, buf, op).await;
    }

    /// Awaitable [`exscan`](Comm::exscan).
    pub async fn exscan_async<T: Numeric>(&self, buf: &mut [T], op: Op) {
        let _scope = self.coll_scope("exscan", None, shape_of(buf));
        coll::scan::exscan_async(self, buf, op).await;
    }

    /// Awaitable [`alltoallv`](Comm::alltoallv).
    pub async fn alltoallv_async<T: Word>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv: &mut [T],
        recv_counts: &[usize],
    ) {
        let _scope = self.coll_scope("alltoallv", None, None);
        coll::alltoallv::auto_async(self, send, send_counts, recv, recv_counts).await;
    }

    /// Awaitable [`gatherv`](Comm::gatherv).
    pub async fn gatherv_async<T: Word>(
        &self,
        send: &[T],
        recv: Option<&mut [T]>,
        counts: &[usize],
        root: usize,
    ) {
        let _scope = self.coll_scope("gatherv", Some(root), None);
        coll::gatherv::gatherv_async(self, send, recv, counts, root).await;
    }

    /// Awaitable [`scatterv`](Comm::scatterv).
    pub async fn scatterv_async<T: Word>(
        &self,
        send: Option<&[T]>,
        recv: &mut [T],
        counts: &[usize],
        root: usize,
    ) {
        let _scope = self.coll_scope("scatterv", Some(root), None);
        coll::gatherv::scatterv_async(self, send, recv, counts, root).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;
    use crate::Op;

    /// Smoke-test the whole method surface in one SPMD program, mixing
    /// collectives back-to-back the way real applications do.
    #[test]
    fn collective_method_surface() {
        let n = 6;
        run(n, |comm| {
            let me = comm.rank();

            let mut b = vec![0u64; 4];
            if me == 2 {
                b = vec![9, 8, 7, 6];
            }
            comm.bcast(&mut b, 2);
            assert_eq!(b, vec![9, 8, 7, 6]);

            let mut sum = vec![me as f64];
            comm.allreduce(&mut sum, Op::Sum);
            assert_eq!(sum[0], 15.0);

            let mut all = vec![0u64; n];
            comm.allgather(&[me as u64], &mut all);
            assert_eq!(all, (0..n as u64).collect::<Vec<_>>());

            let send: Vec<u64> = (0..n as u64).map(|d| d * 10 + me as u64).collect();
            let mut recv = vec![0u64; n];
            comm.alltoall(&send, &mut recv);
            let expect: Vec<u64> = (0..n as u64).map(|s| (me as u64) * 10 + s).collect();
            assert_eq!(recv, expect);

            comm.barrier();

            let mut slice = [0.0f64; 2];
            let send: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
            comm.reduce_scatter_block(&send, &mut slice, Op::Sum);
            assert_eq!(slice[0], (2 * me) as f64 * n as f64);
        });
    }

    #[test]
    fn split_into_halves() {
        let n = 8;
        let results = run(n, |comm| {
            let color = (comm.rank() < n / 2) as u32;
            let sub = comm.split(color, comm.rank() as i64);
            let mut x = vec![1u64];
            sub.allreduce(&mut x, Op::Sum);
            (sub.size(), sub.rank(), x[0])
        });
        for (r, (size, sub_rank, count)) in results.iter().enumerate() {
            assert_eq!(*size, n / 2);
            assert_eq!(*count, (n / 2) as u64);
            assert_eq!(*sub_rank, r % (n / 2));
        }
    }

    #[test]
    fn split_with_reversed_keys() {
        let results = run(4, |comm| {
            let sub = comm.split(0, -(comm.rank() as i64));
            sub.rank()
        });
        assert_eq!(results, vec![3, 2, 1, 0]);
    }

    #[test]
    fn dup_has_isolated_tag_space() {
        run(3, |comm| {
            let d = comm.dup();
            // Interleave traffic on both communicators with equal tags.
            if comm.rank() == 0 {
                comm.send(&[1u8], 1, 5);
                d.send(&[2u8], 1, 5);
            } else if comm.rank() == 1 {
                let mut a = [0u8];
                let mut b = [0u8];
                d.recv(&mut b, 0, 5);
                comm.recv(&mut a, 0, 5);
                assert_eq!((a[0], b[0]), (1, 2));
            }
        });
    }
}
