//! Barrier synchronisation (`MPI_Barrier`, IMB `Barrier`).

use crate::comm::Comm;

/// Dissemination barrier: `ceil(log2 n)` rounds; in round `k` every rank
/// signals `(rank + 2^k) mod n` and waits for `(rank - 2^k) mod n`.
/// This is the classic algorithm behind most MPI barrier implementations.
pub fn dissemination(comm: &Comm) {
    crate::coop::block_on(dissemination_async(comm));
}

/// Awaitable mirror of [`dissemination`].
pub async fn dissemination_async(comm: &Comm) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    if n == 1 {
        return;
    }
    let me = comm.rank();
    let mut k = 1;
    while k < n {
        let dst = (me + k) % n;
        let src = (me + n - k) % n;
        comm.send_bytes(Vec::new(), dst, tag);
        let _ = comm.recv_bytes_async(src, tag).await;
        k <<= 1;
    }
}

/// Tree barrier: a zero-byte binomial reduce to rank 0 followed by a
/// zero-byte binomial broadcast. One more latency step than dissemination
/// but half the messages; provided for algorithm ablation.
pub fn tree(comm: &Comm) {
    crate::coop::block_on(tree_async(comm));
}

/// Awaitable mirror of [`tree`].
pub async fn tree_async(comm: &Comm) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    if n == 1 {
        return;
    }
    let v = comm.rank(); // root is always 0: vrank == rank

    // Fan-in: receive from every child, then signal the parent.
    let node = super::binomial_node(v);
    let mut peers: Vec<usize> = Vec::new();
    let mut k = node.first_send_round;
    while (1usize << k) < n {
        let peer = v + (1 << k);
        if peer < n {
            peers.push(peer);
        }
        k += 1;
    }
    for &c in peers.iter().rev() {
        let _ = comm.recv_bytes_async(c, tag).await;
    }
    if let Some((parent, _)) = node.parent {
        comm.send_bytes(Vec::new(), parent, tag);
        // Fan-out: wait for release from the parent.
        let _ = comm.recv_bytes_async(parent, tag).await;
    }
    for &c in &peers {
        comm.send_bytes(Vec::new(), c, tag);
    }
}

/// The default barrier (dissemination).
pub fn auto(comm: &Comm) {
    dissemination(comm);
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async(comm: &Comm) {
    dissemination_async(comm).await;
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// All ranks must observe every rank's pre-barrier increment after the
    /// barrier: the canonical barrier correctness check.
    fn check_barrier(n: usize, barrier: fn(&crate::comm::Comm)) {
        let counter = AtomicUsize::new(0);
        run(n, |comm| {
            for _ in 0..5 {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier(comm);
                let seen = counter.load(Ordering::SeqCst);
                assert!(seen.is_multiple_of(n) || seen >= n, "barrier leaked early");
                barrier(comm);
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5 * n);
    }

    #[test]
    fn dissemination_various_sizes() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            check_barrier(n, super::dissemination);
        }
    }

    #[test]
    fn tree_various_sizes() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            check_barrier(n, super::tree);
        }
    }

    /// Stronger check: after the barrier, a flag set by every rank before
    /// the barrier must be visible.
    #[test]
    fn barrier_orders_flag_writes() {
        use std::sync::atomic::AtomicBool;
        let n = 8;
        let flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        run(n, |comm| {
            flags[comm.rank()].store(true, Ordering::SeqCst);
            super::auto(comm);
            for f in &flags {
                assert!(f.load(Ordering::SeqCst), "pre-barrier write not visible");
            }
        });
    }
}
