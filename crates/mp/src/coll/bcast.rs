//! Broadcast (`MPI_Bcast`, IMB `Bcast`, paper Fig. 15).

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};
use crate::payload::Payload;

use super::{binomial_node, halving_tree, unvrank, vrank, LONG_MSG_THRESHOLD};

/// Binomial-tree broadcast: `ceil(log2 n)` rounds, the whole payload on
/// every edge. Latency-optimal; the standard short-message algorithm.
///
/// Every child receives a clone of the *same* shared [`Payload`] — a
/// refcount bump per edge, never a copy of the bytes.
pub fn binomial<T: Word>(comm: &Comm, buf: &mut [T], root: usize) {
    crate::coop::block_on(binomial_async(comm, buf, root));
}

/// Awaitable mirror of [`binomial`].
pub async fn binomial_async<T: Word>(comm: &Comm, buf: &mut [T], root: usize) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    if n == 1 {
        return;
    }
    let v = vrank(comm.rank(), root, n);
    let node = binomial_node(v);

    let data = if let Some((parent, _)) = node.parent {
        let payload = comm.recv_payload_async(unvrank(parent, root, n), tag).await;
        decode_into(&payload, buf);
        payload
    } else {
        Payload::from_vec(encode(buf))
    };

    let mut k = node.first_send_round;
    while (1usize << k) < n {
        let peer = v + (1 << k);
        if peer < n {
            comm.send_payload(data.clone(), unvrank(peer, root, n), tag);
        }
        k += 1;
    }
}

/// Van de Geijn broadcast for long messages: a binomial *scatter* of the
/// payload followed by a ring allgather of the pieces. Moves
/// `~2 * bytes * (n-1)/n` per rank instead of `bytes * log2 n`, which is
/// why MPI libraries switch to it for large payloads.
///
/// Payload handling is zero-copy throughout the communication: scatter
/// children receive sub-[`slice`](Payload::slice)s of the one buffer that
/// arrived from the parent, and each ring round forwards the payload
/// received the round before instead of re-encoding it. The only copies a
/// rank pays are the writes into its final assembly buffer.
pub fn scatter_allgather<T: Word>(comm: &Comm, buf: &mut [T], root: usize) {
    crate::coop::block_on(scatter_allgather_async(comm, buf, root));
}

/// Awaitable mirror of [`scatter_allgather`].
pub async fn scatter_allgather_async<T: Word>(comm: &Comm, buf: &mut [T], root: usize) {
    let n = comm.size();
    if n == 1 {
        return;
    }
    let tag = comm.next_coll_tag();
    let v = vrank(comm.rank(), root, n);
    let total = buf.len() * T::SIZE;
    // Block b covers bytes [cut(b), cut(b+1)) of the encoded payload.
    let cut = |b: usize| -> usize { b * total / n };

    // Phase 1: binomial scatter down the halving tree (by vrank ranges).
    // Everything except this rank's own block v is re-received during the
    // ring phase, so only that block goes into the assembly buffer now.
    let (parent, children) = halving_tree(v, n);
    let mut data = vec![0u8; total];
    let own: Payload = if let Some((p, range)) = parent {
        debug_assert_eq!(range.start, v, "halving tree keeps own block first");
        let incoming = comm.recv_payload_async(unvrank(p, root, n), tag).await;
        let base = cut(range.start);
        for (child, crange) in children {
            comm.send_payload(
                incoming.slice(cut(crange.start) - base..cut(crange.end) - base),
                unvrank(child, root, n),
                tag,
            );
        }
        incoming.slice(0..cut(v + 1) - base)
    } else {
        let full = Payload::from_vec(encode(buf));
        for (child, crange) in children {
            comm.send_payload(
                full.slice(cut(crange.start)..cut(crange.end)),
                unvrank(child, root, n),
                tag,
            );
        }
        full.slice(cut(v)..cut(v + 1))
    };
    data[cut(v)..cut(v + 1)].copy_from_slice(&own);

    // Phase 2: ring allgather of the n blocks (vrank ring). Round k sends
    // block (v - k) mod n — exactly the block received in round k-1 — so
    // each round forwards the just-received payload unchanged.
    let right = unvrank((v + 1) % n, root, n);
    let left = unvrank((v + n - 1) % n, root, n);
    let mut outgoing = own;
    for k in 0..n - 1 {
        let recv_block = (v + n - k - 1) % n;
        let got = comm
            .sendrecv_payload_coll_async(outgoing, right, left, tag)
            .await;
        data[cut(recv_block)..cut(recv_block + 1)].copy_from_slice(&got);
        outgoing = got;
    }
    decode_into(&data, buf);
}

/// Size-dispatched broadcast: binomial for short payloads, scatter+allgather
/// for long ones.
pub fn auto<T: Word>(comm: &Comm, buf: &mut [T], root: usize) {
    crate::coop::block_on(auto_async(comm, buf, root));
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Word>(comm: &Comm, buf: &mut [T], root: usize) {
    if buf.len() * T::SIZE >= LONG_MSG_THRESHOLD && comm.size() > 2 {
        scatter_allgather_async(comm, buf, root).await;
    } else {
        binomial_async(comm, buf, root).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;

    fn payload(len: usize) -> Vec<f64> {
        (0..len).map(|i| (i as f64) * 0.5 - 3.0).collect()
    }

    fn check(n: usize, len: usize, root: usize, algo: fn(&crate::Comm, &mut [f64], usize)) {
        let expect = payload(len);
        let results = run(n, |comm| {
            let mut buf = if comm.rank() == root {
                payload(len)
            } else {
                vec![0.0; len]
            };
            algo(comm, &mut buf, root);
            buf
        });
        for (r, got) in results.iter().enumerate() {
            assert_eq!(got, &expect, "rank {r} has wrong broadcast data");
        }
    }

    #[test]
    fn binomial_all_roots_small_worlds() {
        for n in [1, 2, 3, 5, 8] {
            for root in [0, n - 1, n / 2] {
                check(n, 17, root, super::binomial);
            }
        }
    }

    #[test]
    fn scatter_allgather_matches() {
        for n in [2, 3, 4, 7, 8] {
            for root in [0, n / 2] {
                check(n, 1000, root, super::scatter_allgather);
            }
        }
    }

    #[test]
    fn scatter_allgather_payload_smaller_than_ranks() {
        // Degenerate blocks (some empty) must still work.
        check(8, 3, 1, super::scatter_allgather);
    }

    #[test]
    fn auto_dispatches_both_paths() {
        check(4, 8, 0, super::auto); // short -> binomial
        check(4, 16384, 0, super::auto); // 128 KiB -> scatter+allgather
    }

    #[test]
    fn broadcast_of_empty_buffer() {
        run(3, |comm| {
            let mut buf: [f64; 0] = [];
            super::auto(comm, &mut buf, 0);
        });
    }
}
