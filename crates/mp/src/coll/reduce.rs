//! Rooted reduction (`MPI_Reduce`, IMB `Reduce`, paper Fig. 8).

use crate::comm::Comm;
use crate::datatype::{decode, encode};
use crate::reduce::{Numeric, Op};

use super::{binomial_node, halving_tree, unvrank, vrank, LONG_MSG_THRESHOLD};

/// Binomial-tree reduce: the mirror of binomial broadcast. Each node folds
/// its children's full vectors into its accumulator, then forwards to its
/// parent. `ceil(log2 n)` rounds; every edge carries the whole vector.
pub fn binomial<T: Numeric>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize, op: Op) {
    crate::coop::block_on(binomial_async(comm, send, recv, root, op));
}

/// Awaitable mirror of [`binomial`].
pub async fn binomial_async<T: Numeric>(
    comm: &Comm,
    send: &[T],
    recv: Option<&mut [T]>,
    root: usize,
    op: Op,
) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    if n == 1 {
        recv.expect("root must supply a receive buffer")
            .copy_from_slice(send);
        return;
    }
    let v = vrank(me, root, n);
    let node = binomial_node(v);

    let mut acc = send.to_vec();
    // Children of v (in the binomial broadcast tree) send *to* v here.
    // Receive them in reverse round order: the largest subtree needs the
    // most rounds to finish, so it arrives last.
    let mut children = Vec::new();
    let mut k = node.first_send_round;
    while (1usize << k) < n {
        let peer = v + (1 << k);
        if peer < n {
            children.push(peer);
        }
        k += 1;
    }
    for &c in &children {
        let bytes = comm.recv_bytes_async(unvrank(c, root, n), tag).await;
        let operand: Vec<T> = decode(&bytes);
        op.fold_into(&mut acc, &operand);
    }

    if let Some((parent, _)) = node.parent {
        comm.send_bytes(encode(&acc), unvrank(parent, root, n), tag);
    } else {
        recv.expect("root must supply a receive buffer")
            .copy_from_slice(&acc);
    }
}

/// Rabenseifner reduce for long vectors: a recursive-halving
/// reduce-scatter (each rank ends holding one fully-reduced slice) followed
/// by a binomial gather of the slices to the root. Halves the bandwidth
/// term relative to the binomial tree.
///
/// Requires a power-of-two group with the vector length divisible by it;
/// the dispatcher checks and falls back to [`binomial`].
pub fn rabenseifner<T: Numeric>(
    comm: &Comm,
    send: &[T],
    recv: Option<&mut [T]>,
    root: usize,
    op: Op,
) {
    crate::coop::block_on(rabenseifner_async(comm, send, recv, root, op));
}

/// Awaitable mirror of [`rabenseifner`].
pub async fn rabenseifner_async<T: Numeric>(
    comm: &Comm,
    send: &[T],
    recv: Option<&mut [T]>,
    root: usize,
    op: Op,
) {
    let n = comm.size();
    assert!(n.is_power_of_two(), "rabenseifner reduce needs 2^k ranks");
    assert_eq!(send.len() % n, 0, "vector must divide evenly");
    if n == 1 {
        comm.next_coll_tag();
        recv.expect("root must supply a receive buffer")
            .copy_from_slice(send);
        return;
    }
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    let v = vrank(me, root, n);
    let len = send.len();
    let slice = len / n;

    // Phase 1: recursive-halving reduce-scatter over vranks.
    let mut acc = send.to_vec();
    let (mut lo, mut hi) = (0usize, len);
    let mut group = n;
    while group > 1 {
        let gbase = v & !(group - 1);
        let mid_rank = gbase + group / 2;
        let mid = (lo + hi) / 2;
        let in_lower = v < mid_rank;
        let partner_v = if in_lower {
            v + group / 2
        } else {
            v - group / 2
        };
        let (keep, give) = if in_lower {
            (lo..mid, mid..hi)
        } else {
            (mid..hi, lo..mid)
        };
        let out = encode(&acc[give.clone()]);
        let bytes = comm
            .sendrecv_bytes_coll_async(
                out,
                unvrank(partner_v, root, n),
                unvrank(partner_v, root, n),
                tag,
            )
            .await;
        let operand: Vec<T> = decode(&bytes);
        op.fold_into(&mut acc[keep.clone()], &operand);
        lo = keep.start;
        hi = keep.end;
        group /= 2;
    }
    debug_assert_eq!((lo, hi), (v * slice, (v + 1) * slice));

    // Phase 2: binomial gather of the slices to the root (vrank 0).
    let (parent, children) = halving_tree(v, n);
    let hi_rank = parent.as_ref().map(|(_, r)| r.end).unwrap_or(n);
    let mut gathered = vec![T::zero(); (hi_rank - v) * slice];
    gathered[..slice].copy_from_slice(&acc[lo..hi]);
    for (child, range) in children.iter().rev() {
        let bytes = comm.recv_bytes_async(unvrank(*child, root, n), tag).await;
        let operand: Vec<T> = decode(&bytes);
        let off = (range.start - v) * slice;
        gathered[off..off + operand.len()].copy_from_slice(&operand);
    }
    if let Some((p, _)) = parent {
        comm.send_bytes(encode(&gathered), unvrank(p, root, n), tag);
    } else {
        recv.expect("root must supply a receive buffer")
            .copy_from_slice(&gathered);
    }
}

/// Size-dispatched reduce: Rabenseifner when the shape allows and the
/// vector is long, binomial otherwise.
pub fn auto<T: Numeric>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize, op: Op) {
    crate::coop::block_on(auto_async(comm, send, recv, root, op));
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Numeric>(
    comm: &Comm,
    send: &[T],
    recv: Option<&mut [T]>,
    root: usize,
    op: Op,
) {
    let n = comm.size();
    if n.is_power_of_two()
        && n > 1
        && send.len().is_multiple_of(n)
        && send.len() * T::SIZE >= LONG_MSG_THRESHOLD
    {
        rabenseifner_async(comm, send, recv, root, op).await;
    } else {
        binomial_async(comm, send, recv, root, op).await;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use crate::reduce::Op;
    use crate::runtime::run;

    type Algo = fn(&crate::Comm, &[f64], Option<&mut [f64]>, usize, Op);

    fn check(n: usize, len: usize, root: usize, op: Op, algo: Algo) {
        let results = run(n, |comm| {
            let me = comm.rank();
            let send: Vec<f64> = (0..len).map(|i| (me * len + i) as f64 * 0.25).collect();
            let mut recv = (me == root).then(|| vec![0.0f64; len]);
            algo(comm, &send, recv.as_deref_mut(), root, op);
            recv
        });
        // Reference reduction.
        let mut expect = vec![
            match op {
                Op::Sum => 0.0,
                Op::Prod => 1.0,
                Op::Max => f64::NEG_INFINITY,
                Op::Min => f64::INFINITY,
            };
            len
        ];
        for r in 0..n {
            for i in 0..len {
                expect[i] = op.apply(expect[i], (r * len + i) as f64 * 0.25);
            }
        }
        for (r, got) in results.iter().enumerate() {
            if r == root {
                let got = got.as_ref().unwrap();
                for i in 0..len {
                    assert!(
                        (got[i] - expect[i]).abs() < 1e-9,
                        "rank {r} elem {i}: {} != {}",
                        got[i],
                        expect[i]
                    );
                }
            } else {
                assert!(got.is_none());
            }
        }
    }

    #[test]
    fn binomial_various() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            for root in [0, n - 1] {
                check(n, 8, root, Op::Sum, super::binomial);
            }
        }
    }

    #[test]
    fn binomial_all_ops() {
        for op in [Op::Sum, Op::Prod, Op::Max, Op::Min] {
            check(5, 6, 2, op, super::binomial);
        }
    }

    #[test]
    fn rabenseifner_matches() {
        for n in [2, 4, 8, 16] {
            for root in [0, n - 1, n / 3] {
                check(n, 16 * n, root, Op::Sum, super::rabenseifner);
            }
        }
    }

    #[test]
    fn rabenseifner_max_op() {
        check(8, 64, 3, Op::Max, super::rabenseifner);
    }

    #[test]
    fn auto_dispatches() {
        check(8, 8, 0, Op::Sum, super::auto); // short -> binomial
        check(8, 8192, 0, Op::Sum, super::auto); // 64 KiB -> rabenseifner
        check(6, 6000, 1, Op::Sum, super::auto); // non-2^k -> binomial
    }
}
