//! Inclusive prefix reduction (`MPI_Scan`).
//!
//! Not benchmarked by the paper but part of the MPI collective family the
//! runtime exposes; the ordered fold also exercises non-commutative-safe
//! operand ordering, which the tests rely on.

// Index-heavy numeric code: explicit indices mirror the maths.
#![allow(clippy::needless_range_loop)]

use crate::comm::Comm;
use crate::datatype::{decode, encode};
use crate::reduce::{Numeric, Op};

/// Linear scan: a pipeline along the rank order. `n-1` serial steps.
pub fn linear<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    crate::coop::block_on(linear_async(comm, buf, op));
}

/// Awaitable mirror of [`linear`].
pub async fn linear_async<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    if me > 0 {
        let prefix: Vec<T> = decode(&comm.recv_bytes_async(me - 1, tag).await);
        // Ordered: earlier ranks' contribution on the left.
        let mut acc = prefix;
        op.fold_into(&mut acc, buf);
        buf.copy_from_slice(&acc);
    }
    if me + 1 < n {
        comm.send_bytes(encode(buf), me + 1, tag);
    }
}

/// Recursive-doubling scan: `ceil(log2 n)` rounds. Each rank keeps its
/// inclusive prefix `result` and the segment aggregate `partial`; round `d`
/// ships `partial` a distance `d` to the right.
pub fn recursive_doubling<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    crate::coop::block_on(recursive_doubling_async(comm, buf, op));
}

/// Awaitable mirror of [`recursive_doubling`].
pub async fn recursive_doubling_async<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    let mut partial = buf.to_vec();
    let mut d = 1;
    while d < n {
        if me + d < n {
            comm.send_bytes(encode(&partial), me + d, tag);
        }
        if me >= d {
            let incoming: Vec<T> = decode(&comm.recv_bytes_async(me - d, tag).await);
            // incoming covers ranks [me-2d+1 ..= me-d]; keep it on the left.
            let mut r = incoming.clone();
            op.fold_into(&mut r, buf);
            buf.copy_from_slice(&r);
            let mut p = incoming;
            op.fold_into(&mut p, &partial);
            partial = p;
        }
        d <<= 1;
    }
}

/// The default scan (recursive doubling).
pub fn auto<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    recursive_doubling(comm, buf, op);
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    recursive_doubling_async(comm, buf, op).await;
}

/// Exclusive prefix reduction (`MPI_Exscan`): rank `r` receives the
/// reduction of ranks `0..r`; rank 0's buffer is left as the operation's
/// identity (undefined in MPI; the identity is the useful convention).
pub fn exscan<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    crate::coop::block_on(exscan_async(comm, buf, op));
}

/// Awaitable mirror of [`exscan`].
pub async fn exscan_async<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    let me = comm.rank();
    // Inclusive scan of the original contribution, then shift by
    // combining with the inverse... reductions are not invertible in
    // general, so implement directly: run the doubling scan on a copy and
    // exchange: rank r's exclusive result is rank r-1's inclusive one.
    // One extra ring hop keeps it simple and allocation-light.
    let tag = comm.next_coll_tag();
    recursive_doubling_async(comm, buf, op).await;
    let n = comm.size();
    if n == 1 {
        fill_identity(buf, op);
        return;
    }
    if me + 1 < n {
        comm.send_bytes(crate::datatype::encode(buf), me + 1, tag);
    }
    if me > 0 {
        let bytes = comm.recv_bytes_async(me - 1, tag).await;
        crate::datatype::decode_into(&bytes, buf);
    } else {
        fill_identity(buf, op);
    }
}

fn fill_identity<T: Numeric>(buf: &mut [T], op: Op) {
    if let Some(id) = op.identity::<T>() {
        buf.fill(id);
    }
}

#[cfg(test)]
mod tests {
    use crate::reduce::Op;
    use crate::runtime::run;

    type Algo = fn(&crate::Comm, &mut [f64], Op);

    fn check(n: usize, len: usize, op: Op, algo: Algo) {
        let results = run(n, |comm| {
            let me = comm.rank();
            let mut buf: Vec<f64> = (0..len).map(|i| ((me + 2) * (i + 1)) as f64).collect();
            algo(comm, &mut buf, op);
            buf
        });
        for (r, got) in results.iter().enumerate() {
            for i in 0..len {
                let mut e = ((2) * (i + 1)) as f64;
                for s in 1..=r {
                    e = op.apply(e, ((s + 2) * (i + 1)) as f64);
                }
                assert!(
                    (got[i] - e).abs() < 1e-9 * e.abs().max(1.0),
                    "rank {r} elem {i}: {} != {e}",
                    got[i]
                );
            }
        }
    }

    #[test]
    fn linear_various() {
        for n in [1, 2, 3, 5, 8] {
            check(n, 4, Op::Sum, super::linear);
        }
    }

    #[test]
    fn recursive_doubling_various() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            check(n, 4, Op::Sum, super::recursive_doubling);
        }
    }

    #[test]
    fn scan_max() {
        check(7, 3, Op::Max, super::recursive_doubling);
        check(7, 3, Op::Min, super::linear);
    }

    #[test]
    fn exscan_shifts_the_inclusive_scan() {
        let results = run(5, |comm| {
            let mut inc = vec![(comm.rank() + 1) as f64];
            super::auto(comm, &mut inc, Op::Sum);
            let mut exc = vec![(comm.rank() + 1) as f64];
            super::exscan(comm, &mut exc, Op::Sum);
            (inc[0], exc[0])
        });
        // exc[r] == inc[r-1]; exc[0] == 0 (Sum identity).
        assert_eq!(results[0].1, 0.0);
        for r in 1..5 {
            assert_eq!(results[r].1, results[r - 1].0, "rank {r}");
        }
    }

    #[test]
    fn rank_zero_keeps_its_data() {
        let results = run(4, |comm| {
            let mut buf = vec![(comm.rank() + 1) as f64];
            super::auto(comm, &mut buf, Op::Sum);
            buf[0]
        });
        assert_eq!(results, vec![1.0, 3.0, 6.0, 10.0]);
    }
}
