//! Vector all-to-all (`MPI_Alltoallv`): personalised exchange with
//! per-pair counts.

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};

/// Prefix sums (displacements) of a count vector.
pub(crate) fn displs(counts: &[usize]) -> Vec<usize> {
    let mut d = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0;
    for &c in counts {
        d.push(acc);
        acc += c;
    }
    d.push(acc);
    d
}

/// Pairwise alltoallv: `n-1` rotation rounds. `send_counts[d]` words go
/// to rank `d`; `recv_counts[s]` words arrive from rank `s`.
pub fn pairwise<T: Word>(
    comm: &Comm,
    send: &[T],
    send_counts: &[usize],
    recv: &mut [T],
    recv_counts: &[usize],
) {
    crate::coop::block_on(pairwise_async(comm, send, send_counts, recv, recv_counts));
}

/// Awaitable mirror of [`pairwise`].
pub async fn pairwise_async<T: Word>(
    comm: &Comm,
    send: &[T],
    send_counts: &[usize],
    recv: &mut [T],
    recv_counts: &[usize],
) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(send_counts.len(), n, "one send count per rank");
    assert_eq!(recv_counts.len(), n, "one recv count per rank");
    let sd = displs(send_counts);
    let rd = displs(recv_counts);
    assert_eq!(send.len(), sd[n], "send buffer size mismatch");
    assert_eq!(recv.len(), rd[n], "recv buffer size mismatch");
    let me = comm.rank();

    assert_eq!(
        send_counts[me], recv_counts[me],
        "self block must be symmetric"
    );
    recv[rd[me]..rd[me] + recv_counts[me]].copy_from_slice(&send[sd[me]..sd[me] + send_counts[me]]);

    for s in 1..n {
        let dst = (me + s) % n;
        let src = (me + n - s) % n;
        comm.send_bytes(encode(&send[sd[dst]..sd[dst + 1]]), dst, tag);
        let bytes = comm.recv_bytes_async(src, tag).await;
        decode_into(&bytes, &mut recv[rd[src]..rd[src + 1]]);
    }
}

/// The default alltoallv (pairwise).
pub fn auto<T: Word>(
    comm: &Comm,
    send: &[T],
    send_counts: &[usize],
    recv: &mut [T],
    recv_counts: &[usize],
) {
    pairwise(comm, send, send_counts, recv, recv_counts);
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Word>(
    comm: &Comm,
    send: &[T],
    send_counts: &[usize],
    recv: &mut [T],
    recv_counts: &[usize],
) {
    pairwise_async(comm, send, send_counts, recv, recv_counts).await;
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use crate::runtime::run;

    /// Triangular counts: rank r sends `r + d + 1` words to rank d.
    fn counts_from(r: usize, n: usize) -> Vec<usize> {
        (0..n).map(|d| r + d + 1).collect()
    }

    #[test]
    fn asymmetric_counts_roundtrip() {
        for n in [1usize, 2, 3, 5, 8] {
            let results = run(n, |comm| {
                let me = comm.rank();
                let send_counts = counts_from(me, n);
                // recv_counts[s] must equal s's send_counts[me].
                let recv_counts: Vec<usize> = (0..n).map(|s| s + me + 1).collect();
                let send: Vec<u64> = (0..n)
                    .flat_map(|d| (0..send_counts[d]).map(move |i| (me * 100 + d * 10 + i) as u64))
                    .collect();
                let mut recv = vec![0u64; recv_counts.iter().sum()];
                super::pairwise(comm, &send, &send_counts, &mut recv, &recv_counts);
                (recv, recv_counts)
            });
            for (r, (got, recv_counts)) in results.iter().enumerate() {
                let mut off = 0;
                for s in 0..n {
                    for i in 0..recv_counts[s] {
                        assert_eq!(
                            got[off + i],
                            (s * 100 + r * 10 + i) as u64,
                            "n={n} rank {r} from {s} elem {i}"
                        );
                    }
                    off += recv_counts[s];
                }
            }
        }
    }

    #[test]
    fn zero_counts_are_fine() {
        run(4, |comm| {
            let me = comm.rank();
            // Only even ranks send, one word each, to every rank.
            let send_counts = vec![usize::from(me % 2 == 0); 4];
            let recv_counts: Vec<usize> = (0..4).map(|s| usize::from(s % 2 == 0)).collect();
            let send = vec![me as u64; send_counts.iter().sum()];
            let mut recv = vec![0u64; recv_counts.iter().sum()];
            // Self block symmetry: even ranks send/recv 1 with themselves,
            // odd ranks 0 — consistent.
            super::pairwise(comm, &send, &send_counts, &mut recv, &recv_counts);
            let expect: Vec<u64> = (0..4u64).filter(|s| s % 2 == 0).collect();
            assert_eq!(recv, expect);
        });
    }

    #[test]
    fn equal_counts_match_alltoall() {
        let n = 5;
        let block = 3;
        let results = run(n, |comm| {
            let me = comm.rank() as u64;
            let send: Vec<u64> = (0..(n * block) as u64).map(|i| me * 1000 + i).collect();
            let counts = vec![block; n];
            let mut v = vec![0u64; n * block];
            super::pairwise(comm, &send, &counts, &mut v, &counts);
            let mut a = vec![0u64; n * block];
            crate::coll::alltoall::pairwise(comm, &send, &mut a);
            (v, a)
        });
        for (v, a) in &results {
            assert_eq!(v, a);
        }
    }
}
