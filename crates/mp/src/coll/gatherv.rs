//! Vector gather/scatter (`MPI_Gatherv` / `MPI_Scatterv`): rooted
//! collectives with per-rank counts.

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};

use super::alltoallv::displs;

/// Linear gatherv: every rank sends its `counts[rank]`-word block to the
/// root, which assembles them in rank order.
pub fn gatherv<T: Word>(
    comm: &Comm,
    send: &[T],
    recv: Option<&mut [T]>,
    counts: &[usize],
    root: usize,
) {
    crate::coop::block_on(gatherv_async(comm, send, recv, counts, root));
}

/// Awaitable mirror of [`gatherv`].
pub async fn gatherv_async<T: Word>(
    comm: &Comm,
    send: &[T],
    recv: Option<&mut [T]>,
    counts: &[usize],
    root: usize,
) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(counts.len(), n, "one count per rank");
    let me = comm.rank();
    assert_eq!(send.len(), counts[me], "send buffer must match my count");
    let d = displs(counts);
    if me == root {
        let recv = recv.expect("root must supply a receive buffer");
        assert_eq!(recv.len(), d[n], "gatherv receive buffer size mismatch");
        recv[d[root]..d[root + 1]].copy_from_slice(send);
        for r in (0..n).filter(|&r| r != root) {
            let bytes = comm.recv_bytes_async(r, tag).await;
            decode_into(&bytes, &mut recv[d[r]..d[r + 1]]);
        }
    } else {
        comm.send_bytes(encode(send), root, tag);
    }
}

/// Linear scatterv: the root distributes per-rank blocks.
pub fn scatterv<T: Word>(
    comm: &Comm,
    send: Option<&[T]>,
    recv: &mut [T],
    counts: &[usize],
    root: usize,
) {
    crate::coop::block_on(scatterv_async(comm, send, recv, counts, root));
}

/// Awaitable mirror of [`scatterv`].
pub async fn scatterv_async<T: Word>(
    comm: &Comm,
    send: Option<&[T]>,
    recv: &mut [T],
    counts: &[usize],
    root: usize,
) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(counts.len(), n, "one count per rank");
    let me = comm.rank();
    assert_eq!(recv.len(), counts[me], "recv buffer must match my count");
    let d = displs(counts);
    if me == root {
        let send = send.expect("root must supply a send buffer");
        assert_eq!(send.len(), d[n], "scatterv send buffer size mismatch");
        for r in (0..n).filter(|&r| r != root) {
            comm.send_bytes(encode(&send[d[r]..d[r + 1]]), r, tag);
        }
        recv.copy_from_slice(&send[d[root]..d[root + 1]]);
    } else {
        let bytes = comm.recv_bytes_async(root, tag).await;
        decode_into(&bytes, recv);
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;

    #[test]
    fn gatherv_assembles_in_rank_order() {
        let counts = [2usize, 0, 3, 1];
        let results = run(4, |comm| {
            let me = comm.rank();
            let send: Vec<u32> = (0..counts[me] as u32)
                .map(|i| (me as u32) * 10 + i)
                .collect();
            let mut recv = (me == 1).then(|| vec![0u32; 6]);
            super::gatherv(comm, &send, recv.as_deref_mut(), &counts, 1);
            recv
        });
        assert_eq!(results[1].as_deref(), Some(&[0u32, 1, 20, 21, 22, 30][..]));
    }

    #[test]
    fn scatterv_distributes_per_rank_blocks() {
        let counts = [1usize, 3, 0, 2];
        let results = run(4, |comm| {
            let me = comm.rank();
            let send: Option<Vec<u32>> = (me == 0).then(|| (0..6u32).collect());
            let mut recv = vec![0u32; counts[me]];
            super::scatterv(comm, send.as_deref(), &mut recv, &counts, 0);
            recv
        });
        assert_eq!(results[0], vec![0]);
        assert_eq!(results[1], vec![1, 2, 3]);
        assert_eq!(results[2], Vec::<u32>::new());
        assert_eq!(results[3], vec![4, 5]);
    }

    #[test]
    fn gatherv_then_scatterv_roundtrips() {
        let counts = [3usize, 1, 2];
        let results = run(3, |comm| {
            let me = comm.rank();
            let original: Vec<u64> = (0..counts[me] as u64)
                .map(|i| (me as u64) << (8 + i))
                .collect();
            let mut gathered = (me == 2).then(|| vec![0u64; 6]);
            super::gatherv(comm, &original, gathered.as_deref_mut(), &counts, 2);
            let mut back = vec![0u64; counts[me]];
            super::scatterv(comm, gathered.as_deref(), &mut back, &counts, 2);
            (original, back)
        });
        for (orig, back) in &results {
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn single_rank_degenerate() {
        run(1, |comm| {
            let mut r = vec![0u32; 2];
            super::scatterv(comm, Some(&[7, 8][..]), &mut r, &[2], 0);
            assert_eq!(r, vec![7, 8]);
            let mut g = Some(vec![0u32; 2]);
            super::gatherv(comm, &r, g.as_deref_mut(), &[2], 0);
            assert_eq!(g.unwrap(), vec![7, 8]);
        });
    }
}
