//! Allgather (`MPI_Allgather`, IMB `Allgather`, paper Fig. 10).

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};

use super::LONG_MSG_THRESHOLD;

/// Ring allgather: `n-1` rounds; each round every rank passes one block to
/// its right neighbour. Bandwidth-optimal for long blocks and valid for any
/// group size.
///
/// A rank encodes only its own block; every later round forwards the
/// payload that just arrived from the left (a shared-buffer handoff, not a
/// re-encode), decoding a copy into the local result as it passes through.
pub fn ring<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    crate::coop::block_on(ring_async(comm, send, recv));
}

/// Awaitable mirror of [`ring`].
pub async fn ring_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let block = send.len();
    assert_eq!(
        recv.len(),
        block * n,
        "allgather receive buffer size mismatch"
    );
    let me = comm.rank();
    recv[me * block..(me + 1) * block].copy_from_slice(send);
    if n == 1 {
        return;
    }
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    let mut outgoing = crate::payload::Payload::from_vec(encode(send));
    for k in 0..n - 1 {
        let recv_block = (me + n - k - 1) % n;
        let got = comm
            .sendrecv_payload_coll_async(outgoing, right, left, tag)
            .await;
        decode_into(
            &got,
            &mut recv[recv_block * block..(recv_block + 1) * block],
        );
        outgoing = got;
    }
}

/// Recursive-doubling allgather: `log2 n` rounds, doubling the gathered
/// span each round. Latency-optimal; requires a power-of-two group (the
/// dispatcher falls back to [`ring`] otherwise).
pub fn recursive_doubling<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    crate::coop::block_on(recursive_doubling_async(comm, send, recv));
}

/// Awaitable mirror of [`recursive_doubling`].
pub async fn recursive_doubling_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    assert!(n.is_power_of_two(), "recursive doubling needs 2^k ranks");
    let tag = comm.next_coll_tag();
    let block = send.len();
    assert_eq!(
        recv.len(),
        block * n,
        "allgather receive buffer size mismatch"
    );
    let me = comm.rank();
    recv[me * block..(me + 1) * block].copy_from_slice(send);

    let mut span = 1;
    while span < n {
        let partner = me ^ span;
        let base = me & !(span - 1); // start of the 2^k-aligned group I hold
        let pbase = partner & !(span - 1);
        let out = encode(&recv[base * block..(base + span) * block]);
        let bytes = comm
            .sendrecv_bytes_coll_async(out, partner, partner, tag)
            .await;
        decode_into(&bytes, &mut recv[pbase * block..(pbase + span) * block]);
        span <<= 1;
    }
}

/// Size- and shape-dispatched allgather: recursive doubling for short
/// blocks on power-of-two groups, ring otherwise.
pub fn auto<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    crate::coop::block_on(auto_async(comm, send, recv));
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    if n.is_power_of_two() && send.len() * T::SIZE * n < LONG_MSG_THRESHOLD {
        recursive_doubling_async(comm, send, recv).await;
    } else {
        ring_async(comm, send, recv).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;

    type Algo = fn(&crate::Comm, &[i64], &mut [i64]);

    fn check(n: usize, block: usize, algo: Algo) {
        let results = run(n, |comm| {
            let send: Vec<i64> = (0..block as i64)
                .map(|i| (comm.rank() as i64) * 1000 + i)
                .collect();
            let mut recv = vec![0i64; n * block];
            algo(comm, &send, &mut recv);
            recv
        });
        let expect: Vec<i64> = (0..n as i64)
            .flat_map(|r| (0..block as i64).map(move |i| r * 1000 + i))
            .collect();
        for (r, got) in results.iter().enumerate() {
            assert_eq!(got, &expect, "rank {r} gathered wrong data");
        }
    }

    #[test]
    fn ring_various_sizes() {
        for n in [1, 2, 3, 5, 8, 13] {
            check(n, 4, super::ring);
        }
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        for n in [1, 2, 4, 8, 16] {
            check(n, 4, super::recursive_doubling);
        }
    }

    #[test]
    #[should_panic(expected = "2^k ranks")]
    fn recursive_doubling_rejects_odd_groups() {
        check(6, 2, super::recursive_doubling);
    }

    #[test]
    fn auto_both_paths() {
        check(8, 2, super::auto); // short, 2^k -> doubling
        check(8, 4096, super::auto); // long -> ring
        check(6, 2, super::auto); // non-2^k -> ring
    }

    #[test]
    fn single_element_blocks() {
        check(7, 1, super::ring);
    }
}
