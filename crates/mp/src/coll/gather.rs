//! Gather (`MPI_Gather`): root collects one block per rank.

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};

use super::{halving_tree, unvrank, vrank};

/// Linear gather: every rank sends directly to the root.
pub fn linear<T: Word>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize) {
    crate::coop::block_on(linear_async(comm, send, recv, root));
}

/// Awaitable mirror of [`linear`].
pub async fn linear_async<T: Word>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let block = send.len();
    if comm.rank() == root {
        let recv = recv.expect("root must supply a receive buffer");
        assert_eq!(recv.len(), block * n, "gather receive buffer size mismatch");
        recv[root * block..(root + 1) * block].copy_from_slice(send);
        for r in (0..n).filter(|&r| r != root) {
            let bytes = comm.recv_bytes_async(r, tag).await;
            decode_into(&bytes, &mut recv[r * block..(r + 1) * block]);
        }
    } else {
        comm.send_bytes(encode(send), root, tag);
    }
}

/// Binomial-tree gather: the mirror image of binomial scatter. Each node
/// collects its subtrees' blocks, then forwards its whole contiguous range
/// to its parent. `ceil(log2 n)` rounds on the critical path.
pub fn binomial<T: Word>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize) {
    crate::coop::block_on(binomial_async(comm, send, recv, root));
}

/// Awaitable mirror of [`binomial`].
pub async fn binomial_async<T: Word>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let block = send.len();
    if n == 1 {
        let recv = recv.expect("root must supply a receive buffer");
        recv[..block].copy_from_slice(send);
        return;
    }
    let v = vrank(comm.rank(), root, n);
    let (parent, children) = halving_tree(v, n);

    // My subtree's blocks in vrank order, my own block first.
    let bw = block * T::SIZE;
    let hi = parent.as_ref().map(|(_, r)| r.end).unwrap_or(n);
    let mut data = vec![0u8; (hi - v) * bw];
    crate::datatype::encode_into(send, &mut data[..bw]);

    // Children split ranges from the outside in; collect the innermost
    // (smallest, earliest-finished subtree) first.
    for (child, range) in children.iter().rev() {
        let bytes = comm.recv_bytes_async(unvrank(*child, root, n), tag).await;
        let off = (range.start - v) * bw;
        data[off..off + bytes.len()].copy_from_slice(&bytes);
    }

    if let Some((p, _)) = parent {
        comm.send_bytes(data, unvrank(p, root, n), tag);
    } else {
        let recv = recv.expect("root must supply a receive buffer");
        assert_eq!(recv.len(), block * n, "gather receive buffer size mismatch");
        for vv in 0..n {
            let r = unvrank(vv, root, n);
            decode_into(
                &data[vv * bw..(vv + 1) * bw],
                &mut recv[r * block..(r + 1) * block],
            );
        }
    }
}

/// Size-dispatched gather (binomial; linear for 2 ranks).
pub fn auto<T: Word>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize) {
    crate::coop::block_on(auto_async(comm, send, recv, root));
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Word>(comm: &Comm, send: &[T], recv: Option<&mut [T]>, root: usize) {
    if comm.size() <= 2 {
        linear_async(comm, send, recv, root).await;
    } else {
        binomial_async(comm, send, recv, root).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;

    type Algo = fn(&crate::Comm, &[u64], Option<&mut [u64]>, usize);

    fn check(n: usize, block: usize, root: usize, algo: Algo) {
        let results = run(n, |comm| {
            let send: Vec<u64> = (0..block as u64)
                .map(|i| (comm.rank() * block) as u64 + i)
                .collect();
            let mut recv = (comm.rank() == root).then(|| vec![0u64; n * block]);
            algo(comm, &send, recv.as_deref_mut(), root);
            recv
        });
        let expect: Vec<u64> = (0..(n * block) as u64).collect();
        for (r, got) in results.iter().enumerate() {
            if r == root {
                assert_eq!(got.as_deref(), Some(expect.as_slice()));
            } else {
                assert!(got.is_none());
            }
        }
    }

    #[test]
    fn linear_various() {
        for n in [1, 2, 4, 7] {
            for root in [0, n - 1] {
                check(n, 3, root, super::linear);
            }
        }
    }

    #[test]
    fn binomial_various() {
        for n in [1, 2, 3, 4, 5, 8, 11, 16] {
            for root in [0, n - 1, n / 2] {
                check(n, 3, root, super::binomial);
            }
        }
    }

    #[test]
    fn binomial_large_blocks() {
        check(6, 128, 1, super::binomial);
    }

    #[test]
    fn auto_works() {
        check(2, 4, 0, super::auto);
        check(10, 4, 3, super::auto);
    }
}
