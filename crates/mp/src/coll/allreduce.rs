//! Allreduce (`MPI_Allreduce`, IMB `Allreduce`, paper Fig. 7) — "important
//! for vector norms and time step sizes in time-dependent simulations".

use crate::comm::Comm;
use crate::datatype::{decode, decode_into, encode};
use crate::msg::Tag;
use crate::reduce::{Numeric, Op};

use super::LONG_MSG_THRESHOLD;

/// Folds a non-power-of-two group down to `2^k` participants.
///
/// With `r = n - 2^k` extra ranks, the first `2r` ranks pair up: each odd
/// rank absorbs its even neighbour's vector and partakes in the
/// power-of-two phase; even ranks sit out and get the result afterwards.
/// Returns this rank's participant index, or `None` if it sits out.
struct Fold {
    pow2: usize,
    rem: usize,
}

impl Fold {
    fn new(n: usize) -> Fold {
        let pow2 = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        Fold {
            pow2,
            rem: n - pow2,
        }
    }

    /// Real rank of participant `newrank`.
    fn oldrank(&self, newrank: usize) -> usize {
        if newrank < self.rem {
            2 * newrank + 1
        } else {
            newrank + self.rem
        }
    }
}

async fn fold_in<T: Numeric>(
    comm: &Comm,
    acc: &mut [T],
    op: Op,
    fold: &Fold,
    tag: Tag,
) -> Option<usize> {
    let me = comm.rank();
    if me < 2 * fold.rem {
        if me.is_multiple_of(2) {
            comm.send_bytes(encode(acc), me + 1, tag);
            None
        } else {
            let operand: Vec<T> = decode(&comm.recv_bytes_async(me - 1, tag).await);
            op.fold_into(acc, &operand);
            Some(me / 2)
        }
    } else {
        Some(me - fold.rem)
    }
}

async fn fold_out<T: Numeric>(
    comm: &Comm,
    acc: &mut [T],
    fold: &Fold,
    tag: Tag,
    participated: bool,
) {
    let me = comm.rank();
    if me < 2 * fold.rem {
        if participated {
            comm.send_bytes(encode(acc), me - 1, tag);
        } else {
            decode_into(&comm.recv_bytes_async(me + 1, tag).await, acc);
        }
    }
}

/// Recursive-doubling allreduce: after the fold, `log2 p` rounds in which
/// participant pairs exchange and combine full vectors. Latency-optimal.
pub fn recursive_doubling<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    crate::coop::block_on(recursive_doubling_async(comm, buf, op));
}

/// Awaitable mirror of [`recursive_doubling`].
pub async fn recursive_doubling_async<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    if n == 1 {
        return;
    }
    let fold = Fold::new(n);
    let newrank = fold_in(comm, buf, op, &fold, tag).await;

    if let Some(p) = newrank {
        let mut span = 1;
        while span < fold.pow2 {
            let partner = fold.oldrank(p ^ span);
            let bytes = comm
                .sendrecv_bytes_coll_async(encode(buf), partner, partner, tag)
                .await;
            let operand: Vec<T> = decode(&bytes);
            op.fold_into(buf, &operand);
            span <<= 1;
        }
    }
    fold_out(comm, buf, &fold, tag, newrank.is_some()).await;
}

/// Rabenseifner allreduce: after the fold, a recursive-halving
/// reduce-scatter followed by a recursive-doubling allgather among the
/// `2^k` participants. Bandwidth-optimal (`2 * len * (p-1)/p` per rank);
/// the long-vector algorithm in MPI libraries — and the shape the paper's
/// 1 MB Allreduce measurements exercise.
///
/// Requires the vector length to be divisible by the participant count;
/// the dispatcher checks and falls back to [`recursive_doubling`].
pub fn rabenseifner<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    crate::coop::block_on(rabenseifner_async(comm, buf, op));
}

/// Awaitable mirror of [`rabenseifner`].
pub async fn rabenseifner_async<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    if n == 1 {
        return;
    }
    let fold = Fold::new(n);
    let p = fold.pow2;
    let len = buf.len();
    assert_eq!(len % p, 0, "vector must divide among participants");
    let slice = len / p;
    let newrank = fold_in(comm, buf, op, &fold, tag).await;

    if let Some(v) = newrank {
        // Reduce-scatter by recursive halving.
        let (mut lo, mut hi) = (0usize, len);
        let mut group = p;
        while group > 1 {
            let gbase = v & !(group - 1);
            let mid_rank = gbase + group / 2;
            let mid = (lo + hi) / 2;
            let in_lower = v < mid_rank;
            let partner = fold.oldrank(if in_lower {
                v + group / 2
            } else {
                v - group / 2
            });
            let (keep, give) = if in_lower {
                (lo..mid, mid..hi)
            } else {
                (mid..hi, lo..mid)
            };
            let out = encode(&buf[give]);
            let bytes = comm
                .sendrecv_bytes_coll_async(out, partner, partner, tag)
                .await;
            let operand: Vec<T> = decode(&bytes);
            op.fold_into(&mut buf[keep.clone()], &operand);
            lo = keep.start;
            hi = keep.end;
            group /= 2;
        }
        debug_assert_eq!((lo, hi), (v * slice, (v + 1) * slice));

        // Allgather by recursive doubling (inverse order: smallest spans
        // first so gathered ranges stay contiguous).
        let mut span_ranks = 1;
        while span_ranks < p {
            let partner = fold.oldrank(v ^ span_ranks);
            let base = (v & !(span_ranks - 1)) * slice;
            let pbase = ((v ^ span_ranks) & !(span_ranks - 1)) * slice;
            let count = span_ranks * slice;
            let out = encode(&buf[base..base + count]);
            let bytes = comm
                .sendrecv_bytes_coll_async(out, partner, partner, tag)
                .await;
            decode_into(&bytes, &mut buf[pbase..pbase + count]);
            span_ranks <<= 1;
        }
    }
    fold_out(comm, buf, &fold, tag, newrank.is_some()).await;
}

/// Size-dispatched allreduce: Rabenseifner for long divisible vectors,
/// recursive doubling otherwise.
pub fn auto<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    crate::coop::block_on(auto_async(comm, buf, op));
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Numeric>(comm: &Comm, buf: &mut [T], op: Op) {
    let n = comm.size();
    let fold = Fold::new(n);
    if n > 1 && buf.len() * T::SIZE >= LONG_MSG_THRESHOLD && buf.len().is_multiple_of(fold.pow2) {
        rabenseifner_async(comm, buf, op).await;
    } else {
        recursive_doubling_async(comm, buf, op).await;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use crate::reduce::Op;
    use crate::runtime::run;

    type Algo = fn(&crate::Comm, &mut [f64], Op);

    fn check(n: usize, len: usize, op: Op, algo: Algo) {
        let results = run(n, |comm| {
            let me = comm.rank();
            let mut buf: Vec<f64> = (0..len)
                .map(|i| ((me + 1) * (i + 1)) as f64 * 0.5)
                .collect();
            algo(comm, &mut buf, op);
            buf
        });
        let mut expect = vec![
            match op {
                Op::Sum => 0.0,
                Op::Prod => 1.0,
                Op::Max => f64::NEG_INFINITY,
                Op::Min => f64::INFINITY,
            };
            len
        ];
        for r in 0..n {
            for i in 0..len {
                expect[i] = op.apply(expect[i], ((r + 1) * (i + 1)) as f64 * 0.5);
            }
        }
        for (r, got) in results.iter().enumerate() {
            for i in 0..len {
                assert!(
                    (got[i] - expect[i]).abs() < 1e-9 * expect[i].abs().max(1.0),
                    "rank {r} elem {i}: {} != {}",
                    got[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        for n in [1, 2, 4, 8, 16] {
            check(n, 10, Op::Sum, super::recursive_doubling);
        }
    }

    #[test]
    fn recursive_doubling_general_sizes() {
        for n in [3, 5, 6, 7, 11, 13] {
            check(n, 10, Op::Sum, super::recursive_doubling);
        }
    }

    #[test]
    fn recursive_doubling_all_ops() {
        for op in [Op::Sum, Op::Prod, Op::Max, Op::Min] {
            check(6, 5, op, super::recursive_doubling);
        }
    }

    #[test]
    fn rabenseifner_power_of_two() {
        for n in [2, 4, 8, 16] {
            check(n, 16 * 16, Op::Sum, super::rabenseifner);
        }
    }

    #[test]
    fn rabenseifner_general_sizes() {
        // 240 divides the participant counts for all these n.
        for n in [3, 5, 6, 7, 12] {
            check(n, 240, Op::Sum, super::rabenseifner);
        }
    }

    #[test]
    fn rabenseifner_max() {
        check(8, 64, Op::Max, super::rabenseifner);
    }

    #[test]
    fn auto_dispatches() {
        check(4, 4, Op::Sum, super::auto);
        check(4, 8192, Op::Sum, super::auto);
        check(7, 4096, Op::Sum, super::auto);
    }

    #[test]
    fn allreduce_is_symmetric_across_ranks() {
        let results = run(5, |comm| {
            let mut buf = vec![comm.rank() as f64 + 1.0];
            super::auto(comm, &mut buf, Op::Prod);
            buf[0]
        });
        for v in &results {
            assert_eq!(*v, 120.0);
        }
    }
}
