//! Scatter (`MPI_Scatter`): root distributes one block per rank.

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};

use super::{halving_tree, unvrank, vrank};

/// Linear scatter: the root sends each rank its block directly. Baseline
/// algorithm (and the fallback for tiny groups).
pub fn linear<T: Word>(comm: &Comm, send: Option<&[T]>, recv: &mut [T], root: usize) {
    crate::coop::block_on(linear_async(comm, send, recv, root));
}

/// Awaitable mirror of [`linear`].
pub async fn linear_async<T: Word>(comm: &Comm, send: Option<&[T]>, recv: &mut [T], root: usize) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let block = recv.len();
    if comm.rank() == root {
        let send = send.expect("root must supply a send buffer");
        assert_eq!(send.len(), block * n, "scatter send buffer size mismatch");
        for r in 0..n {
            let part = &send[r * block..(r + 1) * block];
            if r == root {
                recv.copy_from_slice(part);
            } else {
                comm.send_bytes(encode(part), r, tag);
            }
        }
    } else {
        let bytes = comm.recv_bytes_async(root, tag).await;
        decode_into(&bytes, recv);
    }
}

/// Binomial-tree scatter down the recursive-halving tree: `ceil(log2 n)`
/// rounds; each internal node forwards the halves destined to its subtrees
/// as zero-copy sub-slices of the one buffer it received — internal nodes
/// never copy payload bytes.
pub fn binomial<T: Word>(comm: &Comm, send: Option<&[T]>, recv: &mut [T], root: usize) {
    crate::coop::block_on(binomial_async(comm, send, recv, root));
}

/// Awaitable mirror of [`binomial`].
pub async fn binomial_async<T: Word>(comm: &Comm, send: Option<&[T]>, recv: &mut [T], root: usize) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let block = recv.len();
    if n == 1 {
        let send = send.expect("root must supply a send buffer");
        recv.copy_from_slice(&send[..block]);
        return;
    }
    let v = vrank(comm.rank(), root, n);
    let (parent, children) = halving_tree(v, n);

    // Hold the encoded blocks for my subtree, indexed by vrank.
    let bw = block * T::SIZE;
    let (data, lo) = if let Some((p, range)) = parent {
        (
            comm.recv_payload_async(unvrank(p, root, n), tag).await,
            range.start,
        )
    } else {
        // Root re-orders its buffer into vrank order once.
        let send = send.expect("root must supply a send buffer");
        assert_eq!(send.len(), block * n, "scatter send buffer size mismatch");
        let mut d = vec![0u8; bw * n];
        for vv in 0..n {
            let r = unvrank(vv, root, n);
            crate::datatype::encode_into(
                &send[r * block..(r + 1) * block],
                &mut d[vv * bw..(vv + 1) * bw],
            );
        }
        (crate::payload::Payload::from_vec(d), 0)
    };

    for (child, range) in children {
        let off = (range.start - lo) * bw;
        let len = (range.end - range.start) * bw;
        comm.send_payload(data.slice(off..off + len), unvrank(child, root, n), tag);
    }
    // My own block sits first in the subtree range (lo == v).
    debug_assert_eq!(lo, v);
    decode_into(&data[..bw], recv);
}

/// Size-dispatched scatter (binomial; linear for 2 ranks).
pub fn auto<T: Word>(comm: &Comm, send: Option<&[T]>, recv: &mut [T], root: usize) {
    crate::coop::block_on(auto_async(comm, send, recv, root));
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Word>(comm: &Comm, send: Option<&[T]>, recv: &mut [T], root: usize) {
    if comm.size() <= 2 {
        linear_async(comm, send, recv, root).await;
    } else {
        binomial_async(comm, send, recv, root).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;

    type Algo = fn(&crate::Comm, Option<&[u64]>, &mut [u64], usize);

    fn check(n: usize, block: usize, root: usize, algo: Algo) {
        let results = run(n, |comm| {
            let send: Option<Vec<u64>> =
                (comm.rank() == root).then(|| (0..(n * block) as u64).map(|x| x * 7 + 1).collect());
            let mut recv = vec![0u64; block];
            algo(comm, send.as_deref(), &mut recv, root);
            recv
        });
        for (r, got) in results.iter().enumerate() {
            let expect: Vec<u64> = (0..block as u64)
                .map(|i| ((r * block) as u64 + i) * 7 + 1)
                .collect();
            assert_eq!(got, &expect, "rank {r} got the wrong block");
        }
    }

    #[test]
    fn linear_various() {
        for n in [1, 2, 3, 6] {
            for root in [0, n - 1] {
                check(n, 4, root, super::linear);
            }
        }
    }

    #[test]
    fn binomial_various() {
        for n in [1, 2, 3, 4, 5, 8, 11, 16] {
            for root in [0, n - 1, n / 2] {
                check(n, 3, root, super::binomial);
            }
        }
    }

    #[test]
    fn binomial_matches_linear_block_sizes() {
        check(7, 1, 2, super::binomial);
        check(7, 64, 2, super::binomial);
    }

    #[test]
    fn auto_works() {
        check(2, 5, 1, super::auto);
        check(9, 5, 4, super::auto);
    }
}
