//! Allgatherv (`MPI_Allgatherv`, IMB `Allgatherv`, paper Fig. 11): the
//! vector variant of allgather with per-rank block sizes.

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};

/// Per-rank displacements (prefix sums of `counts`).
fn displs(counts: &[usize]) -> Vec<usize> {
    let mut d = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0;
    for &c in counts {
        d.push(acc);
        acc += c;
    }
    d.push(acc);
    d
}

/// Ring allgatherv: identical round structure to the symmetric ring
/// allgather but with per-rank block sizes, which is exactly the "MPI
/// overhead for more complex situations" the IMB Allgatherv benchmark
/// measures relative to Allgather.
pub fn ring<T: Word>(comm: &Comm, send: &[T], recv: &mut [T], counts: &[usize]) {
    crate::coop::block_on(ring_async(comm, send, recv, counts));
}

/// Awaitable mirror of [`ring`].
pub async fn ring_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T], counts: &[usize]) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(counts.len(), n, "one count per rank required");
    let d = displs(counts);
    assert_eq!(recv.len(), d[n], "allgatherv receive buffer size mismatch");
    let me = comm.rank();
    assert_eq!(send.len(), counts[me], "send buffer must match my count");
    recv[d[me]..d[me + 1]].copy_from_slice(send);
    if n == 1 {
        return;
    }
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for k in 0..n - 1 {
        let sb = (me + n - k) % n;
        let rb = (me + n - k - 1) % n;
        let out = encode(&recv[d[sb]..d[sb + 1]]);
        let bytes = comm.sendrecv_bytes_coll_async(out, right, left, tag).await;
        decode_into(&bytes, &mut recv[d[rb]..d[rb + 1]]);
    }
}

/// The default allgatherv (ring).
pub fn auto<T: Word>(comm: &Comm, send: &[T], recv: &mut [T], counts: &[usize]) {
    ring(comm, send, recv, counts);
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T], counts: &[usize]) {
    ring_async(comm, send, recv, counts).await;
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;

    fn check(counts: Vec<usize>) {
        let n = counts.len();
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let results = run(n, |comm| {
            let me = comm.rank();
            let send: Vec<u32> = (0..counts2[me] as u32)
                .map(|i| (me as u32) * 100 + i)
                .collect();
            let mut recv = vec![0u32; total];
            super::ring(comm, &send, &mut recv, &counts2);
            recv
        });
        let expect: Vec<u32> = (0..n)
            .flat_map(|r| (0..counts[r] as u32).map(move |i| (r as u32) * 100 + i))
            .collect();
        for (r, got) in results.iter().enumerate() {
            assert_eq!(got, &expect, "rank {r} gathered wrong data");
        }
    }

    #[test]
    fn equal_counts_match_allgather_semantics() {
        check(vec![3; 5]);
    }

    #[test]
    fn varying_counts() {
        check(vec![1, 4, 2, 7]);
        check(vec![5, 1, 1, 1, 9, 2, 3]);
    }

    #[test]
    fn zero_counts_allowed() {
        check(vec![0, 3, 0, 2]);
        check(vec![0, 0, 0]);
    }

    #[test]
    fn single_rank() {
        check(vec![4]);
    }

    #[test]
    fn displacements_are_prefix_sums() {
        assert_eq!(super::displs(&[2, 0, 5]), vec![0, 2, 2, 7]);
        assert_eq!(super::displs(&[]), vec![0]);
    }
}
