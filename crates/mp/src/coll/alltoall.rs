//! All-to-all personalised exchange (`MPI_Alltoall`, IMB `AlltoAll`,
//! paper Fig. 12) — the benchmark that "stresses the global network
//! bandwidth of the computing system".

use crate::comm::Comm;
use crate::datatype::{decode_into, encode, Word};

use super::LONG_MSG_THRESHOLD;

/// Pairwise-exchange alltoall: `n-1` rounds; in round `s` each rank
/// exchanges one block with the rank at offset `s` (XOR-pairing on
/// power-of-two groups, rotation otherwise). The standard long-message
/// algorithm: every block travels exactly once.
pub fn pairwise<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    crate::coop::block_on(pairwise_async(comm, send, recv));
}

/// Awaitable mirror of [`pairwise`].
pub async fn pairwise_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(send.len(), recv.len(), "alltoall buffers must match");
    assert_eq!(send.len() % n, 0, "alltoall buffer not divisible by ranks");
    let block = send.len() / n;
    let me = comm.rank();
    recv[me * block..(me + 1) * block].copy_from_slice(&send[me * block..(me + 1) * block]);
    for s in 1..n {
        let (dst, src) = if n.is_power_of_two() {
            (me ^ s, me ^ s)
        } else {
            ((me + s) % n, (me + n - s) % n)
        };
        let out = encode(&send[dst * block..(dst + 1) * block]);
        let bytes = comm.sendrecv_bytes_coll_async(out, dst, src, tag).await;
        decode_into(&bytes, &mut recv[src * block..(src + 1) * block]);
    }
}

/// Bruck alltoall: `ceil(log2 n)` rounds, each moving about half the
/// payload. Fewer, larger messages than pairwise — the short-message
/// algorithm. Works for any group size.
///
/// After the initial rotation `L[i] = send[(me + i) % n]`, round `k` ships
/// every slot with bit `k` set to rank `me + 2^k`; slot contents then
/// satisfy `L[j] = block from (me - j) to me`, undone by the final inverse
/// rotation.
pub fn bruck<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    crate::coop::block_on(bruck_async(comm, send, recv));
}

/// Awaitable mirror of [`bruck`].
pub async fn bruck_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(send.len(), recv.len(), "alltoall buffers must match");
    assert_eq!(send.len() % n, 0, "alltoall buffer not divisible by ranks");
    let block = send.len() / n;
    let bw = block * T::SIZE;
    let me = comm.rank();

    // Phase 1: rotate into slot space.
    let mut slots = vec![0u8; bw * n];
    for i in 0..n {
        let src_block = (me + i) % n;
        crate::datatype::encode_into(
            &send[src_block * block..(src_block + 1) * block],
            &mut slots[i * bw..(i + 1) * bw],
        );
    }

    // Phase 2: log-round combining exchanges.
    let mut step = 1usize;
    while step < n {
        let dst = (me + step) % n;
        let src = (me + n - step) % n;
        let moving: Vec<usize> = (0..n).filter(|i| i & step != 0).collect();
        let mut out = Vec::with_capacity(moving.len() * bw);
        for &i in &moving {
            out.extend_from_slice(&slots[i * bw..(i + 1) * bw]);
        }
        let bytes = comm.sendrecv_bytes_coll_async(out, dst, src, tag).await;
        assert_eq!(bytes.len(), moving.len() * bw, "bruck round size mismatch");
        for (j, &i) in moving.iter().enumerate() {
            slots[i * bw..(i + 1) * bw].copy_from_slice(&bytes[j * bw..(j + 1) * bw]);
        }
        step <<= 1;
    }

    // Phase 3: inverse rotation — slot j holds the block from (me - j).
    for j in 0..n {
        let from = (me + n - j) % n;
        decode_into(
            &slots[j * bw..(j + 1) * bw],
            &mut recv[from * block..(from + 1) * block],
        );
    }
}

/// Linear alltoall: every rank fires all `n-1` sends eagerly, then drains
/// its receives. Maximum overlap, no round structure; the baseline.
pub fn linear<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    crate::coop::block_on(linear_async(comm, send, recv));
}

/// Awaitable mirror of [`linear`].
pub async fn linear_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(send.len(), recv.len(), "alltoall buffers must match");
    assert_eq!(send.len() % n, 0, "alltoall buffer not divisible by ranks");
    let block = send.len() / n;
    let me = comm.rank();
    recv[me * block..(me + 1) * block].copy_from_slice(&send[me * block..(me + 1) * block]);
    for off in 1..n {
        let dst = (me + off) % n;
        comm.send_bytes(encode(&send[dst * block..(dst + 1) * block]), dst, tag);
    }
    for off in 1..n {
        let src = (me + n - off) % n;
        let bytes = comm.recv_bytes_async(src, tag).await;
        decode_into(&bytes, &mut recv[src * block..(src + 1) * block]);
    }
}

/// Size-dispatched alltoall: Bruck for short blocks, pairwise for long.
pub fn auto<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    crate::coop::block_on(auto_async(comm, send, recv));
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Word>(comm: &Comm, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    if n == 1 {
        recv.copy_from_slice(send);
        return;
    }
    let block_bytes = send.len() / n * T::SIZE;
    if block_bytes < 256 && n > 8 {
        bruck_async(comm, send, recv).await;
    } else {
        let _ = LONG_MSG_THRESHOLD;
        pairwise_async(comm, send, recv).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::run;

    type Algo = fn(&crate::Comm, &[u32], &mut [u32]);

    /// Element (s -> d, i) encoded as s*10000 + d*100 + i.
    fn check(n: usize, block: usize, algo: Algo) {
        let results = run(n, |comm| {
            let me = comm.rank() as u32;
            let send: Vec<u32> = (0..n as u32)
                .flat_map(|d| (0..block as u32).map(move |i| me * 10000 + d * 100 + i))
                .collect();
            let mut recv = vec![0u32; n * block];
            algo(comm, &send, &mut recv);
            recv
        });
        for (r, got) in results.iter().enumerate() {
            let expect: Vec<u32> = (0..n as u32)
                .flat_map(|s| (0..block as u32).map(move |i| s * 10000 + (r as u32) * 100 + i))
                .collect();
            assert_eq!(got, &expect, "rank {r} has wrong alltoall result");
        }
    }

    #[test]
    fn pairwise_power_of_two() {
        for n in [1, 2, 4, 8, 16] {
            check(n, 3, super::pairwise);
        }
    }

    #[test]
    fn pairwise_general() {
        for n in [3, 5, 6, 7, 12] {
            check(n, 3, super::pairwise);
        }
    }

    #[test]
    fn bruck_various() {
        for n in [1, 2, 3, 4, 5, 8, 11, 16] {
            check(n, 2, super::bruck);
        }
    }

    #[test]
    fn linear_various() {
        for n in [1, 2, 5, 9] {
            check(n, 2, super::linear);
        }
    }

    #[test]
    fn auto_both_paths() {
        check(12, 1, super::auto); // tiny blocks, n > 8 -> bruck
        check(12, 512, super::auto); // long -> pairwise
    }

    #[test]
    fn empty_blocks() {
        check(4, 0, super::pairwise);
        check(4, 0, super::bruck);
    }
}
