//! Reduce-scatter (`MPI_Reduce_scatter`, IMB `Reduce_scatter`, paper
//! Fig. 9): "the outcome ... is the same as an MPI Reduce operation
//! followed by an MPI Scatter".

use crate::comm::Comm;
use crate::datatype::{decode, encode};
use crate::reduce::{Numeric, Op};

/// Pairwise reduce-scatter: `n-1` rounds; in round `s` each rank ships the
/// slice belonging to `(me + s) mod n` and folds the operand for its own
/// slice arriving from `(me - s) mod n`. Works for any group size and any
/// per-rank counts; bandwidth-optimal (each rank moves `len - own` once).
pub fn pairwise<T: Numeric>(comm: &Comm, send: &[T], recv: &mut [T], counts: &[usize], op: Op) {
    crate::coop::block_on(pairwise_async(comm, send, recv, counts, op));
}

/// Awaitable mirror of [`pairwise`].
pub async fn pairwise_async<T: Numeric>(
    comm: &Comm,
    send: &[T],
    recv: &mut [T],
    counts: &[usize],
    op: Op,
) {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    assert_eq!(counts.len(), n, "one count per rank required");
    let total: usize = counts.iter().sum();
    assert_eq!(
        send.len(),
        total,
        "reduce_scatter send buffer size mismatch"
    );
    let me = comm.rank();
    assert_eq!(recv.len(), counts[me], "receive buffer must match my count");

    let mut displ = vec![0usize; n + 1];
    for r in 0..n {
        displ[r + 1] = displ[r] + counts[r];
    }

    let mut acc = send[displ[me]..displ[me + 1]].to_vec();
    for s in 1..n {
        let dst = (me + s) % n;
        let src = (me + n - s) % n;
        comm.send_bytes(encode(&send[displ[dst]..displ[dst + 1]]), dst, tag);
        let operand: Vec<T> = decode(&comm.recv_bytes_async(src, tag).await);
        op.fold_into(&mut acc, &operand);
    }
    recv.copy_from_slice(&acc);
}

/// Recursive-halving reduce-scatter for equal counts on power-of-two
/// groups: `log2 n` rounds, halving the active vector each round. The
/// short-message algorithm; also the first phase of Rabenseifner's
/// reductions.
pub fn recursive_halving<T: Numeric>(comm: &Comm, send: &[T], recv: &mut [T], op: Op) {
    crate::coop::block_on(recursive_halving_async(comm, send, recv, op));
}

/// Awaitable mirror of [`recursive_halving`].
pub async fn recursive_halving_async<T: Numeric>(comm: &Comm, send: &[T], recv: &mut [T], op: Op) {
    let n = comm.size();
    assert!(n.is_power_of_two(), "recursive halving needs 2^k ranks");
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    let len = send.len();
    assert_eq!(len % n, 0, "vector must divide evenly among ranks");
    let slice = len / n;
    assert_eq!(recv.len(), slice, "receive buffer must hold one slice");
    if n == 1 {
        recv.copy_from_slice(send);
        return;
    }

    let mut acc = send.to_vec();
    let (mut lo, mut hi) = (0usize, len);
    let mut group = n;
    while group > 1 {
        let gbase = me & !(group - 1);
        let mid_rank = gbase + group / 2;
        let mid = (lo + hi) / 2;
        let in_lower = me < mid_rank;
        let partner = if in_lower {
            me + group / 2
        } else {
            me - group / 2
        };
        let (keep, give) = if in_lower {
            (lo..mid, mid..hi)
        } else {
            (mid..hi, lo..mid)
        };
        let out = encode(&acc[give]);
        let bytes = comm
            .sendrecv_bytes_coll_async(out, partner, partner, tag)
            .await;
        let operand: Vec<T> = decode(&bytes);
        op.fold_into(&mut acc[keep.clone()], &operand);
        lo = keep.start;
        hi = keep.end;
        group /= 2;
    }
    debug_assert_eq!((lo, hi), (me * slice, (me + 1) * slice));
    recv.copy_from_slice(&acc[lo..hi]);
}

/// Dispatched equal-counts reduce-scatter (`MPI_Reduce_scatter_block`):
/// recursive halving on power-of-two groups, pairwise otherwise.
pub fn block_auto<T: Numeric>(comm: &Comm, send: &[T], recv: &mut [T], op: Op) {
    crate::coop::block_on(block_auto_async(comm, send, recv, op));
}

/// Awaitable mirror of [`block_auto`].
pub async fn block_auto_async<T: Numeric>(comm: &Comm, send: &[T], recv: &mut [T], op: Op) {
    let n = comm.size();
    if n.is_power_of_two() && send.len().is_multiple_of(n) {
        recursive_halving_async(comm, send, recv, op).await;
    } else {
        let counts = vec![recv.len(); n];
        assert_eq!(send.len(), recv.len() * n, "send must be n equal blocks");
        pairwise_async(comm, send, recv, &counts, op).await;
    }
}

/// General per-rank-counts reduce-scatter (pairwise).
pub fn auto<T: Numeric>(comm: &Comm, send: &[T], recv: &mut [T], counts: &[usize], op: Op) {
    pairwise(comm, send, recv, counts, op);
}

/// Awaitable mirror of [`auto`].
pub async fn auto_async<T: Numeric>(
    comm: &Comm,
    send: &[T],
    recv: &mut [T],
    counts: &[usize],
    op: Op,
) {
    pairwise_async(comm, send, recv, counts, op).await;
}

#[cfg(test)]
mod tests {
    use crate::reduce::Op;
    use crate::runtime::run;

    /// send[r][i] = (r+1) * (i+1); reduced slice for rank d starts at
    /// displ[d].
    fn check_counts(counts: Vec<usize>, op: Op) {
        let n = counts.len();
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let results = run(n, |comm| {
            let me = comm.rank();
            let send: Vec<f64> = (0..total).map(|i| ((me + 1) * (i + 1)) as f64).collect();
            let mut recv = vec![0.0f64; counts2[me]];
            super::pairwise(comm, &send, &mut recv, &counts2, op);
            recv
        });
        let mut displ = 0usize;
        for (r, got) in results.iter().enumerate() {
            for (j, &g) in got.iter().enumerate() {
                let i = displ + j;
                let mut e = match op {
                    Op::Sum => 0.0,
                    Op::Prod => 1.0,
                    Op::Max => f64::NEG_INFINITY,
                    Op::Min => f64::INFINITY,
                };
                for s in 0..n {
                    e = op.apply(e, ((s + 1) * (i + 1)) as f64);
                }
                assert!((g - e).abs() < 1e-9 * e.abs().max(1.0), "rank {r} elem {j}");
            }
            displ += counts[r];
        }
    }

    #[test]
    fn pairwise_equal_counts() {
        for n in [1, 2, 3, 4, 5, 8] {
            check_counts(vec![3; n], Op::Sum);
        }
    }

    #[test]
    fn pairwise_varying_counts() {
        check_counts(vec![1, 4, 0, 2], Op::Sum);
        check_counts(vec![2, 2, 5], Op::Max);
    }

    fn check_halving(n: usize, slice: usize, op: Op) {
        let results = run(n, |comm| {
            let me = comm.rank();
            let send: Vec<f64> = (0..n * slice)
                .map(|i| ((me + 1) * (i + 1)) as f64)
                .collect();
            let mut recv = vec![0.0f64; slice];
            super::recursive_halving(comm, &send, &mut recv, op);
            recv
        });
        for (r, got) in results.iter().enumerate() {
            for (j, &g) in got.iter().enumerate() {
                let i = r * slice + j;
                let mut e = match op {
                    Op::Sum => 0.0,
                    _ => f64::NEG_INFINITY,
                };
                for s in 0..n {
                    e = op.apply(e, ((s + 1) * (i + 1)) as f64);
                }
                assert!((g - e).abs() < 1e-9 * e.abs().max(1.0), "rank {r} elem {j}");
            }
        }
    }

    #[test]
    fn recursive_halving_power_of_two() {
        for n in [1, 2, 4, 8, 16] {
            check_halving(n, 4, Op::Sum);
        }
    }

    #[test]
    fn recursive_halving_max() {
        check_halving(8, 2, Op::Max);
    }

    #[test]
    fn block_auto_matches_both_paths() {
        check_halving(8, 4, Op::Sum);
        // Non-power-of-two goes through pairwise.
        check_counts(vec![4; 6], Op::Sum);
    }
}
