//! Collective operations.
//!
//! Each collective comes in the classical algorithm variants MPI libraries
//! of the paper's era used (MPICH/MVAPICH ancestry, which the Dell cluster's
//! Topspin MPI was based on): binomial trees for rooted short-message
//! operations, recursive doubling/halving for power-of-two groups, ring and
//! pairwise exchanges for long messages, Bruck for small all-to-all, and
//! Rabenseifner's reduce-scatter-based algorithms for long reductions.
//!
//! The `auto` entry point of each module mirrors the size/shape heuristics
//! of those libraries. Every algorithm also has a *schedule generator* in
//! [`crate::sched`] producing its exact communication rounds for the fabric
//! simulator; tests assert that a traced real execution moves exactly the
//! messages the generator predicts.

pub mod allgather;
pub mod allgatherv;
pub mod allreduce;
pub mod alltoall;
pub mod alltoallv;
pub mod barrier;
pub mod bcast;
pub mod gather;
pub mod gatherv;
pub mod reduce;
pub mod reduce_scatter;
pub mod scan;
pub mod scatter;

/// Message-size threshold (bytes) between "short" (latency-optimised) and
/// "long" (bandwidth-optimised) collective algorithms, matching the era's
/// common 8-64 KiB switchover points.
pub const LONG_MSG_THRESHOLD: usize = 32 * 1024;

/// Translates a rank to its root-relative ("virtual") rank.
#[inline]
pub(crate) fn vrank(rank: usize, root: usize, n: usize) -> usize {
    (rank + n - root) % n
}

/// Translates a root-relative rank back to a real rank.
#[inline]
pub(crate) fn unvrank(v: usize, root: usize, n: usize) -> usize {
    (v + root) % n
}

/// The binomial broadcast/scatter tree over virtual ranks, shared by the
/// real implementations and the schedule generators.
///
/// For a non-root vrank `v`, the parent is `v` with its top bit cleared and
/// the receive round is `log2(top bit)`. `v` then sends to `v + 2^k` for
/// every `k > recv_round` with `v + 2^k < n` (the root starts at round 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BinomialNode {
    /// Parent vrank and the round in which data arrives (None at the root).
    pub parent: Option<(usize, u32)>,
    /// First round in which this node sends.
    pub first_send_round: u32,
}

pub(crate) fn binomial_node(v: usize) -> BinomialNode {
    if v == 0 {
        BinomialNode {
            parent: None,
            first_send_round: 0,
        }
    } else {
        let r = v.ilog2();
        BinomialNode {
            parent: Some((v - (1 << r), r)),
            first_send_round: r + 1,
        }
    }
}

/// A `(vrank, block range)` pair in the halving tree.
pub(crate) type RankRange = (usize, std::ops::Range<usize>);

/// The recursive-halving block tree used by binomial scatter/gather and
/// Rabenseifner reductions: walking from the full range `[0, n)`, each
/// holder `lo` of a range splits off the upper part `[mid, hi)` to vrank
/// `mid`, where `mid = lo + next_pow2(hi-lo)/2`.
///
/// Returns, for vrank `v`: the parent `(vrank, range)` it receives from
/// (None for the root) and the ordered list of `(child vrank, range)` it
/// sends, from the outermost split inwards.
pub(crate) fn halving_tree(v: usize, n: usize) -> (Option<RankRange>, Vec<RankRange>) {
    let (mut lo, mut hi) = (0usize, n);
    let mut parent = None;
    let mut children = Vec::new();
    while hi - lo > 1 {
        let half = (hi - lo).next_power_of_two() / 2;
        let mid = lo + half;
        if v < mid {
            if v == lo {
                children.push((mid, mid..hi));
            }
            hi = mid;
        } else {
            if v == mid {
                parent = Some((lo, mid..hi));
            }
            lo = mid;
        }
    }
    debug_assert_eq!(lo, v);
    (parent, children)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn vrank_roundtrip() {
        for n in 1..10 {
            for root in 0..n {
                for r in 0..n {
                    assert_eq!(unvrank(vrank(r, root, n), root, n), r);
                }
            }
        }
    }

    #[test]
    fn binomial_tree_shape() {
        assert_eq!(binomial_node(0).parent, None);
        assert_eq!(binomial_node(1).parent, Some((0, 0)));
        assert_eq!(binomial_node(5).parent, Some((1, 2)));
        assert_eq!(binomial_node(5).first_send_round, 3);
        assert_eq!(binomial_node(6).parent, Some((2, 2)));
    }

    #[test]
    fn binomial_tree_is_connected() {
        // Every non-root node's parent receives strictly earlier.
        for n in 2..40usize {
            for v in 1..n {
                let node = binomial_node(v);
                let (p, round) = node.parent.unwrap();
                assert!(p < v);
                if p != 0 {
                    let (_, p_round) = binomial_node(p).parent.unwrap();
                    assert!(p_round < round, "parent must hold data before sending");
                }
            }
        }
    }

    #[test]
    fn halving_tree_partitions_ranks() {
        for n in 1..33usize {
            let mut seen = vec![false; n];
            for v in 0..n {
                let (parent, _) = halving_tree(v, n);
                if v == 0 {
                    assert!(parent.is_none());
                } else {
                    let (p, range) = parent.clone().unwrap();
                    assert!(p < v);
                    assert_eq!(range.start, v, "a node receives its own range");
                    assert!(!seen[v]);
                    seen[v] = true;
                }
            }
            assert!(seen[1..].iter().all(|&s| s), "every non-root receives once");
        }
    }

    #[test]
    fn halving_tree_children_cover_parent_range() {
        for n in 2..33usize {
            for v in 0..n {
                let (parent, children) = halving_tree(v, n);
                let my_range = parent.map(|(_, r)| r).unwrap_or(0..n);
                // Children ranges plus {v} partition my range.
                let mut covered: Vec<usize> = vec![v];
                for (c, r) in &children {
                    assert_eq!(*c, r.start);
                    covered.extend(r.clone());
                }
                covered.sort_unstable();
                let expect: Vec<usize> = my_range.collect();
                assert_eq!(covered, expect);
            }
        }
    }
}
