//! Typed message payloads.
//!
//! Messages travel as byte vectors; a [`Word`] is a fixed-size scalar with
//! an explicit little-endian wire encoding. Explicit encode/decode (rather
//! than transmutation) keeps the crate free of `unsafe` while remaining a
//! simple chunked copy that optimises to a `memcpy`-like loop in release
//! builds.

/// A fixed-size scalar that can be carried in a message.
pub trait Word: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Writes the little-endian encoding into `out` (exactly `SIZE` bytes).
    fn write_le(self, out: &mut [u8]);
    /// Reads a value from the little-endian encoding in `inp`.
    fn read_le(inp: &[u8]) -> Self;
}

macro_rules! impl_word {
    ($($t:ty),*) => {$(
        impl Word for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp.try_into().expect("word size mismatch"))
            }
        }
    )*};
}

impl_word!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64, usize, isize);

/// Encodes a slice of words into a fresh byte vector.
pub fn encode<T: Word>(data: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; data.len() * T::SIZE];
    encode_into(data, &mut out);
    out
}

/// Encodes a slice of words into a preallocated byte buffer
/// (`out.len() == data.len() * T::SIZE`).
pub fn encode_into<T: Word>(data: &[T], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        data.len() * T::SIZE,
        "encode buffer size mismatch"
    );
    for (v, chunk) in data.iter().zip(out.chunks_exact_mut(T::SIZE)) {
        v.write_le(chunk);
    }
}

/// Decodes a byte buffer into a preallocated word slice
/// (`bytes.len() == out.len() * T::SIZE`).
pub fn decode_into<T: Word>(bytes: &[u8], out: &mut [T]) {
    assert_eq!(
        bytes.len(),
        out.len() * T::SIZE,
        "decode buffer size mismatch: {} bytes for {} words of {}",
        bytes.len(),
        out.len(),
        T::SIZE,
    );
    for (v, chunk) in out.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
        *v = T::read_le(chunk);
    }
}

/// Decodes a byte buffer into a fresh vector of words.
pub fn decode<T: Word>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length not a multiple of word size"
    );
    bytes.chunks_exact(T::SIZE).map(T::read_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data = [1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode(&data);
        assert_eq!(bytes.len(), 40);
        let back: Vec<f64> = decode(&bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_various_types() {
        let u = [1u64, u64::MAX, 42];
        assert_eq!(decode::<u64>(&encode(&u)), u);
        let i = [-1i32, i32::MIN, i32::MAX];
        assert_eq!(decode::<i32>(&encode(&i)), i);
        let b = [0u8, 255, 7];
        assert_eq!(decode::<u8>(&encode(&b)), b);
    }

    #[test]
    fn empty_slice() {
        let bytes = encode::<f64>(&[]);
        assert!(bytes.is_empty());
        assert!(decode::<f64>(&bytes).is_empty());
    }

    #[test]
    fn decode_into_preallocated() {
        let data = [3u32, 4, 5];
        let bytes = encode(&data);
        let mut out = [0u32; 3];
        decode_into(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "decode buffer size mismatch")]
    fn decode_size_mismatch_panics() {
        let bytes = encode(&[1u64, 2]);
        let mut out = [0u64; 3];
        decode_into(&bytes, &mut out);
    }

    #[test]
    fn encoding_is_little_endian() {
        let bytes = encode(&[0x0102_0304u32]);
        assert_eq!(bytes, vec![0x04, 0x03, 0x02, 0x01]);
    }
}
